//! Property-based tests for CRF inference on random models.

use proptest::prelude::*;

use pae_crf::data::{CsrInstances, FeatureSeq, Instance};
use pae_crf::inference::{marginals, viterbi};
use pae_crf::CrfModel;

/// Builds a model with the given parameters (length must match).
fn model(n_features: usize, n_labels: usize, params: Vec<f64>) -> CrfModel {
    let mut m = CrfModel::new(n_features, n_labels);
    assert_eq!(m.params.len(), params.len());
    m.params = params;
    m
}

/// Strategy: one random nested-layout instance (empty feature lists
/// and single-position sequences included).
fn instance() -> impl Strategy<Value = Instance> {
    proptest::collection::vec(proptest::collection::vec(0u32..50, 0..6), 1..8).prop_flat_map(
        |features| {
            let n = features.len();
            proptest::collection::vec(0usize..5, n).prop_map(move |labels| Instance {
                features: features.clone(),
                labels,
            })
        },
    )
}

/// Strategy: a small random model + a compatible feature sequence.
fn model_and_features() -> impl Strategy<Value = (CrfModel, Vec<Vec<u32>>)> {
    (2usize..4, 2usize..4).prop_flat_map(|(n_features, n_labels)| {
        let dim = CrfModel::param_len(n_features, n_labels);
        let params = proptest::collection::vec(-2.0..2.0f64, dim);
        let feats = proptest::collection::vec(
            proptest::collection::vec(0u32..n_features as u32, 0..n_features),
            1..5,
        );
        (params, feats).prop_map(move |(p, f)| (model(n_features, n_labels, p), f))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// log Z must upper-bound the score of every labelling, and the
    /// Viterbi labelling must score at least as high as random ones.
    #[test]
    fn log_partition_dominates_and_viterbi_is_argmax(
        (m, feats) in model_and_features(),
        random_labels in proptest::collection::vec(0usize..4, 1..5),
    ) {
        let log_z = m.log_partition(&feats);
        let best = viterbi(&m, &feats);
        let best_score = m.sequence_score(&feats, &best);
        prop_assert!(log_z >= best_score - 1e-9, "logZ {log_z} < viterbi {best_score}");

        // Compare against an arbitrary labelling of the right length.
        let labels: Vec<usize> = random_labels
            .iter()
            .cycle()
            .take(feats.len())
            .map(|&l| l % m.n_labels)
            .collect();
        let score = m.sequence_score(&feats, &labels);
        prop_assert!(best_score >= score - 1e-9, "viterbi {best_score} < {score}");
    }

    /// Node marginals are distributions; edge marginals are consistent
    /// with node marginals on both sides.
    #[test]
    fn marginals_are_consistent((m, feats) in model_and_features()) {
        let marg = marginals(&m, &feats);
        let n = feats.len();
        let l = m.n_labels;
        for t in 0..n {
            let sum: f64 = marg.node[t].iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-8, "node[{t}] sums to {sum}");
            for &p in &marg.node[t] {
                prop_assert!((-1e-9..=1.0 + 1e-9).contains(&p));
            }
        }
        for t in 1..n {
            for q in 0..l {
                let s: f64 = (0..l).map(|p| marg.edge[t - 1][p][q]).sum();
                prop_assert!((s - marg.node[t][q]).abs() < 1e-8);
            }
            for p in 0..l {
                let s: f64 = (0..l).map(|q| marg.edge[t - 1][p][q]).sum();
                prop_assert!((s - marg.node[t - 1][p]).abs() < 1e-8);
            }
        }
    }

    /// The packed-training-set invariant: flattening nested instances
    /// into the CSR arena and expanding back reproduces the nested
    /// layout exactly, and every per-position view (labels, feature
    /// slices, the [`FeatureSeq`] accessor inference walks) agrees
    /// with the nested accessors.
    #[test]
    fn csr_pack_round_trips_nested_layout(
        insts in proptest::collection::vec(instance(), 0..6),
    ) {
        let packed = CsrInstances::pack(&insts);
        prop_assert_eq!(packed.len(), insts.len());
        prop_assert_eq!(
            packed.n_positions(),
            insts.iter().map(Instance::len).sum::<usize>()
        );
        prop_assert_eq!(packed.to_instances(), insts.clone());
        for (s, inst) in insts.iter().enumerate() {
            let seq = packed.seq(s);
            prop_assert_eq!(seq.len(), inst.len());
            prop_assert_eq!(seq.labels, inst.labels.as_slice());
            for t in 0..inst.len() {
                prop_assert_eq!(seq.feats(t), inst.features[t].as_slice());
                prop_assert_eq!(FeatureSeq::feats(&seq, t), inst.features[t].as_slice());
            }
        }
    }

    /// Structural invariant of the NLL gradient: summed over labels,
    /// empirical and expected counts cancel for every feature, because
    /// both the marginals and the gold labelling put exactly one unit
    /// of probability mass per firing position.
    #[test]
    fn gradient_rows_sum_to_zero((m, feats) in model_and_features()) {
        let labels: Vec<usize> = (0..feats.len()).map(|i| i % m.n_labels).collect();
        let instances = vec![Instance { features: feats, labels }];
        let mut grad = vec![0.0; m.params.len()];
        pae_crf::train::nll_and_grad(&m, &instances, &mut grad);
        // For each feature f: sum over labels of grad equals
        // (expected count − empirical count) summed over labels, which
        // is zero because both marginals and the gold labelling put
        // exactly one unit of mass per firing position.
        for f in 0..m.n_features {
            let row: f64 = (0..m.n_labels).map(|l| grad[f * m.n_labels + l]).sum();
            prop_assert!(row.abs() < 1e-8, "feature {f} row sum {row}");
        }
    }
}
