//! CRF parameter storage and scoring.

use crate::data::{FeatId, FeatureSeq, LabelId};
use crate::inference;

/// A trained linear-chain CRF.
///
/// Parameters are stored as one flat vector (see [`CrfModel::params`])
/// so the optimizers can treat the model as a point in R^n:
///
/// ```text
/// [ unigram (n_features × n_labels) | transition (n_labels × n_labels)
///   | start (n_labels) | end (n_labels) ]
/// ```
#[derive(Debug, Clone)]
pub struct CrfModel {
    /// Number of labels.
    pub n_labels: usize,
    /// Number of (binary) observation features.
    pub n_features: usize,
    /// Flat parameter vector, layout documented on the struct.
    pub params: Vec<f64>,
}

/// A borrowed view of CRF parameters: the same scoring operations as
/// [`CrfModel`], but over a parameter slice the caller owns.
///
/// This is what lets the optimizer's objective evaluate gradients
/// directly on its iterate `x` — no per-call `to_vec` into a fresh
/// model. `CrfModel` methods delegate here via [`CrfModel::view`].
#[derive(Debug, Clone, Copy)]
pub struct ParamsView<'a> {
    /// Number of labels.
    pub n_labels: usize,
    /// Number of (binary) observation features.
    pub n_features: usize,
    /// Flat parameter slice (same layout as [`CrfModel::params`]).
    pub params: &'a [f64],
}

impl<'a> ParamsView<'a> {
    /// Wraps a raw parameter slice. `params.len()` must equal
    /// [`CrfModel::param_len`] for the given dimensions.
    pub fn new(params: &'a [f64], n_features: usize, n_labels: usize) -> Self {
        debug_assert_eq!(params.len(), CrfModel::param_len(n_features, n_labels));
        ParamsView {
            n_labels,
            n_features,
            params,
        }
    }

    /// Weight of `(feature, label)`.
    #[inline]
    pub fn unigram(&self, feat: FeatId, label: LabelId) -> f64 {
        self.params[feat as usize * self.n_labels + label]
    }

    /// Transition weight `prev → cur`.
    #[inline]
    pub fn transition(&self, prev: LabelId, cur: LabelId) -> f64 {
        self.params[self.trans_offset() + prev * self.n_labels + cur]
    }

    /// Start weight for `label` (virtual BOS transition).
    #[inline]
    pub fn start(&self, label: LabelId) -> f64 {
        self.params[self.start_offset() + label]
    }

    /// End weight for `label` (virtual EOS transition).
    #[inline]
    pub fn end(&self, label: LabelId) -> f64 {
        self.params[self.end_offset() + label]
    }

    /// Offset of the transition block.
    #[inline]
    pub fn trans_offset(&self) -> usize {
        self.n_features * self.n_labels
    }

    /// Offset of the start block.
    #[inline]
    pub fn start_offset(&self) -> usize {
        self.trans_offset() + self.n_labels * self.n_labels
    }

    /// Offset of the end block.
    #[inline]
    pub fn end_offset(&self) -> usize {
        self.start_offset() + self.n_labels
    }

    /// Emission scores for one position: `score[l] = Σ_f w[f, l]`.
    pub fn emission_scores(&self, feats: &[FeatId], out: &mut [f64]) {
        debug_assert_eq!(out.len(), self.n_labels);
        out.fill(0.0);
        for &f in feats {
            let base = f as usize * self.n_labels;
            for (l, o) in out.iter_mut().enumerate() {
                *o += self.params[base + l];
            }
        }
    }

    /// Unnormalized log-score of a full labelling (any feature layout).
    pub fn sequence_score<S: FeatureSeq + ?Sized>(&self, features: &S, labels: &[LabelId]) -> f64 {
        debug_assert_eq!(features.n_positions(), labels.len());
        if labels.is_empty() {
            return 0.0;
        }
        let mut score = self.start(labels[0]) + self.end(labels[labels.len() - 1]);
        for (t, &l) in labels.iter().enumerate() {
            for &f in features.feats(t) {
                score += self.unigram(f, l);
            }
            if t > 0 {
                score += self.transition(labels[t - 1], l);
            }
        }
        score
    }
}

impl CrfModel {
    /// Zero-initialized model.
    pub fn new(n_features: usize, n_labels: usize) -> Self {
        CrfModel {
            n_labels,
            n_features,
            params: vec![0.0; Self::param_len(n_features, n_labels)],
        }
    }

    /// Total parameter count for the given dimensions.
    pub fn param_len(n_features: usize, n_labels: usize) -> usize {
        n_features * n_labels + n_labels * n_labels + 2 * n_labels
    }

    /// Borrowed scoring view over this model's parameters.
    #[inline]
    pub fn view(&self) -> ParamsView<'_> {
        ParamsView {
            n_labels: self.n_labels,
            n_features: self.n_features,
            params: &self.params,
        }
    }

    /// Weight of `(feature, label)`.
    #[inline]
    pub fn unigram(&self, feat: FeatId, label: LabelId) -> f64 {
        self.view().unigram(feat, label)
    }

    /// Transition weight `prev → cur`.
    #[inline]
    pub fn transition(&self, prev: LabelId, cur: LabelId) -> f64 {
        self.view().transition(prev, cur)
    }

    /// Start weight for `label` (virtual BOS transition).
    #[inline]
    pub fn start(&self, label: LabelId) -> f64 {
        self.view().start(label)
    }

    /// End weight for `label` (virtual EOS transition).
    #[inline]
    pub fn end(&self, label: LabelId) -> f64 {
        self.view().end(label)
    }

    /// Offset of the transition block in [`CrfModel::params`].
    #[inline]
    pub fn trans_offset(&self) -> usize {
        self.view().trans_offset()
    }

    /// Offset of the start block.
    #[inline]
    pub fn start_offset(&self) -> usize {
        self.view().start_offset()
    }

    /// Offset of the end block.
    #[inline]
    pub fn end_offset(&self) -> usize {
        self.view().end_offset()
    }

    /// Emission scores for one position: `score[l] = Σ_f w[f, l]`.
    pub fn emission_scores(&self, feats: &[FeatId], out: &mut [f64]) {
        self.view().emission_scores(feats, out)
    }

    /// Unnormalized log-score of a full labelling.
    pub fn sequence_score(&self, features: &[Vec<FeatId>], labels: &[LabelId]) -> f64 {
        self.view().sequence_score(features, labels)
    }

    /// Most likely labelling (Viterbi decode).
    pub fn viterbi(&self, features: &[Vec<FeatId>]) -> Vec<LabelId> {
        inference::viterbi(self, features)
    }

    /// Viterbi decode plus the posterior marginal of each decoded
    /// label (see [`inference::viterbi_with_confidence`]).
    pub fn viterbi_with_confidence(&self, features: &[Vec<FeatId>]) -> (Vec<LabelId>, Vec<f64>) {
        inference::viterbi_with_confidence(self, features)
    }

    /// Log-partition function of the sequence.
    pub fn log_partition(&self, features: &[Vec<FeatId>]) -> f64 {
        inference::forward(self, features).log_z
    }

    /// Number of parameters with magnitude above `eps` (sparsity probe;
    /// L1 training should drive many to exactly zero).
    pub fn active_params(&self, eps: f64) -> usize {
        self.params.iter().filter(|p| p.abs() > eps).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{CsrInstances, Instance};

    #[test]
    fn layout_offsets_are_disjoint_and_total() {
        let m = CrfModel::new(3, 2);
        assert_eq!(m.trans_offset(), 6);
        assert_eq!(m.start_offset(), 10);
        assert_eq!(m.end_offset(), 12);
        assert_eq!(m.params.len(), 14);
    }

    #[test]
    fn sequence_score_sums_parts() {
        let mut m = CrfModel::new(2, 2);
        // unigram(f=0, l=1) = 1.0 ; trans(1→0) = 0.5 ; start(1)=0.25; end(0)=0.125
        m.params[1] = 1.0; // unigram(f=0, l=1)
        let t = m.trans_offset();
        m.params[t + 2] = 0.5; // trans(1 -> 0)
        let s = m.start_offset();
        m.params[s + 1] = 0.25;
        let e = m.end_offset();
        m.params[e] = 0.125;

        let feats = vec![vec![0u32], vec![]];
        let score = m.sequence_score(&feats, &[1, 0]);
        assert!((score - (1.0 + 0.5 + 0.25 + 0.125)).abs() < 1e-12);
    }

    #[test]
    fn view_scores_match_model_on_csr() {
        let mut m = CrfModel::new(2, 2);
        for (i, p) in m.params.iter_mut().enumerate() {
            *p = (i as f64 + 1.0) * 0.17;
        }
        let inst = Instance {
            features: vec![vec![0u32, 1], vec![1]],
            labels: vec![1, 0],
        };
        let csr = CsrInstances::pack(std::slice::from_ref(&inst));
        let nested = m.sequence_score(&inst.features, &inst.labels);
        let packed = m.view().sequence_score(&csr.seq(0), &inst.labels);
        assert_eq!(nested.to_bits(), packed.to_bits());
    }

    #[test]
    fn empty_sequence_scores_zero() {
        let m = CrfModel::new(1, 2);
        assert_eq!(m.sequence_score(&[], &[]), 0.0);
    }

    #[test]
    fn emission_scores_accumulate() {
        let mut m = CrfModel::new(2, 2);
        m.params[0] = 1.0; // (f0, l0)
        m.params[3] = 2.0; // (f1, l1)
        let mut out = vec![0.0; 2];
        m.emission_scores(&[0, 1], &mut out);
        assert_eq!(out, vec![1.0, 2.0]);
    }

    #[test]
    fn active_params_counts_nonzero() {
        let mut m = CrfModel::new(2, 2);
        assert_eq!(m.active_params(1e-9), 0);
        m.params[5] = 0.3;
        assert_eq!(m.active_params(1e-9), 1);
    }
}
