//! CRF parameter storage and scoring.

use crate::data::{FeatId, LabelId};
use crate::inference;

/// A trained linear-chain CRF.
///
/// Parameters are stored as one flat vector (see [`CrfModel::params`])
/// so the optimizers can treat the model as a point in R^n:
///
/// ```text
/// [ unigram (n_features × n_labels) | transition (n_labels × n_labels)
///   | start (n_labels) | end (n_labels) ]
/// ```
#[derive(Debug, Clone)]
pub struct CrfModel {
    /// Number of labels.
    pub n_labels: usize,
    /// Number of (binary) observation features.
    pub n_features: usize,
    /// Flat parameter vector, layout documented on the struct.
    pub params: Vec<f64>,
}

impl CrfModel {
    /// Zero-initialized model.
    pub fn new(n_features: usize, n_labels: usize) -> Self {
        CrfModel {
            n_labels,
            n_features,
            params: vec![0.0; Self::param_len(n_features, n_labels)],
        }
    }

    /// Total parameter count for the given dimensions.
    pub fn param_len(n_features: usize, n_labels: usize) -> usize {
        n_features * n_labels + n_labels * n_labels + 2 * n_labels
    }

    /// Weight of `(feature, label)`.
    #[inline]
    pub fn unigram(&self, feat: FeatId, label: LabelId) -> f64 {
        self.params[feat as usize * self.n_labels + label]
    }

    /// Transition weight `prev → cur`.
    #[inline]
    pub fn transition(&self, prev: LabelId, cur: LabelId) -> f64 {
        self.params[self.trans_offset() + prev * self.n_labels + cur]
    }

    /// Start weight for `label` (virtual BOS transition).
    #[inline]
    pub fn start(&self, label: LabelId) -> f64 {
        self.params[self.start_offset() + label]
    }

    /// End weight for `label` (virtual EOS transition).
    #[inline]
    pub fn end(&self, label: LabelId) -> f64 {
        self.params[self.end_offset() + label]
    }

    /// Offset of the transition block in [`CrfModel::params`].
    #[inline]
    pub fn trans_offset(&self) -> usize {
        self.n_features * self.n_labels
    }

    /// Offset of the start block.
    #[inline]
    pub fn start_offset(&self) -> usize {
        self.trans_offset() + self.n_labels * self.n_labels
    }

    /// Offset of the end block.
    #[inline]
    pub fn end_offset(&self) -> usize {
        self.start_offset() + self.n_labels
    }

    /// Emission scores for one position: `score[l] = Σ_f w[f, l]`.
    pub fn emission_scores(&self, feats: &[FeatId], out: &mut [f64]) {
        debug_assert_eq!(out.len(), self.n_labels);
        out.fill(0.0);
        for &f in feats {
            let base = f as usize * self.n_labels;
            for (l, o) in out.iter_mut().enumerate() {
                *o += self.params[base + l];
            }
        }
    }

    /// Unnormalized log-score of a full labelling.
    pub fn sequence_score(&self, features: &[Vec<FeatId>], labels: &[LabelId]) -> f64 {
        debug_assert_eq!(features.len(), labels.len());
        if labels.is_empty() {
            return 0.0;
        }
        let mut score = self.start(labels[0]) + self.end(labels[labels.len() - 1]);
        for (t, (feats, &l)) in features.iter().zip(labels).enumerate() {
            for &f in feats {
                score += self.unigram(f, l);
            }
            if t > 0 {
                score += self.transition(labels[t - 1], l);
            }
        }
        score
    }

    /// Most likely labelling (Viterbi decode).
    pub fn viterbi(&self, features: &[Vec<FeatId>]) -> Vec<LabelId> {
        inference::viterbi(self, features)
    }

    /// Log-partition function of the sequence.
    pub fn log_partition(&self, features: &[Vec<FeatId>]) -> f64 {
        inference::forward(self, features).log_z
    }

    /// Number of parameters with magnitude above `eps` (sparsity probe;
    /// L1 training should drive many to exactly zero).
    pub fn active_params(&self, eps: f64) -> usize {
        self.params.iter().filter(|p| p.abs() > eps).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_offsets_are_disjoint_and_total() {
        let m = CrfModel::new(3, 2);
        assert_eq!(m.trans_offset(), 6);
        assert_eq!(m.start_offset(), 10);
        assert_eq!(m.end_offset(), 12);
        assert_eq!(m.params.len(), 14);
    }

    #[test]
    fn sequence_score_sums_parts() {
        let mut m = CrfModel::new(2, 2);
        // unigram(f=0, l=1) = 1.0 ; trans(1→0) = 0.5 ; start(1)=0.25; end(0)=0.125
        m.params[1] = 1.0; // unigram(f=0, l=1)
        let t = m.trans_offset();
        m.params[t + 2] = 0.5; // trans(1 -> 0)
        let s = m.start_offset();
        m.params[s + 1] = 0.25;
        let e = m.end_offset();
        m.params[e] = 0.125;

        let feats = vec![vec![0u32], vec![]];
        let score = m.sequence_score(&feats, &[1, 0]);
        assert!((score - (1.0 + 0.5 + 0.25 + 0.125)).abs() < 1e-12);
    }

    #[test]
    fn empty_sequence_scores_zero() {
        let m = CrfModel::new(1, 2);
        assert_eq!(m.sequence_score(&[], &[]), 0.0);
    }

    #[test]
    fn emission_scores_accumulate() {
        let mut m = CrfModel::new(2, 2);
        m.params[0] = 1.0; // (f0, l0)
        m.params[3] = 2.0; // (f1, l1)
        let mut out = vec![0.0; 2];
        m.emission_scores(&[0, 1], &mut out);
        assert_eq!(out, vec![1.0, 2.0]);
    }

    #[test]
    fn active_params_counts_nonzero() {
        let mut m = CrfModel::new(2, 2);
        assert_eq!(m.active_params(1e-9), 0);
        m.params[5] = 0.3;
        assert_eq!(m.active_params(1e-9), 1);
    }
}
