//! Limited-memory BFGS minimizer with backtracking line search.
//!
//! Generic over the objective via [`Objective`] (any
//! `FnMut(&[f64], &mut [f64]) -> f64` also qualifies). Used directly
//! for L2-regularized CRF training and as the inner engine of
//! [`crate::owlqn`] for L1.

use std::collections::VecDeque;
use std::time::Instant;

use crate::numeric::{axpy, dot, norm2};

/// A smooth objective whose value and gradient may be requested
/// separately, so the backtracking line search can skip gradient work
/// on rejected trial points entirely — the Armijo test consumes only
/// values, and the gradients of failed trials were always discarded.
///
/// The optimizers uphold one calling convention: [`Objective::grad`]
/// is only ever invoked with the `x` passed to the **most recent**
/// [`Objective::value`] call. Implementations may therefore cache
/// per-`x` intermediates (e.g. forward-pass quantities) in `value` and
/// finish them in `grad`.
pub trait Objective {
    /// Objective value at `x`.
    fn value(&mut self, x: &[f64]) -> f64;
    /// Gradient at `x` (always the argument of the latest `value`
    /// call), written into `grad`.
    fn grad(&mut self, x: &[f64], grad: &mut [f64]);
}

/// Any value-and-gradient closure is an [`Objective`]; `value` runs
/// the closure with a discarded gradient buffer. Deterministic
/// closures (all of ours) return identical values either way.
impl<F: FnMut(&[f64], &mut [f64]) -> f64> Objective for F {
    fn value(&mut self, x: &[f64]) -> f64 {
        let mut g = vec![0.0; x.len()];
        self(x, &mut g)
    }
    fn grad(&mut self, x: &[f64], grad: &mut [f64]) {
        self(x, grad);
    }
}

/// L-BFGS configuration.
#[derive(Debug, Clone)]
pub struct LbfgsConfig {
    /// History size (number of curvature pairs kept).
    pub history: usize,
    /// Maximum number of iterations.
    pub max_iters: usize,
    /// Convergence: stop when `||g|| / max(1, ||x||) < epsilon`.
    pub epsilon: f64,
    /// Maximum backtracking steps per line search.
    pub max_linesearch: usize,
    /// Armijo sufficient-decrease constant.
    pub armijo: f64,
}

impl Default for LbfgsConfig {
    fn default() -> Self {
        LbfgsConfig {
            history: 6,
            max_iters: 100,
            epsilon: 1e-5,
            max_linesearch: 30,
            armijo: 1e-4,
        }
    }
}

/// Result of a minimization run.
#[derive(Debug, Clone)]
pub struct LbfgsResult {
    /// Final point.
    pub x: Vec<f64>,
    /// Final objective value.
    pub value: f64,
    /// Iterations actually performed.
    pub iterations: usize,
    /// Whether the gradient-norm criterion was met.
    pub converged: bool,
    /// Wall time spent inside backtracking line searches, including
    /// the objective evaluations they perform.
    pub line_search_ns: u64,
}

/// Minimizes `f` starting from `x0`.
pub fn minimize<F: Objective>(mut f: F, x0: Vec<f64>, cfg: &LbfgsConfig) -> LbfgsResult {
    let n = x0.len();
    let mut x = x0;
    let mut g = vec![0.0; n];
    let mut value = f.value(&x);
    f.grad(&x, &mut g);

    let mut s_history: VecDeque<Vec<f64>> = VecDeque::new();
    let mut y_history: VecDeque<Vec<f64>> = VecDeque::new();
    let mut rho_history: VecDeque<f64> = VecDeque::new();

    let mut direction = vec![0.0; n];
    let mut x_new = vec![0.0; n];
    let mut g_new = vec![0.0; n];
    // Spare curvature-pair buffers: filled each iteration, swapped into
    // the history on acceptance, recycled from evicted entries.
    let mut spare_s = vec![0.0; n];
    let mut spare_y = vec![0.0; n];
    let mut ls_ns: u64 = 0;

    for iter in 0..cfg.max_iters {
        let gnorm = norm2(&g);
        if pae_obs::enabled() {
            pae_obs::observe_step("crf.lbfgs.grad_norm", iter, gnorm);
            pae_obs::observe_step("crf.lbfgs.nll", iter, value);
        }
        if gnorm / norm2(&x).max(1.0) < cfg.epsilon {
            return LbfgsResult {
                x,
                value,
                iterations: iter,
                converged: true,
                line_search_ns: ls_ns,
            };
        }

        two_loop(&g, &s_history, &y_history, &rho_history, &mut direction);
        for d in direction.iter_mut() {
            *d = -*d;
        }
        let mut dg = dot(&direction, &g);
        if dg >= 0.0 {
            // Not a descent direction (numerical breakdown): restart
            // from steepest descent.
            s_history.clear();
            y_history.clear();
            rho_history.clear();
            for (d, &gi) in direction.iter_mut().zip(&g) {
                *d = -gi;
            }
            dg = -gnorm * gnorm;
        }

        // Backtracking line search (Armijo). Trial points are
        // evaluated value-only; the gradient is completed once, at the
        // accepted point.
        let ls_start = Instant::now();
        let mut step = if iter == 0 { 1.0 / gnorm.max(1.0) } else { 1.0 };
        let mut success = false;
        let mut accepted = value;
        for _ in 0..cfg.max_linesearch {
            x_new.copy_from_slice(&x);
            axpy(step, &direction, &mut x_new);
            let v_new = f.value(&x_new);
            if v_new <= value + cfg.armijo * step * dg {
                accepted = v_new;
                success = true;
                break;
            }
            step *= 0.5;
        }
        if success {
            f.grad(&x_new, &mut g_new);
        }
        ls_ns += ls_start.elapsed().as_nanos() as u64;
        if !success {
            return LbfgsResult {
                x,
                value,
                iterations: iter,
                converged: false,
                line_search_ns: ls_ns,
            };
        }

        // Update history.
        for i in 0..n {
            spare_s[i] = x_new[i] - x[i];
            spare_y[i] = g_new[i] - g[i];
        }
        let ys = dot(&spare_y, &spare_s);
        if ys > 1e-10 {
            let (next_s, next_y) = if s_history.len() == cfg.history {
                // Recycle the evicted pair's allocations as the next
                // spares (eviction happens only when a pair is pushed,
                // exactly as before).
                rho_history.pop_front();
                (
                    s_history.pop_front().expect("history in sync"),
                    y_history.pop_front().expect("history in sync"),
                )
            } else {
                (vec![0.0; n], vec![0.0; n])
            };
            rho_history.push_back(1.0 / ys);
            s_history.push_back(std::mem::replace(&mut spare_s, next_s));
            y_history.push_back(std::mem::replace(&mut spare_y, next_y));
        }

        x.copy_from_slice(&x_new);
        g.copy_from_slice(&g_new);
        // The objective is deterministic, so the accepted line-search
        // evaluation already holds f(x) and ∇f(x) — no refresh call.
        value = accepted;
    }

    LbfgsResult {
        x,
        value,
        iterations: cfg.max_iters,
        converged: false,
        line_search_ns: ls_ns,
    }
}

/// Two-loop recursion: `out = H · g` where `H` approximates the inverse
/// Hessian from the stored curvature pairs.
pub(crate) fn two_loop(
    g: &[f64],
    s_history: &VecDeque<Vec<f64>>,
    y_history: &VecDeque<Vec<f64>>,
    rho_history: &VecDeque<f64>,
    out: &mut [f64],
) {
    out.copy_from_slice(g);
    let k = s_history.len();
    let mut alpha = vec![0.0; k];
    for i in (0..k).rev() {
        alpha[i] = rho_history[i] * dot(&s_history[i], out);
        axpy(-alpha[i], &y_history[i], out);
    }
    if k > 0 {
        let y = &y_history[k - 1];
        let s = &s_history[k - 1];
        let scale = dot(s, y) / dot(y, y).max(1e-12);
        for o in out.iter_mut() {
            *o *= scale;
        }
    }
    for i in 0..k {
        let beta = rho_history[i] * dot(&y_history[i], out);
        axpy(alpha[i] - beta, &s_history[i], out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimizes_quadratic() {
        // f(x) = (x0 - 3)^2 + 2 (x1 + 1)^2
        let f = |x: &[f64], g: &mut [f64]| {
            g[0] = 2.0 * (x[0] - 3.0);
            g[1] = 4.0 * (x[1] + 1.0);
            (x[0] - 3.0).powi(2) + 2.0 * (x[1] + 1.0).powi(2)
        };
        let res = minimize(f, vec![0.0, 0.0], &LbfgsConfig::default());
        assert!(res.converged);
        assert!((res.x[0] - 3.0).abs() < 1e-4, "{:?}", res.x);
        assert!((res.x[1] + 1.0).abs() < 1e-4, "{:?}", res.x);
    }

    #[test]
    fn minimizes_rosenbrock() {
        let f = |x: &[f64], g: &mut [f64]| {
            let (a, b) = (x[0], x[1]);
            g[0] = -400.0 * a * (b - a * a) - 2.0 * (1.0 - a);
            g[1] = 200.0 * (b - a * a);
            (1.0 - a).powi(2) + 100.0 * (b - a * a).powi(2)
        };
        let cfg = LbfgsConfig {
            max_iters: 500,
            epsilon: 1e-8,
            ..Default::default()
        };
        let res = minimize(f, vec![-1.2, 1.0], &cfg);
        assert!((res.x[0] - 1.0).abs() < 1e-3, "{:?}", res.x);
        assert!((res.x[1] - 1.0).abs() < 1e-3, "{:?}", res.x);
    }

    #[test]
    fn converges_immediately_at_optimum() {
        let f = |x: &[f64], g: &mut [f64]| {
            g[0] = 2.0 * x[0];
            x[0] * x[0]
        };
        let res = minimize(f, vec![0.0], &LbfgsConfig::default());
        assert!(res.converged);
        assert_eq!(res.iterations, 0);
    }

    #[test]
    fn zero_max_iters_returns_start_point() {
        let f = |x: &[f64], g: &mut [f64]| {
            g[0] = 2.0 * x[0];
            x[0] * x[0]
        };
        let cfg = LbfgsConfig {
            max_iters: 0,
            ..Default::default()
        };
        let res = minimize(f, vec![3.0], &cfg);
        assert_eq!(res.x, vec![3.0]);
        assert!(!res.converged);
        assert_eq!(res.iterations, 0);
    }

    #[test]
    fn high_dimensional_quadratic() {
        let n = 200;
        let f = |x: &[f64], g: &mut [f64]| {
            let mut v = 0.0;
            for i in 0..x.len() {
                let c = (i % 5 + 1) as f64;
                let d = x[i] - i as f64 / 100.0;
                g[i] = 2.0 * c * d;
                v += c * d * d;
            }
            v
        };
        let res = minimize(f, vec![0.0; n], &LbfgsConfig::default());
        assert!(res.converged, "iterations: {}", res.iterations);
        for i in 0..n {
            assert!((res.x[i] - i as f64 / 100.0).abs() < 1e-3);
        }
    }
}
