//! OWL-QN: Orthant-Wise Limited-memory Quasi-Newton.
//!
//! Minimizes `f(x) + c · ||x||₁` for a smooth `f` (Andrew & Gao, 2007).
//! This is how CRFsuite realizes the L1 part of its default L1+L2
//! regularization; the smooth part here is the CRF negative
//! log-likelihood plus the L2 term.

use std::collections::VecDeque;
use std::time::Instant;

use crate::lbfgs::{two_loop, LbfgsConfig, LbfgsResult, Objective};
use crate::numeric::{dot, norm1, norm2};

/// Minimizes `f(x) + c * ||x||_1`.
///
/// `f` is the *smooth* part only (value and gradient, see
/// [`Objective`]). Coordinates in `0..l1_start` are exempt from the L1
/// penalty when `l1_start > 0` is given — useful to keep transition
/// weights dense, mirroring common CRF practice; pass `0` to penalize
/// everything.
pub fn minimize_l1<F: Objective>(
    mut f: F,
    x0: Vec<f64>,
    c: f64,
    l1_from: usize,
    cfg: &LbfgsConfig,
) -> LbfgsResult {
    assert!(c >= 0.0, "l1 coefficient must be nonnegative");
    let n = x0.len();
    let penalized = |i: usize| i >= l1_from;

    let mut x = x0;
    let mut g = vec![0.0; n];
    let mut smooth = f.value(&x);
    f.grad(&x, &mut g);
    let mut value = smooth + c * l1_mass(&x, l1_from);

    let mut s_history: VecDeque<Vec<f64>> = VecDeque::new();
    let mut y_history: VecDeque<Vec<f64>> = VecDeque::new();
    let mut rho_history: VecDeque<f64> = VecDeque::new();

    let mut pg = vec![0.0; n]; // pseudo-gradient
    let mut dir = vec![0.0; n];
    let mut x_new = vec![0.0; n];
    let mut g_new = vec![0.0; n];
    let mut orthant = vec![0.0; n];
    // Spare curvature-pair buffers, recycled from evicted history.
    let mut spare_s = vec![0.0; n];
    let mut spare_y = vec![0.0; n];
    let mut ls_ns: u64 = 0;

    for iter in 0..cfg.max_iters {
        // Pseudo-gradient of f + c|x|.
        for i in 0..n {
            if !penalized(i) || c == 0.0 {
                pg[i] = g[i];
            } else if x[i] > 0.0 {
                pg[i] = g[i] + c;
            } else if x[i] < 0.0 {
                pg[i] = g[i] - c;
            } else if g[i] + c < 0.0 {
                pg[i] = g[i] + c;
            } else if g[i] - c > 0.0 {
                pg[i] = g[i] - c;
            } else {
                pg[i] = 0.0;
            }
        }
        let pgnorm = norm2(&pg);
        // Same metric names as the plain L-BFGS path: OWL-QN is the
        // default training route (l1 > 0), and downstream dashboards
        // should not care which inner loop produced the series.
        if pae_obs::enabled() {
            pae_obs::observe_step("crf.lbfgs.grad_norm", iter, pgnorm);
            pae_obs::observe_step("crf.lbfgs.nll", iter, value);
        }
        if pgnorm / norm2(&x).max(1.0) < cfg.epsilon {
            return LbfgsResult {
                x,
                value,
                iterations: iter,
                converged: true,
                line_search_ns: ls_ns,
            };
        }

        // Quasi-Newton direction from the pseudo-gradient, projected
        // onto the orthant of -pg.
        two_loop(&pg, &s_history, &y_history, &rho_history, &mut dir);
        for d in dir.iter_mut() {
            *d = -*d;
        }
        // Align the direction with the steepest-descent orthant: any
        // coordinate not opposing the pseudo-gradient is zeroed.
        for i in 0..n {
            if penalized(i) && dir[i] * pg[i] >= 0.0 {
                dir[i] = 0.0;
            }
        }
        let mut dg = dot(&dir, &pg);
        if dg >= 0.0 {
            s_history.clear();
            y_history.clear();
            rho_history.clear();
            for (d, &p) in dir.iter_mut().zip(&pg) {
                *d = -p;
            }
            dg = -pgnorm * pgnorm;
        }

        // Orthant for the projected line search: sign of x, or of -pg
        // where x is zero.
        for i in 0..n {
            orthant[i] = if !penalized(i) {
                0.0 // unconstrained coordinate
            } else if x[i] != 0.0 {
                x[i].signum()
            } else {
                -pg[i].signum()
            };
        }

        // Projected backtracking line search: trial points are
        // evaluated value-only; the gradient is completed once, at
        // the accepted point.
        let ls_start = Instant::now();
        let mut step = if iter == 0 {
            1.0 / pgnorm.max(1.0)
        } else {
            1.0
        };
        let mut success = false;
        let mut new_smooth = smooth;
        let mut new_value = value;
        for _ in 0..cfg.max_linesearch {
            for i in 0..n {
                let xi = x[i] + step * dir[i];
                x_new[i] = if penalized(i) && orthant[i] != 0.0 && xi * orthant[i] < 0.0 {
                    0.0 // crossed the orthant boundary: clip
                } else {
                    xi
                };
            }
            new_smooth = f.value(&x_new);
            new_value = new_smooth + c * l1_mass(&x_new, l1_from);
            if new_value <= value + cfg.armijo * step * dg {
                success = true;
                break;
            }
            step *= 0.5;
        }
        if success {
            f.grad(&x_new, &mut g_new);
        }
        ls_ns += ls_start.elapsed().as_nanos() as u64;
        if !success {
            return LbfgsResult {
                x,
                value,
                iterations: iter,
                converged: false,
                line_search_ns: ls_ns,
            };
        }

        for i in 0..n {
            spare_s[i] = x_new[i] - x[i];
            spare_y[i] = g_new[i] - g[i];
        }
        let ys = dot(&spare_y, &spare_s);
        if ys > 1e-10 {
            let (next_s, next_y) = if s_history.len() == cfg.history {
                rho_history.pop_front();
                (
                    s_history.pop_front().expect("history in sync"),
                    y_history.pop_front().expect("history in sync"),
                )
            } else {
                (vec![0.0; n], vec![0.0; n])
            };
            rho_history.push_back(1.0 / ys);
            s_history.push_back(std::mem::replace(&mut spare_s, next_s));
            y_history.push_back(std::mem::replace(&mut spare_y, next_y));
        }

        x.copy_from_slice(&x_new);
        g.copy_from_slice(&g_new);
        smooth = new_smooth;
        value = new_value;
    }

    LbfgsResult {
        x,
        value,
        iterations: cfg.max_iters,
        converged: false,
        line_search_ns: ls_ns,
    }
}

fn l1_mass(x: &[f64], l1_from: usize) -> f64 {
    norm1(&x[l1_from.min(x.len())..])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn soft_thresholding_behaviour() {
        // min (x - 1)^2 + c|x| has solution max(0, 1 - c/2).
        for &(c, expected) in &[(0.5, 0.75), (1.0, 0.5), (3.0, 0.0)] {
            let f = |x: &[f64], g: &mut [f64]| {
                g[0] = 2.0 * (x[0] - 1.0);
                (x[0] - 1.0).powi(2)
            };
            let res = minimize_l1(f, vec![0.0], c, 0, &LbfgsConfig::default());
            assert!(
                (res.x[0] - expected).abs() < 1e-4,
                "c={c}: got {} want {expected}",
                res.x[0]
            );
        }
    }

    #[test]
    fn produces_exact_zeros() {
        // Strong L1 on a weakly-pulled coordinate must zero it exactly.
        let f = |x: &[f64], g: &mut [f64]| {
            g[0] = 2.0 * (x[0] - 5.0);
            g[1] = 0.2 * (x[1] - 0.1);
            (x[0] - 5.0).powi(2) + 0.1 * (x[1] - 0.1).powi(2)
        };
        let res = minimize_l1(f, vec![1.0, 1.0], 0.5, 0, &LbfgsConfig::default());
        assert!((res.x[0] - 4.75).abs() < 1e-3, "{:?}", res.x);
        assert_eq!(res.x[1], 0.0, "{:?}", res.x);
    }

    #[test]
    fn exempt_prefix_is_unpenalized() {
        // Same objective but coordinate 0 exempt from L1.
        let f = |x: &[f64], g: &mut [f64]| {
            g[0] = 2.0 * (x[0] - 1.0);
            g[1] = 2.0 * (x[1] - 1.0);
            (x[0] - 1.0).powi(2) + (x[1] - 1.0).powi(2)
        };
        let res = minimize_l1(f, vec![0.0, 0.0], 1.0, 1, &LbfgsConfig::default());
        assert!((res.x[0] - 1.0).abs() < 1e-4, "{:?}", res.x);
        assert!((res.x[1] - 0.5).abs() < 1e-4, "{:?}", res.x);
    }

    #[test]
    fn zero_c_matches_lbfgs() {
        let f = |x: &[f64], g: &mut [f64]| {
            g[0] = 2.0 * (x[0] + 2.0);
            (x[0] + 2.0).powi(2)
        };
        let res = minimize_l1(f, vec![4.0], 0.0, 0, &LbfgsConfig::default());
        assert!((res.x[0] + 2.0).abs() < 1e-4);
    }
}
