//! Small numeric helpers shared by inference and the optimizers.

/// `log(sum(exp(xs)))` computed stably. Returns `-inf` for empty input.
pub fn log_sum_exp(xs: &[f64]) -> f64 {
    let max = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if !max.is_finite() {
        return max;
    }
    let sum: f64 = xs.iter().map(|&x| (x - max).exp()).sum();
    max + sum.ln()
}

/// Dot product.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// `y += alpha * x`.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    for (yi, &xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Euclidean norm.
pub fn norm2(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// L1 norm.
pub fn norm1(a: &[f64]) -> f64 {
    a.iter().map(|x| x.abs()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_sum_exp_matches_naive() {
        let xs: [f64; 3] = [0.1, -2.0, 3.5];
        let naive = xs.iter().map(|x| x.exp()).sum::<f64>().ln();
        assert!((log_sum_exp(&xs) - naive).abs() < 1e-12);
    }

    #[test]
    fn log_sum_exp_is_stable_for_large_values() {
        let xs = [1000.0, 1000.0];
        let got = log_sum_exp(&xs);
        assert!((got - (1000.0 + 2f64.ln())).abs() < 1e-9);
    }

    #[test]
    fn log_sum_exp_empty_is_neg_inf() {
        assert_eq!(log_sum_exp(&[]), f64::NEG_INFINITY);
    }

    #[test]
    fn vector_ops() {
        let a = [1.0, 2.0, 3.0];
        let mut b = [4.0, 5.0, 6.0];
        assert_eq!(dot(&a, &b), 32.0);
        axpy(2.0, &a, &mut b);
        assert_eq!(b, [6.0, 9.0, 12.0]);
        assert!((norm2(&[3.0, 4.0]) - 5.0).abs() < 1e-12);
        assert_eq!(norm1(&[-1.0, 2.0]), 3.0);
    }
}
