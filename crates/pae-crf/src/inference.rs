//! Log-space forward/backward, marginals, and Viterbi decoding.

// Dynamic-programming kernels read clearest with explicit indices.
#![allow(clippy::needless_range_loop)]

use crate::data::{FeatureSeq, LabelId};
use crate::model::{CrfModel, ParamsView};
use crate::numeric::log_sum_exp;

/// Forward pass result.
#[derive(Debug, Clone)]
pub struct Forward {
    /// `alpha[t][l]` = log sum of scores of prefixes ending at `t` with
    /// label `l` (includes the start weight and all emissions up to `t`).
    pub alpha: Vec<Vec<f64>>,
    /// Per-position emission scores (cached for reuse by backward).
    pub emissions: Vec<Vec<f64>>,
    /// Log-partition function `log Z` (includes end weights).
    pub log_z: f64,
}

/// Runs the forward algorithm in log space.
pub fn forward<S: FeatureSeq + ?Sized>(model: &CrfModel, features: &S) -> Forward {
    let view = model.view();
    let n = features.n_positions();
    let l = model.n_labels;
    let mut emissions = vec![vec![0.0; l]; n];
    for (t, em) in emissions.iter_mut().enumerate() {
        view.emission_scores(features.feats(t), em);
    }
    let mut alpha = vec![vec![f64::NEG_INFINITY; l]; n];
    if n == 0 {
        return Forward {
            alpha,
            emissions,
            log_z: 0.0,
        };
    }
    for y in 0..l {
        alpha[0][y] = view.start(y) + emissions[0][y];
    }
    let mut scratch = vec![0.0; l];
    for t in 1..n {
        for y in 0..l {
            for (p, s) in scratch.iter_mut().enumerate() {
                *s = alpha[t - 1][p] + view.transition(p, y);
            }
            alpha[t][y] = log_sum_exp(&scratch) + emissions[t][y];
        }
    }
    for (y, s) in scratch.iter_mut().enumerate() {
        *s = alpha[n - 1][y] + view.end(y);
    }
    let log_z = log_sum_exp(&scratch);
    Forward {
        alpha,
        emissions,
        log_z,
    }
}

/// Backward pass: `beta[t][l]` = log sum of scores of suffixes starting
/// after `t` given label `l` at `t` (includes the end weight, excludes
/// emission at `t`).
pub fn backward(model: &CrfModel, emissions: &[Vec<f64>]) -> Vec<Vec<f64>> {
    let view = model.view();
    let n = emissions.len();
    let l = model.n_labels;
    let mut beta = vec![vec![f64::NEG_INFINITY; l]; n];
    if n == 0 {
        return beta;
    }
    for y in 0..l {
        beta[n - 1][y] = view.end(y);
    }
    let mut scratch = vec![0.0; l];
    for t in (0..n - 1).rev() {
        for y in 0..l {
            for (q, s) in scratch.iter_mut().enumerate() {
                *s = view.transition(y, q) + emissions[t + 1][q] + beta[t + 1][q];
            }
            beta[t][y] = log_sum_exp(&scratch);
        }
    }
    beta
}

/// Posterior marginals over the sequence.
#[derive(Debug, Clone)]
pub struct Marginals {
    /// `node[t][l]` = P(y_t = l | x).
    pub node: Vec<Vec<f64>>,
    /// `edge[t][p][q]` = P(y_{t-1} = p, y_t = q | x), for t in `1..n`
    /// stored at index `t - 1`.
    pub edge: Vec<Vec<Vec<f64>>>,
    /// Log-partition function.
    pub log_z: f64,
}

/// Computes node and edge marginals via forward-backward.
pub fn marginals<S: FeatureSeq + ?Sized>(model: &CrfModel, features: &S) -> Marginals {
    let view = model.view();
    let fwd = forward(model, features);
    let beta = backward(model, &fwd.emissions);
    let n = features.n_positions();
    let l = model.n_labels;
    let mut node = vec![vec![0.0; l]; n];
    for t in 0..n {
        for y in 0..l {
            node[t][y] = (fwd.alpha[t][y] + beta[t][y] - fwd.log_z).exp();
        }
    }
    let mut edge = vec![vec![vec![0.0; l]; l]; n.saturating_sub(1)];
    for t in 1..n {
        for p in 0..l {
            for q in 0..l {
                let s =
                    fwd.alpha[t - 1][p] + view.transition(p, q) + fwd.emissions[t][q] + beta[t][q]
                        - fwd.log_z;
                edge[t - 1][p][q] = s.exp();
            }
        }
    }
    Marginals {
        node,
        edge,
        log_z: fwd.log_z,
    }
}

/// Reusable forward-backward workspace: every matrix the nested
/// [`marginals`] allocates per call, flattened and retained.
///
/// Layout (for a sequence of `n` positions and `l` labels):
/// `node[t*l + y]`, `edge[(t-1)*l*l + p*l + q]`, row-major, valid only
/// for the window written by the latest [`marginals_into`] call.
/// Buffers grow monotonically and are never shrunk; stale bytes beyond
/// the current window are garbage by design — callers must index only
/// within the window of the sequence they just processed.
#[derive(Debug, Clone, Default)]
pub struct MargScratch {
    emissions: Vec<f64>,
    alpha: Vec<f64>,
    beta: Vec<f64>,
    tmp: Vec<f64>,
    /// `P(y_t = y | x)` at `[t*l + y]`.
    pub node: Vec<f64>,
    /// `P(y_{t-1} = p, y_t = q | x)` at `[(t-1)*l*l + p*l + q]`.
    pub edge: Vec<f64>,
    /// Log-partition function of the latest sequence.
    pub log_z: f64,
}

/// Grows `v` to at least `n` elements (never shrinks).
fn ensure(v: &mut Vec<f64>, n: usize) {
    if v.len() < n {
        v.resize(n, 0.0);
    }
}

/// Forward pass into caller-provided buffers, returning `log Z`. The
/// flat-layout half of [`marginals_into`], exposed separately so a
/// line search can compute objective *values* (which need only `log Z`)
/// while caching `em`/`alpha` for a later [`MargScratch::finish`] at
/// the accepted point. `em` and `alpha` must hold at least `n·l`
/// elements, `tmp` at least `l`; arithmetic is bitwise-identical to
/// the forward section of the nested [`forward`].
pub fn forward_into<S: FeatureSeq + ?Sized>(
    view: ParamsView<'_>,
    features: &S,
    em: &mut [f64],
    alpha: &mut [f64],
    tmp: &mut [f64],
) -> f64 {
    let n = features.n_positions();
    let l = view.n_labels;
    if n == 0 {
        return 0.0;
    }
    let em = &mut em[..n * l];
    for t in 0..n {
        view.emission_scores(features.feats(t), &mut em[t * l..(t + 1) * l]);
    }
    let alpha = &mut alpha[..n * l];
    let tmp = &mut tmp[..l];
    for y in 0..l {
        alpha[y] = view.start(y) + em[y];
    }
    for t in 1..n {
        for y in 0..l {
            for (p, s) in tmp.iter_mut().enumerate() {
                *s = alpha[(t - 1) * l + p] + view.transition(p, y);
            }
            alpha[t * l + y] = log_sum_exp(tmp) + em[t * l + y];
        }
    }
    for (y, s) in tmp.iter_mut().enumerate() {
        *s = alpha[(n - 1) * l + y] + view.end(y);
    }
    log_sum_exp(tmp)
}

impl MargScratch {
    /// Backward pass + node/edge marginals for a sequence of `n`
    /// positions whose forward quantities (`em`, `alpha`, `log_z`)
    /// were already computed by [`forward_into`] — against the same
    /// `view`, or the marginals are garbage. Fills `node`/`edge` and
    /// sets `log_z`; bitwise-identical to the backward/marginal
    /// section of [`marginals_into`].
    pub fn finish(
        &mut self,
        view: ParamsView<'_>,
        n: usize,
        em: &[f64],
        alpha: &[f64],
        log_z: f64,
    ) {
        let l = view.n_labels;
        ensure(&mut self.beta, n * l);
        ensure(&mut self.tmp, l);
        ensure(&mut self.node, n * l);
        ensure(&mut self.edge, n.saturating_sub(1) * l * l);
        self.log_z = log_z;
        if n == 0 {
            return;
        }
        let em = &em[..n * l];
        let alpha = &alpha[..n * l];
        let tmp = &mut self.tmp[..l];
        let beta = &mut self.beta[..n * l];
        for y in 0..l {
            beta[(n - 1) * l + y] = view.end(y);
        }
        for t in (0..n - 1).rev() {
            for y in 0..l {
                for (q, s) in tmp.iter_mut().enumerate() {
                    *s = view.transition(y, q) + em[(t + 1) * l + q] + beta[(t + 1) * l + q];
                }
                beta[t * l + y] = log_sum_exp(tmp);
            }
        }

        let node = &mut self.node[..n * l];
        for t in 0..n {
            for y in 0..l {
                node[t * l + y] = (alpha[t * l + y] + beta[t * l + y] - log_z).exp();
            }
        }
        let edge = &mut self.edge[..n.saturating_sub(1) * l * l];
        for t in 1..n {
            for p in 0..l {
                for q in 0..l {
                    let s = alpha[(t - 1) * l + p]
                        + view.transition(p, q)
                        + em[t * l + q]
                        + beta[t * l + q]
                        - log_z;
                    edge[(t - 1) * l * l + p * l + q] = s.exp();
                }
            }
        }
    }
}

/// Forward-backward into a reusable [`MargScratch`] — the allocation-free
/// twin of [`marginals`], operating on any feature layout and a borrowed
/// parameter view. Bitwise-identical arithmetic: same loop orders, same
/// `log_sum_exp` reductions. Composed from [`forward_into`] +
/// [`MargScratch::finish`], which callers may also drive separately to
/// defer the backward/marginal work.
pub fn marginals_into<S: FeatureSeq + ?Sized>(
    view: ParamsView<'_>,
    features: &S,
    scratch: &mut MargScratch,
) {
    let n = features.n_positions();
    let l = view.n_labels;
    ensure(&mut scratch.emissions, n * l);
    ensure(&mut scratch.alpha, n * l);
    ensure(&mut scratch.tmp, l);
    // Move the forward buffers out so `finish` can borrow them
    // immutably alongside `&mut self` (they swap back below).
    let mut em = std::mem::take(&mut scratch.emissions);
    let mut alpha = std::mem::take(&mut scratch.alpha);
    let log_z = forward_into(view, features, &mut em, &mut alpha, &mut scratch.tmp);
    scratch.finish(view, n, &em, &alpha, log_z);
    scratch.emissions = em;
    scratch.alpha = alpha;
}

/// Viterbi decoding plus per-token posterior confidence: the decoded
/// label sequence and, for each position `t`, the forward–backward
/// marginal `P(y_t = ŷ_t | x)` of the decoded label.
///
/// The labels are exactly [`viterbi`]'s output; the confidences are a
/// read-only overlay (`exp(alpha[t][ŷ] + beta[t][ŷ] − log Z)`), so
/// scoring a decode can never change it. A confidence near 1 means the
/// whole posterior mass agrees with the Viterbi path at that token;
/// values near `1/n_labels` flag tokens the model was guessing on.
pub fn viterbi_with_confidence<S: FeatureSeq + ?Sized>(
    model: &CrfModel,
    features: &S,
) -> (Vec<LabelId>, Vec<f64>) {
    let labels = viterbi(model, features);
    if labels.is_empty() {
        return (labels, Vec::new());
    }
    let fwd = forward(model, features);
    let beta = backward(model, &fwd.emissions);
    let confidence = labels
        .iter()
        .enumerate()
        .map(|(t, &y)| (fwd.alpha[t][y] + beta[t][y] - fwd.log_z).exp())
        .collect();
    (labels, confidence)
}

/// Viterbi decoding: most probable label sequence.
pub fn viterbi<S: FeatureSeq + ?Sized>(model: &CrfModel, features: &S) -> Vec<LabelId> {
    let view = model.view();
    let n = features.n_positions();
    let l = model.n_labels;
    if n == 0 {
        return Vec::new();
    }
    let mut emission = vec![0.0; l];
    let mut delta = vec![vec![f64::NEG_INFINITY; l]; n];
    let mut back = vec![vec![0usize; l]; n];
    view.emission_scores(features.feats(0), &mut emission);
    for y in 0..l {
        delta[0][y] = view.start(y) + emission[y];
    }
    for t in 1..n {
        view.emission_scores(features.feats(t), &mut emission);
        for y in 0..l {
            let mut best = f64::NEG_INFINITY;
            let mut arg = 0;
            for p in 0..l {
                let s = delta[t - 1][p] + view.transition(p, y);
                if s > best {
                    best = s;
                    arg = p;
                }
            }
            delta[t][y] = best + emission[y];
            back[t][y] = arg;
        }
    }
    let mut last = 0;
    let mut best = f64::NEG_INFINITY;
    for y in 0..l {
        let s = delta[n - 1][y] + view.end(y);
        if s > best {
            best = s;
            last = y;
        }
    }
    let mut out = vec![0; n];
    let mut cur = last;
    for t in (0..n).rev() {
        out[t] = cur;
        cur = back[t][cur];
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{CsrInstances, FeatId, Instance};

    /// Model with 2 labels / 2 features and hand-set weights.
    fn toy_model() -> CrfModel {
        let mut m = CrfModel::new(2, 2);
        m.params[0] = 2.0; // f0 -> label 0
        m.params[3] = 2.0; // f1 -> label 1
        let t = m.trans_offset();
        m.params[t + 1] = 0.5; // 0 -> 1 preferred
        m
    }

    /// Brute-force log Z by enumerating all labellings.
    fn brute_log_z(m: &CrfModel, feats: &[Vec<FeatId>]) -> f64 {
        let n = feats.len();
        let l = m.n_labels;
        let mut scores = Vec::new();
        let total = l.pow(n as u32);
        for mut code in 0..total {
            let mut labels = Vec::with_capacity(n);
            for _ in 0..n {
                labels.push(code % l);
                code /= l;
            }
            scores.push(m.sequence_score(feats, &labels));
        }
        crate::numeric::log_sum_exp(&scores)
    }

    #[test]
    fn forward_log_z_matches_brute_force() {
        let m = toy_model();
        let feats = vec![vec![0], vec![1], vec![0, 1]];
        let fwd = forward(&m, &feats);
        let brute = brute_log_z(&m, &feats);
        assert!(
            (fwd.log_z - brute).abs() < 1e-10,
            "{} vs {brute}",
            fwd.log_z
        );
    }

    #[test]
    fn node_marginals_sum_to_one() {
        let m = toy_model();
        let feats = vec![vec![0], vec![], vec![1]];
        let marg = marginals(&m, &feats);
        for t in 0..feats.len() {
            let s: f64 = marg.node[t].iter().sum();
            assert!((s - 1.0).abs() < 1e-10);
        }
    }

    #[test]
    fn edge_marginals_are_consistent_with_nodes() {
        let m = toy_model();
        let feats = vec![vec![0], vec![1], vec![]];
        let marg = marginals(&m, &feats);
        // Sum over p of edge[t-1][p][q] equals node[t][q].
        for t in 1..feats.len() {
            for q in 0..2 {
                let s: f64 = (0..2).map(|p| marg.edge[t - 1][p][q]).sum();
                assert!((s - marg.node[t][q]).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn marginals_into_is_bitwise_identical_to_nested() {
        let m = toy_model();
        let instances = vec![
            Instance {
                features: vec![vec![0], vec![1], vec![0, 1], vec![]],
                labels: vec![0, 1, 0, 1],
            },
            Instance {
                features: vec![vec![1]],
                labels: vec![1],
            },
        ];
        let csr = CsrInstances::pack(&instances);
        let mut scratch = MargScratch::default();
        for (s, inst) in instances.iter().enumerate() {
            let nested = marginals(&m, &inst.features);
            // Reuse the same scratch across sequences of different
            // lengths — exactly the training access pattern.
            marginals_into(m.view(), &csr.seq(s), &mut scratch);
            assert_eq!(nested.log_z.to_bits(), scratch.log_z.to_bits());
            let l = m.n_labels;
            for t in 0..inst.len() {
                for y in 0..l {
                    assert_eq!(
                        nested.node[t][y].to_bits(),
                        scratch.node[t * l + y].to_bits(),
                        "node[{t}][{y}] of seq {s}"
                    );
                }
            }
            for t in 1..inst.len() {
                for p in 0..l {
                    for q in 0..l {
                        assert_eq!(
                            nested.edge[t - 1][p][q].to_bits(),
                            scratch.edge[(t - 1) * l * l + p * l + q].to_bits(),
                            "edge[{}][{p}][{q}] of seq {s}",
                            t - 1
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn viterbi_matches_brute_force_argmax() {
        let m = toy_model();
        let feats = vec![vec![0], vec![1], vec![0]];
        let got = viterbi(&m, &feats);

        let n = feats.len();
        let mut best_labels = vec![0; n];
        let mut best = f64::NEG_INFINITY;
        for code in 0..(2usize.pow(n as u32)) {
            let labels: Vec<usize> = (0..n).map(|i| (code >> i) & 1).collect();
            let s = m.sequence_score(&feats, &labels);
            if s > best {
                best = s;
                best_labels = labels;
            }
        }
        assert_eq!(got, best_labels);
    }

    #[test]
    fn decode_confidence_is_the_posterior_of_the_decoded_label() {
        let m = toy_model();
        let feats = vec![vec![0], vec![1], vec![0]];
        let (labels, confidence) = viterbi_with_confidence(&m, &feats);
        assert_eq!(labels, viterbi(&m, &feats), "decode unchanged by scoring");
        assert_eq!(confidence.len(), labels.len());
        let marg = marginals(&m, &feats);
        for (t, (&y, &c)) in labels.iter().zip(&confidence).enumerate() {
            assert!(c > 0.0 && c <= 1.0 + 1e-12, "conf[{t}] = {c}");
            assert!(
                (c - marg.node[t][y]).abs() < 1e-12,
                "conf[{t}] = {c} vs marginal {}",
                marg.node[t][y]
            );
        }
        let (empty_labels, empty_conf) = viterbi_with_confidence(&m, &[] as &[Vec<FeatId>]);
        assert!(empty_labels.is_empty() && empty_conf.is_empty());
    }

    #[test]
    fn empty_sequence_inference() {
        let m = toy_model();
        assert!(viterbi(&m, &[] as &[Vec<FeatId>]).is_empty());
        assert_eq!(forward(&m, &[] as &[Vec<FeatId>]).log_z, 0.0);
        let marg = marginals(&m, &[] as &[Vec<FeatId>]);
        assert!(marg.node.is_empty() && marg.edge.is_empty());
        let mut scratch = MargScratch::default();
        marginals_into(m.view(), &[] as &[Vec<FeatId>], &mut scratch);
        assert_eq!(scratch.log_z, 0.0);
    }

    #[test]
    fn transitions_influence_decode() {
        // Emissions are ambiguous; transitions must decide.
        let mut m = CrfModel::new(1, 2);
        let t = m.trans_offset();
        m.params[t] = -1.0; // discourage 0->0
        m.params[t + 1] = 1.0; // encourage 0->1
        m.params[t + 2] = 1.0; // encourage 1->0
        m.params[t + 3] = -1.0;
        let s = m.start_offset();
        m.params[s] = 0.1; // start at 0
        let feats = vec![vec![], vec![], vec![], vec![]];
        assert_eq!(viterbi(&m, &feats), vec![0, 1, 0, 1]);
    }
}
