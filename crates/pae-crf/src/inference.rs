//! Log-space forward/backward, marginals, and Viterbi decoding.

// Dynamic-programming kernels read clearest with explicit indices.
#![allow(clippy::needless_range_loop)]

use crate::data::{FeatId, LabelId};
use crate::model::CrfModel;
use crate::numeric::log_sum_exp;

/// Forward pass result.
#[derive(Debug, Clone)]
pub struct Forward {
    /// `alpha[t][l]` = log sum of scores of prefixes ending at `t` with
    /// label `l` (includes the start weight and all emissions up to `t`).
    pub alpha: Vec<Vec<f64>>,
    /// Per-position emission scores (cached for reuse by backward).
    pub emissions: Vec<Vec<f64>>,
    /// Log-partition function `log Z` (includes end weights).
    pub log_z: f64,
}

/// Runs the forward algorithm in log space.
pub fn forward(model: &CrfModel, features: &[Vec<FeatId>]) -> Forward {
    let n = features.len();
    let l = model.n_labels;
    let mut emissions = vec![vec![0.0; l]; n];
    for (t, feats) in features.iter().enumerate() {
        model.emission_scores(feats, &mut emissions[t]);
    }
    let mut alpha = vec![vec![f64::NEG_INFINITY; l]; n];
    if n == 0 {
        return Forward {
            alpha,
            emissions,
            log_z: 0.0,
        };
    }
    for y in 0..l {
        alpha[0][y] = model.start(y) + emissions[0][y];
    }
    let mut scratch = vec![0.0; l];
    for t in 1..n {
        for y in 0..l {
            for (p, s) in scratch.iter_mut().enumerate() {
                *s = alpha[t - 1][p] + model.transition(p, y);
            }
            alpha[t][y] = log_sum_exp(&scratch) + emissions[t][y];
        }
    }
    for (y, s) in scratch.iter_mut().enumerate() {
        *s = alpha[n - 1][y] + model.end(y);
    }
    let log_z = log_sum_exp(&scratch);
    Forward {
        alpha,
        emissions,
        log_z,
    }
}

/// Backward pass: `beta[t][l]` = log sum of scores of suffixes starting
/// after `t` given label `l` at `t` (includes the end weight, excludes
/// emission at `t`).
pub fn backward(model: &CrfModel, emissions: &[Vec<f64>]) -> Vec<Vec<f64>> {
    let n = emissions.len();
    let l = model.n_labels;
    let mut beta = vec![vec![f64::NEG_INFINITY; l]; n];
    if n == 0 {
        return beta;
    }
    for y in 0..l {
        beta[n - 1][y] = model.end(y);
    }
    let mut scratch = vec![0.0; l];
    for t in (0..n - 1).rev() {
        for y in 0..l {
            for (q, s) in scratch.iter_mut().enumerate() {
                *s = model.transition(y, q) + emissions[t + 1][q] + beta[t + 1][q];
            }
            beta[t][y] = log_sum_exp(&scratch);
        }
    }
    beta
}

/// Posterior marginals over the sequence.
#[derive(Debug, Clone)]
pub struct Marginals {
    /// `node[t][l]` = P(y_t = l | x).
    pub node: Vec<Vec<f64>>,
    /// `edge[t][p][q]` = P(y_{t-1} = p, y_t = q | x), for t in `1..n`
    /// stored at index `t - 1`.
    pub edge: Vec<Vec<Vec<f64>>>,
    /// Log-partition function.
    pub log_z: f64,
}

/// Computes node and edge marginals via forward-backward.
pub fn marginals(model: &CrfModel, features: &[Vec<FeatId>]) -> Marginals {
    let fwd = forward(model, features);
    let beta = backward(model, &fwd.emissions);
    let n = features.len();
    let l = model.n_labels;
    let mut node = vec![vec![0.0; l]; n];
    for t in 0..n {
        for y in 0..l {
            node[t][y] = (fwd.alpha[t][y] + beta[t][y] - fwd.log_z).exp();
        }
    }
    let mut edge = vec![vec![vec![0.0; l]; l]; n.saturating_sub(1)];
    for t in 1..n {
        for p in 0..l {
            for q in 0..l {
                let s =
                    fwd.alpha[t - 1][p] + model.transition(p, q) + fwd.emissions[t][q] + beta[t][q]
                        - fwd.log_z;
                edge[t - 1][p][q] = s.exp();
            }
        }
    }
    Marginals {
        node,
        edge,
        log_z: fwd.log_z,
    }
}

/// Viterbi decoding: most probable label sequence.
pub fn viterbi(model: &CrfModel, features: &[Vec<FeatId>]) -> Vec<LabelId> {
    let n = features.len();
    let l = model.n_labels;
    if n == 0 {
        return Vec::new();
    }
    let mut emission = vec![0.0; l];
    let mut delta = vec![vec![f64::NEG_INFINITY; l]; n];
    let mut back = vec![vec![0usize; l]; n];
    model.emission_scores(&features[0], &mut emission);
    for y in 0..l {
        delta[0][y] = model.start(y) + emission[y];
    }
    for t in 1..n {
        model.emission_scores(&features[t], &mut emission);
        for y in 0..l {
            let mut best = f64::NEG_INFINITY;
            let mut arg = 0;
            for p in 0..l {
                let s = delta[t - 1][p] + model.transition(p, y);
                if s > best {
                    best = s;
                    arg = p;
                }
            }
            delta[t][y] = best + emission[y];
            back[t][y] = arg;
        }
    }
    let mut last = 0;
    let mut best = f64::NEG_INFINITY;
    for y in 0..l {
        let s = delta[n - 1][y] + model.end(y);
        if s > best {
            best = s;
            last = y;
        }
    }
    let mut out = vec![0; n];
    let mut cur = last;
    for t in (0..n).rev() {
        out[t] = cur;
        cur = back[t][cur];
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Model with 2 labels / 2 features and hand-set weights.
    fn toy_model() -> CrfModel {
        let mut m = CrfModel::new(2, 2);
        m.params[0] = 2.0; // f0 -> label 0
        m.params[3] = 2.0; // f1 -> label 1
        let t = m.trans_offset();
        m.params[t + 1] = 0.5; // 0 -> 1 preferred
        m
    }

    /// Brute-force log Z by enumerating all labellings.
    fn brute_log_z(m: &CrfModel, feats: &[Vec<FeatId>]) -> f64 {
        let n = feats.len();
        let l = m.n_labels;
        let mut scores = Vec::new();
        let total = l.pow(n as u32);
        for mut code in 0..total {
            let mut labels = Vec::with_capacity(n);
            for _ in 0..n {
                labels.push(code % l);
                code /= l;
            }
            scores.push(m.sequence_score(feats, &labels));
        }
        crate::numeric::log_sum_exp(&scores)
    }

    #[test]
    fn forward_log_z_matches_brute_force() {
        let m = toy_model();
        let feats = vec![vec![0], vec![1], vec![0, 1]];
        let fwd = forward(&m, &feats);
        let brute = brute_log_z(&m, &feats);
        assert!(
            (fwd.log_z - brute).abs() < 1e-10,
            "{} vs {brute}",
            fwd.log_z
        );
    }

    #[test]
    fn node_marginals_sum_to_one() {
        let m = toy_model();
        let feats = vec![vec![0], vec![], vec![1]];
        let marg = marginals(&m, &feats);
        for t in 0..feats.len() {
            let s: f64 = marg.node[t].iter().sum();
            assert!((s - 1.0).abs() < 1e-10);
        }
    }

    #[test]
    fn edge_marginals_are_consistent_with_nodes() {
        let m = toy_model();
        let feats = vec![vec![0], vec![1], vec![]];
        let marg = marginals(&m, &feats);
        // Sum over p of edge[t-1][p][q] equals node[t][q].
        for t in 1..feats.len() {
            for q in 0..2 {
                let s: f64 = (0..2).map(|p| marg.edge[t - 1][p][q]).sum();
                assert!((s - marg.node[t][q]).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn viterbi_matches_brute_force_argmax() {
        let m = toy_model();
        let feats = vec![vec![0], vec![1], vec![0]];
        let got = viterbi(&m, &feats);

        let n = feats.len();
        let mut best_labels = vec![0; n];
        let mut best = f64::NEG_INFINITY;
        for code in 0..(2usize.pow(n as u32)) {
            let labels: Vec<usize> = (0..n).map(|i| (code >> i) & 1).collect();
            let s = m.sequence_score(&feats, &labels);
            if s > best {
                best = s;
                best_labels = labels;
            }
        }
        assert_eq!(got, best_labels);
    }

    #[test]
    fn empty_sequence_inference() {
        let m = toy_model();
        assert!(viterbi(&m, &[]).is_empty());
        assert_eq!(forward(&m, &[]).log_z, 0.0);
        let marg = marginals(&m, &[]);
        assert!(marg.node.is_empty() && marg.edge.is_empty());
    }

    #[test]
    fn transitions_influence_decode() {
        // Emissions are ambiguous; transitions must decide.
        let mut m = CrfModel::new(1, 2);
        let t = m.trans_offset();
        m.params[t] = -1.0; // discourage 0->0
        m.params[t + 1] = 1.0; // encourage 0->1
        m.params[t + 2] = 1.0; // encourage 1->0
        m.params[t + 3] = -1.0;
        let s = m.start_offset();
        m.params[s] = 0.1; // start at 0
        let feats = vec![vec![], vec![], vec![], vec![]];
        assert_eq!(viterbi(&m, &feats), vec![0, 1, 0, 1]);
    }
}
