//! Training: negative log-likelihood objective and the `train` entry point.
//!
//! The hot path is [`TrainEngine`]: a CSR-packed, scratch-reusing,
//! sparsity-aware gradient evaluator that the optimizer calls a few
//! hundred times per training run. The engine allocates everything it
//! needs once, at construction; steady-state evaluations perform no
//! heap allocation. The nested-layout free function [`nll_and_grad`]
//! is kept as the reference implementation the engine is tested
//! against (bitwise).

#![allow(clippy::needless_range_loop)]

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use crate::data::{CsrInstances, CsrSeq, FeatId, Instance};
use crate::inference::{forward_into, marginals, marginals_into, MargScratch};
use crate::lbfgs::{minimize, LbfgsConfig, Objective};
use crate::model::{CrfModel, ParamsView};
use crate::owlqn::minimize_l1;

/// Training configuration.
///
/// The defaults mirror the paper's setup: *"CRF with limited-memory
/// BFGS training algorithm with L1+L2 regularization, the default
/// configuration"* (CRFsuite's `lbfgs` trainer).
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// L1 coefficient (`c1`). When positive, training uses OWL-QN.
    pub l1: f64,
    /// L2 coefficient (`c2`): value term `0.5 · l2 · ‖w‖²`.
    pub l2: f64,
    /// Maximum optimizer iterations.
    pub max_iters: usize,
    /// Relative gradient-norm convergence threshold.
    pub epsilon: f64,
    /// Exempt transition/start/end weights from the L1 penalty, keeping
    /// the label chain dense (observation features stay sparse).
    pub dense_transitions: bool,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            l1: 0.1,
            l2: 0.1,
            max_iters: 100,
            epsilon: 1e-4,
            dense_transitions: false,
        }
    }
}

/// Fixed chunk count for the gradient reduction. A constant (never the
/// thread count) so the partition — and therefore the floating-point
/// summation order — is identical at any `PAE_JOBS` value.
const GRAD_CHUNKS: usize = 16;

thread_local! {
    /// Per-thread override installed by [`with_dense_grad`].
    static DENSE_GRAD_OVERRIDE: Cell<Option<bool>> = const { Cell::new(None) };
}

/// Whether new [`TrainEngine`]s use the legacy dense gradient fold:
/// the thread-local override from [`with_dense_grad`] when set, else
/// the `PAE_CRF_DENSE_GRAD` environment variable (`1` or `true`).
pub fn dense_grad_enabled() -> bool {
    if let Some(on) = DENSE_GRAD_OVERRIDE.with(Cell::get) {
        return on;
    }
    matches!(
        std::env::var("PAE_CRF_DENSE_GRAD").as_deref(),
        Ok("1") | Ok("true")
    )
}

/// Runs `f` with the legacy dense gradient fold forced on (or off) for
/// engines constructed on this thread. This is the A/B hook the
/// determinism suite uses to prove the sparse fold is byte-identical;
/// the dense path is scheduled for removal after one release.
pub fn with_dense_grad<R>(on: bool, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<bool>);
    impl Drop for Restore {
        fn drop(&mut self) {
            let prev = self.0;
            DENSE_GRAD_OVERRIDE.with(|c| c.set(prev));
        }
    }
    let _guard = Restore(DENSE_GRAD_OVERRIDE.with(|c| c.replace(Some(on))));
    f()
}

/// Computes the total negative log-likelihood of `instances` under the
/// parameters in `model`, filling `grad` (which must be zeroed by the
/// caller) with its gradient. Regularization is *not* included.
///
/// Reference implementation over the nested layout; training goes
/// through [`TrainEngine`], which is tested bitwise against this.
pub fn nll_and_grad(model: &CrfModel, instances: &[Instance], grad: &mut [f64]) -> f64 {
    debug_assert_eq!(grad.len(), model.params.len());
    let dim = grad.len();
    let partials = pae_runtime::parallel_chunk_map(instances, GRAD_CHUNKS, |chunk| {
        let mut part = vec![0.0; dim];
        let mut nll = 0.0;
        for inst in chunk {
            nll += instance_nll_and_grad(model, inst, &mut part);
        }
        (nll, part)
    });
    let mut nll = 0.0;
    for (part_nll, part_grad) in partials {
        nll += part_nll;
        for (g, p) in grad.iter_mut().zip(&part_grad) {
            *g += p;
        }
    }
    nll
}

/// One instance's NLL contribution, accumulated into `grad`.
fn instance_nll_and_grad(model: &CrfModel, inst: &Instance, grad: &mut [f64]) -> f64 {
    let l = model.n_labels;
    let trans_off = model.trans_offset();
    let start_off = model.start_offset();
    let end_off = model.end_offset();
    if inst.is_empty() {
        return 0.0;
    }
    let marg = marginals(model, &inst.features);
    let gold_score = model.sequence_score(&inst.features, &inst.labels);
    let nll = marg.log_z - gold_score;

    let n = inst.len();
    // Empirical counts: subtract.
    for (t, feats) in inst.features.iter().enumerate() {
        let y = inst.labels[t];
        for &f in feats {
            grad[f as usize * l + y] -= 1.0;
        }
    }
    grad[start_off + inst.labels[0]] -= 1.0;
    grad[end_off + inst.labels[n - 1]] -= 1.0;
    for t in 1..n {
        grad[trans_off + inst.labels[t - 1] * l + inst.labels[t]] -= 1.0;
    }

    // Expected counts: add.
    for (t, feats) in inst.features.iter().enumerate() {
        for &f in feats {
            let base = f as usize * l;
            for y in 0..l {
                grad[base + y] += marg.node[t][y];
            }
        }
    }
    for y in 0..l {
        grad[start_off + y] += marg.node[0][y];
        grad[end_off + y] += marg.node[n - 1][y];
    }
    for t in 1..n {
        let e = &marg.edge[t - 1];
        for p in 0..l {
            let row = trans_off + p * l;
            for q in 0..l {
                grad[row + q] += e[p][q];
            }
        }
    }
    nll
}

/// Flat-layout twin of [`instance_nll_and_grad`]: same arithmetic in
/// the same order, over a packed sequence and a reusable
/// forward-backward workspace.
fn instance_nll_and_grad_flat(
    view: ParamsView<'_>,
    seq: &CsrSeq<'_>,
    marg: &mut MargScratch,
    grad: &mut [f64],
) -> f64 {
    if seq.is_empty() {
        return 0.0;
    }
    marginals_into(view, seq, marg);
    let gold_score = view.sequence_score(seq, seq.labels);
    let nll = marg.log_z - gold_score;
    accumulate_instance_grad(view, seq, marg, grad);
    nll
}

/// The gradient-accumulation half of [`instance_nll_and_grad_flat`]:
/// empirical counts subtracted, expected counts added, from marginals
/// already present in `marg`. Split out so the value/completion
/// protocol of [`TrainEngine`] can run it against marginals finished
/// from a cached forward pass.
fn accumulate_instance_grad(
    view: ParamsView<'_>,
    seq: &CsrSeq<'_>,
    marg: &MargScratch,
    grad: &mut [f64],
) {
    let l = view.n_labels;
    let trans_off = view.trans_offset();
    let start_off = view.start_offset();
    let end_off = view.end_offset();
    let n = seq.len();
    // Empirical counts: subtract.
    for (t, &y) in seq.labels.iter().enumerate() {
        for &f in seq.feats(t) {
            grad[f as usize * l + y] -= 1.0;
        }
    }
    grad[start_off + seq.labels[0]] -= 1.0;
    grad[end_off + seq.labels[n - 1]] -= 1.0;
    for t in 1..n {
        grad[trans_off + seq.labels[t - 1] * l + seq.labels[t]] -= 1.0;
    }

    // Expected counts: add.
    for t in 0..n {
        for &f in seq.feats(t) {
            let base = f as usize * l;
            for y in 0..l {
                grad[base + y] += marg.node[t * l + y];
            }
        }
    }
    for y in 0..l {
        grad[start_off + y] += marg.node[y];
        grad[end_off + y] += marg.node[(n - 1) * l + y];
    }
    for t in 1..n {
        let e = &marg.edge[(t - 1) * l * l..t * l * l];
        for p in 0..l {
            let row = trans_off + p * l;
            for q in 0..l {
                grad[row + q] += e[p * l + q];
            }
        }
    }
}

/// Per-chunk reusable state: the partial-gradient buffer and the
/// forward-backward workspace, both retained across every objective
/// evaluation of a training run — plus the forward-pass cache that
/// carries `em`/`alpha`/`log Z` for every sequence of the chunk from
/// a [`TrainEngine::nll_value`] call to the matching
/// [`TrainEngine::complete_grad`].
#[derive(Default)]
struct ChunkScratch {
    part: Vec<f64>,
    marg: MargScratch,
    /// Emission scores of all chunk positions (`(pos - base)·l + y`).
    fwd_em: Vec<f64>,
    /// Forward variables, same indexing as `fwd_em`.
    fwd_alpha: Vec<f64>,
    /// `log Z` per chunk-local sequence.
    log_z: Vec<f64>,
    /// `l`-sized reduction buffer for the forward recursion.
    tmp: Vec<f64>,
}

/// Allocation-free, sparsity-aware NLL + gradient evaluator.
///
/// Construction packs the instances into CSR, fixes the 16-chunk
/// partition, and precomputes per chunk the set of observation-feature
/// rows its instances touch — a property of the *data*, so it is
/// constant across all optimizer iterations. Evaluations then:
///
/// 1. map chunks on the worker pool, each reusing its [`ChunkScratch`]
///    slot (zeroing only its own touched rows + the dense
///    transition/start/end suffix);
/// 2. fold partials into `grad` sequentially in chunk order, visiting
///    only touched rows — the first chunk to touch a row assigns, the
///    rest add, which is bitwise-identical to the dense
///    `0.0 + p₀ + p₁ + …` fold because partials are never `-0.0`
///    (they start at `+0.0` and accumulate sums that cannot round to
///    a negative zero).
///
/// Gradient coordinates for feature rows no chunk touches are zeroed
/// once (first call) and never written again; callers layering
/// regularization on top must keep them at exactly zero (the `l2·w`
/// term does: those weights start at zero and, with zero gradient,
/// stay there under both L-BFGS and OWL-QN).
pub struct TrainEngine {
    csr: CsrInstances,
    n_features: usize,
    n_labels: usize,
    dim: usize,
    trans_offset: usize,
    chunks: Vec<std::ops::Range<usize>>,
    /// Per chunk: touched observation-feature rows in ascending order,
    /// flagged `true` when this chunk is the first (in chunk order) to
    /// touch the row.
    chunk_rows: Vec<Vec<(FeatId, bool)>>,
    scratch: pae_runtime::Scratch<ChunkScratch>,
    dense: bool,
    zeroed_once: AtomicBool,
}

impl TrainEngine {
    /// Builds an engine over `instances`, honoring the dense-fold
    /// toggle ([`dense_grad_enabled`]) read on the calling thread.
    pub fn new(instances: &[Instance], n_features: usize, n_labels: usize) -> Self {
        Self::with_dense_fold(instances, n_features, n_labels, dense_grad_enabled())
    }

    /// Builds an engine with an explicit fold mode (`dense = true`
    /// reproduces the legacy per-call-allocating dense fold).
    pub fn with_dense_fold(
        instances: &[Instance],
        n_features: usize,
        n_labels: usize,
        dense: bool,
    ) -> Self {
        let csr = CsrInstances::pack(instances);
        let chunks = pae_runtime::chunk_ranges(csr.len(), GRAD_CHUNKS);
        let mut chunk_rows = Vec::with_capacity(chunks.len());
        let mut in_chunk = vec![false; n_features];
        let mut seen = vec![false; n_features];
        for range in &chunks {
            for s in range.clone() {
                let seq = csr.seq(s);
                for t in 0..seq.len() {
                    for &f in seq.feats(t) {
                        in_chunk[f as usize] = true;
                    }
                }
            }
            let mut rows = Vec::new();
            for (f, flag) in in_chunk.iter_mut().enumerate() {
                if *flag {
                    *flag = false;
                    rows.push((f as FeatId, !seen[f]));
                    seen[f] = true;
                }
            }
            chunk_rows.push(rows);
        }
        let scratch = pae_runtime::Scratch::new(chunks.len());
        TrainEngine {
            csr,
            n_features,
            n_labels,
            dim: CrfModel::param_len(n_features, n_labels),
            trans_offset: n_features * n_labels,
            chunks,
            chunk_rows,
            scratch,
            dense,
            zeroed_once: AtomicBool::new(false),
        }
    }

    /// Total parameter count of the model being trained.
    pub fn n_params(&self) -> usize {
        self.dim
    }

    /// Whether this engine runs the legacy dense fold.
    pub fn is_dense(&self) -> bool {
        self.dense
    }

    /// NLL of the training set at `params`, writing the gradient into
    /// `grad` (fully managed by the engine — callers need not zero it).
    /// Regularization is *not* included. In sparse mode this composes
    /// [`Self::nll_value`] + [`Self::complete_grad`], the engine's
    /// only gradient implementation.
    pub fn nll_and_grad(&self, params: &[f64], grad: &mut [f64]) -> f64 {
        debug_assert_eq!(params.len(), self.dim);
        debug_assert_eq!(grad.len(), self.dim);
        if self.chunks.is_empty() {
            grad.fill(0.0);
            return 0.0;
        }
        if self.dense {
            let view = ParamsView::new(params, self.n_features, self.n_labels);
            return self.nll_and_grad_dense(view, grad);
        }
        let nll = self.nll_value(params);
        self.complete_grad(params, grad);
        nll
    }

    /// NLL of the training set at `params`, *without* the gradient:
    /// one forward pass per sequence, cached (`em`/`alpha`/`log Z`)
    /// in the per-chunk scratch so a subsequent [`Self::complete_grad`]
    /// at the same `params` finishes backward + accumulation without
    /// re-running forward. This is what makes rejected line-search
    /// trials cheap: their gradients were always discarded, and now
    /// their backward passes are never run. Sparse mode only.
    pub fn nll_value(&self, params: &[f64]) -> f64 {
        debug_assert_eq!(params.len(), self.dim);
        debug_assert!(!self.dense, "nll_value is the sparse-mode protocol");
        let view = ParamsView::new(params, self.n_features, self.n_labels);
        if self.chunks.is_empty() {
            return 0.0;
        }
        let l = self.n_labels;
        let (csr, scratch) = (&self.csr, &self.scratch);
        let nlls = pae_runtime::parallel_map(&self.chunks, |ci, range| {
            scratch.with(ci, ChunkScratch::default, |sc| {
                let Some(first) = range.clone().next() else {
                    return 0.0;
                };
                let base = csr.seq_positions(first).start;
                let span = csr.seq_positions(range.end - 1).end - base;
                if sc.fwd_em.len() < span * l {
                    sc.fwd_em.resize(span * l, 0.0);
                    sc.fwd_alpha.resize(span * l, 0.0);
                }
                if sc.log_z.len() < range.len() {
                    sc.log_z.resize(range.len(), 0.0);
                }
                if sc.tmp.len() < l {
                    sc.tmp.resize(l, 0.0);
                }
                let mut nll = 0.0;
                for (i, s) in range.clone().enumerate() {
                    let seq = csr.seq(s);
                    if seq.is_empty() {
                        sc.log_z[i] = 0.0;
                        continue;
                    }
                    let off = (csr.seq_positions(s).start - base) * l;
                    let len = seq.len() * l;
                    let lz = forward_into(
                        view,
                        &seq,
                        &mut sc.fwd_em[off..off + len],
                        &mut sc.fwd_alpha[off..off + len],
                        &mut sc.tmp,
                    );
                    sc.log_z[i] = lz;
                    nll += lz - view.sequence_score(&seq, seq.labels);
                }
                nll
            })
        });
        // Same in-chunk-order value fold as the combined evaluation.
        let mut nll = 0.0;
        for part_nll in nlls {
            nll += part_nll;
        }
        nll
    }

    /// Gradient completion for the latest [`Self::nll_value`] call:
    /// backward + marginals from the cached forward quantities, then
    /// the sparse accumulation/fold. `params` must be the vector the
    /// value was computed at, or the marginals are inconsistent.
    /// Sparse mode only.
    pub fn complete_grad(&self, params: &[f64], grad: &mut [f64]) {
        debug_assert_eq!(params.len(), self.dim);
        debug_assert_eq!(grad.len(), self.dim);
        debug_assert!(!self.dense, "complete_grad is the sparse-mode protocol");
        let view = ParamsView::new(params, self.n_features, self.n_labels);
        if self.chunks.is_empty() {
            grad.fill(0.0);
            return;
        }
        if !self.zeroed_once.swap(true, Ordering::Relaxed) {
            // Rows no chunk touches are never written by the fold
            // below; zero them once so they read as exactly 0.0 on
            // every call.
            grad.fill(0.0);
        }
        let l = self.n_labels;
        let trans_offset = self.trans_offset;
        let (csr, chunk_rows, scratch) = (&self.csr, &self.chunk_rows, &self.scratch);
        let dim = self.dim;
        pae_runtime::parallel_map(&self.chunks, |ci, range| {
            scratch.with(ci, ChunkScratch::default, |sc| {
                let ChunkScratch {
                    part,
                    marg,
                    fwd_em,
                    fwd_alpha,
                    log_z,
                    ..
                } = sc;
                if part.len() != dim {
                    *part = vec![0.0; dim];
                } else {
                    // Steady state: zero only what this chunk writes.
                    for &(row, _) in &chunk_rows[ci] {
                        let o = row as usize * l;
                        part[o..o + l].fill(0.0);
                    }
                    part[trans_offset..].fill(0.0);
                }
                let Some(first) = range.clone().next() else {
                    return;
                };
                let base = csr.seq_positions(first).start;
                for (i, s) in range.clone().enumerate() {
                    let seq = csr.seq(s);
                    if seq.is_empty() {
                        continue;
                    }
                    let off = (csr.seq_positions(s).start - base) * l;
                    let len = seq.len() * l;
                    marg.finish(
                        view,
                        seq.len(),
                        &fwd_em[off..off + len],
                        &fwd_alpha[off..off + len],
                        log_z[i],
                    );
                    accumulate_instance_grad(view, &seq, marg, part);
                }
            })
        });
        // Sequential fold in fixed chunk order: assign on first touch,
        // add thereafter.
        for ci in 0..self.chunks.len() {
            self.scratch.with(ci, ChunkScratch::default, |sc| {
                for &(row, first) in &self.chunk_rows[ci] {
                    let o = row as usize * l;
                    let src = &sc.part[o..o + l];
                    let dst = &mut grad[o..o + l];
                    if first {
                        dst.copy_from_slice(src);
                    } else {
                        for (d, s) in dst.iter_mut().zip(src) {
                            *d += s;
                        }
                    }
                }
                let src = &sc.part[trans_offset..];
                let dst = &mut grad[trans_offset..];
                if ci == 0 {
                    dst.copy_from_slice(src);
                } else {
                    for (d, s) in dst.iter_mut().zip(src) {
                        *d += s;
                    }
                }
            });
        }
    }

    /// Legacy dense fold: fresh zero-filled partials per call, every
    /// coordinate folded. Kept (for one release) as the A/B baseline
    /// the determinism suite compares the sparse fold against.
    fn nll_and_grad_dense(&self, view: ParamsView<'_>, grad: &mut [f64]) -> f64 {
        grad.fill(0.0);
        let dim = self.dim;
        let (csr, scratch) = (&self.csr, &self.scratch);
        let partials = pae_runtime::parallel_map(&self.chunks, |ci, range| {
            let mut part = vec![0.0; dim];
            let mut nll = 0.0;
            scratch.with(ci, ChunkScratch::default, |sc| {
                for s in range.clone() {
                    nll += instance_nll_and_grad_flat(view, &csr.seq(s), &mut sc.marg, &mut part);
                }
            });
            (nll, part)
        });
        let mut nll = 0.0;
        for (part_nll, part_grad) in partials {
            nll += part_nll;
            for (g, p) in grad.iter_mut().zip(&part_grad) {
                *g += p;
            }
        }
        nll
    }
}

/// Wall-clock accounting of a training run (telemetry only — never
/// feeds back into results).
#[derive(Debug, Clone, Copy, Default)]
pub struct TrainStats {
    /// Optimizer iterations performed.
    pub iterations: usize,
    /// Whether the gradient-norm criterion was met.
    pub converged: bool,
    /// Final objective value.
    pub final_value: f64,
    /// Total time in objective/gradient evaluations ([`TrainEngine`] +
    /// regularization terms).
    pub grad_time: Duration,
    /// Number of objective evaluations.
    pub grad_calls: usize,
    /// Total time inside the optimizer's backtracking line searches
    /// (includes the gradient evaluations made there).
    pub line_search_time: Duration,
}

/// Trains a CRF on `instances`.
///
/// `n_features` and `n_labels` fix the parameter dimensions (obtain
/// them from the [`crate::features::FeatureIndex`] and the label set).
pub fn train(
    instances: &[Instance],
    n_features: usize,
    n_labels: usize,
    config: &TrainConfig,
) -> CrfModel {
    train_with_stats(instances, n_features, n_labels, config).0
}

/// The smooth CRF training objective (`NLL + 0.5·l2·‖w‖²`) as a
/// split-protocol [`Objective`]: `value` runs the forward-only
/// evaluation (sparse mode) or the full legacy evaluation with the
/// gradient cached (dense mode); `grad` completes / replays it.
/// `grad_calls` counts objective evaluations (`value` calls);
/// `grad_ns` accumulates wall time across both halves.
struct CrfObjective<'a> {
    engine: &'a TrainEngine,
    l2: f64,
    grad_ns: &'a Cell<u64>,
    grad_calls: &'a Cell<usize>,
    /// Dense mode only: the gradient computed during `value`.
    dense_grad: Vec<f64>,
}

impl Objective for CrfObjective<'_> {
    fn value(&mut self, x: &[f64]) -> f64 {
        let t0 = Instant::now();
        let mut value = if self.engine.is_dense() {
            if self.dense_grad.len() != x.len() {
                self.dense_grad = vec![0.0; x.len()];
            }
            self.engine.nll_and_grad(x, &mut self.dense_grad)
        } else {
            self.engine.nll_value(x)
        };
        if self.l2 > 0.0 {
            value += 0.5 * self.l2 * x.iter().map(|w| w * w).sum::<f64>();
        }
        self.grad_ns
            .set(self.grad_ns.get() + t0.elapsed().as_nanos() as u64);
        self.grad_calls.set(self.grad_calls.get() + 1);
        value
    }

    fn grad(&mut self, x: &[f64], grad: &mut [f64]) {
        let t0 = Instant::now();
        if self.engine.is_dense() {
            grad.copy_from_slice(&self.dense_grad);
        } else {
            self.engine.complete_grad(x, grad);
        }
        if self.l2 > 0.0 {
            for (g, &w) in grad.iter_mut().zip(x) {
                *g += self.l2 * w;
            }
        }
        self.grad_ns
            .set(self.grad_ns.get() + t0.elapsed().as_nanos() as u64);
    }
}

/// [`train`], additionally returning sub-stage timing stats. Emits
/// `crf.grad` / `crf.line_search` aggregate spans when tracing is on.
pub fn train_with_stats(
    instances: &[Instance],
    n_features: usize,
    n_labels: usize,
    config: &TrainConfig,
) -> (CrfModel, TrainStats) {
    for inst in instances {
        inst.validate(n_labels).expect("invalid training instance");
    }
    let mut model = CrfModel::new(n_features, n_labels);
    let dim = model.params.len();
    let l2 = config.l2;

    let lbfgs_cfg = LbfgsConfig {
        max_iters: config.max_iters,
        epsilon: config.epsilon,
        ..Default::default()
    };

    let engine = TrainEngine::new(instances, n_features, n_labels);
    let grad_ns = Cell::new(0u64);
    let grad_calls = Cell::new(0usize);

    // Smooth objective: NLL + 0.5·l2·‖w‖², split into value /
    // gradient-completion so rejected line-search trials never pay for
    // backward passes or accumulation (sparse mode). The dense A/B
    // path keeps the legacy shape: everything computed per value call,
    // the gradient replayed from cache.
    let objective = CrfObjective {
        engine: &engine,
        l2,
        grad_ns: &grad_ns,
        grad_calls: &grad_calls,
        dense_grad: Vec::new(),
    };

    let x0 = vec![0.0; dim];
    let result = if config.l1 > 0.0 {
        if config.dense_transitions {
            // L1 applies to observation weights only; the transition /
            // start / end suffix stays unpenalized.
            minimize_l1_with_exempt_suffix(
                objective,
                x0,
                config.l1,
                model.trans_offset(),
                &lbfgs_cfg,
            )
        } else {
            minimize_l1(objective, x0, config.l1, 0, &lbfgs_cfg)
        }
    } else {
        minimize(objective, x0, &lbfgs_cfg)
    };

    let stats = TrainStats {
        iterations: result.iterations,
        converged: result.converged,
        final_value: result.value,
        grad_time: Duration::from_nanos(grad_ns.get()),
        grad_calls: grad_calls.get(),
        line_search_time: Duration::from_nanos(result.line_search_ns),
    };
    if pae_obs::enabled() {
        pae_obs::gauge_set("crf.lbfgs.iterations", &[], result.iterations as f64);
        pae_obs::gauge_set(
            "crf.lbfgs.converged",
            &[],
            if result.converged { 1.0 } else { 0.0 },
        );
        pae_obs::gauge_set("crf.lbfgs.final_nll", &[], result.value);
        // Aggregate sub-stage spans: one record pair per training run,
        // not per optimizer iteration.
        pae_obs::span_complete(
            "crf.grad",
            stats.grad_time,
            vec![("calls".into(), (stats.grad_calls as u64).into())],
        );
        pae_obs::span_complete("crf.line_search", stats.line_search_time, Vec::new());
    }
    model.params = result.x;
    (model, stats)
}

/// [`Objective`] adapter that presents a coordinate-permuted view of
/// an inner objective: permuted index `i` maps to original index
/// `to_orig(i)` (see [`minimize_l1_with_exempt_suffix`]).
struct PermutedObjective<F> {
    inner: F,
    exempt_from: usize,
    exempt_len: usize,
    buf_x: Vec<f64>,
    buf_g: Vec<f64>,
}

impl<F> PermutedObjective<F> {
    fn to_orig(&self, i: usize) -> usize {
        if i < self.exempt_len {
            self.exempt_from + i
        } else {
            i - self.exempt_len
        }
    }
}

impl<F: Objective> Objective for PermutedObjective<F> {
    fn value(&mut self, xp: &[f64]) -> f64 {
        for i in 0..xp.len() {
            let o = self.to_orig(i);
            self.buf_x[o] = xp[i];
        }
        self.inner.value(&self.buf_x)
    }

    fn grad(&mut self, xp: &[f64], gp: &mut [f64]) {
        for i in 0..xp.len() {
            let o = self.to_orig(i);
            self.buf_x[o] = xp[i];
        }
        self.inner.grad(&self.buf_x, &mut self.buf_g);
        for (i, g) in gp.iter_mut().enumerate() {
            *g = self.buf_g[self.to_orig(i)];
        }
    }
}

/// OWL-QN over a vector whose *suffix* `[exempt_from..]` is exempt from
/// the L1 penalty. Implemented by permuting coordinates so the exempt
/// block becomes a prefix, which is what [`minimize_l1`] supports.
fn minimize_l1_with_exempt_suffix<F: Objective>(
    f: F,
    x0: Vec<f64>,
    c: f64,
    exempt_from: usize,
    cfg: &LbfgsConfig,
) -> crate::lbfgs::LbfgsResult {
    let dim = x0.len();
    let exempt_len = dim - exempt_from;
    let wrapped = PermutedObjective {
        inner: f,
        exempt_from,
        exempt_len,
        buf_x: vec![0.0; dim],
        buf_g: vec![0.0; dim],
    };
    let mut x_perm = vec![0.0; dim];
    for (i, x) in x_perm.iter_mut().enumerate() {
        *x = x0[wrapped.to_orig(i)];
    }
    let mut res = minimize_l1(wrapped, x_perm, c, exempt_len, cfg);
    let mut x_out = vec![0.0; dim];
    for (i, &x) in res.x.iter().enumerate() {
        let orig = if i < exempt_len {
            exempt_from + i
        } else {
            i - exempt_len
        };
        x_out[orig] = x;
    }
    res.x = x_out;
    res
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::Instance;

    /// Tiny separable task: feature 0 ⇒ label 1, feature 1 ⇒ label 0.
    /// All four label transitions occur so emissions dominate.
    fn toy_instances() -> Vec<Instance> {
        vec![
            Instance {
                features: vec![vec![0], vec![1], vec![0]],
                labels: vec![1, 0, 1],
            },
            Instance {
                features: vec![vec![1], vec![0]],
                labels: vec![0, 1],
            },
            Instance {
                features: vec![vec![1], vec![1], vec![0], vec![0]],
                labels: vec![0, 0, 1, 1],
            },
        ]
    }

    #[test]
    fn learns_separable_task() {
        let model = train(&toy_instances(), 2, 2, &TrainConfig::default());
        assert_eq!(model.viterbi(&[vec![0], vec![1], vec![1]]), vec![1, 0, 0]);
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let instances = toy_instances();
        let n_features = 2;
        let n_labels = 2;
        let mut model = CrfModel::new(n_features, n_labels);
        // Non-trivial point.
        for (i, p) in model.params.iter_mut().enumerate() {
            *p = ((i as f64) * 0.37).sin() * 0.5;
        }
        let dim = model.params.len();
        let mut grad = vec![0.0; dim];
        let base_nll = nll_and_grad(&model, &instances, &mut grad);
        assert!(base_nll > 0.0);

        let eps = 1e-6;
        for i in 0..dim {
            let mut m2 = model.clone();
            m2.params[i] += eps;
            let mut scratch = vec![0.0; dim];
            let up = nll_and_grad(&m2, &instances, &mut scratch);
            m2.params[i] -= 2.0 * eps;
            scratch.fill(0.0);
            let down = nll_and_grad(&m2, &instances, &mut scratch);
            let numeric = (up - down) / (2.0 * eps);
            assert!(
                (numeric - grad[i]).abs() < 1e-4,
                "param {i}: numeric {numeric} vs analytic {}",
                grad[i]
            );
        }
    }

    #[test]
    fn engine_matches_reference_bitwise() {
        // Instances touching different feature subsets, so the sparse
        // fold actually exercises first-touch assignment, cross-chunk
        // accumulation, and untouched rows (feature 4 never fires).
        let instances = vec![
            Instance {
                features: vec![vec![0, 2], vec![1]],
                labels: vec![1, 0],
            },
            Instance {
                features: vec![vec![3], vec![0]],
                labels: vec![0, 1],
            },
            Instance {
                features: vec![],
                labels: vec![],
            },
            Instance {
                features: vec![vec![2, 3], vec![2], vec![1]],
                labels: vec![0, 0, 1],
            },
        ];
        let (n_features, n_labels) = (5, 2);
        let mut model = CrfModel::new(n_features, n_labels);
        for (i, p) in model.params.iter_mut().enumerate() {
            *p = ((i as f64) * 0.61).cos() * 0.3;
        }
        let dim = model.params.len();

        let mut reference = vec![0.0; dim];
        let ref_nll = nll_and_grad(&model, &instances, &mut reference);

        for dense in [false, true] {
            let engine = TrainEngine::with_dense_fold(&instances, n_features, n_labels, dense);
            let mut grad = vec![f64::NAN; dim]; // engine must fully manage grad
                                                // Two calls: the second exercises the steady-state sparse
                                                // zeroing over retained scratch.
            for call in 0..2 {
                let nll = engine.nll_and_grad(&model.params, &mut grad);
                assert_eq!(
                    nll.to_bits(),
                    ref_nll.to_bits(),
                    "nll (dense={dense}, call {call})"
                );
                for i in 0..dim {
                    assert_eq!(
                        grad[i].to_bits(),
                        reference[i].to_bits(),
                        "grad[{i}] (dense={dense}, call {call})"
                    );
                }
            }
        }
    }

    #[test]
    fn split_value_grad_matches_combined_after_rejected_trial() {
        // Optimizer calling convention: `nll_value` may run at several
        // trial points, but `complete_grad` is only invoked for the
        // *latest* one. Simulate a rejected trial at A followed by an
        // accepted point B and require the completed gradient (and the
        // value) to be bitwise equal to a fresh combined evaluation.
        let instances = toy_instances();
        let (n_features, n_labels) = (2, 2);
        let mut model = CrfModel::new(n_features, n_labels);
        let dim = model.params.len();
        let params_a: Vec<f64> = (0..dim).map(|i| ((i as f64) * 0.53).sin() * 0.4).collect();
        let params_b: Vec<f64> = (0..dim).map(|i| ((i as f64) * 0.29).cos() * 0.2).collect();

        model.params.copy_from_slice(&params_b);
        let mut reference = vec![0.0; dim];
        let ref_nll = nll_and_grad(&model, &instances, &mut reference);

        let engine = TrainEngine::new(&instances, n_features, n_labels);
        let _rejected = engine.nll_value(&params_a);
        let nll = engine.nll_value(&params_b);
        let mut grad = vec![f64::NAN; dim];
        engine.complete_grad(&params_b, &mut grad);

        assert_eq!(nll.to_bits(), ref_nll.to_bits(), "value at accepted point");
        for i in 0..dim {
            assert_eq!(grad[i].to_bits(), reference[i].to_bits(), "grad[{i}]");
        }
    }

    #[test]
    fn dense_toggle_is_thread_local_and_scoped() {
        assert!(!dense_grad_enabled());
        with_dense_grad(true, || {
            assert!(dense_grad_enabled());
            let engine = TrainEngine::new(&toy_instances(), 2, 2);
            assert!(engine.is_dense());
            with_dense_grad(false, || assert!(!dense_grad_enabled()));
            assert!(dense_grad_enabled());
        });
        assert!(!dense_grad_enabled());
        assert!(!TrainEngine::new(&toy_instances(), 2, 2).is_dense());
    }

    #[test]
    fn train_with_stats_reports_substage_times() {
        let (model, stats) = train_with_stats(&toy_instances(), 2, 2, &TrainConfig::default());
        assert_eq!(model.viterbi(&[vec![0]]), vec![1]);
        assert!(stats.grad_calls > 0);
        assert!(stats.grad_time.as_nanos() > 0);
        // The line search evaluates the objective, so it can never
        // account for more than the total gradient time plus overhead;
        // sanity-check it is populated and bounded.
        assert!(stats.line_search_time <= stats.grad_time + Duration::from_millis(100));
    }

    #[test]
    fn sparse_and_dense_training_produce_identical_models() {
        let instances = toy_instances();
        let cfg = TrainConfig::default();
        let sparse = train(&instances, 2, 2, &cfg);
        let dense = with_dense_grad(true, || train(&instances, 2, 2, &cfg));
        assert_eq!(sparse.params.len(), dense.params.len());
        for (i, (a, b)) in sparse.params.iter().zip(&dense.params).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "param {i}");
        }
    }

    #[test]
    fn l1_training_produces_sparser_models() {
        // Add noise features that fire everywhere (uninformative).
        let mut instances = toy_instances();
        for inst in &mut instances {
            for feats in &mut inst.features {
                feats.push(2);
                feats.push(3);
            }
        }
        let dense = train(
            &instances,
            4,
            2,
            &TrainConfig {
                l1: 0.0,
                l2: 0.01,
                ..Default::default()
            },
        );
        let sparse = train(
            &instances,
            4,
            2,
            &TrainConfig {
                l1: 1.0,
                l2: 0.01,
                ..Default::default()
            },
        );
        assert!(
            sparse.active_params(1e-8) < dense.active_params(1e-8),
            "sparse {} !< dense {}",
            sparse.active_params(1e-8),
            dense.active_params(1e-8)
        );
        // Sparsity must not destroy the separable mapping.
        assert_eq!(sparse.viterbi(&[vec![0, 2, 3], vec![1, 2, 3]]), vec![1, 0]);
    }

    #[test]
    fn dense_transitions_flag_keeps_chain_weights() {
        // Noise features everywhere so L1 has something to kill.
        let mut instances = toy_instances();
        for inst in &mut instances {
            for feats in &mut inst.features {
                feats.extend([2, 3, 4, 5]);
            }
        }
        let cfg = TrainConfig {
            l1: 1.0,
            l2: 0.01,
            dense_transitions: true,
            ..Default::default()
        };
        let model = train(&instances, 6, 2, &cfg);
        let obs_end = model.trans_offset();
        let obs_zero = model.params[..obs_end]
            .iter()
            .filter(|p| p.abs() < 1e-10)
            .count();
        // L1 must have driven some observation weights to exact zero …
        assert!(obs_zero > 0, "no sparsity in observation block");
        // … while the exempt transition/start/end suffix stays dense.
        let suffix_nonzero = model.params[obs_end..]
            .iter()
            .filter(|p| p.abs() > 1e-10)
            .count();
        assert!(suffix_nonzero > 0, "transition block unexpectedly empty");
    }

    #[test]
    fn exempt_suffix_adapter_matches_expected_solution() {
        // min (x0 - 1)^2 + (x1 - 1)^2 with L1 c=1 on x0 only
        // (x1 exempt as the suffix): x0 = 0.5, x1 = 1.
        let f = |x: &[f64], g: &mut [f64]| {
            g[0] = 2.0 * (x[0] - 1.0);
            g[1] = 2.0 * (x[1] - 1.0);
            (x[0] - 1.0).powi(2) + (x[1] - 1.0).powi(2)
        };
        let res =
            minimize_l1_with_exempt_suffix(f, vec![0.0, 0.0], 1.0, 1, &LbfgsConfig::default());
        assert!((res.x[0] - 0.5).abs() < 1e-4, "{:?}", res.x);
        assert!((res.x[1] - 1.0).abs() < 1e-4, "{:?}", res.x);
    }

    #[test]
    fn empty_instance_is_skipped() {
        let mut instances = toy_instances();
        instances.push(Instance {
            features: vec![],
            labels: vec![],
        });
        let model = train(&instances, 2, 2, &TrainConfig::default());
        assert_eq!(model.viterbi(&[vec![0]]), vec![1]);
    }

    #[test]
    fn empty_training_set_yields_zero_model() {
        let engine = TrainEngine::new(&[], 3, 2);
        let params = vec![0.5; engine.n_params()];
        let mut grad = vec![f64::NAN; engine.n_params()];
        assert_eq!(engine.nll_and_grad(&params, &mut grad), 0.0);
        assert!(grad.iter().all(|&g| g == 0.0));
    }

    #[test]
    #[should_panic(expected = "invalid training instance")]
    fn invalid_labels_panic() {
        let instances = vec![Instance {
            features: vec![vec![0]],
            labels: vec![7],
        }];
        train(&instances, 1, 2, &TrainConfig::default());
    }
}
