//! Training: negative log-likelihood objective and the `train` entry point.

#![allow(clippy::needless_range_loop)]

use crate::data::Instance;
use crate::inference::marginals;
use crate::lbfgs::{minimize, LbfgsConfig};
use crate::model::CrfModel;
use crate::owlqn::minimize_l1;

/// Training configuration.
///
/// The defaults mirror the paper's setup: *"CRF with limited-memory
/// BFGS training algorithm with L1+L2 regularization, the default
/// configuration"* (CRFsuite's `lbfgs` trainer).
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// L1 coefficient (`c1`). When positive, training uses OWL-QN.
    pub l1: f64,
    /// L2 coefficient (`c2`): value term `0.5 · l2 · ‖w‖²`.
    pub l2: f64,
    /// Maximum optimizer iterations.
    pub max_iters: usize,
    /// Relative gradient-norm convergence threshold.
    pub epsilon: f64,
    /// Exempt transition/start/end weights from the L1 penalty, keeping
    /// the label chain dense (observation features stay sparse).
    pub dense_transitions: bool,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            l1: 0.1,
            l2: 0.1,
            max_iters: 100,
            epsilon: 1e-4,
            dense_transitions: false,
        }
    }
}

/// Fixed chunk count for the gradient reduction. A constant (never the
/// thread count) so the partition — and therefore the floating-point
/// summation order — is identical at any `PAE_JOBS` value.
const GRAD_CHUNKS: usize = 16;

/// Computes the total negative log-likelihood of `instances` under the
/// parameters in `model`, filling `grad` (which must be zeroed by the
/// caller) with its gradient. Regularization is *not* included.
///
/// The accumulation runs on the [`pae_runtime`] worker pool over a
/// fixed partition of the instances; the per-chunk partial gradients
/// are folded sequentially in chunk order, so the result is
/// byte-identical at any thread count.
pub fn nll_and_grad(model: &CrfModel, instances: &[Instance], grad: &mut [f64]) -> f64 {
    debug_assert_eq!(grad.len(), model.params.len());
    let dim = grad.len();
    let partials = pae_runtime::parallel_chunk_map(instances, GRAD_CHUNKS, |chunk| {
        let mut part = vec![0.0; dim];
        let mut nll = 0.0;
        for inst in chunk {
            nll += instance_nll_and_grad(model, inst, &mut part);
        }
        (nll, part)
    });
    let mut nll = 0.0;
    for (part_nll, part_grad) in partials {
        nll += part_nll;
        for (g, p) in grad.iter_mut().zip(&part_grad) {
            *g += p;
        }
    }
    nll
}

/// One instance's NLL contribution, accumulated into `grad`.
fn instance_nll_and_grad(model: &CrfModel, inst: &Instance, grad: &mut [f64]) -> f64 {
    let l = model.n_labels;
    let trans_off = model.trans_offset();
    let start_off = model.start_offset();
    let end_off = model.end_offset();
    if inst.is_empty() {
        return 0.0;
    }
    let marg = marginals(model, &inst.features);
    let gold_score = model.sequence_score(&inst.features, &inst.labels);
    let nll = marg.log_z - gold_score;

    let n = inst.len();
    // Empirical counts: subtract.
    for (t, feats) in inst.features.iter().enumerate() {
        let y = inst.labels[t];
        for &f in feats {
            grad[f as usize * l + y] -= 1.0;
        }
    }
    grad[start_off + inst.labels[0]] -= 1.0;
    grad[end_off + inst.labels[n - 1]] -= 1.0;
    for t in 1..n {
        grad[trans_off + inst.labels[t - 1] * l + inst.labels[t]] -= 1.0;
    }

    // Expected counts: add.
    for (t, feats) in inst.features.iter().enumerate() {
        for &f in feats {
            let base = f as usize * l;
            for y in 0..l {
                grad[base + y] += marg.node[t][y];
            }
        }
    }
    for y in 0..l {
        grad[start_off + y] += marg.node[0][y];
        grad[end_off + y] += marg.node[n - 1][y];
    }
    for t in 1..n {
        let e = &marg.edge[t - 1];
        for p in 0..l {
            let row = trans_off + p * l;
            for q in 0..l {
                grad[row + q] += e[p][q];
            }
        }
    }
    nll
}

/// Trains a CRF on `instances`.
///
/// `n_features` and `n_labels` fix the parameter dimensions (obtain
/// them from the [`crate::features::FeatureIndex`] and the label set).
pub fn train(
    instances: &[Instance],
    n_features: usize,
    n_labels: usize,
    config: &TrainConfig,
) -> CrfModel {
    for inst in instances {
        inst.validate(n_labels).expect("invalid training instance");
    }
    let mut model = CrfModel::new(n_features, n_labels);
    let dim = model.params.len();
    let l2 = config.l2;

    let lbfgs_cfg = LbfgsConfig {
        max_iters: config.max_iters,
        epsilon: config.epsilon,
        ..Default::default()
    };

    // Smooth objective: NLL + 0.5·l2·‖w‖².
    let objective = |x: &[f64], grad: &mut [f64]| -> f64 {
        let m = CrfModel {
            n_labels,
            n_features,
            params: x.to_vec(),
        };
        grad.fill(0.0);
        let mut value = nll_and_grad(&m, instances, grad);
        if l2 > 0.0 {
            for (g, &w) in grad.iter_mut().zip(x) {
                *g += l2 * w;
            }
            value += 0.5 * l2 * x.iter().map(|w| w * w).sum::<f64>();
        }
        value
    };

    let x0 = vec![0.0; dim];
    let result = if config.l1 > 0.0 {
        if config.dense_transitions {
            // L1 applies to observation weights only; the transition /
            // start / end suffix stays unpenalized.
            minimize_l1_with_exempt_suffix(
                objective,
                x0,
                config.l1,
                model.trans_offset(),
                &lbfgs_cfg,
            )
        } else {
            minimize_l1(objective, x0, config.l1, 0, &lbfgs_cfg)
        }
    } else {
        minimize(objective, x0, &lbfgs_cfg)
    };

    if pae_obs::enabled() {
        pae_obs::gauge_set("crf.lbfgs.iterations", &[], result.iterations as f64);
        pae_obs::gauge_set(
            "crf.lbfgs.converged",
            &[],
            if result.converged { 1.0 } else { 0.0 },
        );
        pae_obs::gauge_set("crf.lbfgs.final_nll", &[], result.value);
    }
    model.params = result.x;
    model
}

/// OWL-QN over a vector whose *suffix* `[exempt_from..]` is exempt from
/// the L1 penalty. Implemented by permuting coordinates so the exempt
/// block becomes a prefix, which is what [`minimize_l1`] supports.
fn minimize_l1_with_exempt_suffix<F>(
    mut f: F,
    x0: Vec<f64>,
    c: f64,
    exempt_from: usize,
    cfg: &LbfgsConfig,
) -> crate::lbfgs::LbfgsResult
where
    F: FnMut(&[f64], &mut [f64]) -> f64,
{
    let dim = x0.len();
    let exempt_len = dim - exempt_from;
    // Permutation: [exempt block | penalized block].
    let to_orig = move |i: usize| {
        if i < exempt_len {
            exempt_from + i
        } else {
            i - exempt_len
        }
    };
    let mut x_perm = vec![0.0; dim];
    for (i, x) in x_perm.iter_mut().enumerate() {
        *x = x0[to_orig(i)];
    }
    let mut buf_x = vec![0.0; dim];
    let mut buf_g = vec![0.0; dim];
    let wrapped = |xp: &[f64], gp: &mut [f64]| -> f64 {
        for i in 0..dim {
            buf_x[to_orig(i)] = xp[i];
        }
        let v = f(&buf_x, &mut buf_g);
        for i in 0..dim {
            gp[i] = buf_g[to_orig(i)];
        }
        v
    };
    let mut res = minimize_l1(wrapped, x_perm, c, exempt_len, cfg);
    let mut x_out = vec![0.0; dim];
    for i in 0..dim {
        x_out[to_orig(i)] = res.x[i];
    }
    res.x = x_out;
    res
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::Instance;

    /// Tiny separable task: feature 0 ⇒ label 1, feature 1 ⇒ label 0.
    /// All four label transitions occur so emissions dominate.
    fn toy_instances() -> Vec<Instance> {
        vec![
            Instance {
                features: vec![vec![0], vec![1], vec![0]],
                labels: vec![1, 0, 1],
            },
            Instance {
                features: vec![vec![1], vec![0]],
                labels: vec![0, 1],
            },
            Instance {
                features: vec![vec![1], vec![1], vec![0], vec![0]],
                labels: vec![0, 0, 1, 1],
            },
        ]
    }

    #[test]
    fn learns_separable_task() {
        let model = train(&toy_instances(), 2, 2, &TrainConfig::default());
        assert_eq!(model.viterbi(&[vec![0], vec![1], vec![1]]), vec![1, 0, 0]);
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let instances = toy_instances();
        let n_features = 2;
        let n_labels = 2;
        let mut model = CrfModel::new(n_features, n_labels);
        // Non-trivial point.
        for (i, p) in model.params.iter_mut().enumerate() {
            *p = ((i as f64) * 0.37).sin() * 0.5;
        }
        let dim = model.params.len();
        let mut grad = vec![0.0; dim];
        let base_nll = nll_and_grad(&model, &instances, &mut grad);
        assert!(base_nll > 0.0);

        let eps = 1e-6;
        for i in 0..dim {
            let mut m2 = model.clone();
            m2.params[i] += eps;
            let mut scratch = vec![0.0; dim];
            let up = nll_and_grad(&m2, &instances, &mut scratch);
            m2.params[i] -= 2.0 * eps;
            scratch.fill(0.0);
            let down = nll_and_grad(&m2, &instances, &mut scratch);
            let numeric = (up - down) / (2.0 * eps);
            assert!(
                (numeric - grad[i]).abs() < 1e-4,
                "param {i}: numeric {numeric} vs analytic {}",
                grad[i]
            );
        }
    }

    #[test]
    fn l1_training_produces_sparser_models() {
        // Add noise features that fire everywhere (uninformative).
        let mut instances = toy_instances();
        for inst in &mut instances {
            for feats in &mut inst.features {
                feats.push(2);
                feats.push(3);
            }
        }
        let dense = train(
            &instances,
            4,
            2,
            &TrainConfig {
                l1: 0.0,
                l2: 0.01,
                ..Default::default()
            },
        );
        let sparse = train(
            &instances,
            4,
            2,
            &TrainConfig {
                l1: 1.0,
                l2: 0.01,
                ..Default::default()
            },
        );
        assert!(
            sparse.active_params(1e-8) < dense.active_params(1e-8),
            "sparse {} !< dense {}",
            sparse.active_params(1e-8),
            dense.active_params(1e-8)
        );
        // Sparsity must not destroy the separable mapping.
        assert_eq!(sparse.viterbi(&[vec![0, 2, 3], vec![1, 2, 3]]), vec![1, 0]);
    }

    #[test]
    fn dense_transitions_flag_keeps_chain_weights() {
        // Noise features everywhere so L1 has something to kill.
        let mut instances = toy_instances();
        for inst in &mut instances {
            for feats in &mut inst.features {
                feats.extend([2, 3, 4, 5]);
            }
        }
        let cfg = TrainConfig {
            l1: 1.0,
            l2: 0.01,
            dense_transitions: true,
            ..Default::default()
        };
        let model = train(&instances, 6, 2, &cfg);
        let obs_end = model.trans_offset();
        let obs_zero = model.params[..obs_end]
            .iter()
            .filter(|p| p.abs() < 1e-10)
            .count();
        // L1 must have driven some observation weights to exact zero …
        assert!(obs_zero > 0, "no sparsity in observation block");
        // … while the exempt transition/start/end suffix stays dense.
        let suffix_nonzero = model.params[obs_end..]
            .iter()
            .filter(|p| p.abs() > 1e-10)
            .count();
        assert!(suffix_nonzero > 0, "transition block unexpectedly empty");
    }

    #[test]
    fn exempt_suffix_adapter_matches_expected_solution() {
        // min (x0 - 1)^2 + (x1 - 1)^2 with L1 c=1 on x0 only
        // (x1 exempt as the suffix): x0 = 0.5, x1 = 1.
        let f = |x: &[f64], g: &mut [f64]| {
            g[0] = 2.0 * (x[0] - 1.0);
            g[1] = 2.0 * (x[1] - 1.0);
            (x[0] - 1.0).powi(2) + (x[1] - 1.0).powi(2)
        };
        let res =
            minimize_l1_with_exempt_suffix(f, vec![0.0, 0.0], 1.0, 1, &LbfgsConfig::default());
        assert!((res.x[0] - 0.5).abs() < 1e-4, "{:?}", res.x);
        assert!((res.x[1] - 1.0).abs() < 1e-4, "{:?}", res.x);
    }

    #[test]
    fn empty_instance_is_skipped() {
        let mut instances = toy_instances();
        instances.push(Instance {
            features: vec![],
            labels: vec![],
        });
        let model = train(&instances, 2, 2, &TrainConfig::default());
        assert_eq!(model.viterbi(&[vec![0]]), vec![1]);
    }

    #[test]
    #[should_panic(expected = "invalid training instance")]
    fn invalid_labels_panic() {
        let instances = vec![Instance {
            features: vec![vec![0]],
            labels: vec![7],
        }];
        train(&instances, 1, 2, &TrainConfig::default());
    }
}
