//! Encoded instances for training and decoding.

/// Dense feature id (assigned by [`crate::features::FeatureIndex`]).
pub type FeatId = u32;

/// Dense label id.
pub type LabelId = usize;

/// One encoded sequence: per-position binary features and gold labels.
///
/// `features.len() == labels.len()`; each inner vector holds the ids of
/// the features active at that position (all features are binary, as in
/// CRFsuite's default text mode).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Instance {
    /// Active feature ids per position.
    pub features: Vec<Vec<FeatId>>,
    /// Gold label per position (ignored at decode time).
    pub labels: Vec<LabelId>,
}

impl Instance {
    /// Sequence length.
    pub fn len(&self) -> usize {
        self.features.len()
    }

    /// True for the empty sequence.
    pub fn is_empty(&self) -> bool {
        self.features.is_empty()
    }

    /// Asserts internal consistency (equal lengths, labels in range).
    pub fn validate(&self, n_labels: usize) -> Result<(), String> {
        if self.features.len() != self.labels.len() {
            return Err(format!(
                "features/labels length mismatch: {} vs {}",
                self.features.len(),
                self.labels.len()
            ));
        }
        if let Some(&bad) = self.labels.iter().find(|&&l| l >= n_labels) {
            return Err(format!("label {bad} out of range (n_labels = {n_labels})"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validate_catches_mismatch() {
        let inst = Instance {
            features: vec![vec![0], vec![1]],
            labels: vec![0],
        };
        assert!(inst.validate(2).is_err());
    }

    #[test]
    fn validate_catches_label_range() {
        let inst = Instance {
            features: vec![vec![0]],
            labels: vec![5],
        };
        assert!(inst.validate(2).is_err());
        assert!(inst.validate(6).is_ok());
    }

    #[test]
    fn empty_instance() {
        let inst = Instance {
            features: vec![],
            labels: vec![],
        };
        assert!(inst.is_empty());
        assert!(inst.validate(1).is_ok());
    }
}
