//! Encoded instances for training and decoding.

/// Dense feature id (assigned by [`crate::features::FeatureIndex`]).
pub type FeatId = u32;

/// Dense label id.
pub type LabelId = usize;

/// One encoded sequence: per-position binary features and gold labels.
///
/// `features.len() == labels.len()`; each inner vector holds the ids of
/// the features active at that position (all features are binary, as in
/// CRFsuite's default text mode).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Instance {
    /// Active feature ids per position.
    pub features: Vec<Vec<FeatId>>,
    /// Gold label per position (ignored at decode time).
    pub labels: Vec<LabelId>,
}

impl Instance {
    /// Sequence length.
    pub fn len(&self) -> usize {
        self.features.len()
    }

    /// True for the empty sequence.
    pub fn is_empty(&self) -> bool {
        self.features.is_empty()
    }

    /// Asserts internal consistency (equal lengths, labels in range).
    pub fn validate(&self, n_labels: usize) -> Result<(), String> {
        if self.features.len() != self.labels.len() {
            return Err(format!(
                "features/labels length mismatch: {} vs {}",
                self.features.len(),
                self.labels.len()
            ));
        }
        if let Some(&bad) = self.labels.iter().find(|&&l| l >= n_labels) {
            return Err(format!("label {bad} out of range (n_labels = {n_labels})"));
        }
        Ok(())
    }
}

/// Positional feature access shared by the nested ([`Instance`]) and
/// packed ([`CsrSeq`]) layouts, so inference walks one code path for
/// both. Implementations must be cheap: `feats` is called once per
/// position per forward/backward pass.
pub trait FeatureSeq {
    /// Number of positions in the sequence.
    fn n_positions(&self) -> usize;
    /// Active feature ids at position `t`.
    fn feats(&self, t: usize) -> &[FeatId];
}

impl FeatureSeq for [Vec<FeatId>] {
    fn n_positions(&self) -> usize {
        self.len()
    }
    fn feats(&self, t: usize) -> &[FeatId] {
        &self[t]
    }
}

impl FeatureSeq for Vec<Vec<FeatId>> {
    fn n_positions(&self) -> usize {
        self.len()
    }
    fn feats(&self, t: usize) -> &[FeatId] {
        &self[t]
    }
}

/// A training set flattened into CSR (compressed sparse row) arenas.
///
/// The nested `Vec<Vec<FeatId>>` layout of [`Instance`] scatters each
/// position's feature list across the heap; the forward/backward and
/// gradient walks then chase one pointer per position per optimizer
/// iteration. Packing flattens everything into four contiguous arrays:
///
/// - `seq_bounds[s]..seq_bounds[s+1]` — the position range of sequence `s`
/// - `feat_offsets[p]..feat_offsets[p+1]` — the id range of position `p`
/// - `ids` — all feature ids, in (sequence, position, list) order
/// - `labels` — gold label per position, same indexing as `feat_offsets`
///
/// Iteration order over the packed layout is identical to iterating
/// the nested one, so any fold over features is byte-identical.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CsrInstances {
    seq_bounds: Vec<u32>,
    feat_offsets: Vec<u32>,
    ids: Vec<FeatId>,
    labels: Vec<LabelId>,
}

impl CsrInstances {
    /// Flattens nested instances into the packed layout.
    pub fn pack(instances: &[Instance]) -> Self {
        let n_pos: usize = instances.iter().map(Instance::len).sum();
        let n_ids: usize = instances
            .iter()
            .flat_map(|i| i.features.iter())
            .map(Vec::len)
            .sum();
        let mut out = Self {
            seq_bounds: Vec::with_capacity(instances.len() + 1),
            feat_offsets: Vec::with_capacity(n_pos + 1),
            ids: Vec::with_capacity(n_ids),
            labels: Vec::with_capacity(n_pos),
        };
        out.seq_bounds.push(0);
        out.feat_offsets.push(0);
        for inst in instances {
            for feats in &inst.features {
                out.ids.extend_from_slice(feats);
                out.feat_offsets.push(out.ids.len() as u32);
            }
            out.labels.extend_from_slice(&inst.labels);
            out.seq_bounds.push(out.labels.len() as u32);
        }
        out
    }

    /// Number of sequences.
    pub fn len(&self) -> usize {
        self.seq_bounds.len() - 1
    }

    /// True when no sequences are packed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total number of positions across all sequences.
    pub fn n_positions(&self) -> usize {
        self.labels.len()
    }

    /// Global position range of sequence `s` within the shared arenas
    /// (`labels` and the per-position rows of `feat_offsets`). Lets
    /// callers maintain their own position-indexed side arrays — e.g.
    /// the forward-pass cache in [`crate::train::TrainEngine`].
    pub fn seq_positions(&self, s: usize) -> std::ops::Range<usize> {
        self.seq_bounds[s] as usize..self.seq_bounds[s + 1] as usize
    }

    /// Borrowed view of sequence `s`.
    pub fn seq(&self, s: usize) -> CsrSeq<'_> {
        let lo = self.seq_bounds[s] as usize;
        let hi = self.seq_bounds[s + 1] as usize;
        CsrSeq {
            // Offsets stay absolute into the shared `ids` arena; the
            // window just scopes which positions belong to `s`.
            feat_offsets: &self.feat_offsets[lo..hi + 1],
            ids: &self.ids,
            labels: &self.labels[lo..hi],
        }
    }

    /// Expands back to the nested layout (round-trip check for tests).
    pub fn to_instances(&self) -> Vec<Instance> {
        (0..self.len())
            .map(|s| {
                let seq = self.seq(s);
                Instance {
                    features: (0..seq.len()).map(|t| seq.feats(t).to_vec()).collect(),
                    labels: seq.labels.to_vec(),
                }
            })
            .collect()
    }
}

/// One sequence inside a [`CsrInstances`] arena.
#[derive(Debug, Clone, Copy)]
pub struct CsrSeq<'a> {
    feat_offsets: &'a [u32],
    ids: &'a [FeatId],
    /// Gold labels for this sequence.
    pub labels: &'a [LabelId],
}

impl CsrSeq<'_> {
    /// Sequence length.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True for the empty sequence.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Active feature ids at position `t`.
    pub fn feats(&self, t: usize) -> &[FeatId] {
        &self.ids[self.feat_offsets[t] as usize..self.feat_offsets[t + 1] as usize]
    }
}

impl FeatureSeq for CsrSeq<'_> {
    fn n_positions(&self) -> usize {
        self.len()
    }
    fn feats(&self, t: usize) -> &[FeatId] {
        CsrSeq::feats(self, t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validate_catches_mismatch() {
        let inst = Instance {
            features: vec![vec![0], vec![1]],
            labels: vec![0],
        };
        assert!(inst.validate(2).is_err());
    }

    #[test]
    fn validate_catches_label_range() {
        let inst = Instance {
            features: vec![vec![0]],
            labels: vec![5],
        };
        assert!(inst.validate(2).is_err());
        assert!(inst.validate(6).is_ok());
    }

    #[test]
    fn empty_instance() {
        let inst = Instance {
            features: vec![],
            labels: vec![],
        };
        assert!(inst.is_empty());
        assert!(inst.validate(1).is_ok());
    }

    #[test]
    fn csr_round_trips_nested_layout() {
        let instances = vec![
            Instance {
                features: vec![vec![0, 3], vec![], vec![7]],
                labels: vec![0, 1, 0],
            },
            Instance {
                features: vec![],
                labels: vec![],
            },
            Instance {
                features: vec![vec![2]],
                labels: vec![1],
            },
        ];
        let csr = CsrInstances::pack(&instances);
        assert_eq!(csr.len(), 3);
        assert_eq!(csr.n_positions(), 4);
        assert_eq!(csr.to_instances(), instances);

        let s0 = csr.seq(0);
        assert_eq!(s0.len(), 3);
        assert_eq!(s0.feats(0), &[0, 3]);
        assert_eq!(s0.feats(1), &[] as &[FeatId]);
        assert_eq!(s0.feats(2), &[7]);
        assert_eq!(s0.labels, &[0, 1, 0]);
        assert!(csr.seq(1).is_empty());
    }

    #[test]
    fn csr_pack_of_empty_set() {
        let csr = CsrInstances::pack(&[]);
        assert!(csr.is_empty());
        assert_eq!(csr.n_positions(), 0);
        assert!(csr.to_instances().is_empty());
    }
}
