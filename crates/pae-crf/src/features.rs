//! Feature templates and interning.
//!
//! The templates follow the paper's §VI-D exactly: *"for a given
//! token/word in position t (w\[t\]) we generate the following features:
//! the word w\[t\], the words in a window of size K around w\[t\], the
//! part-of-speech (pos) tags of such words, the concatenation of the pos
//! of those words, and the sentence number."*
//!
//! Extraction is string-free on the hot path: template prefixes
//! (`"w[-2]="`, `"p[1]="`, …) are pre-rendered at extractor
//! construction and feature strings are assembled in a caller-provided
//! [`ExtractScratch`] buffer, so encoding a token performs no heap
//! allocation beyond interning genuinely new features.

use std::collections::HashMap;
use std::fmt::Write as _;

use pae_fst::Fst;

use crate::data::FeatId;

/// Feature-string index: grow-only interner during training, or a
/// read-only double-array automaton when rehydrated from a frozen
/// bundle.
///
/// During training, unseen feature strings are assigned fresh ids; at
/// decode time the index is frozen and unseen features are skipped
/// (they carry zero weight anyway). The interned form's reverse table
/// ([`name_of`]) doubles string storage but lets callers rebuild
/// sub-indices without re-extracting (see `pae-core`'s cross-cycle
/// training cache).
///
/// The frozen form ([`from_fst`]) answers [`get`] straight off a
/// `name → id` automaton — typically borrowing a loaded bundle's
/// bytes, so no per-feature strings or hash table are ever built.
/// [`intern`] and [`name_of`] are training/debug operations and panic
/// on a frozen index.
///
/// [`name_of`]: FeatureIndex::name_of
/// [`from_fst`]: FeatureIndex::from_fst
/// [`get`]: FeatureIndex::get
/// [`intern`]: FeatureIndex::intern
#[derive(Debug, Clone)]
pub struct FeatureIndex {
    repr: IndexRepr,
}

#[derive(Debug, Clone)]
enum IndexRepr {
    Interned {
        map: HashMap<String, FeatId>,
        names: Vec<String>,
    },
    Frozen { fst: Fst },
}

impl Default for FeatureIndex {
    fn default() -> Self {
        FeatureIndex {
            repr: IndexRepr::Interned { map: HashMap::new(), names: Vec::new() },
        }
    }
}

impl FeatureIndex {
    /// Creates an empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds an index by interning `names` in order (ids `0..n`).
    pub fn from_names<'a, I: IntoIterator<Item = &'a str>>(names: I) -> Self {
        let mut idx = Self::new();
        for n in names {
            idx.intern(n);
        }
        idx
    }

    /// Wraps a compiled `name → id` automaton as a frozen, read-only
    /// index. Ids must be dense (`0..n_keys`), as produced by
    /// serializing an interned index.
    pub fn from_fst(fst: Fst) -> Self {
        FeatureIndex { repr: IndexRepr::Frozen { fst } }
    }

    /// Interns `feature`, assigning a fresh id when unseen.
    ///
    /// # Panics
    /// On a frozen index — interning is a training-time operation.
    pub fn intern(&mut self, feature: &str) -> FeatId {
        match &mut self.repr {
            IndexRepr::Interned { map, names } => {
                if let Some(&id) = map.get(feature) {
                    return id;
                }
                let id = map.len() as FeatId;
                map.insert(feature.to_owned(), id);
                names.push(feature.to_owned());
                id
            }
            IndexRepr::Frozen { .. } => {
                panic!("cannot intern into a frozen feature index (training-time only)")
            }
        }
    }

    /// Looks up `feature` without interning.
    pub fn get(&self, feature: &str) -> Option<FeatId> {
        match &self.repr {
            IndexRepr::Interned { map, .. } => map.get(feature).copied(),
            IndexRepr::Frozen { fst } => fst.get(feature.as_bytes()).map(|v| v as FeatId),
        }
    }

    /// The feature string that was assigned `id`.
    ///
    /// # Panics
    /// When `id` was never assigned, or on a frozen index (the reverse
    /// table is a training/debug facility and is not materialized when
    /// loading from a bundle).
    pub fn name_of(&self, id: FeatId) -> &str {
        match &self.repr {
            IndexRepr::Interned { names, .. } => &names[id as usize],
            IndexRepr::Frozen { .. } => {
                panic!("frozen feature index has no reverse table (training-time only)")
            }
        }
    }

    /// Number of distinct features.
    pub fn len(&self) -> usize {
        match &self.repr {
            IndexRepr::Interned { map, .. } => map.len(),
            IndexRepr::Frozen { fst } => fst.n_keys(),
        }
    }

    /// True when no feature has been interned.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Template configuration.
#[derive(Debug, Clone)]
pub struct FeatureTemplates {
    /// Window radius K (the paper's window of size K; default 2).
    pub window: usize,
    /// Cap for the sentence-number feature: sentences beyond the cap
    /// share one bucket (titles vs early vs late description text).
    pub max_sentence_bucket: usize,
}

impl Default for FeatureTemplates {
    fn default() -> Self {
        FeatureTemplates {
            window: 2,
            max_sentence_bucket: 8,
        }
    }
}

/// Pre-rendered template prefixes for one window radius, so the hot
/// path never formats offsets.
#[derive(Debug, Clone, Default)]
struct TemplatePrefixes {
    window: usize,
    /// `"w[d]="` for `d` in `-k..=k`, indexed by `d + k`.
    word: Vec<String>,
    /// `"p[d]="` for `d` in `-k..=k`, indexed by `d + k`.
    pos: Vec<String>,
}

impl TemplatePrefixes {
    fn build(window: usize) -> Self {
        let k = window as isize;
        TemplatePrefixes {
            window,
            word: (-k..=k).map(|d| format!("w[{d}]=")).collect(),
            pos: (-k..=k).map(|d| format!("p[{d}]=")).collect(),
        }
    }
}

/// Reusable string buffers for feature assembly. One per encoding
/// thread; contents are scratch — callers never read them directly.
#[derive(Debug, Clone, Default)]
pub struct ExtractScratch {
    feat: String,
    pseq: String,
}

/// Generates feature strings for every position of a sentence.
///
/// `words` and `pos` are parallel; `sentence_number` is the index of the
/// sentence within its document.
#[derive(Debug, Clone)]
pub struct FeatureExtractor {
    /// Template configuration.
    pub templates: FeatureTemplates,
    prefixes: TemplatePrefixes,
}

impl Default for FeatureExtractor {
    fn default() -> Self {
        Self::new(FeatureTemplates::default())
    }
}

impl FeatureExtractor {
    /// Extractor with the given templates.
    pub fn new(templates: FeatureTemplates) -> Self {
        let prefixes = TemplatePrefixes::build(templates.window);
        FeatureExtractor {
            templates,
            prefixes,
        }
    }

    /// Visits each feature string of position `t`, in template order,
    /// assembling them in `scratch` (no allocation on the happy path).
    fn each_feature(
        &self,
        words: &[&str],
        pos: &[&str],
        sentence_number: usize,
        t: usize,
        scratch: &mut ExtractScratch,
        mut visit: impl FnMut(&str),
    ) {
        debug_assert_eq!(words.len(), pos.len());
        // `templates` is a public field, so it can drift from the
        // prefixes built at construction; rebuild locally if so (cold
        // path — none of the pipeline mutates templates in place).
        let rebuilt;
        let pre = if self.prefixes.window == self.templates.window {
            &self.prefixes
        } else {
            rebuilt = TemplatePrefixes::build(self.templates.window);
            &rebuilt
        };
        let k = self.templates.window as isize;
        let n = words.len() as isize;
        let ti = t as isize;

        visit("bias");
        // Word and window words.
        for d in -k..=k {
            let idx = ti + d;
            let w = if idx < 0 {
                "<s>"
            } else if idx >= n {
                "</s>"
            } else {
                words[idx as usize]
            };
            scratch.feat.clear();
            scratch.feat.push_str(&pre.word[(d + k) as usize]);
            scratch.feat.push_str(w);
            visit(&scratch.feat);
        }
        // PoS of the window words.
        scratch.pseq.clear();
        for d in -k..=k {
            let idx = ti + d;
            let p = if idx < 0 {
                "BOS"
            } else if idx >= n {
                "EOS"
            } else {
                pos[idx as usize]
            };
            scratch.feat.clear();
            scratch.feat.push_str(&pre.pos[(d + k) as usize]);
            scratch.feat.push_str(p);
            visit(&scratch.feat);
            if !scratch.pseq.is_empty() {
                scratch.pseq.push('|');
            }
            scratch.pseq.push_str(p);
        }
        // Concatenation of the window PoS tags.
        scratch.feat.clear();
        scratch.feat.push_str("pseq=");
        scratch.feat.push_str(&scratch.pseq);
        visit(&scratch.feat);
        // Sentence number (bucketed).
        let bucket = sentence_number.min(self.templates.max_sentence_bucket);
        scratch.feat.clear();
        let _ = write!(scratch.feat, "sent={bucket}");
        visit(&scratch.feat);
    }

    /// Produces the feature strings for position `t` (allocating; the
    /// encode paths below are the allocation-free consumers).
    pub fn features_at(
        &self,
        words: &[&str],
        pos: &[&str],
        sentence_number: usize,
        t: usize,
    ) -> Vec<String> {
        let k = self.templates.window;
        let mut feats = Vec::with_capacity((4 * k + 2) + 3);
        let mut scratch = ExtractScratch::default();
        self.each_feature(words, pos, sentence_number, t, &mut scratch, |f| {
            feats.push(f.to_owned())
        });
        feats
    }

    /// Encodes a full sentence, interning new features.
    pub fn encode_train(
        &self,
        words: &[&str],
        pos: &[&str],
        sentence_number: usize,
        index: &mut FeatureIndex,
    ) -> Vec<Vec<FeatId>> {
        let mut out = Vec::new();
        let mut scratch = ExtractScratch::default();
        self.encode_train_into(words, pos, sentence_number, index, &mut scratch, &mut out);
        out
    }

    /// [`encode_train`](Self::encode_train) into reusable buffers: the
    /// inner id vectors of `out` keep their capacity across sentences.
    pub fn encode_train_into(
        &self,
        words: &[&str],
        pos: &[&str],
        sentence_number: usize,
        index: &mut FeatureIndex,
        scratch: &mut ExtractScratch,
        out: &mut Vec<Vec<FeatId>>,
    ) {
        out.resize_with(words.len(), Vec::new);
        for t in 0..words.len() {
            let (head, tail) = out.split_at_mut(t);
            let _ = head;
            let ids = &mut tail[0];
            ids.clear();
            self.each_feature(words, pos, sentence_number, t, scratch, |f| {
                ids.push(index.intern(f))
            });
        }
    }

    /// Encodes a sentence against a frozen index (unseen features skipped).
    pub fn encode(
        &self,
        words: &[&str],
        pos: &[&str],
        sentence_number: usize,
        index: &FeatureIndex,
    ) -> Vec<Vec<FeatId>> {
        let mut out = Vec::new();
        let mut scratch = ExtractScratch::default();
        self.encode_into(words, pos, sentence_number, index, &mut scratch, &mut out);
        out
    }

    /// [`encode`](Self::encode) into reusable buffers.
    pub fn encode_into(
        &self,
        words: &[&str],
        pos: &[&str],
        sentence_number: usize,
        index: &FeatureIndex,
        scratch: &mut ExtractScratch,
        out: &mut Vec<Vec<FeatId>>,
    ) {
        out.resize_with(words.len(), Vec::new);
        for t in 0..words.len() {
            let (_, tail) = out.split_at_mut(t);
            let ids = &mut tail[0];
            ids.clear();
            self.each_feature(words, pos, sentence_number, t, scratch, |f| {
                if let Some(id) = index.get(f) {
                    ids.push(id);
                }
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_assigns_dense_ids() {
        let mut idx = FeatureIndex::new();
        assert_eq!(idx.intern("a"), 0);
        assert_eq!(idx.intern("b"), 1);
        assert_eq!(idx.intern("a"), 0);
        assert_eq!(idx.get("b"), Some(1));
        assert_eq!(idx.get("c"), None);
        assert_eq!(idx.len(), 2);
        assert_eq!(idx.name_of(0), "a");
        assert_eq!(idx.name_of(1), "b");
    }

    #[test]
    fn from_names_reproduces_interning_order() {
        let mut a = FeatureIndex::new();
        for f in ["x", "y", "z"] {
            a.intern(f);
        }
        let b = FeatureIndex::from_names(["x", "y", "z"]);
        assert_eq!(b.len(), 3);
        for f in ["x", "y", "z"] {
            assert_eq!(a.get(f), b.get(f));
        }
    }

    #[test]
    fn templates_cover_paper_features() {
        let ex = FeatureExtractor::default();
        let words = ["weight", ":", "2", "kg"];
        let pos = ["NN", "SYM", "CD", "UNIT"];
        let feats = ex.features_at(&words, &pos, 0, 2);
        // Current word.
        assert!(feats.contains(&"w[0]=2".to_owned()));
        // Window words incl. boundaries.
        assert!(feats.contains(&"w[-2]=weight".to_owned()));
        assert!(feats.contains(&"w[2]=</s>".to_owned()));
        // PoS tags and their concatenation.
        assert!(feats.contains(&"p[1]=UNIT".to_owned()));
        assert!(feats.contains(&"pseq=NN|SYM|CD|UNIT|EOS".to_owned()));
        // Sentence number.
        assert!(feats.contains(&"sent=0".to_owned()));
    }

    #[test]
    fn sentence_bucket_caps() {
        let ex = FeatureExtractor::default();
        let feats = ex.features_at(&["x"], &["NN"], 99, 0);
        assert!(feats.contains(&"sent=8".to_owned()));
    }

    #[test]
    fn encode_roundtrip_and_frozen_decode() {
        let ex = FeatureExtractor::default();
        let words = ["red", "bag"];
        let pos = ["JJ", "NN"];
        let mut idx = FeatureIndex::new();
        let enc = ex.encode_train(&words, &pos, 0, &mut idx);
        assert_eq!(enc.len(), 2);
        assert!(!enc[0].is_empty());

        // Decoding the same sentence against the frozen index must
        // produce identical ids.
        let dec = ex.encode(&words, &pos, 0, &idx);
        assert_eq!(enc, dec);

        // An unseen sentence loses only its unseen features.
        let dec2 = ex.encode(&["blue", "bag"], &pos, 0, &idx);
        assert!(dec2[0].len() < enc[0].len());
        assert!(!dec2[0].is_empty(), "shared window features survive");
    }

    #[test]
    fn buffered_encoding_matches_fresh_encoding() {
        let ex = FeatureExtractor::default();
        let sentences: Vec<(Vec<&str>, Vec<&str>)> = vec![
            (vec!["deep", "red", "bag"], vec!["JJ", "JJ", "NN"]),
            (vec!["bag"], vec!["NN"]),
            (
                vec!["weight", ":", "2", "kg"],
                vec!["NN", "SYM", "CD", "NN"],
            ),
        ];
        let mut fresh_idx = FeatureIndex::new();
        let fresh: Vec<_> = sentences
            .iter()
            .enumerate()
            .map(|(i, (w, p))| ex.encode_train(w, p, i, &mut fresh_idx))
            .collect();

        // Same sentences through the reusable-buffer path, deliberately
        // reusing one scratch and one output across all of them.
        let mut idx = FeatureIndex::new();
        let mut scratch = ExtractScratch::default();
        let mut out = Vec::new();
        for (i, (w, p)) in sentences.iter().enumerate() {
            ex.encode_train_into(w, p, i, &mut idx, &mut scratch, &mut out);
            assert_eq!(out, fresh[i], "sentence {i}");
        }
        assert_eq!(idx.len(), fresh_idx.len());
    }

    #[test]
    fn stale_prefixes_rebuild_on_template_drift() {
        // Mutating the public field after construction must not produce
        // wrong features — the extractor detects the drift.
        let mut ex = FeatureExtractor::default();
        ex.templates.window = 1;
        let feats = ex.features_at(&["a", "b"], &["X", "Y"], 0, 0);
        assert!(feats.contains(&"w[-1]=<s>".to_owned()));
        assert!(feats.contains(&"w[1]=b".to_owned()));
        assert!(!feats.iter().any(|f| f.starts_with("w[2]=")));
        assert!(feats.contains(&"pseq=BOS|X|Y".to_owned()));
    }

    #[test]
    fn window_zero_still_has_word_and_pos() {
        let ex = FeatureExtractor::new(FeatureTemplates {
            window: 0,
            max_sentence_bucket: 4,
        });
        let feats = ex.features_at(&["x"], &["NN"], 1, 0);
        assert!(feats.contains(&"w[0]=x".to_owned()));
        assert!(feats.contains(&"p[0]=NN".to_owned()));
        assert!(feats.contains(&"pseq=NN".to_owned()));
    }
}
