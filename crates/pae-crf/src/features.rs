//! Feature templates and interning.
//!
//! The templates follow the paper's §VI-D exactly: *"for a given
//! token/word in position t (w\[t\]) we generate the following features:
//! the word w\[t\], the words in a window of size K around w\[t\], the
//! part-of-speech (pos) tags of such words, the concatenation of the pos
//! of those words, and the sentence number."*

use std::collections::HashMap;

use crate::data::FeatId;

/// Grow-only feature-string interner.
///
/// During training, unseen feature strings are assigned fresh ids; at
/// decode time the index is frozen and unseen features are skipped
/// (they carry zero weight anyway).
#[derive(Debug, Default, Clone)]
pub struct FeatureIndex {
    map: HashMap<String, FeatId>,
}

impl FeatureIndex {
    /// Creates an empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `feature`, assigning a fresh id when unseen.
    pub fn intern(&mut self, feature: &str) -> FeatId {
        if let Some(&id) = self.map.get(feature) {
            return id;
        }
        let id = self.map.len() as FeatId;
        self.map.insert(feature.to_owned(), id);
        id
    }

    /// Looks up `feature` without interning.
    pub fn get(&self, feature: &str) -> Option<FeatId> {
        self.map.get(feature).copied()
    }

    /// Number of distinct features.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no feature has been interned.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// Template configuration.
#[derive(Debug, Clone)]
pub struct FeatureTemplates {
    /// Window radius K (the paper's window of size K; default 2).
    pub window: usize,
    /// Cap for the sentence-number feature: sentences beyond the cap
    /// share one bucket (titles vs early vs late description text).
    pub max_sentence_bucket: usize,
}

impl Default for FeatureTemplates {
    fn default() -> Self {
        FeatureTemplates {
            window: 2,
            max_sentence_bucket: 8,
        }
    }
}

/// Generates feature strings for every position of a sentence.
///
/// `words` and `pos` are parallel; `sentence_number` is the index of the
/// sentence within its document.
#[derive(Debug, Clone, Default)]
pub struct FeatureExtractor {
    /// Template configuration.
    pub templates: FeatureTemplates,
}

impl FeatureExtractor {
    /// Extractor with the given templates.
    pub fn new(templates: FeatureTemplates) -> Self {
        FeatureExtractor { templates }
    }

    /// Produces the feature strings for position `t`.
    pub fn features_at(
        &self,
        words: &[&str],
        pos: &[&str],
        sentence_number: usize,
        t: usize,
    ) -> Vec<String> {
        debug_assert_eq!(words.len(), pos.len());
        let k = self.templates.window as isize;
        let n = words.len() as isize;
        let ti = t as isize;
        let mut feats = Vec::with_capacity((4 * k as usize + 2) + 3);

        feats.push("bias".to_owned());
        // Word and window words.
        for d in -k..=k {
            let idx = ti + d;
            let w = if idx < 0 {
                "<s>"
            } else if idx >= n {
                "</s>"
            } else {
                words[idx as usize]
            };
            feats.push(format!("w[{d}]={w}"));
        }
        // PoS of the window words.
        let mut pos_concat = String::new();
        for d in -k..=k {
            let idx = ti + d;
            let p = if idx < 0 {
                "BOS"
            } else if idx >= n {
                "EOS"
            } else {
                pos[idx as usize]
            };
            feats.push(format!("p[{d}]={p}"));
            if !pos_concat.is_empty() {
                pos_concat.push('|');
            }
            pos_concat.push_str(p);
        }
        // Concatenation of the window PoS tags.
        feats.push(format!("pseq={pos_concat}"));
        // Sentence number (bucketed).
        let bucket = sentence_number.min(self.templates.max_sentence_bucket);
        feats.push(format!("sent={bucket}"));
        feats
    }

    /// Encodes a full sentence, interning new features.
    pub fn encode_train(
        &self,
        words: &[&str],
        pos: &[&str],
        sentence_number: usize,
        index: &mut FeatureIndex,
    ) -> Vec<Vec<FeatId>> {
        (0..words.len())
            .map(|t| {
                self.features_at(words, pos, sentence_number, t)
                    .iter()
                    .map(|f| index.intern(f))
                    .collect()
            })
            .collect()
    }

    /// Encodes a sentence against a frozen index (unseen features skipped).
    pub fn encode(
        &self,
        words: &[&str],
        pos: &[&str],
        sentence_number: usize,
        index: &FeatureIndex,
    ) -> Vec<Vec<FeatId>> {
        (0..words.len())
            .map(|t| {
                self.features_at(words, pos, sentence_number, t)
                    .iter()
                    .filter_map(|f| index.get(f))
                    .collect()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_assigns_dense_ids() {
        let mut idx = FeatureIndex::new();
        assert_eq!(idx.intern("a"), 0);
        assert_eq!(idx.intern("b"), 1);
        assert_eq!(idx.intern("a"), 0);
        assert_eq!(idx.get("b"), Some(1));
        assert_eq!(idx.get("c"), None);
        assert_eq!(idx.len(), 2);
    }

    #[test]
    fn templates_cover_paper_features() {
        let ex = FeatureExtractor::default();
        let words = ["weight", ":", "2", "kg"];
        let pos = ["NN", "SYM", "CD", "UNIT"];
        let feats = ex.features_at(&words, &pos, 0, 2);
        // Current word.
        assert!(feats.contains(&"w[0]=2".to_owned()));
        // Window words incl. boundaries.
        assert!(feats.contains(&"w[-2]=weight".to_owned()));
        assert!(feats.contains(&"w[2]=</s>".to_owned()));
        // PoS tags and their concatenation.
        assert!(feats.contains(&"p[1]=UNIT".to_owned()));
        assert!(feats.contains(&"pseq=NN|SYM|CD|UNIT|EOS".to_owned()));
        // Sentence number.
        assert!(feats.contains(&"sent=0".to_owned()));
    }

    #[test]
    fn sentence_bucket_caps() {
        let ex = FeatureExtractor::default();
        let feats = ex.features_at(&["x"], &["NN"], 99, 0);
        assert!(feats.contains(&"sent=8".to_owned()));
    }

    #[test]
    fn encode_roundtrip_and_frozen_decode() {
        let ex = FeatureExtractor::default();
        let words = ["red", "bag"];
        let pos = ["JJ", "NN"];
        let mut idx = FeatureIndex::new();
        let enc = ex.encode_train(&words, &pos, 0, &mut idx);
        assert_eq!(enc.len(), 2);
        assert!(!enc[0].is_empty());

        // Decoding the same sentence against the frozen index must
        // produce identical ids.
        let dec = ex.encode(&words, &pos, 0, &idx);
        assert_eq!(enc, dec);

        // An unseen sentence loses only its unseen features.
        let dec2 = ex.encode(&["blue", "bag"], &pos, 0, &idx);
        assert!(dec2[0].len() < enc[0].len());
        assert!(!dec2[0].is_empty(), "shared window features survive");
    }

    #[test]
    fn window_zero_still_has_word_and_pos() {
        let ex = FeatureExtractor::new(FeatureTemplates {
            window: 0,
            max_sentence_bucket: 4,
        });
        let feats = ex.features_at(&["x"], &["NN"], 1, 0);
        assert!(feats.contains(&"w[0]=x".to_owned()));
        assert!(feats.contains(&"p[0]=NN".to_owned()));
        assert!(feats.contains(&"pseq=NN".to_owned()));
    }
}
