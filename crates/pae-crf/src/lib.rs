#![warn(missing_docs)]

//! Linear-chain conditional random fields, built from scratch.
//!
//! This crate reproduces the tagger backend the paper uses via
//! CRFsuite: a first-order linear-chain CRF trained with L-BFGS under
//! L1+L2 regularization (the CRFsuite default), with the feature
//! templates of the paper's §VI-D — the word, the words in a window of
//! size *K* around it, their part-of-speech tags, the concatenation of
//! those tags, and the sentence number.
//!
//! Layout:
//!
//! * [`data`] — encoded training/decoding instances (dense label ids,
//!   per-position binary feature ids);
//! * [`features`] — string feature templates + interning
//!   ([`features::FeatureIndex`], [`features::FeatureExtractor`]);
//! * [`model`] — parameter storage and scoring ([`CrfModel`]);
//! * [`inference`] — log-space forward/backward, marginals, Viterbi;
//! * [`train`] — negative log-likelihood objective and gradient;
//! * [`lbfgs`] — generic L-BFGS minimizer with backtracking line search;
//! * [`owlqn`] — OWL-QN extension for L1 regularization.
//!
//! ```
//! use pae_crf::{data::Instance, train::{train, TrainConfig}};
//!
//! // Two labels (0 = O, 1 = NUM); feature 0 fires on digit tokens.
//! let instances = vec![
//!     Instance { features: vec![vec![0], vec![1]], labels: vec![1, 0] },
//!     Instance { features: vec![vec![1], vec![0]], labels: vec![0, 1] },
//! ];
//! let model = train(&instances, 2, 2, &TrainConfig::default());
//! assert_eq!(model.viterbi(&[vec![0], vec![1]]), vec![1, 0]);
//! ```

pub mod data;
pub mod features;
pub mod inference;
pub mod lbfgs;
pub mod model;
pub mod numeric;
pub mod owlqn;
pub mod train;

pub use data::{CsrInstances, CsrSeq, FeatureSeq, Instance};
pub use features::{ExtractScratch, FeatureExtractor, FeatureIndex, FeatureTemplates};
pub use inference::{marginals_into, viterbi_with_confidence, MargScratch};
pub use model::{CrfModel, ParamsView};
pub use train::{
    dense_grad_enabled, train, train_with_stats, with_dense_grad, TrainConfig, TrainEngine,
    TrainStats,
};
