//! Process-level gauges for live observability: resident set size,
//! peak RSS, thread count, and uptime.
//!
//! Values come from `/proc/self` (Linux); on other platforms the
//! readings are `None` and exporters simply omit the gauges. Parsing is
//! strictly best-effort: a missing, truncated, or garbled field yields
//! `None`, never a fabricated zero — a gauge that silently reads 0
//! would trip the memory regression gates in the wrong direction.
//! Nothing here is wired into the global registry automatically — a
//! server calls [`process_metrics`] at scrape time so `/metrics` always
//! reports a fresh RSS rather than a stale startup sample, feeding the
//! ROADMAP memory-ceiling goal without a background sampler thread
//! (the profiling layer's `RssSampler` exists separately for run-level
//! peak capture).

use crate::metrics::{MetricKey, MetricValue};

/// Linux page size assumed when converting `statm` pages to bytes.
/// `getconf PAGESIZE` is 4096 on every target this workspace builds
/// for; a non-standard page size skews the RSS gauge by a constant
/// factor but never affects extraction.
const PAGE_SIZE: u64 = 4096;

/// A point-in-time reading of the process.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProcessStats {
    /// Resident set size in bytes (`/proc/self/statm` field 2 × page
    /// size). `None` when procfs is unavailable.
    pub rss_bytes: Option<u64>,
    /// Peak resident set size in bytes (`/proc/self/status` `VmHWM:`,
    /// kernel-tracked high-water mark since process start).
    pub peak_rss_bytes: Option<u64>,
    /// Live thread count (`/proc/self/status` `Threads:`).
    pub threads: Option<u64>,
}

/// Reads the current process stats (best-effort, never panics).
pub fn process_stats() -> ProcessStats {
    let status = std::fs::read_to_string("/proc/self/status").ok();
    let status = status.as_deref();
    ProcessStats {
        rss_bytes: std::fs::read_to_string("/proc/self/statm")
            .ok()
            .as_deref()
            .and_then(parse_statm_rss),
        peak_rss_bytes: status.and_then(|s| parse_status_bytes(s, "VmHWM:")),
        threads: status.and_then(|s| parse_status_count(s, "Threads:")),
    }
}

/// Parses the resident-pages field (field 2) of a `/proc/self/statm`
/// document into bytes. `None` on a truncated or non-numeric document.
pub fn parse_statm_rss(statm: &str) -> Option<u64> {
    let resident_pages: u64 = statm.split_whitespace().nth(1)?.parse().ok()?;
    Some(resident_pages * PAGE_SIZE)
}

/// Finds `key` in a `/proc/self/status` document and parses its value
/// as a plain count (e.g. `Threads:\t12`). Missing key, missing value,
/// or a non-numeric value all yield `None`.
pub fn parse_status_count(status: &str, key: &str) -> Option<u64> {
    status
        .lines()
        .find_map(|l| l.strip_prefix(key))
        .and_then(|v| v.trim().parse().ok())
}

/// Finds `key` in a `/proc/self/status` document and parses its value
/// as a byte quantity. The kernel writes sizes as `<n> kB`; the unit
/// suffix is required-or-absent: `12 kB` and a bare `12` both parse
/// (as kilobytes — `status` sizes are always kB), anything else is
/// `None`.
pub fn parse_status_bytes(status: &str, key: &str) -> Option<u64> {
    let raw = status.lines().find_map(|l| l.strip_prefix(key))?.trim();
    let number = raw.strip_suffix("kB").map(str::trim_end).unwrap_or(raw);
    let kb: u64 = number.parse().ok()?;
    Some(kb * 1024)
}

/// The process gauges as registry-shaped metrics, ready to merge into
/// a live Prometheus exposition: `process.rss_bytes`,
/// `process.peak_rss_bytes`, `process.threads`, and
/// `process.uptime_seconds` (uptime is passed in because only the
/// owner of the start instant knows it).
pub fn process_metrics(uptime_seconds: f64) -> Vec<(MetricKey, MetricValue)> {
    let stats = process_stats();
    let gauge = |name: &str, v: f64| {
        (
            MetricKey {
                name: name.to_owned(),
                labels: Vec::new(),
            },
            MetricValue::Gauge(v),
        )
    };
    let mut out = vec![gauge("process.uptime_seconds", uptime_seconds)];
    if let Some(rss) = stats.rss_bytes {
        out.push(gauge("process.rss_bytes", rss as f64));
    }
    if let Some(peak) = stats.peak_rss_bytes {
        out.push(gauge("process.peak_rss_bytes", peak as f64));
    }
    if let Some(threads) = stats.threads {
        out.push(gauge("process.threads", threads as f64));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg(target_os = "linux")]
    fn procfs_readings_are_plausible() {
        let stats = process_stats();
        let rss = stats.rss_bytes.expect("statm readable on linux");
        assert!(rss > 0, "resident set must be non-zero");
        let threads = stats.threads.expect("status readable on linux");
        assert!(threads >= 1, "at least this thread is running");
        let peak = stats.peak_rss_bytes.expect("VmHWM readable on linux");
        assert!(peak >= rss / 2, "peak {peak} implausibly below rss {rss}");
    }

    #[test]
    fn process_metrics_always_carry_uptime() {
        let metrics = process_metrics(12.5);
        let uptime = metrics
            .iter()
            .find(|(k, _)| k.name == "process.uptime_seconds")
            .expect("uptime gauge present");
        assert_eq!(uptime.1, MetricValue::Gauge(12.5));
        for (k, _) in &metrics {
            assert!(
                k.labels.is_empty(),
                "{}: process gauges are label-free",
                k.name
            );
        }
    }

    // A realistic /proc/self/status excerpt for the fixture tests.
    const STATUS_FIXTURE: &str = "\
Name:\tpae-serve
Umask:\t0022
State:\tS (sleeping)
VmPeak:\t  191808 kB
VmSize:\t  191808 kB
VmHWM:\t   84240 kB
VmRSS:\t   84240 kB
Threads:\t9
Seccomp:\t0
";

    #[test]
    fn status_fixture_parses_expected_values() {
        assert_eq!(
            parse_status_bytes(STATUS_FIXTURE, "VmHWM:"),
            Some(84240 * 1024)
        );
        assert_eq!(parse_status_count(STATUS_FIXTURE, "Threads:"), Some(9));
        assert_eq!(
            parse_status_bytes(STATUS_FIXTURE, "VmPeak:"),
            Some(191808 * 1024)
        );
    }

    #[test]
    fn missing_or_truncated_status_fields_yield_none_not_zero() {
        // Key absent entirely.
        assert_eq!(parse_status_bytes("Name:\tx\n", "VmHWM:"), None);
        assert_eq!(parse_status_count("Name:\tx\n", "Threads:"), None);
        // Key present, value truncated away (e.g. partial read).
        assert_eq!(parse_status_bytes("VmHWM:", "VmHWM:"), None);
        assert_eq!(parse_status_bytes("VmHWM:\t\n", "VmHWM:"), None);
        assert_eq!(parse_status_count("Threads:\n", "Threads:"), None);
        // Garbled values must not parse as zero.
        assert_eq!(parse_status_bytes("VmHWM:\tlots kB\n", "VmHWM:"), None);
        assert_eq!(parse_status_bytes("VmHWM:\t12 MB\n", "VmHWM:"), None);
        assert_eq!(parse_status_count("Threads:\tmany\n", "Threads:"), None);
        // A unit-less number still parses (kernel format drift guard).
        assert_eq!(
            parse_status_bytes("VmHWM:\t12\n", "VmHWM:"),
            Some(12 * 1024)
        );
        // An explicit zero is a real value, not a parse failure.
        assert_eq!(parse_status_bytes("VmHWM:\t0 kB\n", "VmHWM:"), Some(0));
    }

    #[test]
    fn truncated_statm_yields_none() {
        assert_eq!(
            parse_statm_rss("47952 21060 1326 12 0 9000 0"),
            Some(21060 * PAGE_SIZE)
        );
        assert_eq!(parse_statm_rss("47952"), None, "resident field missing");
        assert_eq!(parse_statm_rss(""), None);
        assert_eq!(parse_statm_rss("x y z"), None);
    }
}
