//! Process-level gauges for live observability: resident set size,
//! thread count, and uptime.
//!
//! Values come from `/proc/self` (Linux); on other platforms the
//! readings are `None` and exporters simply omit the gauges. Nothing
//! here is wired into the global registry automatically — a server
//! calls [`process_metrics`] at scrape time so `/metrics` always
//! reports a fresh RSS rather than a stale startup sample, feeding the
//! ROADMAP memory-ceiling goal without a background sampler thread.

use crate::metrics::{MetricKey, MetricValue};

/// Linux page size assumed when converting `statm` pages to bytes.
/// `getconf PAGESIZE` is 4096 on every target this workspace builds
/// for; a non-standard page size skews the RSS gauge by a constant
/// factor but never affects extraction.
const PAGE_SIZE: u64 = 4096;

/// A point-in-time reading of the process.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProcessStats {
    /// Resident set size in bytes (`/proc/self/statm` field 2 × page
    /// size). `None` when procfs is unavailable.
    pub rss_bytes: Option<u64>,
    /// Live thread count (`/proc/self/status` `Threads:`).
    pub threads: Option<u64>,
}

/// Reads the current process stats (best-effort, never panics).
pub fn process_stats() -> ProcessStats {
    ProcessStats {
        rss_bytes: read_rss_bytes(),
        threads: read_threads(),
    }
}

fn read_rss_bytes() -> Option<u64> {
    let statm = std::fs::read_to_string("/proc/self/statm").ok()?;
    let resident_pages: u64 = statm.split_whitespace().nth(1)?.parse().ok()?;
    Some(resident_pages * PAGE_SIZE)
}

fn read_threads() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status
        .lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .and_then(|v| v.trim().parse().ok())
}

/// The process gauges as registry-shaped metrics, ready to merge into
/// a live Prometheus exposition: `process.rss_bytes`,
/// `process.threads`, and `process.uptime_seconds` (uptime is passed
/// in because only the owner of the start instant knows it).
pub fn process_metrics(uptime_seconds: f64) -> Vec<(MetricKey, MetricValue)> {
    let stats = process_stats();
    let mut out = vec![(
        MetricKey {
            name: "process.uptime_seconds".to_owned(),
            labels: Vec::new(),
        },
        MetricValue::Gauge(uptime_seconds),
    )];
    if let Some(rss) = stats.rss_bytes {
        out.push((
            MetricKey {
                name: "process.rss_bytes".to_owned(),
                labels: Vec::new(),
            },
            MetricValue::Gauge(rss as f64),
        ));
    }
    if let Some(threads) = stats.threads {
        out.push((
            MetricKey {
                name: "process.threads".to_owned(),
                labels: Vec::new(),
            },
            MetricValue::Gauge(threads as f64),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg(target_os = "linux")]
    fn procfs_readings_are_plausible() {
        let stats = process_stats();
        let rss = stats.rss_bytes.expect("statm readable on linux");
        assert!(rss > 0, "resident set must be non-zero");
        let threads = stats.threads.expect("status readable on linux");
        assert!(threads >= 1, "at least this thread is running");
    }

    #[test]
    fn process_metrics_always_carry_uptime() {
        let metrics = process_metrics(12.5);
        let uptime = metrics
            .iter()
            .find(|(k, _)| k.name == "process.uptime_seconds")
            .expect("uptime gauge present");
        assert_eq!(uptime.1, MetricValue::Gauge(12.5));
        for (k, _) in &metrics {
            assert!(k.labels.is_empty(), "{}: process gauges are label-free", k.name);
        }
    }
}
