//! `pae-obs` — zero-dependency tracing and metrics for the pipeline.
//!
//! Three layers, all behind one global on/off switch ([`set_enabled`],
//! off by default so instrumented code pays a single relaxed atomic
//! load when tracing is off):
//!
//! 1. **Spans & events** ([`span`], [`event`], [`warn`]) — scoped spans
//!    with thread-aware parent tracking. Worker pools capture
//!    [`current_span`] before spawning and wrap worker bodies in
//!    [`with_parent`], so traces stay parent-linked across threads.
//!    Records land in a bounded ring buffer (drop-oldest, counted).
//! 2. **Metrics** ([`counter_add`], [`gauge_set`], [`observe`],
//!    [`observe_step`]) — a registry of counters, gauges, and
//!    log₂-bucketed histograms keyed by name + labels.
//! 3. **Exporters** ([`export::jsonl`], [`export::prometheus`],
//!    [`export::console`]) — machine-readable JSONL trace, Prometheus
//!    text exposition, and a human console span tree.
//!
//! Telemetry is side-effect-free with respect to pipeline results:
//! nothing collected here (including wall-clock durations) may feed
//! back into computation, and the determinism suite asserts
//! `final_triples()` is byte-identical with collection on or off.
//!
//! Binaries opt in via [`TraceSession::from_env_and_args`], which
//! understands `--trace-out <path>` and the `PAE_TRACE` environment
//! variable.

#![warn(missing_docs)]

mod collector;
mod record;
mod span;

pub mod export;
pub mod json;
pub mod metrics;
pub mod reader;

pub use collector::{
    clear, dropped, enabled, set_capacity, set_enabled, snapshot, DEFAULT_CAPACITY,
};
pub use metrics::{
    clear_metrics, counter_add, gauge_set, metrics_snapshot, observe, observe_step, Histogram,
    MetricKey, MetricValue, HISTOGRAM_BUCKETS,
};
pub use record::{FieldValue, RecordKind, TraceRecord};
pub use span::{
    current_span, event, span, span_complete, span_fields, warn, with_parent, SpanGuard,
};

/// Clears all collected records and registered metrics (the enabled
/// flag and ring capacity are untouched).
pub fn reset() {
    collector::clear();
    metrics::clear_metrics();
}

/// CLI/env plumbing for the `probe*` binaries: decides whether tracing
/// is on and where the trace goes.
///
/// Sources, CLI winning over env:
/// - `--trace-out <path>` (or `--trace-out=<path>`) — write a JSONL
///   trace to `path`; the flag is stripped from the returned args so
///   positional parsing downstream is unaffected.
/// - `PAE_TRACE` — unset, empty, or `0` = off; `1` = console tree only;
///   anything else is treated as a JSONL output path.
///
/// When any target is configured the session enables collection and
/// clears prior state; [`TraceSession::finish`] exports and disables.
#[derive(Debug)]
pub struct TraceSession {
    out: Option<std::path::PathBuf>,
    active: bool,
}

impl TraceSession {
    /// Builds a session from `std::env::args()` and `PAE_TRACE`,
    /// returning the args with trace flags stripped.
    pub fn from_env_and_args() -> (Vec<String>, TraceSession) {
        Self::from_parts(std::env::args().collect(), std::env::var("PAE_TRACE").ok())
    }

    /// Testable core of [`TraceSession::from_env_and_args`].
    pub fn from_parts(args: Vec<String>, env: Option<String>) -> (Vec<String>, TraceSession) {
        let mut out: Option<std::path::PathBuf> = None;
        let mut console_only = false;
        match env.as_deref() {
            None | Some("") | Some("0") => {}
            Some("1") => console_only = true,
            Some(path) => out = Some(path.into()),
        }
        let mut filtered = Vec::with_capacity(args.len());
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            if arg == "--trace-out" {
                match it.next() {
                    Some(path) => out = Some(path.into()),
                    None => eprintln!("warning: --trace-out requires a path; flag ignored"),
                }
            } else if let Some(path) = arg.strip_prefix("--trace-out=") {
                out = Some(path.into());
            } else {
                filtered.push(arg);
            }
        }
        let active = out.is_some() || console_only;
        if active {
            reset();
            set_enabled(true);
        }
        (filtered, TraceSession { out, active })
    }

    /// Whether this session turned collection on.
    pub fn active(&self) -> bool {
        self.active
    }

    /// Exports (JSONL file if a path was configured, console tree to
    /// stderr either way) and disables collection.
    pub fn finish(self) {
        if !self.active {
            return;
        }
        if let Some(path) = &self.out {
            match export::jsonl::write_current(path) {
                Ok(()) => eprintln!("trace written to {}", path.display()),
                Err(e) => eprintln!("failed to write trace to {}: {e}", path.display()),
            }
        }
        eprintln!("--- span tree ---");
        eprint!("{}", export::console::render_current());
        set_enabled(false);
    }
}

#[cfg(test)]
pub(crate) fn test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_out_flag_is_stripped_and_wins_over_env() {
        let _l = test_lock();
        let (args, session) = TraceSession::from_parts(
            vec![
                "probe".into(),
                "60".into(),
                "--trace-out".into(),
                "/tmp/t.jsonl".into(),
            ],
            Some("/tmp/env.jsonl".into()),
        );
        assert_eq!(args, vec!["probe".to_string(), "60".to_string()]);
        assert!(session.active());
        assert_eq!(
            session.out.as_deref(),
            Some(std::path::Path::new("/tmp/t.jsonl"))
        );
        set_enabled(false);
        reset();
    }

    #[test]
    fn equals_form_and_console_only_env() {
        let _l = test_lock();
        let (args, session) = TraceSession::from_parts(
            vec!["probe".into(), "--trace-out=/tmp/x.jsonl".into()],
            None,
        );
        assert_eq!(args, vec!["probe".to_string()]);
        assert!(session.active());
        set_enabled(false);

        let (_, session) = TraceSession::from_parts(vec!["probe".into()], Some("1".into()));
        assert!(session.active());
        assert!(session.out.is_none());
        set_enabled(false);

        let (_, session) = TraceSession::from_parts(vec!["probe".into()], Some("0".into()));
        assert!(!session.active());
        assert!(!enabled());
        reset();
    }
}
