//! `pae-obs` — zero-dependency tracing and metrics for the pipeline.
//!
//! Three layers, all behind one global on/off switch ([`set_enabled`],
//! off by default so instrumented code pays a single relaxed atomic
//! load when tracing is off):
//!
//! 1. **Spans & events** ([`span`], [`event`], [`warn`]) — scoped spans
//!    with thread-aware parent tracking. Worker pools capture
//!    [`current_span`] before spawning and wrap worker bodies in
//!    [`with_parent`], so traces stay parent-linked across threads.
//!    Records land in a bounded ring buffer (drop-oldest, counted).
//! 2. **Metrics** ([`counter_add`], [`gauge_set`], [`observe`],
//!    [`observe_step`]) — a registry of counters, gauges, and
//!    log₂-bucketed histograms keyed by name + labels.
//! 3. **Exporters** ([`export::jsonl`], [`export::prometheus`],
//!    [`export::console`]) — machine-readable JSONL trace, Prometheus
//!    text exposition, and a human console span tree.
//!
//! Telemetry is side-effect-free with respect to pipeline results:
//! nothing collected here (including wall-clock durations) may feed
//! back into computation, and the determinism suite asserts
//! `final_triples()` is byte-identical with collection on or off.
//!
//! Binaries opt in via [`TraceSession::from_env_and_args`], which
//! understands `--trace-out <path>` and the `PAE_TRACE` environment
//! variable.

#![warn(missing_docs)]

mod collector;
mod record;
mod span;

pub mod export;
pub mod json;
pub mod metrics;
pub mod process;
pub mod prof;
pub mod reader;
pub mod sketch;
pub mod window;

pub use collector::{
    clear, dropped, enabled, provenance_enabled, set_capacity, set_enabled, set_provenance_enabled,
    snapshot, DEFAULT_CAPACITY,
};
pub use metrics::{
    clear_metrics, counter_add, gauge_set, metrics_snapshot, observe, observe_step, Histogram,
    MetricKey, MetricValue, HISTOGRAM_BUCKETS,
};
pub use process::{process_metrics, process_stats, ProcessStats};
pub use prof::{
    prof_enabled, prof_stats, set_prof_enabled, start_rss_sampler, MemReport, ProfSession,
    ProfStats, RssSampler,
};
pub use record::{FieldValue, RecordKind, TraceRecord};
pub use span::{
    current_span, event, provenance, span, span_complete, span_fields, warn, with_parent, SpanGuard,
};
pub use window::{WindowedCounter, WindowedHistogram};

/// Ring capacity used while provenance collection is active: lineage
/// records are per-candidate × per-stage, far denser than span records,
/// and an evicted lineage record silently truncates a decision trail.
pub const PROVENANCE_CAPACITY: usize = 1 << 20;

/// Clears all collected records and registered metrics (the enabled
/// flag and ring capacity are untouched).
pub fn reset() {
    collector::clear();
    metrics::clear_metrics();
}

/// CLI/env plumbing for the `probe*` binaries: decides whether tracing
/// and provenance are on and where their outputs go.
///
/// Sources, CLI winning over env:
/// - `--trace-out <path>` (or `--trace-out=<path>`) — write a JSONL
///   trace to `path`; the flag is stripped from the returned args so
///   positional parsing downstream is unaffected.
/// - `PAE_TRACE` — unset, empty, or `0` = off; `1` = console tree only;
///   anything else is treated as a JSONL output path.
/// - `--provenance-out <path>` (or `--provenance-out=<path>`) — enable
///   per-candidate lineage records and write them (provenance lines
///   only) to `path`.
/// - `PAE_PROVENANCE` — unset, empty, or `0` = off; `1` = collect
///   provenance into the main trace (useful with `--trace-out`);
///   anything else is treated as a provenance-only JSONL output path.
/// - `--force` — allow overwriting existing output files; without it
///   a session refuses to clobber an existing `--trace-out` or
///   `--provenance-out` target.
/// - `--profile` — enable allocation profiling (the counting
///   `#[global_allocator]` plus an RSS sampler; see [`prof`]). Span-end
///   records gain `alloc_bytes`/`alloc_count`/`peak_live_bytes` fields
///   and [`TraceSession::finish`] emits a `mem.summary` event for the
///   run ledger. Profiling alone does not enable trace collection.
/// - `PAE_PROF` — unset, empty, or `0` = off; anything else = same as
///   `--profile`.
///
/// Without `--force` the output files are *reserved atomically* at
/// session start (`File::create_new`): the open itself fails when the
/// file exists, so two concurrent runs pointed at the same target
/// cannot both pass an existence check and clobber each other —
/// exactly one wins the reservation and the other exits with the
/// refusal error. [`TraceSession::finish`] writes into the reserved
/// handles.
///
/// When any target is configured the session enables collection and
/// clears prior state; [`TraceSession::finish`] exports and disables.
#[derive(Debug)]
pub struct TraceSession {
    out: Option<std::path::PathBuf>,
    prov_out: Option<std::path::PathBuf>,
    /// Atomically reserved `--trace-out` handle (`create_new`), absent
    /// under `--force` (which recreates the file at finish).
    out_file: Option<std::fs::File>,
    /// Atomically reserved `--provenance-out` handle.
    prov_file: Option<std::fs::File>,
    /// Render the console span tree at finish (a trace target was
    /// configured — provenance-only sessions skip the tree).
    console: bool,
    active: bool,
    provenance: bool,
    /// Live profiling session (`--profile` / `PAE_PROF`); finished —
    /// emitting its `mem.summary` event — by [`TraceSession::finish`]
    /// or an early [`TraceSession::end_profiling`].
    prof: Option<prof::ProfSession>,
}

/// Atomically reserves `path` for writing: fails with the standard
/// "refusing to overwrite" usage error when the file already exists
/// (the check and the creation are one `open(2)` with `O_EXCL`, so
/// concurrent reservations race safely — exactly one wins).
pub fn reserve_output(path: &std::path::Path) -> Result<std::fs::File, String> {
    std::fs::OpenOptions::new()
        .write(true)
        .create_new(true)
        .open(path)
        .map_err(|e| {
            if e.kind() == std::io::ErrorKind::AlreadyExists {
                format!(
                    "refusing to overwrite existing file {} (pass --force to overwrite)",
                    path.display()
                )
            } else {
                format!("cannot create {}: {e}", path.display())
            }
        })
}

impl TraceSession {
    /// Builds a session from `std::env::args()`, `PAE_TRACE`, and
    /// `PAE_PROVENANCE`, returning the args with trace flags stripped.
    /// Exits with status 2 on a usage error (e.g. refusing to overwrite
    /// an existing output file without `--force`).
    pub fn from_env_and_args() -> (Vec<String>, TraceSession) {
        match Self::from_parts(
            std::env::args().collect(),
            std::env::var("PAE_TRACE").ok(),
            std::env::var("PAE_PROVENANCE").ok(),
            std::env::var("PAE_PROF").ok(),
        ) {
            Ok(parts) => parts,
            Err(msg) => {
                eprintln!("error: {msg}");
                std::process::exit(2);
            }
        }
    }

    /// Testable core of [`TraceSession::from_env_and_args`].
    pub fn from_parts(
        args: Vec<String>,
        trace_env: Option<String>,
        prov_env: Option<String>,
        prof_env: Option<String>,
    ) -> Result<(Vec<String>, TraceSession), String> {
        let mut out: Option<std::path::PathBuf> = None;
        let mut console_only = false;
        match trace_env.as_deref() {
            None | Some("") | Some("0") => {}
            Some("1") => console_only = true,
            Some(path) => out = Some(path.into()),
        }
        let mut prov_out: Option<std::path::PathBuf> = None;
        let mut prov_inline = false;
        match prov_env.as_deref() {
            None | Some("") | Some("0") => {}
            Some("1") => prov_inline = true,
            Some(path) => prov_out = Some(path.into()),
        }
        let mut profile = !matches!(prof_env.as_deref(), None | Some("") | Some("0"));
        let mut force = false;
        let mut filtered = Vec::with_capacity(args.len());
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            if arg == "--trace-out" {
                match it.next() {
                    Some(path) => out = Some(path.into()),
                    None => return Err("--trace-out requires a path".into()),
                }
            } else if let Some(path) = arg.strip_prefix("--trace-out=") {
                out = Some(path.into());
            } else if arg == "--provenance-out" {
                match it.next() {
                    Some(path) => prov_out = Some(path.into()),
                    None => return Err("--provenance-out requires a path".into()),
                }
            } else if let Some(path) = arg.strip_prefix("--provenance-out=") {
                prov_out = Some(path.into());
            } else if arg == "--profile" {
                profile = true;
            } else if arg == "--force" {
                force = true;
            } else {
                filtered.push(arg);
            }
        }
        let mut out_file = None;
        let mut prov_file = None;
        if !force {
            if let Some(path) = &out {
                out_file = Some(reserve_output(path)?);
            }
            if let Some(path) = &prov_out {
                match reserve_output(path) {
                    Ok(f) => prov_file = Some(f),
                    Err(e) => {
                        // Roll back the trace reservation so a refused
                        // session leaves nothing behind.
                        if out_file.take().is_some() {
                            if let Some(p) = &out {
                                let _ = std::fs::remove_file(p);
                            }
                        }
                        return Err(e);
                    }
                }
            }
        }
        let provenance = prov_inline || prov_out.is_some();
        let console = out.is_some() || console_only;
        let active = console || provenance;
        if active {
            reset();
            set_enabled(true);
            if provenance {
                set_provenance_enabled(true);
                set_capacity(PROVENANCE_CAPACITY);
            }
        }
        // Begin profiling last, after collection is configured, so the
        // session's counters start from a clean baseline.
        let prof_session = profile.then(prof::ProfSession::begin);
        Ok((
            filtered,
            TraceSession {
                out,
                prov_out,
                out_file,
                prov_file,
                console,
                active,
                provenance,
                prof: prof_session,
            },
        ))
    }

    /// Whether this session turned collection on.
    pub fn active(&self) -> bool {
        self.active
    }

    /// Whether this session turned provenance collection on.
    pub fn provenance_active(&self) -> bool {
        self.provenance
    }

    /// Whether this session turned allocation profiling on (and has not
    /// yet ended it).
    pub fn profiling_active(&self) -> bool {
        self.prof.is_some()
    }

    /// Ends the profiling session now (idempotent), emitting the
    /// `mem.summary` event into the live collection and returning the
    /// run's memory totals. Callers that build a `RunSummary` from the
    /// live collection must call this *before* snapshotting, otherwise
    /// the summary's `memory` section is missing;
    /// [`TraceSession::finish`] calls it automatically for everyone
    /// else.
    pub fn end_profiling(&mut self) -> Option<prof::MemReport> {
        self.prof.take().map(prof::ProfSession::finish)
    }

    /// Exports (provenance JSONL, trace JSONL, console tree — each if
    /// configured) and disables collection.
    pub fn finish(mut self) {
        // Profiling may be on without any trace target; end it before
        // the early return so the allocator is never left counting.
        self.end_profiling();
        if !self.active {
            return;
        }
        if let Some(path) = &self.prov_out {
            // Write through the reserved handle when we hold one;
            // `--force` sessions (no reservation) recreate the file.
            let written = match self.prov_file.as_mut() {
                Some(f) => export::jsonl::write_provenance_current_to(f),
                None => export::jsonl::write_provenance_current(path),
            };
            match written {
                Ok(()) => eprintln!("provenance written to {}", path.display()),
                Err(e) => eprintln!("failed to write provenance to {}: {e}", path.display()),
            }
        }
        if let Some(path) = &self.out {
            let written = match self.out_file.as_mut() {
                Some(f) => export::jsonl::write_current_to(f),
                None => export::jsonl::write_current(path),
            };
            match written {
                Ok(()) => eprintln!("trace written to {}", path.display()),
                Err(e) => eprintln!("failed to write trace to {}: {e}", path.display()),
            }
        }
        if self.console {
            eprintln!("--- span tree ---");
            eprint!("{}", export::console::render_current());
        }
        if self.provenance {
            set_provenance_enabled(false);
            set_capacity(DEFAULT_CAPACITY);
        }
        set_enabled(false);
    }
}

#[cfg(test)]
pub(crate) fn test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A path in the system temp dir that is guaranteed not to exist
    /// (unique per test name within this process).
    fn fresh_path(tag: &str) -> std::path::PathBuf {
        let p = std::env::temp_dir().join(format!("pae-obs-{}-{tag}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&p);
        p
    }

    fn end_session() {
        set_provenance_enabled(false);
        set_capacity(DEFAULT_CAPACITY);
        set_enabled(false);
        reset();
    }

    #[test]
    fn trace_out_flag_is_stripped_and_wins_over_env() {
        let _l = test_lock();
        let cli = fresh_path("cli");
        let env = fresh_path("env");
        let (args, session) = TraceSession::from_parts(
            vec![
                "probe".into(),
                "60".into(),
                "--trace-out".into(),
                cli.to_string_lossy().into_owned(),
            ],
            Some(env.to_string_lossy().into_owned()),
            None,
            None,
        )
        .expect("fresh paths");
        assert_eq!(args, vec!["probe".to_string(), "60".to_string()]);
        assert!(session.active());
        assert!(!session.provenance_active());
        assert_eq!(session.out.as_deref(), Some(cli.as_path()));
        end_session();
    }

    #[test]
    fn equals_form_and_console_only_env() {
        let _l = test_lock();
        let x = fresh_path("eq");
        let (args, session) = TraceSession::from_parts(
            vec![
                "probe".into(),
                format!("--trace-out={}", x.to_string_lossy()),
            ],
            None,
            None,
            None,
        )
        .expect("fresh path");
        assert_eq!(args, vec!["probe".to_string()]);
        assert!(session.active());
        end_session();

        let (_, session) =
            TraceSession::from_parts(vec!["probe".into()], Some("1".into()), None, None).unwrap();
        assert!(session.active());
        assert!(session.out.is_none());
        end_session();

        let (_, session) =
            TraceSession::from_parts(vec!["probe".into()], Some("0".into()), None, None).unwrap();
        assert!(!session.active());
        assert!(!enabled());
        reset();
    }

    #[test]
    fn provenance_flag_enables_collection_and_writes_only_provenance() {
        let _l = test_lock();
        let p = fresh_path("prov");
        let (args, session) = TraceSession::from_parts(
            vec![
                "probe".into(),
                "--provenance-out".into(),
                p.to_string_lossy().into_owned(),
            ],
            None,
            None,
            None,
        )
        .expect("fresh path");
        assert_eq!(args, vec!["probe".to_string()]);
        assert!(session.active());
        assert!(session.provenance_active());
        assert!(provenance_enabled());
        let _s = span("noise");
        provenance("prov.origin", vec![("attr".into(), "iro".into())]);
        drop(_s);
        session.finish();
        assert!(!enabled());
        assert!(!provenance_enabled());
        let doc = std::fs::read_to_string(&p).expect("provenance file written");
        let trace = reader::Trace::parse(&doc).expect("parses");
        assert_eq!(trace.records.len(), 1, "provenance lines only: {doc}");
        assert_eq!(trace.provenance_records()[0].name, "prov.origin");
        std::fs::remove_file(&p).ok();
        end_session();
    }

    #[test]
    fn provenance_env_inline_mode_needs_no_path() {
        let _l = test_lock();
        let (_, session) =
            TraceSession::from_parts(vec!["probe".into()], None, Some("1".into()), None).unwrap();
        assert!(session.active());
        assert!(session.provenance_active());
        assert!(session.prov_out.is_none());
        end_session();

        let (_, session) =
            TraceSession::from_parts(vec!["probe".into()], None, Some("0".into()), None).unwrap();
        assert!(!session.active());
        assert!(!provenance_enabled());
        reset();
    }

    #[test]
    fn existing_outputs_are_refused_without_force() {
        let _l = test_lock();
        for flag in ["--trace-out", "--provenance-out"] {
            let p = fresh_path(&format!("clobber{}", flag.len()));
            std::fs::write(&p, "precious").unwrap();
            let err = TraceSession::from_parts(
                vec![
                    "probe".into(),
                    flag.into(),
                    p.to_string_lossy().into_owned(),
                ],
                None,
                None,
                None,
            )
            .expect_err("existing file must be refused");
            assert!(err.contains("refusing to overwrite"), "{err}");
            assert!(err.contains("--force"), "{err}");
            assert!(!enabled(), "refusal must not enable collection");
            assert_eq!(
                std::fs::read_to_string(&p).unwrap(),
                "precious",
                "file untouched"
            );

            let (args, session) = TraceSession::from_parts(
                vec![
                    "probe".into(),
                    flag.into(),
                    p.to_string_lossy().into_owned(),
                    "--force".into(),
                ],
                None,
                None,
                None,
            )
            .expect("--force overrides the refusal");
            assert_eq!(args, vec!["probe".to_string()], "--force is stripped");
            assert!(session.active());
            session.finish();
            std::fs::remove_file(&p).ok();
            end_session();
        }
    }

    #[test]
    fn output_reservation_is_atomic_across_sessions() {
        let _l = test_lock();
        let p = fresh_path("race");
        // First session wins the reservation (create_new), so a second
        // session started before the first has written anything is
        // refused — the old exists-then-open check let both proceed.
        let (_, winner) = TraceSession::from_parts(
            vec![
                "probe".into(),
                format!("--trace-out={}", p.to_string_lossy()),
            ],
            None,
            None,
            None,
        )
        .expect("first reservation succeeds");
        let err = TraceSession::from_parts(
            vec![
                "probe".into(),
                format!("--trace-out={}", p.to_string_lossy()),
            ],
            None,
            None,
            None,
        )
        .expect_err("second session must lose the race");
        assert!(err.contains("refusing to overwrite"), "{err}");
        winner.finish();
        let doc = std::fs::read_to_string(&p).expect("winner's trace written");
        assert!(doc.starts_with("{\"type\":\"meta\""), "{doc}");
        std::fs::remove_file(&p).ok();
        end_session();
    }

    #[test]
    fn refused_provenance_rolls_back_the_trace_reservation() {
        let _l = test_lock();
        let t = fresh_path("rollback-trace");
        let p = fresh_path("rollback-prov");
        std::fs::write(&p, "precious").unwrap();
        let err = TraceSession::from_parts(
            vec![
                "probe".into(),
                format!("--trace-out={}", t.to_string_lossy()),
                format!("--provenance-out={}", p.to_string_lossy()),
            ],
            None,
            None,
            None,
        )
        .expect_err("existing provenance target must refuse the session");
        assert!(err.contains("refusing to overwrite"), "{err}");
        assert!(
            !t.exists(),
            "the trace reservation is rolled back on refusal"
        );
        assert_eq!(std::fs::read_to_string(&p).unwrap(), "precious");
        std::fs::remove_file(&p).ok();
        reset();
    }
}
