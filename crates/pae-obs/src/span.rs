//! Scoped spans with thread-aware parent tracking, plus point events.
//!
//! Each thread keeps a current-span cursor in a thread local; entering a
//! span makes it the parent of everything emitted until the guard is
//! dropped. Worker threads (e.g. `pae_runtime::parallel_map`) capture
//! [`current_span`] before spawning and re-establish it on the worker via
//! [`with_parent`], so traces stay parent-linked across the pool.

use std::cell::Cell;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use crate::collector::{enabled, provenance_enabled, push};
use crate::record::{FieldValue, RecordKind};

static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static CURRENT_SPAN: Cell<u64> = const { Cell::new(0) };
}

/// The span id enclosing the calling thread right now (0 = no span).
pub fn current_span() -> u64 {
    CURRENT_SPAN.with(|c| c.get())
}

/// Runs `f` with `parent` installed as the calling thread's current span.
///
/// This is the cross-thread propagation hook: capture [`current_span`]
/// on the spawning thread, then wrap the worker body in `with_parent` so
/// spans and events it emits link back to the spawner's span tree. The
/// previous cursor is restored even if `f` panics.
pub fn with_parent<R>(parent: u64, f: impl FnOnce() -> R) -> R {
    struct Restore(u64);
    impl Drop for Restore {
        fn drop(&mut self) {
            CURRENT_SPAN.with(|c| c.set(self.0));
        }
    }
    let prev = CURRENT_SPAN.with(|c| c.replace(parent));
    let _restore = Restore(prev);
    f()
}

/// An entered span; ends (emitting `span_end` with `dur_ns`) on drop or
/// via [`SpanGuard::finish`].
///
/// Deliberately `!Send`: a guard must end on the thread that opened it,
/// otherwise the per-thread parent cursor would be corrupted.
pub struct SpanGuard {
    id: u64,
    prev: u64,
    start: Instant,
    name: &'static str,
    ended: bool,
    /// Allocation-attribution window, open only while profiling is
    /// enabled ([`crate::set_prof_enabled`]); its deltas land as
    /// `alloc_bytes` / `alloc_count` / `peak_live_bytes` fields on the
    /// `span_end` record. Attribution is per-thread: a worker thread's
    /// allocations count toward the worker's own spans, not toward the
    /// spawning span this guard belongs to.
    alloc: Option<crate::prof::SpanAllocSnapshot>,
    _not_send: PhantomData<*const ()>,
}

/// Opens a span named `name` under the thread's current span.
pub fn span(name: &'static str) -> SpanGuard {
    span_fields(name, Vec::new())
}

/// Opens a span with extra fields on its `span_start` record.
pub fn span_fields(name: &'static str, fields: Vec<(String, FieldValue)>) -> SpanGuard {
    let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
    let prev = CURRENT_SPAN.with(|c| c.replace(id));
    push(RecordKind::SpanStart, id, prev, name, fields);
    // Snapshot after the start record is pushed so the record's own
    // allocations don't charge to this span.
    let alloc = crate::prof::span_alloc_begin();
    SpanGuard {
        id,
        prev,
        start: Instant::now(),
        name,
        ended: false,
        alloc,
        _not_send: PhantomData,
    }
}

impl SpanGuard {
    /// This span's id (hand it to [`with_parent`] on worker threads).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Ends the span now and returns its wall-clock duration.
    ///
    /// The duration is telemetry: callers may record it (e.g. in
    /// `StageTimings`) but must not let it influence pipeline results.
    pub fn finish(mut self) -> Duration {
        self.end()
    }

    fn end(&mut self) -> Duration {
        let dur = self.start.elapsed();
        if !self.ended {
            self.ended = true;
            CURRENT_SPAN.with(|c| c.set(self.prev));
            let mut fields = vec![("dur_ns".into(), FieldValue::U64(dur.as_nanos() as u64))];
            // Close the attribution window before pushing the end
            // record, so the record's own allocations stay out.
            if let Some(snap) = self.alloc.take() {
                let (bytes, count, peak) = crate::prof::span_alloc_end(snap);
                fields.push(("alloc_bytes".into(), FieldValue::U64(bytes)));
                fields.push(("alloc_count".into(), FieldValue::U64(count)));
                fields.push(("peak_live_bytes".into(), FieldValue::U64(peak)));
            }
            push(RecordKind::SpanEnd, self.id, self.prev, self.name, fields);
        }
        dur
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        self.end();
    }
}

/// Records an already-measured interval as a complete span (a
/// `span_start`/`span_end` pair under the current span, with the given
/// duration on the end record).
///
/// This is the aggregation hook for high-frequency sub-stages: code
/// that runs thousands of times per enclosing stage (e.g. gradient
/// evaluations inside an optimizer) accumulates its own wall time and
/// emits **one** record pair, instead of flooding the bounded ring —
/// a truncated trace would mark downstream summaries `incomplete`.
pub fn span_complete(name: &'static str, dur: Duration, fields: Vec<(String, FieldValue)>) {
    if !enabled() {
        return;
    }
    let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
    let parent = current_span();
    push(RecordKind::SpanStart, id, parent, name, fields);
    push(
        RecordKind::SpanEnd,
        id,
        parent,
        name,
        vec![("dur_ns".into(), FieldValue::U64(dur.as_nanos() as u64))],
    );
}

/// Emits an info-level point event under the current span.
pub fn event(name: &str, fields: Vec<(String, FieldValue)>) {
    emit(name, "info", fields);
}

/// Emits a warn-level point event under the current span.
pub fn warn(name: &str, fields: Vec<(String, FieldValue)>) {
    emit(name, "warn", fields);
}

fn emit(name: &str, level: &'static str, mut fields: Vec<(String, FieldValue)>) {
    if !enabled() {
        return;
    }
    fields.insert(0, ("level".into(), FieldValue::Str(level.into())));
    push(RecordKind::Event, current_span(), 0, name, fields);
}

/// Emits one provenance record under the current span (no-op unless
/// provenance collection is enabled via
/// [`set_provenance_enabled`](crate::set_provenance_enabled)).
///
/// Callers emit these sequentially on one thread in a canonical order
/// (the determinism suite asserts the resulting lineage ledger is
/// byte-identical across thread counts), so the record stream itself
/// stays deterministic apart from timestamps.
pub fn provenance(name: &str, fields: Vec<(String, FieldValue)>) {
    if !provenance_enabled() {
        return;
    }
    push(RecordKind::Provenance, current_span(), 0, name, fields);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collector::{clear, set_enabled, snapshot};
    use crate::test_lock;

    #[test]
    fn spans_nest_and_restore_cursor() {
        let _l = test_lock();
        set_enabled(true);
        clear();
        assert_eq!(current_span(), 0);
        {
            let outer = span("outer");
            assert_eq!(current_span(), outer.id());
            {
                let inner = span("inner");
                assert_eq!(current_span(), inner.id());
                event("tick", vec![("n".into(), 1u64.into())]);
            }
            assert_eq!(current_span(), outer.id());
        }
        assert_eq!(current_span(), 0);

        let records = snapshot();
        let starts: Vec<_> = records
            .iter()
            .filter(|r| r.kind == RecordKind::SpanStart)
            .collect();
        assert_eq!(starts.len(), 2);
        let outer_id = starts[0].span;
        assert_eq!(starts[0].parent, 0);
        assert_eq!(starts[1].parent, outer_id, "inner links to outer");
        let tick = records.iter().find(|r| r.name == "tick").unwrap();
        assert_eq!(tick.span, starts[1].span, "event lands in the inner span");
        let ends = records
            .iter()
            .filter(|r| r.kind == RecordKind::SpanEnd)
            .count();
        assert_eq!(ends, 2);
        set_enabled(false);
        clear();
    }

    #[test]
    fn finish_reports_duration_once() {
        let _l = test_lock();
        set_enabled(true);
        clear();
        let s = span("timed");
        let dur = s.finish();
        assert!(dur.as_nanos() > 0);
        let ends = snapshot()
            .iter()
            .filter(|r| r.kind == RecordKind::SpanEnd)
            .count();
        assert_eq!(ends, 1, "finish + drop emit exactly one span_end");
        set_enabled(false);
        clear();
    }

    #[test]
    fn span_complete_emits_one_pair_with_explicit_duration() {
        let _l = test_lock();
        set_enabled(true);
        clear();
        {
            let outer = span("stage");
            span_complete(
                "stage.sub",
                Duration::from_nanos(1234),
                vec![("calls".into(), 7u64.into())],
            );
            drop(outer);
        }
        let records = snapshot();
        let start = records
            .iter()
            .find(|r| r.kind == RecordKind::SpanStart && r.name == "stage.sub")
            .expect("synthetic span start");
        let end = records
            .iter()
            .find(|r| r.kind == RecordKind::SpanEnd && r.name == "stage.sub")
            .expect("synthetic span end");
        let outer_id = records
            .iter()
            .find(|r| r.kind == RecordKind::SpanStart && r.name == "stage")
            .unwrap()
            .span;
        assert_eq!(start.parent, outer_id, "nested under the current span");
        assert_eq!(start.field("calls"), Some(&FieldValue::U64(7)));
        assert_eq!(end.field("dur_ns"), Some(&FieldValue::U64(1234)));
        set_enabled(false);
        clear();
    }

    #[test]
    fn with_parent_restores_on_exit() {
        let _l = test_lock();
        let before = current_span();
        with_parent(42, || assert_eq!(current_span(), 42));
        assert_eq!(current_span(), before);
    }
}
