//! The trace record model shared by the collector and the exporters.

/// A typed field value attached to spans, events, and metric points.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point (non-finite values export as JSON `null`).
    F64(f64),
    /// String.
    Str(String),
    /// Boolean.
    Bool(bool),
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::U64(v)
    }
}

impl From<usize> for FieldValue {
    fn from(v: usize) -> Self {
        FieldValue::U64(v as u64)
    }
}

impl From<i64> for FieldValue {
    fn from(v: i64) -> Self {
        FieldValue::I64(v)
    }
}

impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        FieldValue::F64(v)
    }
}

impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_string())
    }
}

impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}

impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}

/// What a [`TraceRecord`] describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordKind {
    /// A span began; `span` is its id, `parent` its enclosing span (0 =
    /// root).
    SpanStart,
    /// A span ended; `fields` carries `dur_ns`.
    SpanEnd,
    /// A point event inside the current span; `fields` carries `level`
    /// (`info` or `warn`) plus caller fields.
    Event,
    /// One point of a step-indexed metric series (e.g. an optimizer
    /// step); `fields` carries `step` and `value`.
    Metric,
    /// One decision in a candidate triple's lineage (origin, veto,
    /// semantic score, correction, disposition); `fields` carries the
    /// stage-specific payload keyed by `attr`/`value`.
    Provenance,
}

impl RecordKind {
    /// The `type` string used in the JSONL export.
    pub fn type_str(self) -> &'static str {
        match self {
            RecordKind::SpanStart => "span_start",
            RecordKind::SpanEnd => "span_end",
            RecordKind::Event => "event",
            RecordKind::Metric => "metric",
            RecordKind::Provenance => "provenance",
        }
    }
}

/// One entry of the bounded trace ring buffer.
///
/// Records are appended atomically under one lock, so `seq` is strictly
/// increasing and records from concurrent workers never interleave
/// within a record.
#[derive(Debug, Clone)]
pub struct TraceRecord {
    /// Strictly increasing sequence number (collection order).
    pub seq: u64,
    /// Nanoseconds since the collector epoch (monotonic clock; telemetry
    /// only — never feeds back into pipeline results).
    pub t_ns: u64,
    /// Small per-thread ordinal (assigned on first emission).
    pub thread: u64,
    /// Record type.
    pub kind: RecordKind,
    /// Span id for span records; the enclosing span for events/metrics.
    pub span: u64,
    /// Parent span id (meaningful for [`RecordKind::SpanStart`]; 0 = root).
    pub parent: u64,
    /// Span, event, or metric name.
    pub name: String,
    /// Typed payload fields.
    pub fields: Vec<(String, FieldValue)>,
}

impl TraceRecord {
    /// Looks up a field by key.
    pub fn field(&self, key: &str) -> Option<&FieldValue> {
        self.fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_lookup() {
        let r = TraceRecord {
            seq: 0,
            t_ns: 0,
            thread: 0,
            kind: RecordKind::Event,
            span: 0,
            parent: 0,
            name: "e".into(),
            fields: vec![("k".into(), FieldValue::U64(7))],
        };
        assert_eq!(r.field("k"), Some(&FieldValue::U64(7)));
        assert_eq!(r.field("missing"), None);
    }

    #[test]
    fn from_impls_cover_common_types() {
        assert_eq!(FieldValue::from(3usize), FieldValue::U64(3));
        assert_eq!(FieldValue::from(-2i64), FieldValue::I64(-2));
        assert_eq!(FieldValue::from("x"), FieldValue::Str("x".into()));
        assert_eq!(FieldValue::from(true), FieldValue::Bool(true));
    }
}
