//! Human console exporter: renders the collected spans as an indented
//! tree with durations, collapsing repeated siblings (e.g. per-category
//! fan-out spans) into one `name ×N` line with aggregate time.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::collector;
use crate::record::{RecordKind, TraceRecord};

struct Node {
    name: String,
    dur_ns: u64,
    children: Vec<u64>,
}

fn ms(ns: u64) -> String {
    format!("{:.1}ms", ns as f64 / 1e6)
}

fn render_children(out: &mut String, nodes: &BTreeMap<u64, Node>, children: &[u64], depth: usize) {
    // Collapse siblings that share a name, preserving first-seen order.
    let mut order: Vec<&str> = Vec::new();
    let mut groups: BTreeMap<&str, (u64, u64, Vec<u64>)> = BTreeMap::new();
    for id in children {
        let node = &nodes[id];
        let entry = groups.entry(&node.name).or_insert_with(|| {
            order.push(&node.name);
            (0, 0, Vec::new())
        });
        entry.0 += 1;
        entry.1 += node.dur_ns;
        entry.2.push(*id);
    }
    for name in order {
        let (count, total_ns, ids) = &groups[name];
        let indent = "  ".repeat(depth);
        if *count == 1 {
            let _ = writeln!(out, "{indent}{name}  {}", ms(*total_ns));
            render_children(out, nodes, &nodes[&ids[0]].children, depth + 1);
        } else {
            let _ = writeln!(out, "{indent}{name} ×{count}  {} total", ms(*total_ns));
            // Merge the grandchildren of every collapsed sibling so the
            // subtree stays aggregated too.
            let merged: Vec<u64> = ids
                .iter()
                .flat_map(|id| nodes[id].children.iter().copied())
                .collect();
            render_children(out, nodes, &merged, depth + 1);
        }
    }
}

/// Renders a span tree from an explicit record snapshot.
pub fn render_tree(records: &[TraceRecord]) -> String {
    let mut nodes: BTreeMap<u64, Node> = BTreeMap::new();
    let mut roots: Vec<u64> = Vec::new();
    for r in records {
        match r.kind {
            RecordKind::SpanStart => {
                nodes.insert(
                    r.span,
                    Node {
                        name: r.name.clone(),
                        dur_ns: 0,
                        children: Vec::new(),
                    },
                );
                if r.parent != 0 && nodes.contains_key(&r.parent) {
                    let parent = r.parent;
                    let id = r.span;
                    nodes.get_mut(&parent).unwrap().children.push(id);
                } else {
                    roots.push(r.span);
                }
            }
            RecordKind::SpanEnd => {
                if let Some(n) = nodes.get_mut(&r.span) {
                    n.dur_ns = r
                        .field("dur_ns")
                        .and_then(|v| match v {
                            crate::record::FieldValue::U64(n) => Some(*n),
                            _ => None,
                        })
                        .unwrap_or(0);
                }
            }
            _ => {}
        }
    }
    let mut out = String::new();
    if nodes.is_empty() {
        out.push_str("(no spans collected)\n");
        return out;
    }
    render_children(&mut out, &nodes, &roots, 0);
    out
}

/// Renders the current global collector state.
pub fn render_current() -> String {
    render_tree(&collector::snapshot())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::FieldValue;

    fn start(seq: u64, span: u64, parent: u64, name: &str) -> TraceRecord {
        TraceRecord {
            seq,
            t_ns: 0,
            thread: 0,
            kind: RecordKind::SpanStart,
            span,
            parent,
            name: name.into(),
            fields: vec![],
        }
    }

    fn end(seq: u64, span: u64, name: &str, dur_ns: u64) -> TraceRecord {
        TraceRecord {
            seq,
            t_ns: 0,
            thread: 0,
            kind: RecordKind::SpanEnd,
            span,
            parent: 0,
            name: name.into(),
            fields: vec![("dur_ns".into(), FieldValue::U64(dur_ns))],
        }
    }

    #[test]
    fn tree_nests_and_collapses_repeats() {
        let records = vec![
            start(0, 1, 0, "bootstrap.run"),
            start(1, 2, 1, "iteration"),
            start(2, 3, 2, "train"),
            end(3, 3, "train", 2_000_000),
            end(4, 2, "iteration", 3_000_000),
            start(5, 4, 1, "iteration"),
            start(6, 5, 4, "train"),
            end(7, 5, "train", 4_000_000),
            end(8, 4, "iteration", 5_000_000),
            end(9, 1, "bootstrap.run", 9_000_000),
        ];
        let tree = render_tree(&records);
        assert!(tree.contains("bootstrap.run  9.0ms"));
        assert!(tree.contains("  iteration ×2  8.0ms total"));
        assert!(tree.contains("    train ×2  6.0ms total"));
    }

    #[test]
    fn empty_trace_renders_placeholder() {
        assert_eq!(render_tree(&[]), "(no spans collected)\n");
    }
}
