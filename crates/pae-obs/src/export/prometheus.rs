//! Prometheus-style text exposition of the metrics registry.
//!
//! Metric and label names are sanitized (`.` and other non-identifier
//! characters become `_`). Histograms export cumulative
//! `_bucket{le="..."}` lines plus `_count` and `_sum`, matching the
//! classic exposition format.

use std::fmt::Write as _;

use crate::metrics::{Histogram, MetricKey, MetricValue, HISTOGRAM_BUCKETS};

fn sanitize(name: &str) -> String {
    let mut out: String = name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if out.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        out.insert(0, '_');
    }
    out
}

fn label_block(labels: &[(String, String)], extra: Option<(&str, &str)>) -> String {
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| {
            format!(
                "{}=\"{}\"",
                sanitize(k),
                v.replace('\\', "\\\\").replace('"', "\\\"")
            )
        })
        .collect();
    if let Some((k, v)) = extra {
        parts.push(format!("{k}=\"{v}\""));
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", parts.join(","))
    }
}

fn fmt_num(v: f64) -> String {
    if v == f64::INFINITY {
        "+Inf".into()
    } else if v == f64::NEG_INFINITY {
        "-Inf".into()
    } else if v.is_nan() {
        "NaN".into()
    } else {
        format!("{v}")
    }
}

fn render_histogram(out: &mut String, name: &str, labels: &[(String, String)], h: &Histogram) {
    let mut cumulative = 0u64;
    for i in 0..HISTOGRAM_BUCKETS {
        cumulative += h.buckets[i];
        if h.buckets[i] > 0 || i == HISTOGRAM_BUCKETS - 1 {
            let le = if i == HISTOGRAM_BUCKETS - 1 {
                "+Inf".to_string()
            } else {
                fmt_num(Histogram::bucket_upper_bound(i))
            };
            let _ = writeln!(
                out,
                "{}_bucket{} {}",
                name,
                label_block(labels, Some(("le", &le))),
                cumulative
            );
        }
    }
    let _ = writeln!(
        out,
        "{}_count{} {}",
        name,
        label_block(labels, None),
        h.count
    );
    let _ = writeln!(
        out,
        "{}_sum{} {}",
        name,
        label_block(labels, None),
        fmt_num(h.sum)
    );
}

/// Renders an explicit metrics snapshot as Prometheus text.
pub fn render(snapshot: &[(MetricKey, MetricValue)]) -> String {
    let mut out = String::new();
    let mut last_name = String::new();
    for (key, value) in snapshot {
        let name = sanitize(&key.name);
        if name != last_name {
            let kind = match value {
                MetricValue::Counter(_) => "counter",
                MetricValue::Gauge(_) => "gauge",
                MetricValue::Histogram(_) => "histogram",
            };
            let _ = writeln!(out, "# TYPE {name} {kind}");
            last_name = name.clone();
        }
        match value {
            MetricValue::Counter(c) => {
                let _ = writeln!(out, "{}{} {}", name, label_block(&key.labels, None), c);
            }
            MetricValue::Gauge(g) => {
                let _ = writeln!(
                    out,
                    "{}{} {}",
                    name,
                    label_block(&key.labels, None),
                    fmt_num(*g)
                );
            }
            MetricValue::Histogram(h) => render_histogram(&mut out, &name, &key.labels, h),
        }
    }
    out
}

/// Renders the current global registry, including the synthetic
/// `obs.records_dropped` gauge (warning on stderr once if the ring
/// buffer overflowed).
pub fn render_current() -> String {
    crate::export::warn_if_truncated();
    render(&crate::export::registry_with_overflow())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sanitizes_names_and_renders_all_kinds() {
        let mut hist = Histogram::default();
        hist.buckets[32] = 2;
        hist.buckets[33] = 1;
        hist.count = 3;
        hist.sum = 5.0;
        hist.min = 1.0;
        hist.max = 3.0;
        let snap = vec![
            (
                MetricKey {
                    name: "veto.dropped".into(),
                    labels: vec![("rule".into(), "symbols".into())],
                },
                MetricValue::Counter(7),
            ),
            (
                MetricKey {
                    name: "bootstrap.triples".into(),
                    labels: vec![],
                },
                MetricValue::Gauge(42.0),
            ),
            (
                MetricKey {
                    name: "crf.lbfgs.nll".into(),
                    labels: vec![],
                },
                MetricValue::Histogram(Box::new(hist)),
            ),
        ];
        let text = render(&snap);
        assert!(text.contains("# TYPE veto_dropped counter"));
        assert!(text.contains("veto_dropped{rule=\"symbols\"} 7"));
        assert!(text.contains("bootstrap_triples 42"));
        assert!(text.contains("crf_lbfgs_nll_bucket{le=\"2\"} 2"));
        assert!(text.contains("crf_lbfgs_nll_bucket{le=\"4\"} 3"));
        assert!(text.contains("crf_lbfgs_nll_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("crf_lbfgs_nll_count 3"));
        assert!(text.contains("crf_lbfgs_nll_sum 5"));
    }
}
