//! Prometheus-style text exposition of the metrics registry, plus a
//! parser/validator for scraped expositions.
//!
//! Metric and label names are sanitized (`.` and other non-identifier
//! characters become `_`). Label *values* are escaped per the
//! exposition format: `\` → `\\`, `"` → `\"`, newline → `\n` (a raw
//! newline in a label value used to split the sample across two lines
//! and corrupt the whole exposition). Histograms export cumulative
//! `_bucket{le="..."}` lines plus `_count` and `_sum` under one
//! `# TYPE <family> histogram` header, matching the classic format.
//!
//! [`render`] works over any explicit snapshot (the trace-derived
//! path); [`render_live`] is the serving path — it merges the live
//! global registry with caller-supplied metrics (windowed gauges,
//! process gauges) into one sorted exposition. [`parse_text`] and
//! [`validate`] let scrapers (the load generator, CI schema checks)
//! consume an exposition without a real Prometheus server.

use std::fmt::Write as _;

use crate::metrics::{Histogram, MetricKey, MetricValue, HISTOGRAM_BUCKETS};

fn sanitize(name: &str) -> String {
    let mut out: String = name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if out.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        out.insert(0, '_');
    }
    out
}

/// Escapes a label value per the exposition format: backslash, double
/// quote, and newline (the latter was previously passed through raw,
/// splitting the sample line in two).
fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

fn label_block(labels: &[(String, String)], extra: Option<(&str, &str)>) -> String {
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{}=\"{}\"", sanitize(k), escape_label_value(v)))
        .collect();
    if let Some((k, v)) = extra {
        parts.push(format!("{k}=\"{}\"", escape_label_value(v)));
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", parts.join(","))
    }
}

fn fmt_num(v: f64) -> String {
    if v == f64::INFINITY {
        "+Inf".into()
    } else if v == f64::NEG_INFINITY {
        "-Inf".into()
    } else if v.is_nan() {
        "NaN".into()
    } else {
        format!("{v}")
    }
}

fn render_histogram(out: &mut String, name: &str, labels: &[(String, String)], h: &Histogram) {
    let mut cumulative = 0u64;
    for i in 0..HISTOGRAM_BUCKETS {
        cumulative += h.buckets[i];
        if h.buckets[i] > 0 || i == HISTOGRAM_BUCKETS - 1 {
            let le = if i == HISTOGRAM_BUCKETS - 1 {
                "+Inf".to_string()
            } else {
                fmt_num(Histogram::bucket_upper_bound(i))
            };
            let _ = writeln!(
                out,
                "{}_bucket{} {}",
                name,
                label_block(labels, Some(("le", &le))),
                cumulative
            );
        }
    }
    let _ = writeln!(
        out,
        "{}_count{} {}",
        name,
        label_block(labels, None),
        h.count
    );
    let _ = writeln!(
        out,
        "{}_sum{} {}",
        name,
        label_block(labels, None),
        fmt_num(h.sum)
    );
}

/// Renders an explicit metrics snapshot as Prometheus text. The
/// snapshot must be sorted by key (as [`crate::metrics_snapshot`]
/// returns it) so each family gets exactly one `# TYPE` header.
pub fn render(snapshot: &[(MetricKey, MetricValue)]) -> String {
    let mut out = String::new();
    let mut last_name = String::new();
    for (key, value) in snapshot {
        let name = sanitize(&key.name);
        if name != last_name {
            let kind = match value {
                MetricValue::Counter(_) => "counter",
                MetricValue::Gauge(_) => "gauge",
                MetricValue::Histogram(_) => "histogram",
            };
            let _ = writeln!(out, "# TYPE {name} {kind}");
            last_name = name.clone();
        }
        match value {
            MetricValue::Counter(c) => {
                let _ = writeln!(out, "{}{} {}", name, label_block(&key.labels, None), c);
            }
            MetricValue::Gauge(g) => {
                let _ = writeln!(
                    out,
                    "{}{} {}",
                    name,
                    label_block(&key.labels, None),
                    fmt_num(*g)
                );
            }
            MetricValue::Histogram(h) => render_histogram(&mut out, &name, &key.labels, h),
        }
    }
    out
}

/// Renders the current global registry, including the synthetic
/// `obs.records_dropped` gauge (warning on stderr once if the ring
/// buffer overflowed).
pub fn render_current() -> String {
    crate::export::warn_if_truncated();
    render(&crate::export::registry_with_overflow())
}

/// Renders the live serving view: the global registry (with the
/// overflow gauge) merged with caller-supplied metrics — windowed
/// quantile gauges, process gauges, a server's own always-on counters.
/// The merged set is re-sorted so `# TYPE` headers stay one-per-family
/// even when `extra` interleaves names with the registry.
pub fn render_live(extra: Vec<(MetricKey, MetricValue)>) -> String {
    let mut snapshot = crate::export::registry_with_overflow();
    snapshot.extend(extra);
    snapshot.sort_by(|(a, _), (b, _)| a.cmp(b));
    render(&snapshot)
}

// ---------------------------------------------------------------------
// Parsing and validating scraped expositions.

/// One parsed sample line: sanitized metric name, label pairs (with
/// escapes resolved), and the numeric value.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Sample name as exposed (e.g. `serve_request_ns_bucket`).
    pub name: String,
    /// Label pairs in exposition order.
    pub labels: Vec<(String, String)>,
    /// Parsed value (`+Inf`/`-Inf`/`NaN` accepted).
    pub value: f64,
}

impl Sample {
    /// The value of label `key`, if present.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && !name.starts_with(|c: char| c.is_ascii_digit())
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn parse_value(s: &str) -> Result<f64, String> {
    match s {
        "+Inf" => Ok(f64::INFINITY),
        "-Inf" => Ok(f64::NEG_INFINITY),
        "NaN" => Ok(f64::NAN),
        other => other
            .parse::<f64>()
            .map_err(|_| format!("not a number: {other:?}")),
    }
}

fn parse_sample(line: &str) -> Result<Sample, String> {
    let (head, value) = match line.find('{') {
        None => {
            let (name, value) = line
                .split_once(' ')
                .ok_or_else(|| format!("no value separator in {line:?}"))?;
            return Ok(Sample {
                name: name.to_owned(),
                labels: Vec::new(),
                value: parse_value(value.trim())?,
            });
        }
        Some(_) => {
            let close = line
                .rfind('}')
                .ok_or_else(|| format!("unclosed label block in {line:?}"))?;
            (&line[..close + 1], line[close + 1..].trim())
        }
    };
    let open = head.find('{').expect("checked above");
    let name = &head[..open];
    let mut labels = Vec::new();
    let mut rest = &head[open + 1..head.len() - 1];
    while !rest.is_empty() {
        let eq = rest
            .find('=')
            .ok_or_else(|| format!("label without '=' in {line:?}"))?;
        let key = rest[..eq].trim().to_owned();
        let after = &rest[eq + 1..];
        if !after.starts_with('"') {
            return Err(format!("unquoted label value in {line:?}"));
        }
        // Walk the quoted value resolving escapes.
        let mut value = String::new();
        let mut chars = after[1..].char_indices();
        let mut consumed = None;
        while let Some((i, c)) = chars.next() {
            match c {
                '\\' => match chars.next() {
                    Some((_, 'n')) => value.push('\n'),
                    Some((_, e)) => value.push(e),
                    None => return Err(format!("dangling escape in {line:?}")),
                },
                '"' => {
                    consumed = Some(i + 1);
                    break;
                }
                c => value.push(c),
            }
        }
        let consumed = consumed.ok_or_else(|| format!("unterminated label value in {line:?}"))?;
        labels.push((key, value));
        rest = after[1 + consumed..].trim_start_matches(',').trim_start();
    }
    Ok(Sample {
        name: name.to_owned(),
        labels,
        value: parse_value(value)?,
    })
}

/// Parses an exposition into its sample lines (comments skipped).
pub fn parse_text(text: &str) -> Result<Vec<Sample>, String> {
    let mut out = Vec::new();
    for (n, line) in text.lines().enumerate() {
        let line = line.trim_end();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        out.push(parse_sample(line).map_err(|e| format!("line {}: {e}", n + 1))?);
    }
    Ok(out)
}

/// Schema-checks an exposition as this module writes it: every sample
/// parses, names are legal, every family is preceded by exactly one
/// `# TYPE` header, and histogram families have cumulative
/// non-decreasing buckets ending in `+Inf` whose total matches
/// `_count`, plus a `_sum`. Returns the number of samples on success.
pub fn validate(text: &str) -> Result<usize, String> {
    use std::collections::BTreeMap;
    let mut types: BTreeMap<String, String> = BTreeMap::new();
    for (n, line) in text.lines().enumerate() {
        let line = line.trim_end();
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split(' ');
            let family = parts.next().unwrap_or_default();
            let kind = parts.next().unwrap_or_default();
            if !valid_name(family) {
                return Err(format!("line {}: bad family name {family:?}", n + 1));
            }
            if !matches!(
                kind,
                "counter" | "gauge" | "histogram" | "summary" | "untyped"
            ) {
                return Err(format!("line {}: bad TYPE kind {kind:?}", n + 1));
            }
            if types.insert(family.to_owned(), kind.to_owned()).is_some() {
                return Err(format!("line {}: duplicate TYPE for {family:?}", n + 1));
            }
        }
    }
    let samples = parse_text(text)?;
    // family of a sample: the histogram suffixes collapse to the base.
    let family_of = |s: &Sample| -> String {
        for suffix in ["_bucket", "_count", "_sum"] {
            if let Some(base) = s.name.strip_suffix(suffix) {
                if types.get(base).map(String::as_str) == Some("histogram") {
                    return base.to_owned();
                }
            }
        }
        s.name.clone()
    };
    let mut hist_buckets: BTreeMap<String, Vec<(f64, f64)>> = BTreeMap::new();
    let mut hist_counts: BTreeMap<String, f64> = BTreeMap::new();
    let mut hist_sums: BTreeMap<String, bool> = BTreeMap::new();
    for s in &samples {
        if !valid_name(&s.name) {
            return Err(format!("bad sample name {:?}", s.name));
        }
        for (k, _) in &s.labels {
            if !valid_name(k) {
                return Err(format!("{}: bad label name {k:?}", s.name));
            }
        }
        let family = family_of(s);
        if !types.contains_key(&family) {
            return Err(format!("sample {} has no # TYPE header", s.name));
        }
        if types.get(&family).map(String::as_str) == Some("histogram") {
            // Key the series by family plus its labels minus `le`.
            let series: Vec<String> = s
                .labels
                .iter()
                .filter(|(k, _)| k != "le")
                .map(|(k, v)| format!("{k}={v}"))
                .collect();
            let key = format!("{family}|{}", series.join(","));
            if s.name.ends_with("_bucket") {
                let le = s
                    .label("le")
                    .ok_or_else(|| format!("{}: bucket without le", s.name))?;
                let bound = parse_value(le).map_err(|e| format!("{}: {e}", s.name))?;
                hist_buckets.entry(key).or_default().push((bound, s.value));
            } else if s.name.ends_with("_count") {
                hist_counts.insert(key, s.value);
            } else if s.name.ends_with("_sum") {
                hist_sums.insert(key, true);
            }
        }
    }
    for (key, buckets) in &hist_buckets {
        let mut prev_bound = f64::NEG_INFINITY;
        let mut prev_cum = -1.0;
        for &(bound, cum) in buckets {
            if bound <= prev_bound {
                return Err(format!("{key}: bucket bounds not increasing"));
            }
            if cum < prev_cum {
                return Err(format!("{key}: cumulative bucket counts decreased"));
            }
            prev_bound = bound;
            prev_cum = cum;
        }
        let (last_bound, last_cum) = *buckets.last().expect("non-empty by construction");
        if last_bound != f64::INFINITY {
            return Err(format!("{key}: histogram missing +Inf bucket"));
        }
        match hist_counts.get(key) {
            Some(&count) if count == last_cum => {}
            Some(&count) => return Err(format!("{key}: _count {count} != +Inf bucket {last_cum}")),
            None => return Err(format!("{key}: histogram missing _count")),
        }
        if !hist_sums.contains_key(key) {
            return Err(format!("{key}: histogram missing _sum"));
        }
    }
    Ok(samples.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hist(values: &[f64]) -> Histogram {
        let mut h = Histogram::default();
        for &v in values {
            h.observe(v);
        }
        h
    }

    #[test]
    fn sanitizes_names_and_renders_all_kinds() {
        let snap = vec![
            (
                MetricKey {
                    name: "bootstrap.triples".into(),
                    labels: vec![],
                },
                MetricValue::Gauge(42.0),
            ),
            (
                MetricKey {
                    name: "crf.lbfgs.nll".into(),
                    labels: vec![],
                },
                MetricValue::Histogram(Box::new(hist(&[1.0, 1.5, 3.0]))),
            ),
            (
                MetricKey {
                    name: "veto.dropped".into(),
                    labels: vec![("rule".into(), "symbols".into())],
                },
                MetricValue::Counter(7),
            ),
        ];
        let text = render(&snap);
        assert!(text.contains("# TYPE veto_dropped counter"));
        assert!(text.contains("veto_dropped{rule=\"symbols\"} 7"));
        assert!(text.contains("bootstrap_triples 42"));
        assert!(text.contains("# TYPE crf_lbfgs_nll histogram"));
        assert!(text.contains("crf_lbfgs_nll_bucket{le=\"2\"} 2"));
        assert!(text.contains("crf_lbfgs_nll_bucket{le=\"4\"} 3"));
        assert!(text.contains("crf_lbfgs_nll_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("crf_lbfgs_nll_count 3"));
        assert!(text.contains("crf_lbfgs_nll_sum 5.5"));
        assert_eq!(validate(&text).expect("valid exposition"), 7);
    }

    #[test]
    fn label_values_escape_backslash_quote_and_newline() {
        let snap = vec![(
            MetricKey {
                name: "veto.dropped".into(),
                labels: vec![("rule".into(), "a\\b\"c\nd".into())],
            },
            MetricValue::Counter(1),
        )];
        let text = render(&snap);
        assert!(
            text.contains("veto_dropped{rule=\"a\\\\b\\\"c\\nd\"} 1"),
            "{text}"
        );
        // The raw newline must NOT split the sample line.
        assert_eq!(text.lines().count(), 2, "{text}");
        let samples = parse_text(&text).expect("round-trips");
        assert_eq!(samples[0].label("rule"), Some("a\\b\"c\nd"));
        validate(&text).expect("escaped exposition validates");
    }

    #[test]
    fn parse_text_handles_all_sample_shapes() {
        let text = "# TYPE x counter\nx 3\n# TYPE y gauge\ny{a=\"1\",b=\"two\"} 1.5\n\
                    # TYPE z gauge\nz{inf=\"yes\"} +Inf\n";
        let samples = parse_text(text).expect("parses");
        assert_eq!(samples.len(), 3);
        assert_eq!(samples[0].name, "x");
        assert_eq!(samples[0].value, 3.0);
        assert_eq!(samples[1].label("b"), Some("two"));
        assert_eq!(samples[2].value, f64::INFINITY);
        assert!(parse_text("nope").is_err());
        assert!(parse_text("bad{unclosed 1").is_err());
    }

    #[test]
    fn validate_rejects_schema_violations() {
        // Missing TYPE header.
        assert!(validate("orphan 1\n").is_err());
        // Histogram with decreasing cumulative counts.
        let bad = "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 3\n\
                   h_count 3\nh_sum 2\n";
        assert!(validate(bad).unwrap_err().contains("decreased"));
        // Histogram whose _count disagrees with the +Inf bucket.
        let bad = "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 3\nh_count 4\nh_sum 2\n";
        assert!(validate(bad).unwrap_err().contains("_count"));
        // Histogram without +Inf.
        let bad = "# TYPE h histogram\nh_bucket{le=\"2\"} 3\nh_count 3\nh_sum 2\n";
        assert!(validate(bad).unwrap_err().contains("+Inf"));
        // Duplicate TYPE headers.
        assert!(validate("# TYPE x counter\n# TYPE x counter\nx 1\n").is_err());
    }

    #[test]
    fn empty_live_histogram_renders_and_validates() {
        // A histogram family that exists but has observed nothing (a
        // serving histogram before the first request): only the +Inf
        // bucket at 0, _count 0, and _sum 0 — and the validator must
        // accept the degenerate-but-legal shape.
        let extra = vec![(
            MetricKey {
                name: "serve.request_ns".into(),
                labels: vec![("route".into(), "extract".into())],
            },
            MetricValue::Histogram(Box::default()),
        )];
        let text = render_live(extra);
        assert!(
            text.contains("serve_request_ns_bucket{route=\"extract\",le=\"+Inf\"} 0"),
            "{text}"
        );
        assert!(text.contains("serve_request_ns_count{route=\"extract\"} 0"));
        assert!(text.contains("serve_request_ns_sum{route=\"extract\"} 0"));
        validate(&text).expect("empty histogram validates");
        let samples = parse_text(&text).expect("parses");
        let inf = samples
            .iter()
            .find(|s| s.name == "serve_request_ns_bucket")
            .expect("+Inf bucket present");
        assert_eq!(inf.label("le"), Some("+Inf"));
        assert_eq!(inf.value, 0.0);
    }

    #[test]
    fn escaped_labels_round_trip_through_the_live_path() {
        // Every escape-worthy character, rendered through render_live
        // (the serving scrape path), must parse back verbatim and pass
        // the validator.
        let hostile = "back\\slash \"quoted\"\nsecond line";
        let extra = vec![(
            MetricKey {
                name: "serve.errors".into(),
                labels: vec![("reason".into(), hostile.into())],
            },
            MetricValue::Counter(2),
        )];
        let text = render_live(extra);
        validate(&text).expect("escaped live exposition validates");
        let samples = parse_text(&text).expect("parses");
        let s = samples
            .iter()
            .find(|s| s.name == "serve_errors")
            .expect("family present");
        assert_eq!(s.label("reason"), Some(hostile), "escapes resolve back");
        assert_eq!(s.value, 2.0);
    }

    #[test]
    fn zero_observation_families_render_and_validate() {
        // Families registered but never incremented: a 0 counter and a
        // 0 gauge still get a TYPE header and a sample line — scrapers
        // rely on the family existing from the first scrape.
        let snap = vec![
            (
                MetricKey {
                    name: "serve.responses".into(),
                    labels: vec![("code".into(), "500".into())],
                },
                MetricValue::Counter(0),
            ),
            (
                MetricKey {
                    name: "serve.queue_depth".into(),
                    labels: vec![],
                },
                MetricValue::Gauge(0.0),
            ),
        ];
        let text = render(&snap);
        assert!(text.contains("# TYPE serve_responses counter"), "{text}");
        assert!(text.contains("serve_responses{code=\"500\"} 0"));
        assert!(text.contains("serve_queue_depth 0"));
        let n = validate(&text).expect("zero-observation families validate");
        assert_eq!(n, 2);
    }

    #[test]
    fn render_live_merges_and_stays_sorted() {
        let extra = vec![
            (
                MetricKey {
                    name: "serve.live.latency_ns".into(),
                    labels: vec![
                        ("q".into(), "p50".into()),
                        ("route".into(), "extract".into()),
                        ("window".into(), "1m".into()),
                    ],
                },
                MetricValue::Gauge(12345.0),
            ),
            (
                MetricKey {
                    name: "process.rss_bytes".into(),
                    labels: vec![],
                },
                MetricValue::Gauge(1e6),
            ),
        ];
        let text = render_live(extra);
        assert!(text.contains("# TYPE process_rss_bytes gauge"));
        assert!(
            text.contains("serve_live_latency_ns{q=\"p50\",route=\"extract\",window=\"1m\"} 12345")
        );
        validate(&text).expect("live exposition validates");
    }
}
