//! JSONL exporter: one JSON object per line.
//!
//! Line schema (all lines carry a `type` discriminator):
//!
//! - `meta` — first line: `{"type":"meta","version":1,"records":N,"dropped":N}`
//! - `span_start` / `span_end` / `event` / `metric` — one per trace
//!   record, with `seq`, `t_ns`, `thread`, `span`, `parent`, `name`, and
//!   a `fields` object (`span_end` carries `fields.dur_ns`; `metric`
//!   carries `fields.step` and `fields.value`).
//! - `metric_snapshot` — final registry state, one line per metric:
//!   counters/gauges carry `kind` + `value`; histograms carry `kind`,
//!   `count`, `sum`, `min`, `max`, and sparse `buckets` as
//!   `[[index, count], ...]` (bucket upper bound = `2^(index-31)`).

use std::path::Path;

use crate::collector;
use crate::json::{write_f64, write_str};
use crate::metrics::{MetricKey, MetricValue};
use crate::record::{FieldValue, TraceRecord};

fn write_field_value(out: &mut String, v: &FieldValue) {
    match v {
        FieldValue::U64(n) => {
            out.push_str(&n.to_string());
        }
        FieldValue::I64(n) => {
            out.push_str(&n.to_string());
        }
        FieldValue::F64(f) => write_f64(out, *f),
        FieldValue::Str(s) => write_str(out, s),
        FieldValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
    }
}

fn render_record(out: &mut String, r: &TraceRecord) {
    out.push_str("{\"type\":");
    write_str(out, r.kind.type_str());
    out.push_str(&format!(
        ",\"seq\":{},\"t_ns\":{},\"thread\":{},\"span\":{},\"parent\":{},\"name\":",
        r.seq, r.t_ns, r.thread, r.span, r.parent
    ));
    write_str(out, &r.name);
    out.push_str(",\"fields\":{");
    for (i, (k, v)) in r.fields.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_str(out, k);
        out.push(':');
        write_field_value(out, v);
    }
    out.push_str("}}\n");
}

fn render_metric(out: &mut String, k: &MetricKey, v: &MetricValue) {
    out.push_str("{\"type\":\"metric_snapshot\",\"name\":");
    write_str(out, &k.name);
    out.push_str(",\"labels\":{");
    for (i, (lk, lv)) in k.labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_str(out, lk);
        out.push(':');
        write_str(out, lv);
    }
    out.push_str("},");
    match v {
        MetricValue::Counter(c) => {
            out.push_str(&format!("\"kind\":\"counter\",\"value\":{c}"));
        }
        MetricValue::Gauge(g) => {
            out.push_str("\"kind\":\"gauge\",\"value\":");
            write_f64(out, *g);
        }
        MetricValue::Histogram(h) => {
            out.push_str(&format!(
                "\"kind\":\"histogram\",\"count\":{},\"sum\":",
                h.count
            ));
            write_f64(out, h.sum);
            out.push_str(",\"min\":");
            write_f64(out, if h.count == 0 { 0.0 } else { h.min });
            out.push_str(",\"max\":");
            write_f64(out, if h.count == 0 { 0.0 } else { h.max });
            out.push_str(",\"buckets\":[");
            let mut first = true;
            for (i, c) in h.buckets.iter().enumerate() {
                if *c > 0 {
                    if !first {
                        out.push(',');
                    }
                    first = false;
                    out.push_str(&format!("[{i},{c}]"));
                }
            }
            out.push(']');
        }
    }
    out.push_str("}\n");
}

/// Renders a full JSONL document from explicit snapshots.
pub fn render(
    records: &[TraceRecord],
    metrics: &[(MetricKey, MetricValue)],
    dropped: u64,
) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{{\"type\":\"meta\",\"version\":1,\"records\":{},\"dropped\":{}}}\n",
        records.len(),
        dropped
    ));
    for r in records {
        render_record(&mut out, r);
    }
    for (k, v) in metrics {
        render_metric(&mut out, k, v);
    }
    out
}

/// Renders the current global collector + registry state, including
/// the synthetic `obs.records_dropped` gauge (warning on stderr once if
/// the ring buffer overflowed and the trace is therefore truncated).
pub fn render_current() -> String {
    crate::export::warn_if_truncated();
    render(
        &collector::snapshot(),
        &crate::export::registry_with_overflow(),
        collector::dropped(),
    )
}

/// Writes the current global state to `path` as JSONL.
pub fn write_current(path: &Path) -> std::io::Result<()> {
    let mut f = std::fs::File::create(path)?;
    write_current_to(&mut f)
}

/// Writes the current global state as JSONL into an already-open
/// writer (used by sessions that reserved their output file with
/// `create_new` semantics at startup).
pub fn write_current_to(w: &mut dyn std::io::Write) -> std::io::Result<()> {
    w.write_all(render_current().as_bytes())?;
    w.flush()
}

/// Renders a provenance-only JSONL document: the meta line plus every
/// [`RecordKind::Provenance`](crate::RecordKind::Provenance) record, and
/// nothing else. The `records` count covers only the emitted lines, so
/// the document round-trips through the trace reader.
pub fn render_provenance(records: &[TraceRecord], dropped: u64) -> String {
    let provenance: Vec<&TraceRecord> = records
        .iter()
        .filter(|r| r.kind == crate::record::RecordKind::Provenance)
        .collect();
    let mut out = String::new();
    out.push_str(&format!(
        "{{\"type\":\"meta\",\"version\":1,\"records\":{},\"dropped\":{}}}\n",
        provenance.len(),
        dropped
    ));
    for r in provenance {
        render_record(&mut out, r);
    }
    out
}

/// Writes the provenance records collected so far to `path` as JSONL.
pub fn write_provenance_current(path: &Path) -> std::io::Result<()> {
    let mut f = std::fs::File::create(path)?;
    write_provenance_current_to(&mut f)
}

/// Writes the provenance records collected so far as JSONL into an
/// already-open writer.
pub fn write_provenance_current_to(w: &mut dyn std::io::Write) -> std::io::Result<()> {
    w.write_all(render_provenance(&collector::snapshot(), collector::dropped()).as_bytes())?;
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;
    use crate::record::RecordKind;

    #[test]
    fn every_line_parses_and_meta_leads() {
        let records = vec![
            TraceRecord {
                seq: 0,
                t_ns: 10,
                thread: 0,
                kind: RecordKind::SpanStart,
                span: 1,
                parent: 0,
                name: "root".into(),
                fields: vec![],
            },
            TraceRecord {
                seq: 1,
                t_ns: 20,
                thread: 0,
                kind: RecordKind::Metric,
                span: 1,
                parent: 0,
                name: "crf.lbfgs.nll".into(),
                fields: vec![
                    ("step".into(), FieldValue::U64(0)),
                    ("value".into(), FieldValue::F64(1.5)),
                ],
            },
            TraceRecord {
                seq: 2,
                t_ns: 30,
                thread: 0,
                kind: RecordKind::SpanEnd,
                span: 1,
                parent: 0,
                name: "root".into(),
                fields: vec![("dur_ns".into(), FieldValue::U64(20))],
            },
        ];
        let mut hist = crate::metrics::Histogram::default();
        hist.buckets[32] = 1;
        hist.count = 1;
        hist.sum = 1.0;
        hist.min = 1.0;
        hist.max = 1.0;
        let metrics = vec![
            (
                MetricKey {
                    name: "veto.dropped".into(),
                    labels: vec![("rule".into(), "symbols".into())],
                },
                MetricValue::Counter(4),
            ),
            (
                MetricKey {
                    name: "crf.lbfgs.nll".into(),
                    labels: vec![],
                },
                MetricValue::Histogram(Box::new(hist)),
            ),
        ];
        let doc = render(&records, &metrics, 0);
        let lines: Vec<&str> = doc.lines().collect();
        assert_eq!(lines.len(), 1 + records.len() + metrics.len());
        let parsed: Vec<Json> = lines.iter().map(|l| Json::parse(l).unwrap()).collect();
        assert_eq!(parsed[0].get("type").and_then(Json::as_str), Some("meta"));
        assert_eq!(parsed[0].get("records").and_then(Json::as_u64), Some(3));
        assert_eq!(
            parsed[1].get("type").and_then(Json::as_str),
            Some("span_start")
        );
        let metric = &parsed[2];
        assert_eq!(
            metric
                .get("fields")
                .and_then(|f| f.get("value"))
                .and_then(Json::as_f64),
            Some(1.5)
        );
        assert_eq!(
            parsed[3]
                .get("fields")
                .and_then(|f| f.get("dur_ns"))
                .and_then(Json::as_u64),
            Some(20)
        );
        let counter = &parsed[4];
        assert_eq!(
            counter
                .get("labels")
                .and_then(|l| l.get("rule"))
                .and_then(Json::as_str),
            Some("symbols")
        );
        assert_eq!(counter.get("value").and_then(Json::as_u64), Some(4));
        let histo = &parsed[5];
        assert_eq!(histo.get("kind").and_then(Json::as_str), Some("histogram"));
        assert_eq!(histo.get("count").and_then(Json::as_u64), Some(1));
    }
}
