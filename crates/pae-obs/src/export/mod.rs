//! Trace and metric exporters: machine-readable JSONL, Prometheus-style
//! text exposition, and a human console span tree.

pub mod console;
pub mod jsonl;
pub mod prometheus;

use crate::collector;
use crate::metrics::{self, MetricKey, MetricValue};

/// The gauge name under which collector overflow is exported.
pub const RECORDS_DROPPED_GAUGE: &str = "obs.records_dropped";

/// The metrics registry plus a synthetic `obs.records_dropped` gauge
/// carrying the collector's overflow count, so consumers of any export
/// (and of [`crate::reader::Trace::from_current`]) can detect truncated
/// traces without parsing the meta line.
pub(crate) fn registry_with_overflow() -> Vec<(MetricKey, MetricValue)> {
    let mut snapshot = metrics::metrics_snapshot();
    snapshot.push((
        MetricKey {
            name: RECORDS_DROPPED_GAUGE.to_string(),
            labels: Vec::new(),
        },
        MetricValue::Gauge(collector::dropped() as f64),
    ));
    snapshot.sort_by(|(a, _), (b, _)| a.cmp(b));
    snapshot
}

/// Warns on stderr — once per process — when the ring buffer has
/// dropped records, so truncated traces never pass silently.
pub(crate) fn warn_if_truncated() {
    let dropped = collector::dropped();
    if dropped == 0 {
        return;
    }
    static WARNED: std::sync::Once = std::sync::Once::new();
    WARNED.call_once(|| {
        eprintln!(
            "warning: obs trace truncated: {dropped} oldest record(s) were dropped from the \
             ring buffer; summaries derived from this trace are incomplete \
             (raise the capacity with pae_obs::set_capacity)"
        );
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_lock;

    #[test]
    fn overflow_gauge_reflects_dropped_count() {
        let _l = test_lock();
        crate::set_enabled(true);
        crate::reset();
        crate::set_capacity(2);
        for i in 0..5 {
            crate::event("e", vec![("i".into(), (i as u64).into())]);
        }
        let snap = registry_with_overflow();
        let gauge = snap
            .iter()
            .find(|(k, _)| k.name == RECORDS_DROPPED_GAUGE)
            .map(|(_, v)| v.clone());
        assert_eq!(gauge, Some(MetricValue::Gauge(3.0)));
        crate::set_capacity(crate::DEFAULT_CAPACITY);
        crate::set_enabled(false);
        crate::reset();
    }
}
