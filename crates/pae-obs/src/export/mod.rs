//! Trace and metric exporters: machine-readable JSONL, Prometheus-style
//! text exposition, and a human console span tree.

pub mod console;
pub mod jsonl;
pub mod prometheus;
