//! Minimal JSON support: an escaping writer used by the JSONL exporter
//! and a recursive-descent parser used by the trace checker tests. Both
//! are deliberately tiny — the workspace has no serde and the trace
//! schema is flat.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Appends a JSON string literal (with escaping) to `out`.
pub fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends a JSON number for `v`; non-finite values become `null`.
pub fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        // Keep integers readable and round-trippable.
        if v == v.trunc() && v.abs() < 1e15 {
            let _ = write!(out, "{:.1}", v);
        } else {
            let _ = write!(out, "{v}");
        }
    } else {
        out.push_str("null");
    }
}

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (parsed as f64).
    Num(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object (key order normalized).
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Parses one complete JSON document; trailing non-whitespace is an
    /// error.
    pub fn parse(input: &str) -> Result<Json, String> {
        let bytes = input.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing content at byte {pos}"));
        }
        Ok(value)
    }

    /// Member lookup on objects.
    pub fn get(&self, k: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(k),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as u64, if this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.trunc() == *n => Some(*n as u64),
            _ => None,
        }
    }
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", c as char, *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(_) => parse_number(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-') {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("invalid number {text:?} at byte {start}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b.get(*pos + 1..*pos + 5).ok_or("truncated \\u escape")?;
                        let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                        let cp = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                        // Surrogates are not produced by our writer;
                        // map them to the replacement character.
                        out.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar.
                let s = std::str::from_utf8(&b[*pos..]).map_err(|e| e.to_string())?;
                let c = s.chars().next().ok_or("unterminated string")?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'{')?;
    let mut map = BTreeMap::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(map));
    }
    loop {
        skip_ws(b, pos);
        let k = parse_string(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        let v = parse_value(b, pos)?;
        map.insert(k, v);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_escapes() {
        let mut out = String::new();
        write_str(&mut out, "a\"b\\c\nd\u{1}");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\u0001\"");
        let mut out = String::new();
        write_f64(&mut out, 2.0);
        assert_eq!(out, "2.0");
        let mut out = String::new();
        write_f64(&mut out, f64::NAN);
        assert_eq!(out, "null");
    }

    #[test]
    fn parser_round_trips_writer_output() {
        let mut line = String::new();
        line.push_str("{\"type\":");
        write_str(&mut line, "event");
        line.push_str(",\"seq\":7,\"value\":");
        write_f64(&mut line, 0.25);
        line.push_str(",\"ok\":true,\"note\":");
        write_str(&mut line, "multi\nline \"quoted\"");
        line.push_str(",\"tags\":[1,2,3],\"none\":null}");
        let v = Json::parse(&line).unwrap();
        assert_eq!(v.get("type").and_then(Json::as_str), Some("event"));
        assert_eq!(v.get("seq").and_then(Json::as_u64), Some(7));
        assert_eq!(v.get("value").and_then(Json::as_f64), Some(0.25));
        assert_eq!(v.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(
            v.get("note").and_then(Json::as_str),
            Some("multi\nline \"quoted\"")
        );
        assert_eq!(
            v.get("tags"),
            Some(&Json::Arr(vec![
                Json::Num(1.0),
                Json::Num(2.0),
                Json::Num(3.0)
            ]))
        );
        assert_eq!(v.get("none"), Some(&Json::Null));
    }

    #[test]
    fn parser_rejects_malformed_input() {
        assert!(Json::parse("{\"a\":}").is_err());
        assert!(Json::parse("[1,2").is_err());
        assert!(Json::parse("{} trailing").is_err());
        assert!(Json::parse("\"unterminated").is_err());
        assert!(Json::parse("tru").is_err());
    }
}
