//! Opt-in allocation profiling: a counting `#[global_allocator]`.
//!
//! The wrapper delegates every call to [`std::alloc::System`] and, only
//! while profiling is enabled ([`set_prof_enabled`]), bumps a set of
//! relaxed atomic counters: total allocated bytes/calls, freed
//! bytes/calls, live bytes, and a live-bytes high-water mark. Disabled
//! cost is a single relaxed load per alloc/dealloc — the same budget as
//! the tracing layer's `enabled()` check — so binaries that never turn
//! profiling on pay nothing measurable.
//!
//! Per-span attribution works through thread locals mirroring the
//! process-wide counters: [`SpanGuard`](crate::SpanGuard) snapshots the
//! calling thread's counters when a span opens and emits the deltas as
//! `alloc_bytes` / `alloc_count` / `peak_live_bytes` fields on the
//! `span_end` record. The thread locals are const-initialized `Cell`s
//! of plain integers (no destructors), so touching them from inside the
//! allocator can never recurse or allocate; during thread teardown
//! `try_with` falls back to process-wide counting only.
//!
//! Everything here is telemetry: counts must never feed back into
//! pipeline results. The determinism suite asserts `final_triples()`
//! is byte-identical with profiling on or off.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering::Relaxed};
use std::sync::Arc;
use std::time::Duration;

use crate::record::FieldValue;

static PROF_ENABLED: AtomicBool = AtomicBool::new(false);

// Process-wide counters. All relaxed: each is independently monotonic
// (or a max), readers only ever see a slightly stale snapshot, and
// nothing here synchronizes memory for other data.
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);
static ALLOC_COUNT: AtomicU64 = AtomicU64::new(0);
static FREE_BYTES: AtomicU64 = AtomicU64::new(0);
static FREE_COUNT: AtomicU64 = AtomicU64::new(0);
// Live bytes can dip below zero when profiling is enabled after some
// allocations were already made (their frees are counted, the allocs
// were not), so it is signed; reports clamp at zero.
static LIVE_BYTES: AtomicI64 = AtomicI64::new(0);
static PEAK_LIVE_BYTES: AtomicI64 = AtomicI64::new(0);
// High-water mark of sampled RSS (see [`RssSampler`]); 0 = never sampled.
static SAMPLED_PEAK_RSS: AtomicU64 = AtomicU64::new(0);

thread_local! {
    // Const-init integer cells: no lazy allocation on first touch and
    // no Drop, which makes them safe to use from inside the allocator.
    static T_ALLOC_BYTES: Cell<u64> = const { Cell::new(0) };
    static T_ALLOC_COUNT: Cell<u64> = const { Cell::new(0) };
    static T_LIVE_BYTES: Cell<i64> = const { Cell::new(0) };
    static T_PEAK_LIVE: Cell<i64> = const { Cell::new(0) };
}

/// Turns allocation profiling on or off (off by default).
///
/// Binaries honor `PAE_PROF=1` / `--profile`; see
/// [`TraceSession::from_parts`](crate::TraceSession::from_parts).
pub fn set_prof_enabled(on: bool) {
    PROF_ENABLED.store(on, Relaxed);
}

/// Whether allocation profiling is currently enabled.
pub fn prof_enabled() -> bool {
    PROF_ENABLED.load(Relaxed)
}

#[inline]
fn on_alloc(size: usize) {
    let b = size as u64;
    ALLOC_BYTES.fetch_add(b, Relaxed);
    ALLOC_COUNT.fetch_add(1, Relaxed);
    let live = LIVE_BYTES.fetch_add(size as i64, Relaxed) + size as i64;
    PEAK_LIVE_BYTES.fetch_max(live, Relaxed);
    // `try_with`: a thread's TLS may already be torn down while its
    // last drops still allocate — fall back to process-wide counting.
    let _ = T_ALLOC_BYTES.try_with(|c| c.set(c.get().wrapping_add(b)));
    let _ = T_ALLOC_COUNT.try_with(|c| c.set(c.get().wrapping_add(1)));
    let _ = T_LIVE_BYTES.try_with(|c| {
        let live = c.get() + size as i64;
        c.set(live);
        let _ = T_PEAK_LIVE.try_with(|p| p.set(p.get().max(live)));
    });
}

#[inline]
fn on_dealloc(size: usize) {
    let b = size as u64;
    FREE_BYTES.fetch_add(b, Relaxed);
    FREE_COUNT.fetch_add(1, Relaxed);
    LIVE_BYTES.fetch_sub(size as i64, Relaxed);
    let _ = T_LIVE_BYTES.try_with(|c| c.set(c.get() - size as i64));
}

/// The counting allocator installed as the workspace-wide
/// `#[global_allocator]` (every binary linking `pae-obs` gets it).
pub struct CountingAllocator;

// SAFETY: pure delegation to `System`; the bookkeeping around each call
// touches only atomics and const-init integer TLS cells, so it cannot
// allocate, panic, or recurse into the allocator.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() && PROF_ENABLED.load(Relaxed) {
            on_alloc(layout.size());
        }
        p
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc_zeroed(layout);
        if !p.is_null() && PROF_ENABLED.load(Relaxed) {
            on_alloc(layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        if PROF_ENABLED.load(Relaxed) {
            on_dealloc(layout.size());
        }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() && PROF_ENABLED.load(Relaxed) {
            // A grow-in-place still retires the old block logically:
            // count it as free(old) + alloc(new) so live bytes track
            // the real footprint.
            on_dealloc(layout.size());
            on_alloc(new_size);
        }
        p
    }
}

#[global_allocator]
static GLOBAL_ALLOCATOR: CountingAllocator = CountingAllocator;

/// A snapshot of the process-wide allocation counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProfStats {
    /// Whether profiling was enabled when the snapshot was taken.
    pub enabled: bool,
    /// Total bytes requested from the allocator since profiling began.
    pub alloc_bytes: u64,
    /// Total allocation calls since profiling began.
    pub alloc_count: u64,
    /// Total bytes returned to the allocator since profiling began.
    pub free_bytes: u64,
    /// Total deallocation calls since profiling began.
    pub free_count: u64,
    /// Currently live bytes (may be negative: frees of blocks allocated
    /// before profiling was enabled are counted, their allocs were not).
    pub live_bytes: i64,
    /// High-water mark of live bytes (clamped at zero).
    pub peak_live_bytes: u64,
    /// High-water mark of sampled RSS (0 = no [`RssSampler`] ran).
    pub sampled_peak_rss_bytes: u64,
}

/// Reads the process-wide allocation counters.
pub fn prof_stats() -> ProfStats {
    ProfStats {
        enabled: prof_enabled(),
        alloc_bytes: ALLOC_BYTES.load(Relaxed),
        alloc_count: ALLOC_COUNT.load(Relaxed),
        free_bytes: FREE_BYTES.load(Relaxed),
        free_count: FREE_COUNT.load(Relaxed),
        live_bytes: LIVE_BYTES.load(Relaxed),
        peak_live_bytes: PEAK_LIVE_BYTES.load(Relaxed).max(0) as u64,
        sampled_peak_rss_bytes: SAMPLED_PEAK_RSS.load(Relaxed),
    }
}

/// A span's view of the calling thread's counters at open time; handed
/// back to [`span_alloc_end`] when the span closes.
pub(crate) struct SpanAllocSnapshot {
    bytes0: u64,
    count0: u64,
    /// The enclosing span's peak-live cursor, restored (merged with this
    /// span's peak) at end so nested peaks propagate outward.
    saved_peak: i64,
}

/// Snapshots the calling thread's allocation counters for span
/// attribution; `None` while profiling is disabled.
pub(crate) fn span_alloc_begin() -> Option<SpanAllocSnapshot> {
    if !prof_enabled() {
        return None;
    }
    let bytes0 = T_ALLOC_BYTES.with(Cell::get);
    let count0 = T_ALLOC_COUNT.with(Cell::get);
    // Start this span's peak window at the current live level; the
    // outer span's running peak is saved and merged back at end.
    let saved_peak = T_PEAK_LIVE.with(|p| p.replace(T_LIVE_BYTES.with(Cell::get)));
    Some(SpanAllocSnapshot {
        bytes0,
        count0,
        saved_peak,
    })
}

/// Closes a span's attribution window, returning
/// `(alloc_bytes, alloc_count, peak_live_bytes)` for the span.
pub(crate) fn span_alloc_end(snap: SpanAllocSnapshot) -> (u64, u64, u64) {
    let bytes = T_ALLOC_BYTES.with(Cell::get).wrapping_sub(snap.bytes0);
    let count = T_ALLOC_COUNT.with(Cell::get).wrapping_sub(snap.count0);
    let span_peak = T_PEAK_LIVE.with(Cell::get);
    // The outer span peaked at least as high as anything inside us.
    T_PEAK_LIVE.with(|p| p.set(snap.saved_peak.max(span_peak)));
    (bytes, count, span_peak.max(0) as u64)
}

/// A background thread sampling `/proc` RSS into a process-wide
/// high-water mark, so short-lived memory spikes between scrapes are
/// still visible in the run-level `memory` ledger section.
pub struct RssSampler {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

/// Starts an [`RssSampler`] polling every `interval`.
pub fn start_rss_sampler(interval: Duration) -> RssSampler {
    let sample = || {
        if let Some(rss) = crate::process::process_stats().rss_bytes {
            SAMPLED_PEAK_RSS.fetch_max(rss, Relaxed);
        }
    };
    sample();
    let stop = Arc::new(AtomicBool::new(false));
    let stop2 = Arc::clone(&stop);
    let handle = std::thread::Builder::new()
        .name("pae-rss-sampler".into())
        .spawn(move || {
            while !stop2.load(Relaxed) {
                sample();
                std::thread::sleep(interval);
            }
            sample();
        })
        .ok();
    RssSampler { stop, handle }
}

impl RssSampler {
    /// Stops the sampler thread (taking one final sample) and joins it.
    pub fn stop(mut self) {
        self.halt();
    }

    fn halt(&mut self) {
        self.stop.store(true, Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for RssSampler {
    fn drop(&mut self) {
        self.halt();
    }
}

/// The run-level memory totals a [`ProfSession`] reports at finish.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemReport {
    /// Peak RSS over the session: max of the sampled high-water mark
    /// and the kernel's `VmHWM` (which catches spikes between samples).
    pub peak_rss_bytes: u64,
    /// Bytes allocated during the session.
    pub total_alloc_bytes: u64,
    /// Allocation calls during the session.
    pub alloc_count: u64,
    /// Live-bytes high-water mark at session end.
    pub peak_live_bytes: u64,
}

/// A profiling session: enables the counting allocator, runs an
/// [`RssSampler`], and on [`finish`](ProfSession::finish) emits a
/// `mem.summary` event (picked up by `pae-report`'s `RunSummary` as the
/// `memory` section) before disabling profiling again.
#[derive(Debug)]
pub struct ProfSession {
    start_alloc_bytes: u64,
    start_alloc_count: u64,
    sampler: Option<RssSampler>,
}

impl std::fmt::Debug for RssSampler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RssSampler").finish_non_exhaustive()
    }
}

/// How often the bootstrap-side [`ProfSession`] samples RSS.
pub const RSS_SAMPLE_INTERVAL: Duration = Duration::from_millis(50);

impl ProfSession {
    /// Enables profiling and starts the RSS sampler.
    pub fn begin() -> ProfSession {
        set_prof_enabled(true);
        let s = prof_stats();
        ProfSession {
            start_alloc_bytes: s.alloc_bytes,
            start_alloc_count: s.alloc_count,
            sampler: Some(start_rss_sampler(RSS_SAMPLE_INTERVAL)),
        }
    }

    /// Stops sampling, emits the `mem.summary` event (recorded only
    /// while collection is enabled), and disables profiling.
    pub fn finish(mut self) -> MemReport {
        if let Some(s) = self.sampler.take() {
            s.stop();
        }
        let end = prof_stats();
        let kernel_hwm = crate::process::process_stats().peak_rss_bytes.unwrap_or(0);
        let report = MemReport {
            peak_rss_bytes: end.sampled_peak_rss_bytes.max(kernel_hwm),
            total_alloc_bytes: end.alloc_bytes.wrapping_sub(self.start_alloc_bytes),
            alloc_count: end.alloc_count.wrapping_sub(self.start_alloc_count),
            peak_live_bytes: end.peak_live_bytes,
        };
        set_prof_enabled(false);
        crate::event(
            "mem.summary",
            vec![
                (
                    "peak_rss_bytes".into(),
                    FieldValue::U64(report.peak_rss_bytes),
                ),
                (
                    "total_alloc_bytes".into(),
                    FieldValue::U64(report.total_alloc_bytes),
                ),
                ("alloc_count".into(), FieldValue::U64(report.alloc_count)),
                (
                    "peak_live_bytes".into(),
                    FieldValue::U64(report.peak_live_bytes),
                ),
            ],
        );
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_lock;

    #[test]
    fn disabled_profiling_freezes_counters() {
        let _l = test_lock();
        set_prof_enabled(false);
        let before = prof_stats();
        let v: Vec<u8> = Vec::with_capacity(64 * 1024);
        drop(v);
        let after = prof_stats();
        assert_eq!(before.alloc_bytes, after.alloc_bytes);
        assert_eq!(before.alloc_count, after.alloc_count);
        assert_eq!(before.free_bytes, after.free_bytes);
    }

    #[test]
    fn enabled_profiling_counts_allocations() {
        let _l = test_lock();
        set_prof_enabled(true);
        let before = prof_stats();
        let v: Vec<u8> = Vec::with_capacity(128 * 1024);
        let mid = prof_stats();
        drop(v);
        let after = prof_stats();
        set_prof_enabled(false);
        assert!(
            mid.alloc_bytes >= before.alloc_bytes + 128 * 1024,
            "alloc bytes counted: {} -> {}",
            before.alloc_bytes,
            mid.alloc_bytes
        );
        assert!(mid.alloc_count > before.alloc_count);
        assert!(
            after.free_bytes >= before.free_bytes + 128 * 1024,
            "free bytes counted"
        );
        assert!(
            after.peak_live_bytes >= 128 * 1024,
            "peak live tracked the buffer"
        );
    }

    #[test]
    fn span_attribution_windows_nest() {
        let _l = test_lock();
        set_prof_enabled(true);
        let outer = span_alloc_begin().expect("profiling is on");
        let big: Vec<u8> = Vec::with_capacity(1 << 20);
        drop(big);
        let inner = span_alloc_begin().expect("profiling is on");
        let small: Vec<u8> = Vec::with_capacity(4 * 1024);
        drop(small);
        let (in_bytes, in_count, in_peak) = span_alloc_end(inner);
        let (out_bytes, out_count, out_peak) = span_alloc_end(outer);
        set_prof_enabled(false);
        assert!((4 * 1024..1 << 20).contains(&in_bytes), "{in_bytes}");
        assert!(in_count >= 1);
        assert!(out_bytes >= (1 << 20) + in_bytes, "outer includes inner");
        assert!(out_count > in_count);
        assert!(in_peak < out_peak, "inner window missed the big buffer");
        assert!(out_peak >= 1 << 20, "outer peak saw the big buffer");
    }

    #[test]
    fn rss_sampler_records_a_peak() {
        let _l = test_lock();
        let sampler = start_rss_sampler(Duration::from_millis(5));
        std::thread::sleep(Duration::from_millis(20));
        sampler.stop();
        // /proc may be unavailable on exotic platforms; when it is
        // readable the sampled peak must be a plausible RSS.
        if let Some(rss) = crate::process::process_stats().rss_bytes {
            let peak = prof_stats().sampled_peak_rss_bytes;
            assert!(peak > 0, "sampler never observed RSS");
            assert!(peak >= rss / 4, "peak {peak} implausibly small vs {rss}");
        }
    }
}
