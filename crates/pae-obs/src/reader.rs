//! Trace reader: parses a JSONL trace document (as produced by
//! [`crate::export::jsonl`]) back into typed [`TraceRecord`]s and
//! metric snapshots, so downstream tooling (`pae-report`) can turn
//! traces into run summaries without re-implementing the schema.
//!
//! A [`Trace`] can come from three places:
//!
//! - [`Trace::parse`] / [`Trace::read`] — a JSONL document or file;
//! - [`Trace::from_current`] — the live global collector + registry
//!   (used by in-process ledger writers, avoiding a JSONL round trip);
//! - [`Trace::subtree`] — a filtered view keeping only the records
//!   inside one span's subtree (used by tests that must ignore
//!   records emitted concurrently by unrelated code).

use std::collections::BTreeSet;
use std::path::Path;

use crate::collector;
use crate::json::Json;
use crate::metrics::{Histogram, MetricKey, MetricValue, HISTOGRAM_BUCKETS};
use crate::record::{FieldValue, RecordKind, TraceRecord};

/// The `meta` line of a trace.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceMeta {
    /// Schema version.
    pub version: u64,
    /// Number of record lines the writer declared.
    pub records: u64,
    /// Records evicted from the ring buffer before export. A non-zero
    /// value means the trace is truncated and derived summaries are
    /// incomplete.
    pub dropped: u64,
}

/// A fully parsed trace: meta line, records, and final metric state.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// The `meta` line.
    pub meta: TraceMeta,
    /// Span/event/metric records in sequence order.
    pub records: Vec<TraceRecord>,
    /// Final registry state (`metric_snapshot` lines).
    pub metrics: Vec<(MetricKey, MetricValue)>,
}

impl Trace {
    /// Reads and parses a JSONL trace file.
    pub fn read(path: &Path) -> Result<Trace, String> {
        let doc = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        Self::parse(&doc)
    }

    /// Parses a JSONL trace document.
    pub fn parse(doc: &str) -> Result<Trace, String> {
        let mut trace = Trace::default();
        let mut saw_meta = false;
        for (lineno, line) in doc.lines().enumerate() {
            let n = lineno + 1;
            if line.trim().is_empty() {
                continue;
            }
            let v = Json::parse(line).map_err(|e| format!("line {n}: {e}"))?;
            let ty = v
                .get("type")
                .and_then(Json::as_str)
                .ok_or_else(|| format!("line {n}: missing \"type\""))?
                .to_owned();
            match ty.as_str() {
                "meta" => {
                    if saw_meta {
                        return Err(format!("line {n}: duplicate meta line"));
                    }
                    saw_meta = true;
                    trace.meta = TraceMeta {
                        version: req_u64(&v, "version", n)?,
                        records: req_u64(&v, "records", n)?,
                        dropped: req_u64(&v, "dropped", n)?,
                    };
                }
                "span_start" | "span_end" | "event" | "metric" | "provenance" => {
                    if !saw_meta {
                        return Err(format!("line {n}: record before the meta line"));
                    }
                    trace.records.push(parse_record(&ty, &v, n)?);
                }
                "metric_snapshot" => {
                    if !saw_meta {
                        return Err(format!("line {n}: metric_snapshot before the meta line"));
                    }
                    trace.metrics.push(parse_metric_snapshot(&v, n)?);
                }
                other => return Err(format!("line {n}: unknown line type {other:?}")),
            }
        }
        if !saw_meta {
            return Err("empty document: no meta line".into());
        }
        if trace.meta.records != trace.records.len() as u64 {
            return Err(format!(
                "meta declared {} records but {} record lines followed",
                trace.meta.records,
                trace.records.len()
            ));
        }
        Ok(trace)
    }

    /// Builds a trace from the live global collector and registry
    /// (no JSONL round trip). Matches what the JSONL exporter would
    /// write right now, including the `obs.records_dropped` gauge.
    pub fn from_current() -> Trace {
        let records = collector::snapshot();
        let dropped = collector::dropped();
        Trace {
            meta: TraceMeta {
                version: 1,
                records: records.len() as u64,
                dropped,
            },
            records,
            metrics: crate::export::registry_with_overflow(),
        }
    }

    /// The records inside `root`'s span subtree: the root span itself,
    /// all transitively nested spans (including spans re-parented
    /// across threads via `with_parent`), and every event/metric
    /// emitted under any of them. Metric snapshots and meta are copied
    /// unchanged (the registry is global and cannot be attributed).
    pub fn subtree(&self, root: u64) -> Trace {
        let mut spans: BTreeSet<u64> = BTreeSet::new();
        spans.insert(root);
        // On a truncated (drop-oldest) trace, a span's start — or its
        // whole ancestor chain — may have been evicted. Those orphans
        // cannot be attributed to any subtree, so they are surfaced
        // rather than silently skipped: filtering them out would make a
        // truncated trace look like a clean "not my subtree" verdict.
        let truncated = self.meta.dropped > 0;
        let started: BTreeSet<u64> = self
            .records
            .iter()
            .filter(|r| r.kind == RecordKind::SpanStart)
            .map(|r| r.span)
            .collect();
        // Span-start records arrive in sequence order and a child's
        // start always follows its parent's, so one forward pass
        // closes the descendant set.
        for r in &self.records {
            if r.kind == RecordKind::SpanStart
                && (spans.contains(&r.parent)
                    || (truncated && r.parent != 0 && !started.contains(&r.parent)))
            {
                spans.insert(r.span);
            }
        }
        let records: Vec<TraceRecord> = self
            .records
            .iter()
            .filter(|r| {
                spans.contains(&r.span) || (truncated && r.span != 0 && !started.contains(&r.span))
            })
            .cloned()
            .collect();
        Trace {
            meta: TraceMeta {
                version: self.meta.version,
                records: records.len() as u64,
                dropped: self.meta.dropped,
            },
            records,
            metrics: self.metrics.clone(),
        }
    }

    /// Span-start records of the given name, in sequence order.
    pub fn spans_named<'a>(&'a self, name: &str) -> Vec<&'a TraceRecord> {
        self.records
            .iter()
            .filter(|r| r.kind == RecordKind::SpanStart && r.name == name)
            .collect()
    }

    /// Provenance records, in sequence (emission) order.
    pub fn provenance_records(&self) -> Vec<&TraceRecord> {
        self.records
            .iter()
            .filter(|r| r.kind == RecordKind::Provenance)
            .collect()
    }

    /// Events of the given name, in sequence order.
    pub fn events_named<'a>(&'a self, name: &str) -> Vec<&'a TraceRecord> {
        self.records
            .iter()
            .filter(|r| r.kind == RecordKind::Event && r.name == name)
            .collect()
    }

    /// Aggregates every span in the trace into a [`SpanInfo`] carrying
    /// total and *self* weights (wall time, and allocation bytes when
    /// the trace was recorded with profiling on). Returned in
    /// first-seen sequence order.
    ///
    /// Self weight is the span's total minus the sum of its direct
    /// children's totals, saturating at zero — children running
    /// concurrently on worker threads can sum to more wall time than
    /// the parent span's own duration.
    pub fn span_infos(&self) -> Vec<SpanInfo> {
        use std::collections::BTreeMap;
        let u64_field = |r: &TraceRecord, key: &str| match r.field(key) {
            Some(FieldValue::U64(v)) => *v,
            _ => 0,
        };
        let mut order: Vec<u64> = Vec::new();
        let mut infos: BTreeMap<u64, SpanInfo> = BTreeMap::new();
        for r in &self.records {
            if r.kind != RecordKind::SpanStart && r.kind != RecordKind::SpanEnd {
                continue;
            }
            // An end without a start still yields an entry (drop-oldest
            // traces may have evicted the start); parent and name ride
            // on both record kinds.
            let info = infos.entry(r.span).or_insert_with(|| {
                order.push(r.span);
                SpanInfo {
                    span: r.span,
                    parent: r.parent,
                    name: r.name.clone(),
                    dur_ns: 0,
                    self_ns: 0,
                    alloc_bytes: 0,
                    self_alloc_bytes: 0,
                    alloc_count: 0,
                    peak_live_bytes: 0,
                }
            });
            if r.kind == RecordKind::SpanEnd {
                info.dur_ns = u64_field(r, "dur_ns");
                info.alloc_bytes = u64_field(r, "alloc_bytes");
                info.alloc_count = u64_field(r, "alloc_count");
                info.peak_live_bytes = u64_field(r, "peak_live_bytes");
            }
        }
        let mut child_ns: BTreeMap<u64, u64> = BTreeMap::new();
        let mut child_bytes: BTreeMap<u64, u64> = BTreeMap::new();
        for info in infos.values() {
            if info.parent != 0 {
                *child_ns.entry(info.parent).or_default() += info.dur_ns;
                *child_bytes.entry(info.parent).or_default() += info.alloc_bytes;
            }
        }
        for info in infos.values_mut() {
            info.self_ns = info
                .dur_ns
                .saturating_sub(child_ns.get(&info.span).copied().unwrap_or(0));
            info.self_alloc_bytes = info
                .alloc_bytes
                .saturating_sub(child_bytes.get(&info.span).copied().unwrap_or(0));
        }
        order
            .into_iter()
            .filter_map(|id| infos.remove(&id))
            .collect()
    }

    /// Looks up a metric snapshot by name and exact label set.
    pub fn metric(&self, name: &str, labels: &[(&str, &str)]) -> Option<&MetricValue> {
        self.metrics
            .iter()
            .find(|(k, _)| {
                k.name == name
                    && k.labels.len() == labels.len()
                    && k.labels
                        .iter()
                        .zip(labels)
                        .all(|((ak, av), (bk, bv))| ak == bk && av == bv)
            })
            .map(|(_, v)| v)
    }
}

/// One span's aggregated weights, as computed by [`Trace::span_infos`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanInfo {
    /// Span id.
    pub span: u64,
    /// Parent span id (0 = root).
    pub parent: u64,
    /// Span name.
    pub name: String,
    /// Total wall time (`dur_ns` on the end record; 0 if the end was
    /// evicted).
    pub dur_ns: u64,
    /// Wall time minus the sum of direct children's wall time
    /// (saturating — concurrent children can exceed the parent).
    pub self_ns: u64,
    /// Bytes allocated on the span's own thread while it was innermost
    /// (0 on traces recorded without profiling).
    pub alloc_bytes: u64,
    /// `alloc_bytes` minus direct children's `alloc_bytes` (saturating).
    pub self_alloc_bytes: u64,
    /// Allocation calls attributed to the span.
    pub alloc_count: u64,
    /// Live-bytes high-water mark inside the span's window.
    pub peak_live_bytes: u64,
}

fn req_u64(v: &Json, key: &str, line: usize) -> Result<u64, String> {
    v.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("line {line}: missing numeric \"{key}\""))
}

/// Canonicalizes a parsed JSON value into a [`FieldValue`]: integral
/// non-negative numbers become `U64`, integral negatives `I64`, other
/// numbers `F64` (`null` maps to `F64(NaN)`, the writer's encoding of
/// non-finite values).
fn field_value(v: &Json) -> FieldValue {
    match v {
        Json::Num(n) if n.trunc() == *n && *n >= 0.0 && *n < 9e15 => FieldValue::U64(*n as u64),
        Json::Num(n) if n.trunc() == *n && *n < 0.0 && *n > -9e15 => FieldValue::I64(*n as i64),
        Json::Num(n) => FieldValue::F64(*n),
        Json::Str(s) => FieldValue::Str(s.clone()),
        Json::Bool(b) => FieldValue::Bool(*b),
        _ => FieldValue::F64(f64::NAN),
    }
}

fn parse_record(ty: &str, v: &Json, line: usize) -> Result<TraceRecord, String> {
    let kind = match ty {
        "span_start" => RecordKind::SpanStart,
        "span_end" => RecordKind::SpanEnd,
        "event" => RecordKind::Event,
        "provenance" => RecordKind::Provenance,
        _ => RecordKind::Metric,
    };
    let fields = match v.get("fields") {
        Some(Json::Obj(m)) => m
            .iter()
            .map(|(k, fv)| (k.clone(), field_value(fv)))
            .collect(),
        Some(_) => return Err(format!("line {line}: \"fields\" is not an object")),
        None => return Err(format!("line {line}: {ty} missing \"fields\"")),
    };
    Ok(TraceRecord {
        seq: req_u64(v, "seq", line)?,
        t_ns: req_u64(v, "t_ns", line)?,
        thread: req_u64(v, "thread", line)?,
        kind,
        span: req_u64(v, "span", line)?,
        parent: req_u64(v, "parent", line)?,
        name: v
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("line {line}: {ty} missing \"name\""))?
            .to_owned(),
        fields,
    })
}

fn parse_metric_snapshot(v: &Json, line: usize) -> Result<(MetricKey, MetricValue), String> {
    let name = v
        .get("name")
        .and_then(Json::as_str)
        .ok_or_else(|| format!("line {line}: metric_snapshot missing \"name\""))?
        .to_owned();
    let labels = match v.get("labels") {
        Some(Json::Obj(m)) => m
            .iter()
            .map(|(k, lv)| {
                lv.as_str()
                    .map(|s| (k.clone(), s.to_owned()))
                    .ok_or_else(|| format!("line {line}: non-string label {k:?}"))
            })
            .collect::<Result<Vec<_>, _>>()?,
        _ => return Err(format!("line {line}: metric_snapshot missing \"labels\"")),
    };
    let kind = v
        .get("kind")
        .and_then(Json::as_str)
        .ok_or_else(|| format!("line {line}: metric_snapshot missing \"kind\""))?;
    let value = match kind {
        "counter" => MetricValue::Counter(req_u64(v, "value", line)?),
        "gauge" => MetricValue::Gauge(
            v.get("value")
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("line {line}: gauge missing numeric \"value\""))?,
        ),
        "histogram" => {
            let mut h = Histogram {
                count: req_u64(v, "count", line)?,
                sum: v.get("sum").and_then(Json::as_f64).unwrap_or(f64::NAN),
                min: v.get("min").and_then(Json::as_f64).unwrap_or(f64::NAN),
                max: v.get("max").and_then(Json::as_f64).unwrap_or(f64::NAN),
                ..Histogram::default()
            };
            if h.count == 0 {
                h.min = f64::INFINITY;
                h.max = f64::NEG_INFINITY;
            }
            match v.get("buckets") {
                Some(Json::Arr(buckets)) => {
                    for b in buckets {
                        let (i, c) = match b {
                            Json::Arr(pair) if pair.len() == 2 => (
                                pair[0].as_u64().ok_or_else(|| {
                                    format!("line {line}: non-integer bucket index")
                                })?,
                                pair[1].as_u64().ok_or_else(|| {
                                    format!("line {line}: non-integer bucket count")
                                })?,
                            ),
                            _ => return Err(format!("line {line}: malformed bucket entry")),
                        };
                        if i as usize >= HISTOGRAM_BUCKETS {
                            return Err(format!("line {line}: bucket index {i} out of range"));
                        }
                        h.buckets[i as usize] = c;
                    }
                }
                _ => return Err(format!("line {line}: histogram missing \"buckets\"")),
            }
            MetricValue::Histogram(Box::new(h))
        }
        other => return Err(format!("line {line}: unknown metric kind {other:?}")),
    };
    Ok((MetricKey { name, labels }, value))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_lock;
    use crate::{clear, clear_metrics, counter_add, event, gauge_set, observe, set_enabled, span};

    /// Round trip: emit real records, render JSONL, parse it back, and
    /// compare against the in-memory snapshot.
    #[test]
    fn parse_round_trips_the_jsonl_exporter() {
        let _l = test_lock();
        set_enabled(true);
        clear();
        clear_metrics();
        {
            let _root = span("bootstrap.run");
            event(
                "iteration.summary",
                vec![
                    ("iteration".into(), 1u64.into()),
                    ("triples".into(), 12u64.into()),
                ],
            );
            counter_add("veto.dropped", &[("rule", "symbols")], 3);
            gauge_set("eval.precision", &[("run", "probe")], 0.875);
            observe("crf.lbfgs.nll", &[], 2.5);
        }
        let doc = crate::export::jsonl::render_current();
        let live = Trace::from_current();
        set_enabled(false);
        clear();
        clear_metrics();

        let parsed = Trace::parse(&doc).expect("exporter output parses");
        assert_eq!(parsed.meta.records, live.records.len() as u64);
        assert_eq!(parsed.records.len(), live.records.len());
        for (a, b) in parsed.records.iter().zip(&live.records) {
            assert_eq!(a.kind, b.kind);
            assert_eq!(a.name, b.name);
            assert_eq!(a.seq, b.seq);
            assert_eq!(a.span, b.span);
            assert_eq!(a.parent, b.parent);
        }
        assert_eq!(parsed.metrics, live.metrics);
        assert_eq!(
            parsed.metric("veto.dropped", &[("rule", "symbols")]),
            Some(&MetricValue::Counter(3))
        );
        assert_eq!(parsed.events_named("iteration.summary").len(), 1);
        assert_eq!(parsed.spans_named("bootstrap.run").len(), 1);
    }

    #[test]
    fn subtree_keeps_only_nested_records() {
        let _l = test_lock();
        set_enabled(true);
        clear();
        clear_metrics();
        let root_id;
        {
            let root = span("mine");
            root_id = root.id();
            let _inner = span("mine.child");
            event("mine.event", vec![]);
        }
        {
            let _other = span("other");
            event("other.event", vec![]);
        }
        let trace = Trace::from_current();
        set_enabled(false);
        clear();
        clear_metrics();

        let sub = trace.subtree(root_id);
        assert!(sub.spans_named("mine").len() == 1);
        assert!(sub.spans_named("mine.child").len() == 1);
        assert_eq!(sub.events_named("mine.event").len(), 1);
        assert!(sub.spans_named("other").is_empty());
        assert!(sub.events_named("other.event").is_empty());
        assert_eq!(sub.meta.records, sub.records.len() as u64);
    }

    #[test]
    fn subtree_surfaces_orphans_on_truncated_traces() {
        // Hand-build a truncated trace: the ring evicted the start of
        // span 2 (and everything before it), so span 2's end and span
        // 3 (2's child) are orphans — no ancestor chain survives.
        let rec = |kind, span, parent, name: &str| TraceRecord {
            seq: 0,
            t_ns: 0,
            thread: 0,
            kind,
            span,
            parent,
            name: name.into(),
            fields: vec![],
        };
        let mut trace = Trace {
            meta: TraceMeta {
                version: 1,
                records: 5,
                dropped: 2,
            },
            records: vec![
                rec(RecordKind::SpanEnd, 2, 1, "evicted.stage"),
                rec(RecordKind::SpanStart, 3, 2, "evicted.child"),
                rec(RecordKind::Event, 3, 0, "evicted.event"),
                rec(RecordKind::SpanStart, 10, 0, "root"),
                rec(RecordKind::SpanEnd, 10, 0, "root"),
            ],
            metrics: vec![],
        };
        let sub = trace.subtree(10);
        assert_eq!(
            sub.records.len(),
            5,
            "orphaned spans must be surfaced, not skipped: {:?}",
            sub.records.iter().map(|r| &r.name).collect::<Vec<_>>()
        );
        assert_eq!(sub.spans_named("evicted.child").len(), 1);
        assert_eq!(sub.events_named("evicted.event").len(), 1);

        // The same records in a complete trace (dropped == 0) are
        // genuinely unrelated to span 10 and stay filtered out.
        trace.meta.dropped = 0;
        let sub = trace.subtree(10);
        assert_eq!(sub.records.len(), 2, "complete traces filter strictly");
        assert!(sub.spans_named("evicted.child").is_empty());
    }

    #[test]
    fn provenance_records_round_trip() {
        let _l = test_lock();
        set_enabled(true);
        crate::set_provenance_enabled(true);
        clear();
        clear_metrics();
        crate::provenance(
            "prov.origin",
            vec![
                ("attr".into(), "iro".into()),
                ("value".into(), "aka".into()),
                ("origin".into(), "seed".into()),
            ],
        );
        let doc = crate::export::jsonl::render_current();
        let prov_doc = crate::export::jsonl::render_provenance(&crate::snapshot(), 0);
        crate::set_provenance_enabled(false);
        set_enabled(false);
        clear();
        clear_metrics();

        for d in [doc, prov_doc] {
            let parsed = Trace::parse(&d).expect("provenance line parses");
            let prov = parsed.provenance_records();
            assert_eq!(prov.len(), 1);
            assert_eq!(prov[0].name, "prov.origin");
            assert_eq!(prov[0].field("attr"), Some(&FieldValue::Str("iro".into())));
        }
    }

    #[test]
    fn span_infos_compute_self_time_and_self_bytes() {
        let rec = |kind, span, parent, name: &str, fields: Vec<(String, FieldValue)>| TraceRecord {
            seq: 0,
            t_ns: 0,
            thread: 0,
            kind,
            span,
            parent,
            name: name.into(),
            fields,
        };
        let end_fields = |dur: u64, bytes: u64, count: u64, peak: u64| {
            vec![
                ("dur_ns".into(), FieldValue::U64(dur)),
                ("alloc_bytes".into(), FieldValue::U64(bytes)),
                ("alloc_count".into(), FieldValue::U64(count)),
                ("peak_live_bytes".into(), FieldValue::U64(peak)),
            ]
        };
        // root(1) {100ns, 1000B} > child(2) {30ns, 600B} > leaf(3) {10ns, 100B},
        // plus a second root-level child(4) {25ns, 150B}.
        let trace = Trace {
            meta: TraceMeta {
                version: 1,
                records: 8,
                dropped: 0,
            },
            records: vec![
                rec(RecordKind::SpanStart, 1, 0, "root", vec![]),
                rec(RecordKind::SpanStart, 2, 1, "child", vec![]),
                rec(RecordKind::SpanStart, 3, 2, "leaf", vec![]),
                rec(
                    RecordKind::SpanEnd,
                    3,
                    2,
                    "leaf",
                    end_fields(10, 100, 2, 90),
                ),
                rec(
                    RecordKind::SpanEnd,
                    2,
                    1,
                    "child",
                    end_fields(30, 600, 5, 400),
                ),
                rec(RecordKind::SpanStart, 4, 1, "child2", vec![]),
                rec(
                    RecordKind::SpanEnd,
                    4,
                    1,
                    "child2",
                    end_fields(25, 150, 3, 120),
                ),
                rec(
                    RecordKind::SpanEnd,
                    1,
                    0,
                    "root",
                    end_fields(100, 1000, 12, 800),
                ),
            ],
            metrics: vec![],
        };
        let infos = trace.span_infos();
        assert_eq!(infos.len(), 4);
        assert_eq!(
            infos.iter().map(|i| i.name.as_str()).collect::<Vec<_>>(),
            vec!["root", "child", "leaf", "child2"],
            "first-seen order"
        );
        let by_name = |n: &str| infos.iter().find(|i| i.name == n).unwrap();
        let root = by_name("root");
        assert_eq!(root.dur_ns, 100);
        assert_eq!(root.self_ns, 100 - 30 - 25, "root minus direct children");
        assert_eq!(root.self_alloc_bytes, 1000 - 600 - 150);
        assert_eq!(root.alloc_count, 12);
        assert_eq!(root.peak_live_bytes, 800);
        let child = by_name("child");
        assert_eq!(child.self_ns, 20, "30 minus leaf's 10");
        assert_eq!(child.self_alloc_bytes, 500);
        assert_eq!(by_name("leaf").self_ns, 10, "leaves keep their total");

        // Concurrent children can out-sum the parent; self saturates.
        let trace2 = Trace {
            meta: TraceMeta {
                version: 1,
                records: 4,
                dropped: 0,
            },
            records: vec![
                rec(RecordKind::SpanStart, 1, 0, "pool", vec![]),
                rec(RecordKind::SpanStart, 2, 1, "worker", vec![]),
                rec(
                    RecordKind::SpanEnd,
                    2,
                    1,
                    "worker",
                    end_fields(500, 0, 0, 0),
                ),
                rec(RecordKind::SpanEnd, 1, 0, "pool", end_fields(100, 0, 0, 0)),
            ],
            metrics: vec![],
        };
        assert_eq!(trace2.span_infos()[0].self_ns, 0, "saturates, no underflow");
    }

    #[test]
    fn malformed_documents_are_rejected() {
        assert!(Trace::parse("").is_err(), "no meta");
        assert!(
            Trace::parse("{\"type\":\"meta\",\"version\":1,\"records\":1,\"dropped\":0}\n")
                .is_err(),
            "record count mismatch"
        );
        assert!(
            Trace::parse(
                "{\"type\":\"meta\",\"version\":1,\"records\":0,\"dropped\":0}\n\
                 {\"type\":\"mystery\"}\n"
            )
            .is_err(),
            "unknown type"
        );
    }

    #[test]
    fn field_values_canonicalize() {
        assert_eq!(field_value(&Json::Num(3.0)), FieldValue::U64(3));
        assert_eq!(field_value(&Json::Num(-2.0)), FieldValue::I64(-2));
        assert_eq!(field_value(&Json::Num(0.5)), FieldValue::F64(0.5));
        assert_eq!(field_value(&Json::Bool(true)), FieldValue::Bool(true));
        assert_eq!(
            field_value(&Json::Str("x".into())),
            FieldValue::Str("x".into())
        );
        assert!(matches!(field_value(&Json::Null), FieldValue::F64(v) if v.is_nan()));
    }
}
