//! The global bounded ring-buffer collector.
//!
//! Collection is a side channel: enabling or disabling it never changes
//! pipeline results (the determinism suite enforces this end to end).
//! All records are appended under a single mutex, which makes the
//! sequence numbers strictly increasing and records from concurrent
//! workers non-interleaved. When the buffer is full the oldest record
//! is dropped and counted.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use crate::record::{FieldValue, RecordKind, TraceRecord};

/// Default ring-buffer capacity (records).
pub const DEFAULT_CAPACITY: usize = 1 << 16;

static ENABLED: AtomicBool = AtomicBool::new(false);
static PROVENANCE: AtomicBool = AtomicBool::new(false);
static NEXT_THREAD: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static THREAD_ORDINAL: u64 = NEXT_THREAD.fetch_add(1, Ordering::Relaxed);
}

struct Inner {
    records: VecDeque<TraceRecord>,
    capacity: usize,
    dropped: u64,
    next_seq: u64,
}

fn inner() -> &'static Mutex<Inner> {
    static INNER: OnceLock<Mutex<Inner>> = OnceLock::new();
    INNER.get_or_init(|| {
        Mutex::new(Inner {
            records: VecDeque::new(),
            capacity: DEFAULT_CAPACITY,
            dropped: 0,
            next_seq: 0,
        })
    })
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Turns collection on or off globally. Off by default; the pipeline
/// produces byte-identical results either way.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::SeqCst);
}

/// Whether collection is currently enabled.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns provenance collection on or off. Provenance records are only
/// emitted while both this flag and [`set_enabled`] are on; like all
/// telemetry, they never change pipeline results.
pub fn set_provenance_enabled(on: bool) {
    PROVENANCE.store(on, Ordering::SeqCst);
}

/// Whether provenance records are currently being collected (requires
/// general collection to be enabled as well).
pub fn provenance_enabled() -> bool {
    enabled() && PROVENANCE.load(Ordering::Relaxed)
}

/// Resizes the ring buffer (existing overflow is dropped oldest-first).
pub fn set_capacity(capacity: usize) {
    let mut g = inner().lock().expect("obs collector poisoned");
    g.capacity = capacity.max(1);
    while g.records.len() > g.capacity {
        g.records.pop_front();
        g.dropped += 1;
    }
}

/// Clears the collected records (capacity and metrics are untouched).
pub fn clear() {
    let mut g = inner().lock().expect("obs collector poisoned");
    g.records.clear();
    g.dropped = 0;
}

/// Number of records evicted because the ring buffer was full.
pub fn dropped() -> u64 {
    inner().lock().expect("obs collector poisoned").dropped
}

/// A copy of the collected records in sequence order.
pub fn snapshot() -> Vec<TraceRecord> {
    let g = inner().lock().expect("obs collector poisoned");
    g.records.iter().cloned().collect()
}

/// Small dense ordinal for the calling thread (for trace readability —
/// `std::thread::ThreadId` is opaque on stable).
pub(crate) fn thread_ordinal() -> u64 {
    THREAD_ORDINAL.with(|t| *t)
}

/// Appends one record (no-op while disabled).
pub(crate) fn push(
    kind: RecordKind,
    span: u64,
    parent: u64,
    name: &str,
    fields: Vec<(String, FieldValue)>,
) {
    if !enabled() {
        return;
    }
    let t_ns = epoch().elapsed().as_nanos() as u64;
    let thread = thread_ordinal();
    let mut g = inner().lock().expect("obs collector poisoned");
    let seq = g.next_seq;
    g.next_seq += 1;
    if g.records.len() >= g.capacity {
        g.records.pop_front();
        g.dropped += 1;
    }
    g.records.push_back(TraceRecord {
        seq,
        t_ns,
        thread,
        kind,
        span,
        parent,
        name: name.to_string(),
        fields,
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_lock;

    fn push_event(name: &str) {
        push(RecordKind::Event, 0, 0, name, Vec::new());
    }

    #[test]
    fn disabled_collector_records_nothing() {
        let _l = test_lock();
        set_enabled(false);
        clear();
        push_event("lost");
        assert!(snapshot().is_empty());
    }

    #[test]
    fn ring_buffer_drops_oldest_and_counts() {
        let _l = test_lock();
        set_enabled(true);
        clear();
        set_capacity(4);
        for i in 0..10 {
            push_event(&format!("e{i}"));
        }
        let records = snapshot();
        assert_eq!(records.len(), 4);
        assert_eq!(records[0].name, "e6", "oldest records evicted first");
        assert_eq!(dropped(), 6);
        // Sequence numbers stay strictly increasing across evictions.
        for w in records.windows(2) {
            assert!(w[0].seq < w[1].seq);
        }
        set_capacity(DEFAULT_CAPACITY);
        set_enabled(false);
        clear();
    }
}
