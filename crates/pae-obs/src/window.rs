//! Rolling-window metrics: ring-of-epoch-buckets histograms and
//! counters for live serving telemetry.
//!
//! The cumulative registry ([`crate::metrics`]) answers "what happened
//! since the process started"; a live server also needs "what happened
//! in the last minute". [`WindowedHistogram`] and [`WindowedCounter`]
//! keep a fixed ring of epoch buckets: time is divided into
//! `epoch_s`-second epochs, each epoch owns one slot, and a slot is
//! lazily reset the first time a newer epoch touches it. Reading a
//! window of `W` seconds merges the `W / epoch_s` most recent slots
//! (including the current, partially-filled one) — an estimate that is
//! at most one epoch stale at the edges, which is the standard
//! trade-off for O(1) updates and bounded memory.
//!
//! **The clock is injected**: every operation takes `now_s`, seconds on
//! whatever monotonic clock the caller owns (a server passes
//! `Instant::elapsed().as_secs()` since startup; tests pass literal
//! epochs). Nothing here reads wall time, so windowed behaviour is
//! fully deterministic under test.
//!
//! **Backwards clocks are tolerated on the write path**: callers are
//! supposed to pass a monotonic clock, but a stepped wall clock (NTP,
//! VM resume) can slip through. A write whose `now_s` maps to an epoch
//! older than the newest epoch ever written is clamped to that newest
//! epoch — without the clamp the old epoch number could reuse and
//! *reset* a newer slot, silently deleting fresh observations. Reads
//! are pure and stay unclamped: querying an earlier `now_s`
//! deliberately answers "what did the window look like then".

use crate::metrics::Histogram;

/// A histogram over a rolling time window: a ring of per-epoch
/// [`Histogram`]s merged on demand.
#[derive(Debug, Clone)]
pub struct WindowedHistogram {
    epoch_s: u64,
    /// `slots[i]` holds data for epoch `e` where `e % slots.len() == i`;
    /// the paired `u64` records which epoch the slot currently belongs
    /// to (stale slots are reset on first touch).
    slots: Vec<(u64, Histogram)>,
    /// Newest epoch any operation has seen; `now_s` values that map to
    /// an older epoch are clamped here (backwards-clock tolerance).
    latest: u64,
}

impl WindowedHistogram {
    /// A ring of `n_slots` epochs of `epoch_s` seconds each; the widest
    /// answerable window is `epoch_s * n_slots` seconds.
    pub fn new(epoch_s: u64, n_slots: usize) -> WindowedHistogram {
        assert!(epoch_s > 0 && n_slots > 0);
        WindowedHistogram {
            epoch_s,
            slots: vec![(u64::MAX, Histogram::default()); n_slots],
            latest: 0,
        }
    }

    /// The widest window this ring can answer, in seconds.
    pub fn span_s(&self) -> u64 {
        self.epoch_s * self.slots.len() as u64
    }

    fn slot_mut(&mut self, now_s: u64) -> &mut Histogram {
        let epoch = (now_s / self.epoch_s).max(self.latest);
        self.latest = epoch;
        let i = (epoch % self.slots.len() as u64) as usize;
        let (owner, hist) = &mut self.slots[i];
        if *owner != epoch {
            *owner = epoch;
            *hist = Histogram::default();
        }
        hist
    }

    /// Records one observation at time `now_s`.
    pub fn observe(&mut self, now_s: u64, v: f64) {
        self.slot_mut(now_s).observe(v);
    }

    /// Merges the slots covering the last `window_s` seconds (clamped
    /// to the ring span) into one [`Histogram`]. The current epoch is
    /// included, so fresh observations are visible immediately.
    pub fn window(&self, now_s: u64, window_s: u64) -> Histogram {
        let epochs = (window_s.clamp(1, self.span_s())).div_ceil(self.epoch_s);
        let current = now_s / self.epoch_s;
        let oldest = current.saturating_sub(epochs - 1);
        let mut merged = Histogram::default();
        for (owner, hist) in &self.slots {
            if *owner < oldest || *owner > current || hist.count == 0 {
                continue;
            }
            for (b, c) in merged.buckets.iter_mut().zip(hist.buckets.iter()) {
                *b += c;
            }
            merged.count += hist.count;
            merged.sum += hist.sum;
            merged.min = merged.min.min(hist.min);
            merged.max = merged.max.max(hist.max);
        }
        merged
    }

    /// `q`-quantile over the last `window_s` seconds (0 when empty).
    pub fn quantile(&self, now_s: u64, window_s: u64, q: f64) -> f64 {
        self.window(now_s, window_s).quantile(q)
    }
}

/// A counter over a rolling time window: a ring of per-epoch totals.
#[derive(Debug, Clone)]
pub struct WindowedCounter {
    epoch_s: u64,
    /// `(owning epoch, count)` pairs, same slot discipline as
    /// [`WindowedHistogram`].
    slots: Vec<(u64, u64)>,
    /// Newest epoch seen, for backwards-clock clamping (see
    /// [`WindowedHistogram::latest`]).
    latest: u64,
}

impl WindowedCounter {
    /// A ring of `n_slots` epochs of `epoch_s` seconds each.
    pub fn new(epoch_s: u64, n_slots: usize) -> WindowedCounter {
        assert!(epoch_s > 0 && n_slots > 0);
        WindowedCounter {
            epoch_s,
            slots: vec![(u64::MAX, 0); n_slots],
            latest: 0,
        }
    }

    /// The widest window this ring can answer, in seconds.
    pub fn span_s(&self) -> u64 {
        self.epoch_s * self.slots.len() as u64
    }

    /// Adds `delta` at time `now_s`.
    pub fn add(&mut self, now_s: u64, delta: u64) {
        let epoch = (now_s / self.epoch_s).max(self.latest);
        self.latest = epoch;
        let i = (epoch % self.slots.len() as u64) as usize;
        let (owner, count) = &mut self.slots[i];
        if *owner != epoch {
            *owner = epoch;
            *count = 0;
        }
        *count += delta;
    }

    /// Total over the last `window_s` seconds (clamped to the span).
    pub fn total(&self, now_s: u64, window_s: u64) -> u64 {
        let epochs = (window_s.clamp(1, self.span_s())).div_ceil(self.epoch_s);
        let current = (now_s / self.epoch_s).max(self.latest);
        let oldest = current.saturating_sub(epochs - 1);
        self.slots
            .iter()
            .filter(|(owner, _)| *owner >= oldest && *owner <= current)
            .map(|(_, c)| c)
            .sum()
    }

    /// Average per-second rate over the last `window_s` seconds.
    pub fn rate(&self, now_s: u64, window_s: u64) -> f64 {
        let w = window_s.clamp(1, self.span_s());
        self.total(now_s, w) as f64 / w as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_window_rolls_old_epochs_out() {
        // 1-second epochs, 60-slot ring: 1m is the full span.
        let mut h = WindowedHistogram::new(1, 60);
        for t in 0..10u64 {
            h.observe(t, 100.0);
        }
        assert_eq!(h.window(9, 60).count, 10);
        // At t=70 the first 10 epochs have aged out of a 60s window.
        assert_eq!(h.window(70, 60).count, 0);
        // New data at t=70 is visible immediately.
        h.observe(70, 7.0);
        let w = h.window(70, 60);
        assert_eq!(w.count, 1);
        assert_eq!(w.min, 7.0);
    }

    #[test]
    fn narrower_windows_see_fewer_epochs() {
        let mut h = WindowedHistogram::new(5, 60); // 300s span
        h.observe(0, 1.0); // epoch 0
        h.observe(100, 2.0); // epoch 20
        h.observe(299, 3.0); // epoch 59
        assert_eq!(h.window(299, 300).count, 3);
        // 60s window at t=299 covers epochs 48..=59 only.
        assert_eq!(h.window(299, 60).count, 1);
        assert_eq!(h.window(299, 60).max, 3.0);
    }

    #[test]
    fn ring_reuse_resets_stale_slots() {
        let mut h = WindowedHistogram::new(1, 4);
        h.observe(0, 1.0);
        h.observe(1, 1.0);
        // Epoch 4 reuses slot 0; the epoch-0 data must not leak in.
        h.observe(4, 9.0);
        let w = h.window(4, 4);
        assert_eq!(w.count, 2, "epochs 1 and 4");
        assert_eq!(w.max, 9.0);
    }

    #[test]
    fn windowed_quantiles_match_merged_histogram() {
        let mut h = WindowedHistogram::new(1, 60);
        for t in 0..30u64 {
            h.observe(t, 10.0);
        }
        for t in 30..33u64 {
            h.observe(t, 1000.0);
        }
        let p50 = h.quantile(32, 60, 0.5);
        assert!((9.0..=20.0).contains(&p50), "p50 {p50}");
        assert_eq!(h.quantile(32, 60, 0.99), 1000.0);
        // A window that excludes the slow tail reports fast quantiles.
        assert_eq!(h.quantile(29, 30, 0.99), 10.0);
    }

    #[test]
    fn counter_totals_and_rates() {
        let mut c = WindowedCounter::new(5, 60);
        for t in 0..60u64 {
            c.add(t, 2);
        }
        assert_eq!(c.total(59, 60), 120);
        assert!((c.rate(59, 60) - 2.0).abs() < 1e-9);
        // 240s later everything has aged out of a 60s window but the
        // 300s window still sees the tail epochs.
        assert_eq!(c.total(299, 60), 0);
        assert!(c.total(299, 300) > 0);
        // Requesting more than the span clamps to the span.
        assert_eq!(c.total(59, 100_000), 120);
    }

    #[test]
    fn backwards_clock_is_clamped_to_latest_epoch() {
        // 1-second epochs, 4-slot ring. Observe at t=100, then the
        // clock steps back to t=96: epoch 96 maps to the *same slot*
        // as epoch 100, so without the clamp the stale write would
        // reset the slot and delete the fresh observation. The clamp
        // keeps the write in epoch 100 and both observations survive.
        let mut h = WindowedHistogram::new(1, 4);
        h.observe(100, 1.0);
        h.observe(96, 2.0);
        let w = h.window(100, 4);
        assert_eq!(w.count, 2, "stepped-back observe must not reset the slot");
        assert_eq!(w.max, 2.0);
        // A much larger step back (different slot) is clamped too: the
        // write lands in the newest epoch, not in an expired one where
        // the current window would never see it.
        h.observe(50, 3.0);
        assert_eq!(h.window(100, 4).count, 3);
        // Once the clock moves forward again, normal rolling resumes.
        h.observe(103, 4.0);
        assert_eq!(h.window(103, 4).count, 4, "epochs 100 and 103");

        let mut c = WindowedCounter::new(1, 4);
        c.add(100, 5);
        c.add(96, 7);
        assert_eq!(c.total(100, 4), 12, "stepped-back add lands in epoch 100");
        c.add(103, 1);
        assert_eq!(c.total(103, 4), 13);
    }

    #[test]
    fn deterministic_under_injected_clock() {
        let run = || {
            let mut h = WindowedHistogram::new(5, 60);
            let mut c = WindowedCounter::new(5, 60);
            for t in 0..500u64 {
                h.observe(t, (t % 17) as f64 + 1.0);
                c.add(t, t % 3);
            }
            (
                h.window(499, 60).count,
                h.quantile(499, 300, 0.9).to_bits(),
                c.total(499, 60),
            )
        };
        assert_eq!(run(), run());
    }
}
