//! Streaming sketches for extraction-quality monitoring: a
//! deterministic space-saving top-k heavy-hitter sketch plus
//! fixed-bucket histograms with distribution-divergence scoring (PSI
//! and Jensen–Shannon).
//!
//! The cumulative registry's [`crate::metrics::Histogram`] is
//! log₂-bucketed — right for latencies spanning orders of magnitude,
//! wrong for divergence scoring, where reference and live sides must
//! share one fixed binning. [`FixedHistogram`] covers a closed range
//! with equal-width buckets so a freeze-time reference distribution
//! and a live windowed distribution can be compared bucket-for-bucket
//! with [`psi`] / [`js_divergence`].
//!
//! Everything here is deterministic: no hashing with random seeds, no
//! wall clocks. [`SpaceSaving`] breaks every tie lexicographically, so
//! two replicas fed the same stream report the same top-k.

use std::collections::BTreeMap;

/// One tracked heavy hitter: the estimated count overcounts the true
/// frequency by at most `error`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HeavyHitter {
    /// The tracked item.
    pub value: String,
    /// Estimated occurrence count (`true count <= count`).
    pub count: u64,
    /// Maximum overcount inherited from the entry this one evicted
    /// (`count - error <= true count`).
    pub error: u64,
}

/// Space-saving top-k heavy-hitter sketch (Metwally et al.): tracks at
/// most `capacity` distinct items in O(capacity) memory. Any item whose
/// true frequency exceeds `N / capacity` (N = stream length) is
/// guaranteed to be tracked, and every tracked item's true count is
/// bracketed by `count - error ..= count`.
///
/// Eviction picks the minimum by `(count, value)`, so the sketch is a
/// pure function of the observation sequence.
#[derive(Debug, Clone)]
pub struct SpaceSaving {
    capacity: usize,
    entries: BTreeMap<String, (u64, u64)>,
}

impl SpaceSaving {
    /// A sketch tracking at most `capacity` items (`capacity >= 1`).
    pub fn new(capacity: usize) -> SpaceSaving {
        assert!(capacity >= 1, "space-saving capacity must be >= 1");
        SpaceSaving {
            capacity,
            entries: BTreeMap::new(),
        }
    }

    /// Number of items currently tracked (at most the capacity).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing has been observed yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Records one occurrence of `item`.
    pub fn observe(&mut self, item: &str) {
        self.observe_n(item, 1);
    }

    /// Records `n` occurrences of `item` at once.
    pub fn observe_n(&mut self, item: &str, n: u64) {
        if n == 0 {
            return;
        }
        if let Some((count, _)) = self.entries.get_mut(item) {
            *count += n;
            return;
        }
        if self.entries.len() < self.capacity {
            self.entries.insert(item.to_owned(), (n, 0));
            return;
        }
        // Evict the minimum-count entry (ties broken by smallest key:
        // BTreeMap iteration order makes the first minimum the winner).
        let victim = self
            .entries
            .iter()
            .min_by_key(|(k, (c, _))| (*c, k.as_str()))
            .map(|(k, (c, _))| (k.clone(), *c))
            .expect("non-empty at capacity");
        self.entries.remove(&victim.0);
        self.entries
            .insert(item.to_owned(), (victim.1 + n, victim.1));
    }

    /// All tracked items, ordered by `(count desc, value asc)`.
    pub fn top(&self) -> Vec<HeavyHitter> {
        let mut out: Vec<HeavyHitter> = self
            .entries
            .iter()
            .map(|(k, &(count, error))| HeavyHitter {
                value: k.clone(),
                count,
                error,
            })
            .collect();
        out.sort_by(|a, b| b.count.cmp(&a.count).then_with(|| a.value.cmp(&b.value)));
        out
    }

    /// Iterates `(item, count, error)` in key order — the raw entries,
    /// for merging several sketches (e.g. per-epoch ring slots) into a
    /// windowed view.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64, u64)> {
        self.entries.iter().map(|(k, &(c, e))| (k.as_str(), c, e))
    }
}

/// An equal-width-bucket histogram over the closed range `[lo, hi)`.
/// Out-of-range observations clamp into the edge buckets, so the count
/// vector always accounts for every observation.
#[derive(Debug, Clone, PartialEq)]
pub struct FixedHistogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
}

impl FixedHistogram {
    /// `n` equal-width buckets covering `[lo, hi)`.
    pub fn new(lo: f64, hi: f64, n: usize) -> FixedHistogram {
        assert!(n >= 1 && hi > lo, "need at least one bucket and hi > lo");
        FixedHistogram {
            lo,
            hi,
            counts: vec![0; n],
        }
    }

    /// A histogram wrapping pre-computed counts (e.g. decoded from a
    /// bundle section) over `[lo, hi)`.
    pub fn from_counts(lo: f64, hi: f64, counts: Vec<u64>) -> FixedHistogram {
        assert!(!counts.is_empty() && hi > lo);
        FixedHistogram { lo, hi, counts }
    }

    /// The bucket index `x` falls into (clamped to the edges).
    pub fn bucket_of(&self, x: f64) -> usize {
        let n = self.counts.len();
        let t = (x - self.lo) / (self.hi - self.lo) * n as f64;
        (t.floor().max(0.0) as usize).min(n - 1)
    }

    /// Records one observation.
    pub fn observe(&mut self, x: f64) {
        let b = self.bucket_of(x);
        self.counts[b] += 1;
    }

    /// The per-bucket counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Adds another histogram's counts bucket-for-bucket (the two must
    /// share a binning).
    pub fn merge_from(&mut self, other: &FixedHistogram) {
        assert_eq!(self.counts.len(), other.counts.len(), "binning mismatch");
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
    }
}

/// Proportion floor replacing empty buckets in [`psi`]: the standard
/// PSI convention, keeping the log terms finite without renormalizing.
const PSI_EPS: f64 = 1e-6;

/// Population stability index between two count vectors sharing one
/// binning: `Σ (qᵢ - pᵢ) · ln(qᵢ / pᵢ)` over bucket proportions, with
/// empty buckets floored at `1e-6` (the conventional smoothing). The
/// measure is symmetric and unbounded; common practice reads `< 0.1`
/// as stable, `> 0.25` as drifted.
///
/// Edge cases: both sides empty → `0.0` (nothing to compare); one side
/// empty → every proportion drops to the floor, so the score is large
/// (all mass vanished *is* maximal drift).
pub fn psi(reference: &[u64], live: &[u64]) -> f64 {
    assert_eq!(reference.len(), live.len(), "binning mismatch");
    let (rt, lt) = (
        reference.iter().sum::<u64>() as f64,
        live.iter().sum::<u64>() as f64,
    );
    if rt == 0.0 && lt == 0.0 {
        return 0.0;
    }
    let mut score = 0.0;
    for (&r, &l) in reference.iter().zip(live) {
        let p = if rt > 0.0 { r as f64 / rt } else { 0.0 }.max(PSI_EPS);
        let q = if lt > 0.0 { l as f64 / lt } else { 0.0 }.max(PSI_EPS);
        score += (q - p) * (q / p).ln();
    }
    score
}

/// Jensen–Shannon divergence (base-2 logs, so the result is in
/// `[0, 1]`) between two count vectors sharing one binning:
/// `½·KL(p‖m) + ½·KL(q‖m)` with `m = ½(p+q)` and `0·log 0 = 0`.
///
/// Edge cases: both sides empty → `0.0`; exactly one side empty →
/// `1.0` (documented convention: a vanished distribution is maximally
/// divergent, and it is also the limit of the formula as the emptier
/// side's mass goes to zero on disjoint support).
pub fn js_divergence(reference: &[u64], live: &[u64]) -> f64 {
    assert_eq!(reference.len(), live.len(), "binning mismatch");
    let (rt, lt) = (
        reference.iter().sum::<u64>() as f64,
        live.iter().sum::<u64>() as f64,
    );
    match (rt == 0.0, lt == 0.0) {
        (true, true) => return 0.0,
        (true, false) | (false, true) => return 1.0,
        (false, false) => {}
    }
    let mut kl_p = 0.0;
    let mut kl_q = 0.0;
    for (&r, &l) in reference.iter().zip(live) {
        let p = r as f64 / rt;
        let q = l as f64 / lt;
        let m = 0.5 * (p + q);
        if p > 0.0 {
            kl_p += p * (p / m).log2();
        }
        if q > 0.0 {
            kl_q += q * (q / m).log2();
        }
    }
    (0.5 * (kl_p + kl_q)).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn space_saving_exact_below_capacity() {
        let mut s = SpaceSaving::new(8);
        for item in ["a", "b", "a", "c", "a", "b"] {
            s.observe(item);
        }
        let top = s.top();
        assert_eq!(top.len(), 3);
        assert_eq!(
            (top[0].value.as_str(), top[0].count, top[0].error),
            ("a", 3, 0)
        );
        assert_eq!(
            (top[1].value.as_str(), top[1].count, top[1].error),
            ("b", 2, 0)
        );
        assert_eq!(
            (top[2].value.as_str(), top[2].count, top[2].error),
            ("c", 1, 0)
        );
    }

    #[test]
    fn space_saving_eviction_brackets_true_counts() {
        // Capacity 2, stream of length 8: "a" ×5 dominates.
        let mut s = SpaceSaving::new(2);
        for item in ["a", "a", "b", "a", "c", "a", "d", "a"] {
            s.observe(item);
        }
        let top = s.top();
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].value, "a");
        assert_eq!(top[0].count, 5, "tracked from the start, exact");
        assert_eq!(top[0].error, 0);
        // The runner-up inherited an evicted entry's count as error.
        assert!(top[1].count >= 1 && top[1].count - top[1].error <= 1);
    }

    #[test]
    fn space_saving_ties_break_lexicographically() {
        // All counts equal at capacity: the eviction victim must be the
        // lexicographically smallest, deterministically.
        let mut s = SpaceSaving::new(2);
        s.observe("b");
        s.observe("a");
        s.observe("z");
        let tracked: Vec<&str> = s.iter().map(|(k, _, _)| k).collect();
        assert_eq!(tracked, vec!["b", "z"], "min-(count,key) entry evicted");
    }

    #[test]
    fn space_saving_top_order_is_count_desc_then_value_asc() {
        let mut s = SpaceSaving::new(8);
        for item in ["y", "x", "x", "y", "w"] {
            s.observe(item);
        }
        let top = s.top();
        let names: Vec<&str> = top.iter().map(|h| h.value.as_str()).collect();
        assert_eq!(names, vec!["x", "y", "w"]);
    }

    #[test]
    fn fixed_histogram_buckets_and_clamping() {
        let mut h = FixedHistogram::new(0.0, 1.0, 20);
        assert_eq!(h.bucket_of(0.0), 0);
        assert_eq!(h.bucket_of(0.049), 0);
        assert_eq!(h.bucket_of(0.05), 1);
        assert_eq!(h.bucket_of(0.999), 19);
        // Out-of-range clamps to the edge buckets.
        assert_eq!(h.bucket_of(-5.0), 0);
        assert_eq!(h.bucket_of(1.0), 19);
        assert_eq!(h.bucket_of(7.5), 19);
        h.observe(0.5);
        h.observe(2.0);
        assert_eq!(h.total(), 2);
        assert_eq!(h.counts()[10], 1);
        assert_eq!(h.counts()[19], 1);

        let mut other = FixedHistogram::new(0.0, 1.0, 20);
        other.observe(0.5);
        h.merge_from(&other);
        assert_eq!(h.counts()[10], 2);
    }

    #[test]
    fn psi_hand_computed_fixture() {
        // p = (0.5, 0.5), q = (0.75, 0.25):
        // (0.75-0.5)·ln(1.5) + (0.25-0.5)·ln(0.5) = 0.2746530...
        let got = psi(&[1, 1], &[3, 1]);
        assert!((got - 0.274_653_1).abs() < 1e-6, "psi {got}");
        // Symmetric.
        assert!((psi(&[3, 1], &[1, 1]) - got).abs() < 1e-12);
        // Identical distributions (different scales) score zero.
        assert_eq!(psi(&[2, 6], &[1, 3]), 0.0);
    }

    #[test]
    fn psi_empty_and_one_sided() {
        assert_eq!(psi(&[0, 0], &[0, 0]), 0.0);
        // One-sided: all mass vanished — far beyond any drift threshold.
        assert!(psi(&[5, 5], &[0, 0]) > 10.0);
        assert!(psi(&[0, 0], &[5, 5]) > 10.0);
        // Disjoint support is extreme drift too.
        assert!(psi(&[10, 0], &[0, 10]) > 10.0);
    }

    #[test]
    fn js_hand_computed_fixture() {
        // p = (0.5, 0.5), q = (0.75, 0.25) → 0.0487950...
        let got = js_divergence(&[1, 1], &[3, 1]);
        assert!((got - 0.048_795_0).abs() < 1e-6, "js {got}");
        assert!((js_divergence(&[3, 1], &[1, 1]) - got).abs() < 1e-12);
        assert_eq!(js_divergence(&[4, 4], &[1, 1]), 0.0);
        // Disjoint support is exactly 1 bit.
        assert!((js_divergence(&[1, 0], &[0, 1]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn js_empty_and_one_sided() {
        assert_eq!(js_divergence(&[0, 0], &[0, 0]), 0.0);
        assert_eq!(js_divergence(&[3, 4], &[0, 0]), 1.0);
        assert_eq!(js_divergence(&[0, 0], &[3, 4]), 1.0);
    }

    #[test]
    fn sketch_is_deterministic() {
        let run = || {
            let mut s = SpaceSaving::new(4);
            for i in 0..200u64 {
                s.observe(&format!("v{}", i % 13));
            }
            s.top()
        };
        assert_eq!(run(), run());
    }
}
