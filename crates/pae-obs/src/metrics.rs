//! Global metrics registry: counters, gauges, and log₂-bucketed
//! histograms, keyed by name plus sorted label pairs.
//!
//! Counters and gauges update the registry only (exported in the final
//! snapshot); [`observe_step`] additionally appends a `metric` trace
//! record so step-indexed series (optimizer steps, training epochs)
//! appear in the JSONL trace with their step order intact.

use std::collections::BTreeMap;
use std::sync::{Mutex, OnceLock};

use crate::collector::{enabled, push};
use crate::record::{FieldValue, RecordKind};
use crate::span::current_span;

/// Number of log₂ histogram buckets.
pub const HISTOGRAM_BUCKETS: usize = 64;

/// Registry key: metric name plus sorted label pairs.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct MetricKey {
    /// Metric name, dot-separated (e.g. `veto.dropped`).
    pub name: String,
    /// Label pairs, kept sorted for a stable export order.
    pub labels: Vec<(String, String)>,
}

/// A log₂-bucketed histogram over positive magnitudes.
///
/// Bucket `i` covers values with `floor(log2(v)) == i - 32`, i.e. the
/// upper bound of bucket `i` is `2^(i - 31)`; values below `2^-32`
/// (including zero) land in bucket 0 and values at `2^31` or above in
/// the last bucket. Count, sum, min, and max are tracked exactly.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Per-bucket observation counts.
    pub buckets: [u64; HISTOGRAM_BUCKETS],
    /// Total observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: f64,
    /// Smallest observed value.
    pub min: f64,
    /// Largest observed value.
    pub max: f64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }
}

impl Histogram {
    /// The bucket index a value falls into.
    pub fn bucket_index(v: f64) -> usize {
        if !v.is_finite() || v <= 0.0 {
            return 0;
        }
        (v.log2().floor() as i64 + 32).clamp(0, HISTOGRAM_BUCKETS as i64 - 1) as usize
    }

    /// Upper bound of bucket `i` (inclusive).
    pub fn bucket_upper_bound(i: usize) -> f64 {
        2f64.powi(i as i32 - 31)
    }

    /// Estimated `q`-quantile (`0.0..=1.0`) from the log₂ buckets.
    ///
    /// The `ceil(q * count)`-th observation's bucket is located by a
    /// cumulative walk, then the estimate interpolates linearly within
    /// that bucket by rank (an observation at rank fraction `f` of the
    /// bucket's population sits at `lower + f * (upper - lower)`),
    /// rather than reporting the bucket's power-of-two upper bound —
    /// which systematically overshot (90 observations of 1.5 reported
    /// p50 = 2.0, a +33% bias). The result is clamped into
    /// `[min, max]` so single-bucket histograms report exact values
    /// and the tail quantiles never exceed the observed maximum.
    /// Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cumulative = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if cumulative + c >= target {
                let upper = Self::bucket_upper_bound(i);
                // Bucket 0 also holds non-positive values; treat its
                // lower edge as 0 rather than 2^-32's neighbour.
                let lower = if i == 0 { 0.0 } else { upper / 2.0 };
                let fraction = (target - cumulative) as f64 / c as f64;
                let estimate = lower + fraction * (upper - lower);
                return estimate.clamp(self.min, self.max);
            }
            cumulative += c;
        }
        self.max
    }

    /// Records one observation.
    pub fn observe(&mut self, v: f64) {
        self.buckets[Self::bucket_index(v)] += 1;
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }
}

/// One registered metric value.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Monotonic counter.
    Counter(u64),
    /// Last-write-wins gauge.
    Gauge(f64),
    /// Log₂-bucketed histogram (boxed: ~550 bytes vs 8 for the others).
    Histogram(Box<Histogram>),
}

type Registry = BTreeMap<MetricKey, MetricValue>;

fn registry() -> &'static Mutex<Registry> {
    static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(BTreeMap::new()))
}

fn key(name: &str, labels: &[(&str, &str)]) -> MetricKey {
    let mut labels: Vec<(String, String)> = labels
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect();
    labels.sort();
    MetricKey {
        name: name.to_string(),
        labels,
    }
}

/// Adds `delta` to the counter `name{labels}` (no-op while disabled).
pub fn counter_add(name: &str, labels: &[(&str, &str)], delta: u64) {
    if !enabled() {
        return;
    }
    let mut g = registry().lock().expect("obs metrics poisoned");
    let e = g
        .entry(key(name, labels))
        .or_insert(MetricValue::Counter(0));
    if let MetricValue::Counter(c) = e {
        *c += delta;
    }
}

/// Sets the gauge `name{labels}` (no-op while disabled).
pub fn gauge_set(name: &str, labels: &[(&str, &str)], value: f64) {
    if !enabled() {
        return;
    }
    let mut g = registry().lock().expect("obs metrics poisoned");
    g.insert(key(name, labels), MetricValue::Gauge(value));
}

/// Records `value` into the histogram `name{labels}` (no-op while
/// disabled).
pub fn observe(name: &str, labels: &[(&str, &str)], value: f64) {
    if !enabled() {
        return;
    }
    let mut g = registry().lock().expect("obs metrics poisoned");
    let e = g
        .entry(key(name, labels))
        .or_insert_with(|| MetricValue::Histogram(Box::default()));
    if let MetricValue::Histogram(h) = e {
        h.observe(value);
    }
}

/// Records one point of a step-indexed series: updates the histogram
/// `name` AND appends a `metric` trace record carrying `step`/`value`,
/// so the series is reconstructible in step order from the JSONL trace.
pub fn observe_step(name: &str, step: usize, value: f64) {
    if !enabled() {
        return;
    }
    observe(name, &[], value);
    push(
        RecordKind::Metric,
        current_span(),
        0,
        name,
        vec![
            ("step".into(), FieldValue::U64(step as u64)),
            ("value".into(), FieldValue::F64(value)),
        ],
    );
}

/// A sorted copy of the metrics registry.
pub fn metrics_snapshot() -> Vec<(MetricKey, MetricValue)> {
    let g = registry().lock().expect("obs metrics poisoned");
    g.iter().map(|(k, v)| (k.clone(), v.clone())).collect()
}

/// Clears all registered metrics.
pub fn clear_metrics() {
    registry().lock().expect("obs metrics poisoned").clear();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collector::{clear, set_enabled, snapshot};
    use crate::test_lock;

    #[test]
    fn counters_and_gauges_register() {
        let _l = test_lock();
        set_enabled(true);
        clear_metrics();
        counter_add("veto.dropped", &[("rule", "symbols")], 3);
        counter_add("veto.dropped", &[("rule", "symbols")], 2);
        counter_add("veto.dropped", &[("rule", "markup")], 1);
        gauge_set("bootstrap.triples", &[], 42.0);
        let snap = metrics_snapshot();
        let get = |name: &str, rule: Option<&str>| {
            snap.iter()
                .find(|(k, _)| {
                    k.name == name
                        && rule
                            .is_none_or(|r| k.labels == vec![("rule".to_string(), r.to_string())])
                })
                .map(|(_, v)| v.clone())
        };
        assert_eq!(
            get("veto.dropped", Some("symbols")),
            Some(MetricValue::Counter(5))
        );
        assert_eq!(
            get("veto.dropped", Some("markup")),
            Some(MetricValue::Counter(1))
        );
        assert_eq!(
            get("bootstrap.triples", None),
            Some(MetricValue::Gauge(42.0))
        );
        set_enabled(false);
        clear_metrics();
    }

    #[test]
    fn histogram_bucketing_is_log2() {
        assert_eq!(Histogram::bucket_index(0.0), 0);
        assert_eq!(Histogram::bucket_index(1.0), 32);
        assert_eq!(Histogram::bucket_index(1.5), 32);
        assert_eq!(Histogram::bucket_index(2.0), 33);
        assert_eq!(Histogram::bucket_index(0.5), 31);
        assert_eq!(Histogram::bucket_index(f64::INFINITY), 0);
        assert_eq!(Histogram::bucket_index(1e300), HISTOGRAM_BUCKETS - 1);
        assert_eq!(Histogram::bucket_upper_bound(32), 2.0);
        let mut h = Histogram::default();
        h.observe(1.0);
        h.observe(3.0);
        assert_eq!(h.count, 2);
        assert_eq!(h.sum, 4.0);
        assert_eq!(h.min, 1.0);
        assert_eq!(h.max, 3.0);
        assert_eq!(h.buckets[32], 1);
        assert_eq!(h.buckets[33], 1);
    }

    #[test]
    fn quantiles_walk_the_buckets() {
        let h = Histogram::default();
        assert_eq!(h.quantile(0.5), 0.0, "empty histogram");

        let mut h = Histogram::default();
        for _ in 0..90 {
            h.observe(1.5); // bucket 32, upper bound 2.0
        }
        for _ in 0..10 {
            h.observe(100.0); // bucket 38, upper bound 128.0
        }
        // p50 interpolates within the dense bucket [1, 2): rank 50 of
        // 90 → 1 + (50/90)·1 ≈ 1.556, not the old upper bound 2.0.
        assert!((h.quantile(0.5) - (1.0 + 50.0 / 90.0)).abs() < 1e-12);
        // p90 is the bucket's last rank → its upper bound exactly.
        assert_eq!(h.quantile(0.9), 2.0);
        // p99 reaches the tail bucket; clamped to the observed max.
        assert_eq!(h.quantile(0.99), 100.0);
        // A uniform bucket reports its median near the true value.
        let mut uniform = Histogram::default();
        for _ in 0..100 {
            uniform.observe(1.5);
        }
        assert_eq!(uniform.quantile(0.5), 1.5);

        let mut single = Histogram::default();
        single.observe(42.0);
        assert_eq!(single.quantile(0.5), 42.0, "clamped to min==max");
        assert_eq!(single.quantile(0.99), 42.0);
    }

    #[test]
    fn observe_step_emits_trace_record() {
        let _l = test_lock();
        set_enabled(true);
        clear();
        clear_metrics();
        observe_step("crf.lbfgs.grad_norm", 0, 0.5);
        observe_step("crf.lbfgs.grad_norm", 1, 0.25);
        let records = snapshot();
        let points: Vec<_> = records
            .iter()
            .filter(|r| r.kind == RecordKind::Metric)
            .collect();
        assert_eq!(points.len(), 2);
        assert_eq!(points[0].field("step"), Some(&FieldValue::U64(0)));
        assert_eq!(points[1].field("value"), Some(&FieldValue::F64(0.25)));
        let snap = metrics_snapshot();
        let h = snap
            .iter()
            .find(|(k, _)| k.name == "crf.lbfgs.grad_norm")
            .map(|(_, v)| v.clone());
        assert!(matches!(h, Some(MetricValue::Histogram(h)) if h.count == 2));
        set_enabled(false);
        clear();
        clear_metrics();
    }

    #[test]
    fn disabled_metrics_are_noops() {
        let _l = test_lock();
        set_enabled(false);
        clear_metrics();
        counter_add("x", &[], 1);
        gauge_set("y", &[], 1.0);
        observe("z", &[], 1.0);
        observe_step("w", 0, 1.0);
        assert!(metrics_snapshot().is_empty());
    }
}
