//! Prometheus exposition validation: every `/metrics` scrape must
//! parse, carry `# TYPE` headers for all families, and render
//! histograms with cumulative buckets.
//!
//! Two entry points, mirroring `trace_check.rs`:
//!
//! - `self_generated_exposition_is_valid` renders the live registry
//!   in-process and validates it.
//! - `external_metrics_file_is_valid` reads the file named by the
//!   `PAE_METRICS_FILE` environment variable (a `/metrics` scrape
//!   saved by the CI serve-smoke job) and additionally checks for the
//!   serving families a live `pae-serve` is expected to expose.
//!   Without the variable the test is a no-op.

use pae_obs as obs;
use pae_obs::export::prometheus::{parse_text, validate};

#[test]
fn self_generated_exposition_is_valid() {
    obs::set_enabled(true);
    obs::counter_add("veto.dropped", &[("rule", "symbols")], 3);
    obs::gauge_set("bootstrap.seed_pairs", &[], 40.0);
    obs::observe("crf.lbfgs.nll", &[], 103.5);
    let text = obs::export::prometheus::render_current();
    obs::set_enabled(false);

    let n = validate(&text).expect("live registry exposition is schema-valid");
    assert!(n >= 3, "expected at least 3 samples, got {n}");
    let samples = parse_text(&text).expect("parses");
    assert!(samples.iter().any(|s| s.name == "veto_dropped"));
    assert!(samples.iter().any(|s| s.name == "crf_lbfgs_nll_count"));
}

/// CI entry point: validates a saved `/metrics` scrape and checks the
/// serving coverage the acceptance criteria call for.
#[test]
fn external_metrics_file_is_valid() {
    let Ok(path) = std::env::var("PAE_METRICS_FILE") else {
        eprintln!("PAE_METRICS_FILE not set; skipping external metrics validation");
        return;
    };
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read PAE_METRICS_FILE={path}: {e}"));
    let n = validate(&text).unwrap_or_else(|e| panic!("{path}: {e}"));
    assert!(n > 0, "{path}: exposition is empty");
    let samples = parse_text(&text).unwrap_or_else(|e| panic!("{path}: {e}"));
    let has = |name: &str| samples.iter().any(|s| s.name == name);

    // Live server families: request counter, per-status responses,
    // windowed quantile gauges, pool gauges, per-route histograms.
    for family in [
        "serve_live_requests",
        "serve_live_responses",
        "serve_live_latency_ns",
        "serve_live_request_rate",
        "serve_live_workers",
        "serve_live_request_ns_count",
    ] {
        assert!(has(family), "{path}: missing serving family {family:?}");
    }
    // Process gauges (the scrape comes from a Linux CI runner).
    for family in [
        "process_uptime_seconds",
        "process_rss_bytes",
        "process_threads",
    ] {
        assert!(has(family), "{path}: missing process gauge {family:?}");
    }
    // Windowed quantiles carry the expected label structure.
    let quantile = samples
        .iter()
        .find(|s| s.name == "serve_live_latency_ns" && s.label("route") == Some("extract"))
        .unwrap_or_else(|| panic!("{path}: no windowed latency for the extract route"));
    assert!(
        matches!(quantile.label("window"), Some("1m" | "5m")),
        "{path}: latency gauge missing window label"
    );
    assert!(
        matches!(quantile.label("q"), Some("p50" | "p90" | "p99")),
        "{path}: latency gauge missing quantile label"
    );
}
