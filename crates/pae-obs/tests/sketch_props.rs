//! Property tests for the space-saving heavy-hitter sketch, checked
//! against exact `BTreeMap` counts.

use std::collections::BTreeMap;

use pae_obs::sketch::SpaceSaving;
use proptest::prelude::*;

proptest! {
    /// The guaranteed-frequency invariant of space-saving: for every
    /// tracked item, `count - error <= exact <= count`; every item
    /// whose exact frequency exceeds `N / capacity` is tracked; and no
    /// tracked count underestimates — so the sketch's top-k can only
    /// promote, never hide, a true heavy hitter.
    #[test]
    fn space_saving_brackets_exact_counts(
        items in proptest::collection::vec("[a-f]{1,2}", 0..300),
        capacity in 1usize..12,
    ) {
        let mut sketch = SpaceSaving::new(capacity);
        let mut exact: BTreeMap<String, u64> = BTreeMap::new();
        for item in &items {
            sketch.observe(item);
            *exact.entry(item.clone()).or_default() += 1;
        }
        let n = items.len() as u64;
        prop_assert!(sketch.len() <= capacity);

        let mut min_tracked = u64::MAX;
        for (item, count, error) in sketch.iter() {
            let true_count = exact.get(item).copied().unwrap_or(0);
            prop_assert!(count >= true_count,
                "{item}: estimate {count} < exact {true_count}");
            prop_assert!(count - error <= true_count,
                "{item}: lower bound {} > exact {true_count}", count - error);
            prop_assert!(error <= n, "{item}: error {error} > stream length {n}");
            min_tracked = min_tracked.min(count);
        }

        // Any item strictly more frequent than N/capacity must be
        // tracked (the classic space-saving guarantee: the minimum
        // tracked count never exceeds N/capacity, and estimates never
        // undercount).
        let tracked: BTreeMap<&str, u64> =
            sketch.iter().map(|(k, c, _)| (k, c)).collect();
        for (item, &true_count) in &exact {
            if true_count * capacity as u64 > n {
                prop_assert!(tracked.contains_key(item.as_str()),
                    "heavy item {item} (exact {true_count}, N {n}, k {capacity}) evicted");
            }
        }

        // Below capacity the sketch is exact.
        if exact.len() <= capacity {
            prop_assert_eq!(tracked.len(), exact.len());
            for (item, count, error) in sketch.iter() {
                prop_assert_eq!(count, exact[item]);
                prop_assert_eq!(error, 0u64);
            }
        }
    }
}
