//! JSONL trace validation: every emitted line must parse as JSON and
//! carry the fields the schema promises.
//!
//! Two entry points:
//!
//! - `self_generated_trace_is_valid` builds a small trace in-process
//!   and validates the rendered document.
//! - `external_trace_file_is_valid` reads the file named by the
//!   `PAE_TRACE_FILE` environment variable (written by the CI smoke
//!   job via `probe --trace-out`) and additionally checks the
//!   pipeline-level spans and metrics the probe is expected to emit.
//!   Without the variable the test is a no-op.

use pae_obs as obs;
use pae_obs::json::Json;

/// Validates one JSONL document. Returns the set of span/event/metric
/// names plus metric_snapshot names seen, or the first schema error.
fn validate(doc: &str) -> Result<TraceSummary, String> {
    let mut summary = TraceSummary::default();
    let mut record_lines = 0u64;
    for (lineno, line) in doc.lines().enumerate() {
        let n = lineno + 1;
        let v = Json::parse(line).map_err(|e| format!("line {n}: not valid JSON: {e}"))?;
        let ty = v
            .get("type")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("line {n}: missing string \"type\""))?;
        if lineno == 0 {
            if ty != "meta" {
                return Err(format!("line 1: expected meta line, got type={ty:?}"));
            }
            summary.declared_records = v
                .get("records")
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("line {n}: meta missing \"records\""))?;
            v.get("version")
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("line {n}: meta missing \"version\""))?;
            v.get("dropped")
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("line {n}: meta missing \"dropped\""))?;
            continue;
        }
        match ty {
            "meta" => return Err(format!("line {n}: duplicate meta line")),
            "span_start" | "span_end" | "event" | "metric" => {
                record_lines += 1;
                for key in ["seq", "t_ns", "thread", "span", "parent"] {
                    v.get(key)
                        .and_then(Json::as_u64)
                        .ok_or_else(|| format!("line {n}: {ty} missing numeric \"{key}\""))?;
                }
                let name = v
                    .get("name")
                    .and_then(Json::as_str)
                    .ok_or_else(|| format!("line {n}: {ty} missing \"name\""))?;
                let fields = v
                    .get("fields")
                    .ok_or_else(|| format!("line {n}: {ty} missing \"fields\""))?;
                match ty {
                    "span_end" => {
                        fields
                            .get("dur_ns")
                            .and_then(Json::as_u64)
                            .ok_or_else(|| format!("line {n}: span_end missing fields.dur_ns"))?;
                    }
                    "metric" => {
                        fields
                            .get("step")
                            .and_then(Json::as_u64)
                            .ok_or_else(|| format!("line {n}: metric missing fields.step"))?;
                        fields
                            .get("value")
                            .ok_or_else(|| format!("line {n}: metric missing fields.value"))?;
                    }
                    _ => {}
                }
                summary.record_names.push(format!("{ty}:{name}"));
            }
            "metric_snapshot" => {
                let name = v
                    .get("name")
                    .and_then(Json::as_str)
                    .ok_or_else(|| format!("line {n}: metric_snapshot missing \"name\""))?;
                v.get("labels")
                    .ok_or_else(|| format!("line {n}: metric_snapshot missing \"labels\""))?;
                let kind = v
                    .get("kind")
                    .and_then(Json::as_str)
                    .ok_or_else(|| format!("line {n}: metric_snapshot missing \"kind\""))?;
                match kind {
                    "counter" | "gauge" => {
                        v.get("value")
                            .ok_or_else(|| format!("line {n}: {kind} missing \"value\""))?;
                    }
                    "histogram" => {
                        for key in ["count", "sum", "min", "max", "buckets"] {
                            v.get(key)
                                .ok_or_else(|| format!("line {n}: histogram missing \"{key}\""))?;
                        }
                    }
                    other => return Err(format!("line {n}: unknown metric kind {other:?}")),
                }
                summary.metric_names.push(name.to_string());
            }
            other => return Err(format!("line {n}: unknown line type {other:?}")),
        }
    }
    if summary.declared_records != record_lines {
        return Err(format!(
            "meta declared {} records but {} record lines followed",
            summary.declared_records, record_lines
        ));
    }
    Ok(summary)
}

#[derive(Default)]
struct TraceSummary {
    declared_records: u64,
    /// `"<type>:<name>"` for every span_start/span_end/event/metric line.
    record_names: Vec<String>,
    metric_names: Vec<String>,
}

impl TraceSummary {
    fn has_span(&self, name: &str) -> bool {
        self.record_names
            .iter()
            .any(|n| n == &format!("span_start:{name}"))
    }
    fn has_step_metric(&self, name: &str) -> bool {
        self.record_names
            .iter()
            .any(|n| n == &format!("metric:{name}"))
    }
    fn has_metric(&self, name: &str) -> bool {
        self.metric_names.iter().any(|n| n == name)
    }
}

#[test]
fn self_generated_trace_is_valid() {
    obs::set_enabled(true);
    obs::reset();
    {
        let _root = obs::span("bootstrap.run");
        let _it = obs::span_fields("iteration", vec![("n".into(), 1u64.into())]);
        obs::event("iteration.summary", vec![("triples".into(), 12u64.into())]);
        obs::observe_step("crf.lbfgs.nll", 0, 103.5);
        obs::counter_add("veto.dropped", &[("rule", "symbols")], 3);
        obs::gauge_set("bootstrap.seed_pairs", &[], 40.0);
    }
    let doc = obs::export::jsonl::render_current();
    obs::set_enabled(false);
    obs::reset();

    let summary = validate(&doc).expect("self-generated trace is schema-valid");
    assert!(summary.has_span("bootstrap.run"));
    assert!(summary.has_span("iteration"));
    assert!(summary.has_step_metric("crf.lbfgs.nll"));
    assert!(summary.has_metric("veto.dropped"));
    assert!(summary.has_metric("bootstrap.seed_pairs"));
}

#[test]
fn malformed_documents_are_rejected() {
    // Not JSON at all.
    assert!(
        validate("{\"type\":\"meta\",\"version\":1,\"records\":0,\"dropped\":0}\nnot json\n")
            .is_err()
    );
    // Missing meta line.
    assert!(validate(
        "{\"type\":\"event\",\"seq\":0,\"t_ns\":0,\"thread\":0,\"span\":0,\"parent\":0,\
         \"name\":\"x\",\"fields\":{}}\n"
    )
    .is_err());
    // Record count mismatch.
    assert!(validate("{\"type\":\"meta\",\"version\":1,\"records\":2,\"dropped\":0}\n").is_err());
}

/// CI entry point: validates the trace written by
/// `probe --trace-out <path>` and checks the pipeline coverage the
/// acceptance criteria call for.
#[test]
fn external_trace_file_is_valid() {
    let Ok(path) = std::env::var("PAE_TRACE_FILE") else {
        eprintln!("PAE_TRACE_FILE not set; skipping external trace validation");
        return;
    };
    let doc = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read PAE_TRACE_FILE={path}: {e}"));
    let summary = validate(&doc).unwrap_or_else(|e| panic!("{path}: {e}"));

    for span in [
        "bootstrap.run",
        "seed",
        "iteration",
        "train",
        "extract",
        "veto",
        "semantic",
        "corrections",
    ] {
        assert!(summary.has_span(span), "{path}: no span_start for {span:?}");
    }
    for metric in ["crf.lbfgs.grad_norm", "crf.lbfgs.nll"] {
        assert!(
            summary.has_step_metric(metric),
            "{path}: no per-step metric records for {metric:?}"
        );
    }
    for metric in [
        "runtime.worker.busy_ns",
        "runtime.queue.claimed",
        "veto.dropped",
        "bootstrap.triples",
    ] {
        assert!(
            summary.has_metric(metric),
            "{path}: metric_snapshot missing {metric:?}"
        );
    }
}
