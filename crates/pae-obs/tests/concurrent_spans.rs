//! Concurrent span emission from `pae_runtime::parallel_map` workers
//! must produce a well-formed trace: parent-linked across threads,
//! non-interleaved (strictly increasing sequence numbers), and with
//! every opened span closed.

use pae_obs as obs;

#[test]
fn parallel_map_trace_is_parent_linked_and_non_interleaved() {
    obs::set_enabled(true);
    obs::reset();

    let items: Vec<usize> = (0..64).collect();
    {
        let root = obs::span("fanout");
        let _ = root.id();
        pae_runtime::with_jobs(4, || {
            pae_runtime::parallel_map(&items, |i, _| {
                let _work = obs::span("work");
                // Hold each item ~1ms so the queue outlives worker
                // startup and several pool threads actually claim work.
                std::thread::sleep(std::time::Duration::from_millis(1));
                obs::event("tick", vec![("i".into(), i.into())]);
            })
        });
    }

    let records = obs::snapshot();
    obs::set_enabled(false);
    obs::reset();

    // Non-interleaved: the collector assigns sequence numbers under one
    // lock, so they are strictly increasing in collection order.
    for w in records.windows(2) {
        assert!(w[0].seq < w[1].seq, "sequence numbers must be strict");
    }

    let root_id = records
        .iter()
        .find(|r| r.kind == obs::RecordKind::SpanStart && r.name == "fanout")
        .expect("root span recorded")
        .span;

    // Parent-linked: every worker-side span hangs off the spawning
    // thread's span, even though it was emitted on a pool thread.
    let work_starts: Vec<_> = records
        .iter()
        .filter(|r| r.kind == obs::RecordKind::SpanStart && r.name == "work")
        .collect();
    assert_eq!(work_starts.len(), items.len(), "one span per item");
    for r in &work_starts {
        assert_eq!(r.parent, root_id, "worker span not linked to the root");
    }
    let worker_threads: std::collections::HashSet<u64> =
        work_starts.iter().map(|r| r.thread).collect();
    assert!(
        worker_threads.len() > 1,
        "expected emission from multiple pool threads, got {worker_threads:?}"
    );

    // Balanced: every opened span also closed, exactly once.
    let started: Vec<u64> = records
        .iter()
        .filter(|r| r.kind == obs::RecordKind::SpanStart)
        .map(|r| r.span)
        .collect();
    let ended: Vec<u64> = records
        .iter()
        .filter(|r| r.kind == obs::RecordKind::SpanEnd)
        .map(|r| r.span)
        .collect();
    let started_set: std::collections::HashSet<u64> = started.iter().copied().collect();
    let ended_set: std::collections::HashSet<u64> = ended.iter().copied().collect();
    assert_eq!(started.len(), started_set.len(), "span ids are unique");
    assert_eq!(ended.len(), ended_set.len(), "spans end exactly once");
    assert_eq!(started_set, ended_set, "every span start has an end");

    // Events land inside the worker spans they were emitted under.
    let work_ids: std::collections::HashSet<u64> = work_starts.iter().map(|r| r.span).collect();
    let ticks: Vec<_> = records.iter().filter(|r| r.name == "tick").collect();
    assert_eq!(ticks.len(), items.len());
    for t in &ticks {
        assert!(
            work_ids.contains(&t.span),
            "event attached to span {} which is not a work span",
            t.span
        );
    }
}
