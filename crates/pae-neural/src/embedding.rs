//! Embedding lookup tables with sparse gradient accumulation.

/// A dense embedding table `[vocab × dim]`.
#[derive(Debug, Clone)]
pub struct Embedding {
    /// Number of rows (vocabulary size, including any OOV row).
    pub vocab: usize,
    /// Embedding dimensionality.
    pub dim: usize,
    /// Row-major weights.
    pub w: Vec<f32>,
}

/// Sparse gradients for an [`Embedding`]: only touched rows are stored.
#[derive(Debug, Clone, Default)]
pub struct EmbeddingGrads {
    /// `(row, gradient)` pairs, possibly with repeated rows.
    pub updates: Vec<(usize, Vec<f32>)>,
}

impl Embedding {
    /// Zero-initialized table (caller fills via its initializer).
    pub fn new(vocab: usize, dim: usize) -> Self {
        Embedding {
            vocab,
            dim,
            w: vec![0.0; vocab * dim],
        }
    }

    /// Row view for `id`.
    pub fn lookup(&self, id: usize) -> &[f32] {
        &self.w[id * self.dim..(id + 1) * self.dim]
    }

    /// Records a gradient for row `id`.
    pub fn accumulate(&self, grads: &mut EmbeddingGrads, id: usize, grad: &[f32]) {
        debug_assert_eq!(grad.len(), self.dim);
        grads.updates.push((id, grad.to_vec()));
    }

    /// Applies SGD: `w[row] -= lr * grad` for each recorded update.
    pub fn apply(&mut self, grads: &EmbeddingGrads, lr: f32) {
        for (id, g) in &grads.updates {
            let row = &mut self.w[id * self.dim..(id + 1) * self.dim];
            for (w, &gv) in row.iter_mut().zip(g) {
                *w -= lr * gv;
            }
        }
    }

    /// Parameter count.
    pub fn param_count(&self) -> usize {
        self.w.len()
    }
}

impl EmbeddingGrads {
    /// Clears recorded updates, keeping the allocation.
    pub fn clear(&mut self) {
        self.updates.clear();
    }

    /// Scales every recorded gradient in place (used by global clipping).
    pub fn scale(&mut self, factor: f32) {
        for (_, g) in &mut self.updates {
            for v in g.iter_mut() {
                *v *= factor;
            }
        }
    }

    /// Squared L2 norm of all recorded gradients.
    pub fn sq_norm(&self) -> f32 {
        self.updates
            .iter()
            .flat_map(|(_, g)| g.iter())
            .map(|v| v * v)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_returns_rows() {
        let mut e = Embedding::new(3, 2);
        e.w = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        assert_eq!(e.lookup(0), &[1.0, 2.0]);
        assert_eq!(e.lookup(2), &[5.0, 6.0]);
    }

    #[test]
    fn apply_subtracts_scaled_gradients() {
        let mut e = Embedding::new(2, 2);
        let mut g = EmbeddingGrads::default();
        e.accumulate(&mut g, 1, &[1.0, -1.0]);
        e.accumulate(&mut g, 1, &[1.0, 0.0]); // repeated row accumulates
        e.apply(&g, 0.5);
        assert_eq!(e.lookup(1), &[-1.0, 0.5]);
        assert_eq!(e.lookup(0), &[0.0, 0.0]);
    }

    #[test]
    fn scale_and_norm() {
        let e = Embedding::new(2, 2);
        let mut g = EmbeddingGrads::default();
        e.accumulate(&mut g, 0, &[3.0, 4.0]);
        assert_eq!(g.sq_norm(), 25.0);
        g.scale(0.5);
        assert_eq!(g.sq_norm(), 6.25);
        g.clear();
        assert_eq!(g.sq_norm(), 0.0);
    }
}
