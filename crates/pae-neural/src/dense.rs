//! Affine (fully-connected) layer.

use crate::ops::{affine, affine_backward};

/// `y = W x + b`.
#[derive(Debug, Clone)]
pub struct Dense {
    /// Output dimensionality.
    pub rows: usize,
    /// Input dimensionality.
    pub cols: usize,
    /// Row-major weights `[rows × cols]`.
    pub w: Vec<f32>,
    /// Bias `[rows]`.
    pub b: Vec<f32>,
}

/// Gradients matching [`Dense`].
#[derive(Debug, Clone)]
pub struct DenseGrads {
    /// d/dW.
    pub w: Vec<f32>,
    /// d/db.
    pub b: Vec<f32>,
}

impl Dense {
    /// Zero-initialized layer.
    pub fn new(rows: usize, cols: usize) -> Self {
        Dense {
            rows,
            cols,
            w: vec![0.0; rows * cols],
            b: vec![0.0; rows],
        }
    }

    /// Forward pass into `out`.
    pub fn forward(&self, x: &[f32], out: &mut [f32]) {
        affine(&self.w, &self.b, x, self.rows, self.cols, out);
    }

    /// Backward pass; accumulates into `grads` and `dx`.
    pub fn backward(&self, x: &[f32], dy: &[f32], grads: &mut DenseGrads, dx: &mut [f32]) {
        affine_backward(
            &self.w,
            x,
            dy,
            self.rows,
            self.cols,
            &mut grads.w,
            &mut grads.b,
            dx,
        );
    }

    /// Parameter count.
    pub fn param_count(&self) -> usize {
        self.w.len() + self.b.len()
    }
}

impl DenseGrads {
    /// Zeroed gradients for `layer`.
    pub fn zeros(layer: &Dense) -> Self {
        DenseGrads {
            w: vec![0.0; layer.w.len()],
            b: vec![0.0; layer.b.len()],
        }
    }

    /// Resets to zero, keeping allocations.
    pub fn clear(&mut self) {
        self.w.fill(0.0);
        self.b.fill(0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_and_backward_roundtrip() {
        let mut layer = Dense::new(2, 3);
        layer.w = vec![1.0, 0.0, -1.0, 0.5, 0.5, 0.5];
        layer.b = vec![0.0, 1.0];
        let x = [2.0, 4.0, 6.0];
        let mut y = [0.0; 2];
        layer.forward(&x, &mut y);
        assert_eq!(y, [-4.0, 7.0]);

        let mut grads = DenseGrads::zeros(&layer);
        let mut dx = [0.0; 3];
        layer.backward(&x, &[1.0, 1.0], &mut grads, &mut dx);
        assert_eq!(grads.b, vec![1.0, 1.0]);
        assert_eq!(&grads.w[..3], &[2.0, 4.0, 6.0]);
        assert_eq!(dx, [1.5, 0.5, -0.5]);
    }
}
