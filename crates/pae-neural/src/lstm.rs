//! Single-direction LSTM layer with a full manual backward pass.

use crate::ops::{affine, sigmoid};

/// LSTM parameters: one fused weight matrix over `[x_t ; h_{t-1}]`.
///
/// Gate order in the fused `4H` block: input `i`, forget `f`,
/// candidate `g`, output `o`.
#[derive(Debug, Clone)]
pub struct Lstm {
    /// Input dimensionality `I`.
    pub input_dim: usize,
    /// Hidden dimensionality `H`.
    pub hidden: usize,
    /// Fused weights, row-major `[4H × (I + H)]`.
    pub w: Vec<f32>,
    /// Fused bias `[4H]` (forget-gate block initialized to 1.0).
    pub b: Vec<f32>,
}

/// Gradients matching [`Lstm`] parameters.
#[derive(Debug, Clone)]
pub struct LstmGrads {
    /// d/dW, same layout as [`Lstm::w`].
    pub w: Vec<f32>,
    /// d/db, same layout as [`Lstm::b`].
    pub b: Vec<f32>,
}

impl LstmGrads {
    /// Zeroed gradients for `lstm`.
    pub fn zeros(lstm: &Lstm) -> Self {
        LstmGrads {
            w: vec![0.0; lstm.w.len()],
            b: vec![0.0; lstm.b.len()],
        }
    }

    /// Resets to zero, keeping allocations.
    pub fn clear(&mut self) {
        self.w.fill(0.0);
        self.b.fill(0.0);
    }
}

/// Forward-pass activations cached for backward.
#[derive(Debug, Clone, Default)]
pub struct LstmCache {
    /// Inputs per step.
    xs: Vec<Vec<f32>>,
    /// Post-activation gates `[i, f, g, o]` per step (each `4H`).
    gates: Vec<Vec<f32>>,
    /// Cell states per step.
    cs: Vec<Vec<f32>>,
    /// Hidden states per step.
    hs: Vec<Vec<f32>>,
}

impl Lstm {
    /// Creates an LSTM with the given dimensions; weights are filled by
    /// the caller's initializer (see [`crate::tagger`]).
    pub fn new(input_dim: usize, hidden: usize) -> Self {
        let mut b = vec![0.0; 4 * hidden];
        // Standard trick: forget-gate bias 1.0 eases gradient flow.
        for v in &mut b[hidden..2 * hidden] {
            *v = 1.0;
        }
        Lstm {
            input_dim,
            hidden,
            w: vec![0.0; 4 * hidden * (input_dim + hidden)],
            b,
        }
    }

    /// Runs the layer over `xs`, returning hidden states per step and
    /// the cache needed by [`Lstm::backward`].
    pub fn forward(&self, xs: &[Vec<f32>]) -> (Vec<Vec<f32>>, LstmCache) {
        let h = self.hidden;
        let cols = self.input_dim + h;
        let mut cache = LstmCache::default();
        let mut h_prev = vec![0.0f32; h];
        let mut c_prev = vec![0.0f32; h];
        let mut zin = vec![0.0f32; cols];
        let mut pre = vec![0.0f32; 4 * h];

        for x in xs {
            debug_assert_eq!(x.len(), self.input_dim);
            zin[..self.input_dim].copy_from_slice(x);
            zin[self.input_dim..].copy_from_slice(&h_prev);
            affine(&self.w, &self.b, &zin, 4 * h, cols, &mut pre);

            let mut gates = vec![0.0f32; 4 * h];
            let mut c = vec![0.0f32; h];
            let mut hidden = vec![0.0f32; h];
            for j in 0..h {
                let i_g = sigmoid(pre[j]);
                let f_g = sigmoid(pre[h + j]);
                let g_g = pre[2 * h + j].tanh();
                let o_g = sigmoid(pre[3 * h + j]);
                gates[j] = i_g;
                gates[h + j] = f_g;
                gates[2 * h + j] = g_g;
                gates[3 * h + j] = o_g;
                c[j] = f_g * c_prev[j] + i_g * g_g;
                hidden[j] = o_g * c[j].tanh();
            }
            cache.xs.push(x.clone());
            cache.gates.push(gates);
            cache.cs.push(c.clone());
            cache.hs.push(hidden.clone());
            h_prev = hidden;
            c_prev = c;
        }
        (cache.hs.clone(), cache)
    }

    /// Backward pass. `dhs[t]` is the loss gradient w.r.t. the hidden
    /// state at step `t`. Accumulates parameter gradients into `grads`
    /// and returns the gradients w.r.t. the inputs.
    pub fn backward(
        &self,
        cache: &LstmCache,
        dhs: &[Vec<f32>],
        grads: &mut LstmGrads,
    ) -> Vec<Vec<f32>> {
        let n = cache.xs.len();
        debug_assert_eq!(dhs.len(), n);
        let h = self.hidden;
        let cols = self.input_dim + h;
        let mut dxs = vec![vec![0.0f32; self.input_dim]; n];
        let mut dh_next = vec![0.0f32; h];
        let mut dc_next = vec![0.0f32; h];
        let mut dpre = vec![0.0f32; 4 * h];
        let mut zin = vec![0.0f32; cols];
        let mut dzin = vec![0.0f32; cols];

        for t in (0..n).rev() {
            let gates = &cache.gates[t];
            let c = &cache.cs[t];
            let c_prev: &[f32] = if t > 0 { &cache.cs[t - 1] } else { &[] };
            let h_prev: &[f32] = if t > 0 { &cache.hs[t - 1] } else { &[] };

            for j in 0..h {
                let dh = dhs[t][j] + dh_next[j];
                let i_g = gates[j];
                let f_g = gates[h + j];
                let g_g = gates[2 * h + j];
                let o_g = gates[3 * h + j];
                let tanh_c = c[j].tanh();
                let dc = dh * o_g * (1.0 - tanh_c * tanh_c) + dc_next[j];
                let cp = if t > 0 { c_prev[j] } else { 0.0 };

                // Pre-activation gradients.
                dpre[j] = dc * g_g * i_g * (1.0 - i_g); // input gate
                dpre[h + j] = dc * cp * f_g * (1.0 - f_g); // forget gate
                dpre[2 * h + j] = dc * i_g * (1.0 - g_g * g_g); // candidate
                dpre[3 * h + j] = dh * tanh_c * o_g * (1.0 - o_g); // output gate
                dc_next[j] = dc * f_g;
            }

            zin[..self.input_dim].copy_from_slice(&cache.xs[t]);
            if t > 0 {
                zin[self.input_dim..].copy_from_slice(h_prev);
            } else {
                zin[self.input_dim..].fill(0.0);
            }
            dzin.fill(0.0);
            crate::ops::affine_backward(
                &self.w,
                &zin,
                &dpre,
                4 * h,
                cols,
                &mut grads.w,
                &mut grads.b,
                &mut dzin,
            );
            dxs[t].copy_from_slice(&dzin[..self.input_dim]);
            dh_next.copy_from_slice(&dzin[self.input_dim..]);
        }
        dxs
    }

    /// Parameter count.
    pub fn param_count(&self) -> usize {
        self.w.len() + self.b.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seeded_lstm(input_dim: usize, hidden: usize) -> Lstm {
        let mut lstm = Lstm::new(input_dim, hidden);
        for (i, w) in lstm.w.iter_mut().enumerate() {
            *w = ((i as f32 * 0.7391).sin()) * 0.4;
        }
        for (i, b) in lstm.b.iter_mut().enumerate() {
            *b = ((i as f32 * 1.317).cos()) * 0.2;
        }
        lstm
    }

    fn seq(input_dim: usize, len: usize) -> Vec<Vec<f32>> {
        (0..len)
            .map(|t| {
                (0..input_dim)
                    .map(|d| ((t * input_dim + d) as f32 * 0.913).sin() * 0.6)
                    .collect()
            })
            .collect()
    }

    /// Scalar loss: sum of all hidden activations (linear ⇒ dh = 1).
    fn loss(lstm: &Lstm, xs: &[Vec<f32>]) -> f32 {
        let (hs, _) = lstm.forward(xs);
        hs.iter().flat_map(|h| h.iter()).sum()
    }

    #[test]
    fn forward_shapes() {
        let lstm = seeded_lstm(3, 4);
        let xs = seq(3, 5);
        let (hs, _) = lstm.forward(&xs);
        assert_eq!(hs.len(), 5);
        assert!(hs.iter().all(|h| h.len() == 4));
        // Activations are bounded by tanh.
        assert!(hs.iter().flatten().all(|v| v.abs() <= 1.0));
    }

    #[test]
    fn empty_sequence() {
        let lstm = seeded_lstm(2, 3);
        let (hs, cache) = lstm.forward(&[]);
        assert!(hs.is_empty());
        let mut grads = LstmGrads::zeros(&lstm);
        let dxs = lstm.backward(&cache, &[], &mut grads);
        assert!(dxs.is_empty());
    }

    #[test]
    fn weight_gradients_match_finite_differences() {
        let lstm = seeded_lstm(2, 3);
        let xs = seq(2, 4);
        let (hs, cache) = lstm.forward(&xs);
        let dhs: Vec<Vec<f32>> = hs.iter().map(|h| vec![1.0; h.len()]).collect();
        let mut grads = LstmGrads::zeros(&lstm);
        lstm.backward(&cache, &dhs, &mut grads);

        let eps = 1e-3;
        // Check a spread of weight entries and all biases.
        for idx in (0..lstm.w.len()).step_by(7) {
            let mut l2 = lstm.clone();
            l2.w[idx] += eps;
            let up = loss(&l2, &xs);
            l2.w[idx] -= 2.0 * eps;
            let down = loss(&l2, &xs);
            let num = (up - down) / (2.0 * eps);
            assert!(
                (num - grads.w[idx]).abs() < 2e-2,
                "w[{idx}]: numeric {num} vs analytic {}",
                grads.w[idx]
            );
        }
        for idx in 0..lstm.b.len() {
            let mut l2 = lstm.clone();
            l2.b[idx] += eps;
            let up = loss(&l2, &xs);
            l2.b[idx] -= 2.0 * eps;
            let down = loss(&l2, &xs);
            let num = (up - down) / (2.0 * eps);
            assert!(
                (num - grads.b[idx]).abs() < 2e-2,
                "b[{idx}]: numeric {num} vs analytic {}",
                grads.b[idx]
            );
        }
    }

    #[test]
    fn input_gradients_match_finite_differences() {
        let lstm = seeded_lstm(2, 3);
        let xs = seq(2, 3);
        let (hs, cache) = lstm.forward(&xs);
        let dhs: Vec<Vec<f32>> = hs.iter().map(|h| vec![1.0; h.len()]).collect();
        let mut grads = LstmGrads::zeros(&lstm);
        let dxs = lstm.backward(&cache, &dhs, &mut grads);

        let eps = 1e-3;
        for t in 0..xs.len() {
            for d in 0..2 {
                let mut xs2 = xs.clone();
                xs2[t][d] += eps;
                let up = loss(&lstm, &xs2);
                xs2[t][d] -= 2.0 * eps;
                let down = loss(&lstm, &xs2);
                let num = (up - down) / (2.0 * eps);
                assert!(
                    (num - dxs[t][d]).abs() < 2e-2,
                    "dx[{t}][{d}]: numeric {num} vs analytic {}",
                    dxs[t][d]
                );
            }
        }
    }

    #[test]
    fn forget_bias_initialized_to_one() {
        let lstm = Lstm::new(2, 4);
        assert!(lstm.b[4..8].iter().all(|&v| v == 1.0));
        assert!(lstm.b[..4].iter().all(|&v| v == 0.0));
        assert!(lstm.b[8..].iter().all(|&v| v == 0.0));
    }
}
