//! The assembled char+word BiLSTM sequence tagger.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::dense::{Dense, DenseGrads};
use crate::embedding::{Embedding, EmbeddingGrads};
use crate::lstm::{Lstm, LstmCache, LstmGrads};
use crate::ops::softmax;

/// One training sentence: surface words and their gold label ids.
pub type TrainSentence = (Vec<String>, Vec<usize>);

/// Hyperparameters. The defaults keep CPU training fast at pipeline
/// scale while preserving the architecture's qualitative behaviour
/// (including the paper's 2-vs-10-epoch overfitting contrast).
#[derive(Debug, Clone)]
pub struct TaggerConfig {
    /// Character embedding dimensionality.
    pub char_dim: usize,
    /// Character BiLSTM hidden size (per direction).
    pub char_hidden: usize,
    /// Word embedding dimensionality.
    pub word_dim: usize,
    /// Word BiLSTM hidden size (per direction).
    pub word_hidden: usize,
    /// Training epochs (the paper contrasts 2 vs 10).
    pub epochs: usize,
    /// SGD learning rate (decayed ×`lr_decay` per epoch).
    pub learning_rate: f32,
    /// Multiplicative per-epoch learning-rate decay.
    pub lr_decay: f32,
    /// Dropout probability on the token representation.
    pub dropout: f32,
    /// Probability of replacing a word id with the OOV id during
    /// training (keeps the char path informative for unseen words).
    pub word_dropout: f32,
    /// Global gradient-norm clip.
    pub clip: f32,
    /// RNG seed (training is deterministic given the seed).
    pub seed: u64,
}

impl Default for TaggerConfig {
    fn default() -> Self {
        TaggerConfig {
            char_dim: 12,
            char_hidden: 12,
            word_dim: 24,
            word_hidden: 24,
            epochs: 2,
            learning_rate: 0.15,
            lr_decay: 0.95,
            dropout: 0.3,
            word_dropout: 0.1,
            clip: 5.0,
            seed: 17,
        }
    }
}

/// Char+word BiLSTM tagger (NeuroNER architecture, softmax output).
#[derive(Debug, Clone)]
pub struct BiLstmTagger {
    config: TaggerConfig,
    n_labels: usize,
    /// Word → id; id 0 is reserved for OOV.
    word_index: HashMap<String, usize>,
    /// Char → id; id 0 is reserved for OOV.
    char_index: HashMap<char, usize>,
    word_emb: Embedding,
    char_emb: Embedding,
    char_fwd: Lstm,
    char_bwd: Lstm,
    word_fwd: Lstm,
    word_bwd: Lstm,
    out: Dense,
}

/// All gradients for one training step.
struct Grads {
    word_emb: EmbeddingGrads,
    char_emb: EmbeddingGrads,
    char_fwd: LstmGrads,
    char_bwd: LstmGrads,
    word_fwd: LstmGrads,
    word_bwd: LstmGrads,
    out: DenseGrads,
}

/// Cached activations of one sentence forward pass.
struct Pass {
    word_ids: Vec<usize>,
    char_ids: Vec<Vec<usize>>,
    char_fwd_caches: Vec<LstmCache>,
    char_bwd_caches: Vec<LstmCache>,
    /// Token representations after dropout (inputs to the word BiLSTM).
    tokens: Vec<Vec<f32>>,
    /// Dropout masks (empty when not training).
    masks: Vec<Vec<f32>>,
    word_fwd_cache: LstmCache,
    word_bwd_cache: LstmCache,
    /// Concatenated word BiLSTM states per position.
    h_cat: Vec<Vec<f32>>,
    /// Softmax probabilities per position.
    probs: Vec<Vec<f32>>,
}

impl BiLstmTagger {
    /// Trains the tagger on `sentences` with labels in `0..n_labels`.
    pub fn train(sentences: &[TrainSentence], n_labels: usize, config: &TaggerConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut tagger = Self::init(sentences, n_labels, config.clone(), &mut rng);

        let mut order: Vec<usize> = (0..sentences.len()).collect();
        let mut lr = config.learning_rate;
        for epoch in 0..config.epochs {
            shuffle(&mut order, &mut rng);
            // Telemetry only: accumulated from activations the pass
            // already computed, so enabling it consumes no RNG and
            // cannot perturb training.
            let observe = pae_obs::enabled();
            let mut epoch_nll = 0.0f64;
            let mut epoch_tokens = 0usize;
            for &si in &order {
                let (words, labels) = &sentences[si];
                if words.is_empty() {
                    continue;
                }
                let pass = tagger.forward(words, Some(&mut rng));
                if observe {
                    for (p, &y) in pass.probs.iter().zip(labels) {
                        epoch_nll += -f64::from(p[y].max(1e-12)).ln();
                    }
                    epoch_tokens += labels.len();
                }
                let mut grads = tagger.zero_grads();
                tagger.backward(&pass, labels, &mut grads);
                tagger.clip_and_apply(&mut grads, lr);
            }
            if observe && epoch_tokens > 0 {
                pae_obs::observe_step("rnn.epoch_loss", epoch, epoch_nll / epoch_tokens as f64);
            }
            lr *= config.lr_decay;
        }
        tagger
    }

    /// Predicts label ids for `words`.
    pub fn predict(&self, words: &[String]) -> Vec<usize> {
        self.predict_with_confidence(words).0
    }

    /// Predicts label ids plus each prediction's softmax probability.
    ///
    /// The labels are exactly [`predict`](Self::predict)'s output; the
    /// confidence is the probability the network assigned to the chosen
    /// label at that position (1/n_labels means it was guessing).
    pub fn predict_with_confidence(&self, words: &[String]) -> (Vec<usize>, Vec<f32>) {
        if words.is_empty() {
            return (Vec::new(), Vec::new());
        }
        let pass = self.forward(words, None);
        pass.probs
            .iter()
            .map(|p| {
                p.iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite probs"))
                    .map(|(i, &prob)| (i, prob))
                    .unwrap_or((0, 0.0))
            })
            .unzip()
    }

    /// Average per-token cross-entropy of the sentence (diagnostics and
    /// gradient-check tests).
    pub fn loss(&self, words: &[String], labels: &[usize]) -> f32 {
        if words.is_empty() {
            return 0.0;
        }
        let pass = self.forward(words, None);
        let mut nll = 0.0;
        for (p, &y) in pass.probs.iter().zip(labels) {
            nll -= p[y].max(1e-12).ln();
        }
        nll / words.len() as f32
    }

    /// Number of labels the model predicts.
    pub fn n_labels(&self) -> usize {
        self.n_labels
    }

    /// Total trainable parameter count.
    pub fn param_count(&self) -> usize {
        self.word_emb.param_count()
            + self.char_emb.param_count()
            + self.char_fwd.param_count()
            + self.char_bwd.param_count()
            + self.word_fwd.param_count()
            + self.word_bwd.param_count()
            + self.out.param_count()
    }

    fn init(
        sentences: &[TrainSentence],
        n_labels: usize,
        config: TaggerConfig,
        rng: &mut StdRng,
    ) -> Self {
        let mut word_index: HashMap<String, usize> = HashMap::new();
        let mut char_index: HashMap<char, usize> = HashMap::new();
        for (words, labels) in sentences {
            assert_eq!(words.len(), labels.len(), "words/labels length mismatch");
            for w in words {
                let next = word_index.len() + 1;
                word_index.entry(w.clone()).or_insert(next);
                for c in w.chars() {
                    let next = char_index.len() + 1;
                    char_index.entry(c).or_insert(next);
                }
            }
        }

        let token_dim = config.word_dim + 2 * config.char_hidden;
        let mut tagger = BiLstmTagger {
            n_labels,
            word_emb: Embedding::new(word_index.len() + 1, config.word_dim),
            char_emb: Embedding::new(char_index.len() + 1, config.char_dim),
            char_fwd: Lstm::new(config.char_dim, config.char_hidden),
            char_bwd: Lstm::new(config.char_dim, config.char_hidden),
            word_fwd: Lstm::new(token_dim, config.word_hidden),
            word_bwd: Lstm::new(token_dim, config.word_hidden),
            out: Dense::new(n_labels, 2 * config.word_hidden),
            word_index,
            char_index,
            config,
        };
        xavier(&mut tagger.word_emb.w, tagger.word_emb.dim, 1, rng);
        xavier(&mut tagger.char_emb.w, tagger.char_emb.dim, 1, rng);
        for lstm in [
            &mut tagger.char_fwd,
            &mut tagger.char_bwd,
            &mut tagger.word_fwd,
            &mut tagger.word_bwd,
        ] {
            let cols = lstm.input_dim + lstm.hidden;
            xavier(&mut lstm.w, cols, 4 * lstm.hidden, rng);
        }
        xavier(&mut tagger.out.w, tagger.out.cols, tagger.out.rows, rng);
        tagger
    }

    fn zero_grads(&self) -> Grads {
        Grads {
            word_emb: EmbeddingGrads::default(),
            char_emb: EmbeddingGrads::default(),
            char_fwd: LstmGrads::zeros(&self.char_fwd),
            char_bwd: LstmGrads::zeros(&self.char_bwd),
            word_fwd: LstmGrads::zeros(&self.word_fwd),
            word_bwd: LstmGrads::zeros(&self.word_bwd),
            out: DenseGrads::zeros(&self.out),
        }
    }

    /// Forward pass. When `rng` is given, dropout is applied (training).
    fn forward(&self, words: &[String], mut rng: Option<&mut StdRng>) -> Pass {
        let n = words.len();
        let ch = self.config.char_hidden;
        let mut word_ids: Vec<usize> = words
            .iter()
            .map(|w| self.word_index.get(w).copied().unwrap_or(0))
            .collect();
        if let Some(rng) = rng.as_deref_mut() {
            let p = self.config.word_dropout;
            if p > 0.0 {
                for id in word_ids.iter_mut() {
                    if rng.random_range(0.0f32..1.0) < p {
                        *id = 0;
                    }
                }
            }
        }
        let char_ids: Vec<Vec<usize>> = words
            .iter()
            .map(|w| {
                w.chars()
                    .map(|c| self.char_index.get(&c).copied().unwrap_or(0))
                    .collect()
            })
            .collect();

        let mut char_fwd_caches = Vec::with_capacity(n);
        let mut char_bwd_caches = Vec::with_capacity(n);
        let mut tokens = Vec::with_capacity(n);
        let mut masks = Vec::new();
        for t in 0..n {
            let embs: Vec<Vec<f32>> = char_ids[t]
                .iter()
                .map(|&c| self.char_emb.lookup(c).to_vec())
                .collect();
            let rev: Vec<Vec<f32>> = embs.iter().rev().cloned().collect();
            let (hs_f, cache_f) = self.char_fwd.forward(&embs);
            let (hs_b, cache_b) = self.char_bwd.forward(&rev);

            let mut token = Vec::with_capacity(self.config.word_dim + 2 * ch);
            token.extend_from_slice(self.word_emb.lookup(word_ids[t]));
            match hs_f.last() {
                Some(last) => token.extend_from_slice(last),
                None => token.resize(token.len() + ch, 0.0),
            }
            match hs_b.last() {
                Some(last) => token.extend_from_slice(last),
                None => token.resize(token.len() + ch, 0.0),
            }

            if let Some(rng) = rng.as_deref_mut() {
                let p = self.config.dropout;
                if p > 0.0 {
                    let mask: Vec<f32> = (0..token.len())
                        .map(|_| {
                            if rng.random_range(0.0f32..1.0) < p {
                                0.0
                            } else {
                                1.0 / (1.0 - p)
                            }
                        })
                        .collect();
                    for (v, m) in token.iter_mut().zip(&mask) {
                        *v *= m;
                    }
                    masks.push(mask);
                }
            }

            char_fwd_caches.push(cache_f);
            char_bwd_caches.push(cache_b);
            tokens.push(token);
        }

        let rev_tokens: Vec<Vec<f32>> = tokens.iter().rev().cloned().collect();
        let (hs_f, word_fwd_cache) = self.word_fwd.forward(&tokens);
        let (hs_b, word_bwd_cache) = self.word_bwd.forward(&rev_tokens);

        let mut h_cat = Vec::with_capacity(n);
        let mut probs = Vec::with_capacity(n);
        for t in 0..n {
            let mut h = Vec::with_capacity(2 * self.config.word_hidden);
            h.extend_from_slice(&hs_f[t]);
            h.extend_from_slice(&hs_b[n - 1 - t]);
            let mut logits = vec![0.0f32; self.n_labels];
            self.out.forward(&h, &mut logits);
            softmax(&mut logits);
            h_cat.push(h);
            probs.push(logits);
        }

        Pass {
            word_ids,
            char_ids,
            char_fwd_caches,
            char_bwd_caches,
            tokens,
            masks,
            word_fwd_cache,
            word_bwd_cache,
            h_cat,
            probs,
        }
    }

    /// Backward pass for per-token cross-entropy, averaged over tokens.
    fn backward(&self, pass: &Pass, labels: &[usize], grads: &mut Grads) {
        let n = pass.tokens.len();
        debug_assert_eq!(labels.len(), n);
        let wh = self.config.word_hidden;
        let ch = self.config.char_hidden;
        let scale = 1.0 / n as f32;

        // Output layer + split into word-BiLSTM direction gradients.
        let mut dh_fwd = vec![vec![0.0f32; wh]; n];
        let mut dh_bwd = vec![vec![0.0f32; wh]; n]; // indexed in reversed order
        for t in 0..n {
            let mut dlogits = pass.probs[t].clone();
            dlogits[labels[t]] -= 1.0;
            for d in dlogits.iter_mut() {
                *d *= scale;
            }
            let mut dh = vec![0.0f32; 2 * wh];
            self.out
                .backward(&pass.h_cat[t], &dlogits, &mut grads.out, &mut dh);
            dh_fwd[t].copy_from_slice(&dh[..wh]);
            dh_bwd[n - 1 - t].copy_from_slice(&dh[wh..]);
        }

        let dx_fwd = self
            .word_fwd
            .backward(&pass.word_fwd_cache, &dh_fwd, &mut grads.word_fwd);
        let dx_bwd = self
            .word_bwd
            .backward(&pass.word_bwd_cache, &dh_bwd, &mut grads.word_bwd);

        for t in 0..n {
            let mut dtoken: Vec<f32> = dx_fwd[t]
                .iter()
                .zip(&dx_bwd[n - 1 - t])
                .map(|(a, b)| a + b)
                .collect();
            if let Some(mask) = pass.masks.get(t) {
                for (d, m) in dtoken.iter_mut().zip(mask) {
                    *d *= m;
                }
            }

            // Word embedding part.
            let wd = self.config.word_dim;
            self.word_emb
                .accumulate(&mut grads.word_emb, pass.word_ids[t], &dtoken[..wd]);

            // Char BiLSTM part: gradient flows into the last hidden state
            // of each direction only.
            let n_chars = pass.char_ids[t].len();
            if n_chars == 0 {
                continue;
            }
            let mut dhs_f = vec![vec![0.0f32; ch]; n_chars];
            dhs_f[n_chars - 1].copy_from_slice(&dtoken[wd..wd + ch]);
            let dchars_f =
                self.char_fwd
                    .backward(&pass.char_fwd_caches[t], &dhs_f, &mut grads.char_fwd);

            let mut dhs_b = vec![vec![0.0f32; ch]; n_chars];
            dhs_b[n_chars - 1].copy_from_slice(&dtoken[wd + ch..]);
            let dchars_b =
                self.char_bwd
                    .backward(&pass.char_bwd_caches[t], &dhs_b, &mut grads.char_bwd);

            for (i, &cid) in pass.char_ids[t].iter().enumerate() {
                // Forward direction processed chars in order; backward in
                // reverse, so its dx index is mirrored.
                let mut g = dchars_f[i].clone();
                for (gv, bv) in g.iter_mut().zip(&dchars_b[n_chars - 1 - i]) {
                    *gv += bv;
                }
                self.char_emb.accumulate(&mut grads.char_emb, cid, &g);
            }
        }
    }

    /// Clips the global gradient norm and applies SGD.
    fn clip_and_apply(&mut self, grads: &mut Grads, lr: f32) {
        let mut sq = grads.word_emb.sq_norm() + grads.char_emb.sq_norm();
        for g in [
            &grads.char_fwd,
            &grads.char_bwd,
            &grads.word_fwd,
            &grads.word_bwd,
        ] {
            sq += g.w.iter().map(|v| v * v).sum::<f32>();
            sq += g.b.iter().map(|v| v * v).sum::<f32>();
        }
        sq += grads.out.w.iter().map(|v| v * v).sum::<f32>();
        sq += grads.out.b.iter().map(|v| v * v).sum::<f32>();
        let norm = sq.sqrt();
        let scale = if norm > self.config.clip && norm > 0.0 {
            self.config.clip / norm
        } else {
            1.0
        };

        let step = lr * scale;
        self.word_emb.apply(&grads.word_emb, step);
        self.char_emb.apply(&grads.char_emb, step);
        for (lstm, g) in [
            (&mut self.char_fwd, &grads.char_fwd),
            (&mut self.char_bwd, &grads.char_bwd),
            (&mut self.word_fwd, &grads.word_fwd),
            (&mut self.word_bwd, &grads.word_bwd),
        ] {
            for (w, gv) in lstm.w.iter_mut().zip(&g.w) {
                *w -= step * gv;
            }
            for (b, gv) in lstm.b.iter_mut().zip(&g.b) {
                *b -= step * gv;
            }
        }
        for (w, gv) in self.out.w.iter_mut().zip(&grads.out.w) {
            *w -= step * gv;
        }
        for (b, gv) in self.out.b.iter_mut().zip(&grads.out.b) {
            *b -= step * gv;
        }
    }
}

/// Binary codec for a trained tagger (model freezing / serving).
///
/// Little-endian and byte-deterministic: the word/char indexes are
/// written in id order (ids are dense `1..=n` by construction), so the
/// same model always serializes to the same bytes. The layout is
/// versioned; [`BiLstmTagger::from_bytes`] validates the version and
/// every section length and returns a typed error instead of
/// panicking on truncated or foreign input.
impl BiLstmTagger {
    /// Codec layout version for [`BiLstmTagger::to_bytes`].
    pub const CODEC_VERSION: u32 = 1;

    /// Serializes the full model (config, indexes, all weights).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + 4 * self.param_count());
        out.extend_from_slice(&Self::CODEC_VERSION.to_le_bytes());
        let c = &self.config;
        for n in [
            c.char_dim,
            c.char_hidden,
            c.word_dim,
            c.word_hidden,
            c.epochs,
        ] {
            out.extend_from_slice(&(n as u64).to_le_bytes());
        }
        for f in [
            c.learning_rate,
            c.lr_decay,
            c.dropout,
            c.word_dropout,
            c.clip,
        ] {
            out.extend_from_slice(&f.to_le_bytes());
        }
        out.extend_from_slice(&c.seed.to_le_bytes());
        out.extend_from_slice(&(self.n_labels as u64).to_le_bytes());

        // Indexes in id order (ids are dense 1..=len).
        let mut words: Vec<(&String, usize)> =
            self.word_index.iter().map(|(w, &i)| (w, i)).collect();
        words.sort_by_key(|&(_, i)| i);
        out.extend_from_slice(&(words.len() as u64).to_le_bytes());
        for (w, _) in words {
            out.extend_from_slice(&(w.len() as u64).to_le_bytes());
            out.extend_from_slice(w.as_bytes());
        }
        let mut chars: Vec<(char, usize)> =
            self.char_index.iter().map(|(&ch, &i)| (ch, i)).collect();
        chars.sort_by_key(|&(_, i)| i);
        out.extend_from_slice(&(chars.len() as u64).to_le_bytes());
        for (ch, _) in chars {
            out.extend_from_slice(&(ch as u32).to_le_bytes());
        }

        for emb in [&self.word_emb, &self.char_emb] {
            out.extend_from_slice(&(emb.vocab as u64).to_le_bytes());
            out.extend_from_slice(&(emb.dim as u64).to_le_bytes());
            write_f32s(&mut out, &emb.w);
        }
        for lstm in [
            &self.char_fwd,
            &self.char_bwd,
            &self.word_fwd,
            &self.word_bwd,
        ] {
            out.extend_from_slice(&(lstm.input_dim as u64).to_le_bytes());
            out.extend_from_slice(&(lstm.hidden as u64).to_le_bytes());
            write_f32s(&mut out, &lstm.w);
            write_f32s(&mut out, &lstm.b);
        }
        out.extend_from_slice(&(self.out.rows as u64).to_le_bytes());
        out.extend_from_slice(&(self.out.cols as u64).to_le_bytes());
        write_f32s(&mut out, &self.out.w);
        write_f32s(&mut out, &self.out.b);
        out
    }

    /// Deserializes a model written by [`BiLstmTagger::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, String> {
        let mut r = ByteReader::new(bytes);
        let version = r.u32("codec version")?;
        if version != Self::CODEC_VERSION {
            return Err(format!(
                "unsupported BiLstmTagger codec version {version} (expected {})",
                Self::CODEC_VERSION
            ));
        }
        let config = TaggerConfig {
            char_dim: r.len("char_dim")?,
            char_hidden: r.len("char_hidden")?,
            word_dim: r.len("word_dim")?,
            word_hidden: r.len("word_hidden")?,
            epochs: r.len("epochs")?,
            learning_rate: r.f32("learning_rate")?,
            lr_decay: r.f32("lr_decay")?,
            dropout: r.f32("dropout")?,
            word_dropout: r.f32("word_dropout")?,
            clip: r.f32("clip")?,
            seed: r.u64("seed")?,
        };
        let n_labels = r.len("n_labels")?;

        let n_words = r.len("word index size")?;
        let mut word_index = HashMap::with_capacity(n_words);
        for id in 1..=n_words {
            word_index.insert(r.string("word entry")?, id);
        }
        let n_chars = r.len("char index size")?;
        let mut char_index = HashMap::with_capacity(n_chars);
        for id in 1..=n_chars {
            let scalar = r.u32("char entry")?;
            let ch = char::from_u32(scalar)
                .ok_or_else(|| format!("invalid char scalar {scalar:#x} in char index"))?;
            char_index.insert(ch, id);
        }

        let mut embedding = |name: &str| -> Result<Embedding, String> {
            let vocab = r.len("embedding vocab")?;
            let dim = r.len("embedding dim")?;
            let w = r.f32s(name)?;
            if w.len() != vocab * dim {
                return Err(format!(
                    "{name}: weight length {} does not match {vocab}x{dim}",
                    w.len()
                ));
            }
            Ok(Embedding { vocab, dim, w })
        };
        let word_emb = embedding("word embedding")?;
        let char_emb = embedding("char embedding")?;
        let mut lstm = |name: &str| -> Result<Lstm, String> {
            let input_dim = r.len("lstm input_dim")?;
            let hidden = r.len("lstm hidden")?;
            let w = r.f32s(name)?;
            let b = r.f32s(name)?;
            if w.len() != 4 * hidden * (input_dim + hidden) || b.len() != 4 * hidden {
                return Err(format!("{name}: weight shape mismatch"));
            }
            Ok(Lstm {
                input_dim,
                hidden,
                w,
                b,
            })
        };
        let char_fwd = lstm("char_fwd")?;
        let char_bwd = lstm("char_bwd")?;
        let word_fwd = lstm("word_fwd")?;
        let word_bwd = lstm("word_bwd")?;
        let rows = r.len("dense rows")?;
        let cols = r.len("dense cols")?;
        let w = r.f32s("dense weights")?;
        let b = r.f32s("dense bias")?;
        if w.len() != rows * cols || b.len() != rows {
            return Err("dense layer: weight shape mismatch".into());
        }
        r.finish()?;

        if rows != n_labels {
            return Err(format!(
                "output layer has {rows} rows but the model claims {n_labels} labels"
            ));
        }
        Ok(BiLstmTagger {
            config,
            n_labels,
            word_index,
            char_index,
            word_emb,
            char_emb,
            char_fwd,
            char_bwd,
            word_fwd,
            word_bwd,
            out: Dense { rows, cols, w, b },
        })
    }
}

fn write_f32s(out: &mut Vec<u8>, xs: &[f32]) {
    out.extend_from_slice(&(xs.len() as u64).to_le_bytes());
    for x in xs {
        out.extend_from_slice(&x.to_le_bytes());
    }
}

/// Bounds-checked little-endian cursor used by [`BiLstmTagger::from_bytes`].
struct ByteReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        ByteReader { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], String> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| format!("truncated model bytes reading {what}"))?;
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u32(&mut self, what: &str) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4, what)?.try_into().unwrap()))
    }

    fn u64(&mut self, what: &str) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8, what)?.try_into().unwrap()))
    }

    fn len(&mut self, what: &str) -> Result<usize, String> {
        let n = self.u64(what)?;
        usize::try_from(n).map_err(|_| format!("{what} {n} overflows usize"))
    }

    fn f32(&mut self, what: &str) -> Result<f32, String> {
        Ok(f32::from_le_bytes(self.take(4, what)?.try_into().unwrap()))
    }

    fn f32s(&mut self, what: &str) -> Result<Vec<f32>, String> {
        let n = self.len(what)?;
        if n > self.bytes.len().saturating_sub(self.pos) / 4 {
            return Err(format!("truncated model bytes: {what} claims {n} floats"));
        }
        let raw = self.take(4 * n, what)?;
        Ok(raw
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
            .collect())
    }

    fn string(&mut self, what: &str) -> Result<String, String> {
        let n = self.len(what)?;
        let raw = self.take(n, what)?;
        String::from_utf8(raw.to_vec()).map_err(|_| format!("{what}: invalid UTF-8"))
    }

    fn finish(&self) -> Result<(), String> {
        if self.pos != self.bytes.len() {
            return Err(format!(
                "{} trailing byte(s) after the model payload",
                self.bytes.len() - self.pos
            ));
        }
        Ok(())
    }
}

/// Xavier-uniform initialization with `fan_in`/`fan_out`.
fn xavier(w: &mut [f32], fan_in: usize, fan_out: usize, rng: &mut StdRng) {
    let limit = (6.0 / (fan_in + fan_out) as f32).sqrt();
    for v in w.iter_mut() {
        *v = rng.random_range(-limit..limit);
    }
}

/// Fisher-Yates shuffle driven by the training RNG (keeps the crate's
/// dependency on rand's distribution details minimal).
fn shuffle(xs: &mut [usize], rng: &mut StdRng) {
    for i in (1..xs.len()).rev() {
        let j = rng.random_range(0..=i);
        xs.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk(words: &str, labels: &[usize]) -> TrainSentence {
        (
            words.split(' ').map(str::to_owned).collect(),
            labels.to_vec(),
        )
    }

    /// Tiny BIO-ish task: label 1 on color words after "color :", label
    /// 2 on digits after "weight :".
    fn corpus() -> Vec<TrainSentence> {
        let mut out = Vec::new();
        for c in ["red", "blue", "green", "pink"] {
            out.push(mk(&format!("color : {c} bag"), &[0, 0, 1, 0]));
            out.push(mk(&format!("nice {c} tone"), &[0, 1, 0]));
        }
        for d in ["2", "3", "4", "7"] {
            out.push(mk(&format!("weight : {d} kg"), &[0, 0, 2, 0]));
        }
        out
    }

    fn quick_config(epochs: usize) -> TaggerConfig {
        TaggerConfig {
            char_dim: 8,
            char_hidden: 8,
            word_dim: 12,
            word_hidden: 12,
            epochs,
            learning_rate: 0.25,
            lr_decay: 0.98,
            dropout: 0.1,
            seed: 3,
            ..Default::default()
        }
    }

    #[test]
    fn codec_round_trips_byte_identically() {
        let tagger = BiLstmTagger::train(&corpus(), 3, &quick_config(3));
        let bytes = tagger.to_bytes();
        let restored = BiLstmTagger::from_bytes(&bytes).expect("round trip");
        // Identical predictions on seen and unseen words…
        for sentence in ["color : red bag", "weight : 9 oz", "zzz unseen"] {
            let words: Vec<String> = sentence.split(' ').map(str::to_owned).collect();
            assert_eq!(
                tagger.predict_with_confidence(&words),
                restored.predict_with_confidence(&words),
                "{sentence}"
            );
        }
        // …and a byte-identical re-serialization (HashMap iteration
        // order must not leak into the artifact).
        assert_eq!(restored.to_bytes(), bytes);

        // Truncation and version skew are typed errors, not panics.
        assert!(BiLstmTagger::from_bytes(&bytes[..bytes.len() - 3]).is_err());
        assert!(BiLstmTagger::from_bytes(&[]).is_err());
        let mut wrong_version = bytes.clone();
        wrong_version[0] = 0xFE;
        let err = BiLstmTagger::from_bytes(&wrong_version).unwrap_err();
        assert!(err.contains("codec version"), "{err}");
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert!(BiLstmTagger::from_bytes(&trailing).is_err());
    }

    #[test]
    fn learns_training_patterns() {
        let tagger = BiLstmTagger::train(&corpus(), 3, &quick_config(30));
        let words: Vec<String> = ["color", ":", "red", "bag"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(tagger.predict(&words), vec![0, 0, 1, 0]);
        let words: Vec<String> = ["weight", ":", "3", "kg"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(tagger.predict(&words), vec![0, 0, 2, 0]);
    }

    #[test]
    fn more_epochs_reduce_training_loss() {
        let short = BiLstmTagger::train(&corpus(), 3, &quick_config(1));
        let long = BiLstmTagger::train(&corpus(), 3, &quick_config(15));
        let data = corpus();
        let loss = |t: &BiLstmTagger| {
            data.iter().map(|(w, l)| t.loss(w, l)).sum::<f32>() / data.len() as f32
        };
        assert!(
            loss(&long) < loss(&short),
            "long {} !< short {}",
            loss(&long),
            loss(&short)
        );
    }

    #[test]
    fn training_is_deterministic() {
        let a = BiLstmTagger::train(&corpus(), 3, &quick_config(2));
        let b = BiLstmTagger::train(&corpus(), 3, &quick_config(2));
        let words: Vec<String> = ["color", ":", "blue"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(a.predict(&words), b.predict(&words));
        assert_eq!(a.out.w, b.out.w);
    }

    #[test]
    fn empty_sentence_handling() {
        let tagger = BiLstmTagger::train(&corpus(), 3, &quick_config(1));
        assert!(tagger.predict(&[]).is_empty());
        assert_eq!(tagger.loss(&[], &[]), 0.0);
    }

    #[test]
    fn gradients_match_finite_differences() {
        // Untrained net, no dropout: perturb representative parameters
        // of every component and compare against numeric gradients of
        // the sentence loss.
        let data = corpus();
        let mut rng = StdRng::seed_from_u64(9);
        let cfg = TaggerConfig {
            char_dim: 4,
            char_hidden: 4,
            word_dim: 6,
            word_hidden: 5,
            dropout: 0.0,
            ..quick_config(1)
        };
        let tagger = BiLstmTagger::init(&data, 3, cfg, &mut rng);
        let (words, labels) = &data[0];

        let pass = tagger.forward(words, None);
        let mut grads = tagger.zero_grads();
        tagger.backward(&pass, labels, &mut grads);

        let eps = 1e-2f32;
        let check = |name: &str, analytic: f32, perturb: &dyn Fn(&mut BiLstmTagger, f32)| {
            let mut up = tagger.clone();
            perturb(&mut up, eps);
            let mut down = tagger.clone();
            perturb(&mut down, -eps);
            let num = (up.loss(words, labels) - down.loss(words, labels)) / (2.0 * eps);
            assert!(
                (num - analytic).abs() < 3e-2 + 0.2 * num.abs().max(analytic.abs()),
                "{name}: numeric {num} vs analytic {analytic}"
            );
        };

        check("out.w[0]", grads.out.w[0], &|t, e| t.out.w[0] += e);
        check("out.b[1]", grads.out.b[1], &|t, e| t.out.b[1] += e);
        check("word_fwd.w[3]", grads.word_fwd.w[3], &|t, e| {
            t.word_fwd.w[3] += e
        });
        check("word_bwd.b[2]", grads.word_bwd.b[2], &|t, e| {
            t.word_bwd.b[2] += e
        });
        check("char_fwd.w[5]", grads.char_fwd.w[5], &|t, e| {
            t.char_fwd.w[5] += e
        });

        // Word embedding of the first word.
        let wid = *tagger.word_index.get(&words[0]).unwrap();
        let analytic_emb: f32 = grads
            .word_emb
            .updates
            .iter()
            .filter(|(id, _)| *id == wid)
            .map(|(_, g)| g[0])
            .sum();
        check("word_emb", analytic_emb, &|t, e| {
            let dim = t.word_emb.dim;
            t.word_emb.w[wid * dim] += e;
        });
    }

    #[test]
    fn oov_words_fall_back_to_char_representation() {
        // Char pattern (digits) should transfer to an unseen number.
        // 60 epochs: the char branch needs the extra passes to dominate
        // the <unk> word embedding under this RNG stream.
        let cfg = TaggerConfig {
            word_dropout: 0.4,
            ..quick_config(60)
        };
        let tagger = BiLstmTagger::train(&corpus(), 3, &cfg);
        let words: Vec<String> = ["weight", ":", "27", "kg"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let pred = tagger.predict(&words);
        assert_eq!(
            pred[2], 2,
            "unseen digit string should be labelled 2, got {pred:?}"
        );
    }

    #[test]
    fn prediction_is_deterministic_despite_training_dropout() {
        let mut cfg = quick_config(3);
        cfg.dropout = 0.5;
        cfg.word_dropout = 0.3;
        let tagger = BiLstmTagger::train(&corpus(), 3, &cfg);
        let words: Vec<String> = ["color", ":", "red"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let a = tagger.predict(&words);
        let b = tagger.predict(&words);
        assert_eq!(a, b, "inference must not sample dropout");
    }

    #[test]
    fn param_count_is_positive_and_stable() {
        let tagger = BiLstmTagger::train(&corpus(), 3, &quick_config(1));
        let n = tagger.param_count();
        assert!(n > 1000, "unexpectedly small model: {n}");
        assert_eq!(n, tagger.param_count());
    }
}
