//! Flat-buffer vector/matrix primitives used by the layers.

/// `out = W · x + b` where `W` is row-major `[rows × cols]`.
pub fn affine(w: &[f32], b: &[f32], x: &[f32], rows: usize, cols: usize, out: &mut [f32]) {
    debug_assert_eq!(w.len(), rows * cols);
    debug_assert_eq!(b.len(), rows);
    debug_assert_eq!(x.len(), cols);
    debug_assert_eq!(out.len(), rows);
    for r in 0..rows {
        let row = &w[r * cols..(r + 1) * cols];
        let mut acc = b[r];
        for (wi, xi) in row.iter().zip(x) {
            acc += wi * xi;
        }
        out[r] = acc;
    }
}

/// Accumulates the affine backward pass:
/// `dw += dy ⊗ x`, `db += dy`, `dx += Wᵀ · dy`.
#[allow(clippy::too_many_arguments)]
pub fn affine_backward(
    w: &[f32],
    x: &[f32],
    dy: &[f32],
    rows: usize,
    cols: usize,
    dw: &mut [f32],
    db: &mut [f32],
    dx: &mut [f32],
) {
    for r in 0..rows {
        let g = dy[r];
        if g == 0.0 {
            continue;
        }
        db[r] += g;
        let row = &w[r * cols..(r + 1) * cols];
        let drow = &mut dw[r * cols..(r + 1) * cols];
        for c in 0..cols {
            drow[c] += g * x[c];
            dx[c] += g * row[c];
        }
    }
}

/// Elementwise logistic sigmoid.
#[inline]
pub fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

/// Numerically-stable softmax (in place).
pub fn softmax(xs: &mut [f32]) {
    let max = xs.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0;
    for x in xs.iter_mut() {
        *x = (*x - max).exp();
        sum += *x;
    }
    for x in xs.iter_mut() {
        *x /= sum;
    }
}

/// Clips the global L2 norm of `grads` to `max_norm`, returning the
/// scale factor applied (1.0 when no clipping happened).
pub fn clip_global_norm(grads: &mut [&mut [f32]], max_norm: f32) -> f32 {
    let mut sq = 0.0f32;
    for g in grads.iter() {
        for &v in g.iter() {
            sq += v * v;
        }
    }
    let norm = sq.sqrt();
    if norm <= max_norm || norm == 0.0 {
        return 1.0;
    }
    let scale = max_norm / norm;
    for g in grads.iter_mut() {
        for v in g.iter_mut() {
            *v *= scale;
        }
    }
    scale
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn affine_computes_wx_plus_b() {
        let w = [1.0, 2.0, 3.0, 4.0]; // 2x2
        let b = [0.5, -0.5];
        let x = [1.0, -1.0];
        let mut out = [0.0; 2];
        affine(&w, &b, &x, 2, 2, &mut out);
        assert_eq!(out, [-0.5, -1.5]);
    }

    #[test]
    fn affine_backward_matches_finite_diff() {
        let w = [0.3f32, -0.2, 0.7, 0.1, 0.5, -0.9]; // 2x3
        let b = [0.1f32, -0.1];
        let x = [0.4f32, -0.6, 0.2];
        let dy = [1.0f32, -2.0];

        let mut dw = [0.0f32; 6];
        let mut db = [0.0f32; 2];
        let mut dx = [0.0f32; 3];
        affine_backward(&w, &x, &dy, 2, 3, &mut dw, &mut db, &mut dx);

        // Loss L = dy · y; check dL/dw numerically.
        let eps = 1e-3;
        for i in 0..6 {
            let mut w2 = w;
            w2[i] += eps;
            let mut y1 = [0.0f32; 2];
            affine(&w2, &b, &x, 2, 3, &mut y1);
            w2[i] -= 2.0 * eps;
            let mut y2 = [0.0f32; 2];
            affine(&w2, &b, &x, 2, 3, &mut y2);
            let num = (dy[0] * (y1[0] - y2[0]) + dy[1] * (y1[1] - y2[1])) / (2.0 * eps);
            assert!((num - dw[i]).abs() < 1e-2, "dw[{i}]: {num} vs {}", dw[i]);
        }
        // dx check.
        for i in 0..3 {
            let mut x2 = x;
            x2[i] += eps;
            let mut y1 = [0.0f32; 2];
            affine(&w, &b, &x2, 2, 3, &mut y1);
            x2[i] -= 2.0 * eps;
            let mut y2 = [0.0f32; 2];
            affine(&w, &b, &x2, 2, 3, &mut y2);
            let num = (dy[0] * (y1[0] - y2[0]) + dy[1] * (y1[1] - y2[1])) / (2.0 * eps);
            assert!((num - dx[i]).abs() < 1e-2, "dx[{i}]: {num} vs {}", dx[i]);
        }
    }

    #[test]
    fn softmax_sums_to_one_and_is_stable() {
        let mut xs = [1000.0f32, 1001.0, 999.0];
        softmax(&mut xs);
        let sum: f32 = xs.iter().sum();
        assert!((sum - 1.0).abs() < 1e-5);
        assert!(xs[1] > xs[0] && xs[0] > xs[2]);
    }

    #[test]
    fn clip_scales_only_when_needed() {
        let mut a = [3.0f32, 4.0];
        {
            let mut refs: Vec<&mut [f32]> = vec![&mut a];
            assert_eq!(clip_global_norm(&mut refs, 10.0), 1.0);
        }
        assert_eq!(a, [3.0, 4.0]);
        {
            let mut refs: Vec<&mut [f32]> = vec![&mut a];
            let s = clip_global_norm(&mut refs, 1.0);
            assert!((s - 0.2).abs() < 1e-6);
        }
        let norm = (a[0] * a[0] + a[1] * a[1]).sqrt();
        assert!((norm - 1.0).abs() < 1e-6);
    }

    #[test]
    fn sigmoid_bounds() {
        assert!(sigmoid(100.0) > 0.999);
        assert!(sigmoid(-100.0) < 0.001);
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-6);
    }
}
