#![warn(missing_docs)]

//! Neural sequence-tagging substrate: a char+word BiLSTM tagger.
//!
//! Reproduces the paper's RNN backend (NeuroNER): *"NeuroNER stacks 2
//! kinds of LSTM in the hidden layer to compute both previous and
//! forward context of sequence input. It uses Stochastic Gradient
//! Descent (SGD) with dropout regularization to update the weights.
//! … character level representation is used as an input to BiLSTM, and
//! word level representation is appended to the BiLSTM output"*.
//!
//! Everything — LSTM cells, embeddings, dense layers, dropout, backprop —
//! is implemented by hand on flat `f32` buffers; correctness is pinned
//! by finite-difference gradient checks in the test suite.
//!
//! * [`ops`] — vector/matrix primitives;
//! * [`lstm`] — a single-direction LSTM layer with full backward pass;
//! * [`embedding`] — lookup tables with sparse gradients;
//! * [`dense`] — affine layer;
//! * [`tagger`] — the assembled [`BiLstmTagger`] with train/predict.

pub mod dense;
pub mod embedding;
pub mod lstm;
pub mod ops;
pub mod tagger;

pub use tagger::{BiLstmTagger, TaggerConfig, TrainSentence};
