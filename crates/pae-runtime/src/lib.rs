#![warn(missing_docs)]

//! Shared worker-pool layer for the bootstrap hot paths.
//!
//! Every parallel construct here is **deterministic by construction**:
//! the decomposition of work (chunk partition, item order of the
//! output) depends only on the input, never on the thread count or on
//! scheduling. Threads race only over *which worker executes which
//! piece*; results are always placed by index and reduced in a fixed
//! order. Consequently a pipeline run produces byte-identical output
//! at `PAE_JOBS=1` and `PAE_JOBS=64` — the property
//! `tests/determinism.rs` enforces end to end.
//!
//! Concurrency is bounded by [`jobs`]: the `PAE_JOBS` environment
//! variable when set (a positive integer), else the machine's
//! available parallelism. Invalid values (`0`, negative, non-numeric)
//! fall back to available parallelism and raise a one-shot
//! `runtime.pae_jobs.invalid` warning; values above 4× available
//! parallelism are clamped to that ceiling with a one-shot
//! `runtime.pae_jobs.clamped` warning (`PAE_JOBS=1000000` must not
//! attempt a million threads). Tests use [`with_jobs`] to pin the
//! bound without touching the process environment.
//!
//! The pool is observable through `pae-obs`: workers re-establish the
//! spawner's span as their parent (so traces stay linked across
//! threads) and report `runtime.queue.claimed` / `runtime.queue.steals`
//! / `runtime.worker.busy_ns` counters. All telemetry is gated on the
//! collector being enabled and never influences scheduling or results.

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

thread_local! {
    /// Per-thread override installed by [`with_jobs`] and inherited by
    /// pool workers (so nested stages observe the caller's bound).
    static JOBS_OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
}

/// The worker-pool width: thread-local override (see [`with_jobs`]),
/// else `PAE_JOBS`, else available parallelism.
///
/// An invalid `PAE_JOBS` (`0`, negative, or non-numeric) falls back to
/// available parallelism; the first such read emits a one-shot
/// `runtime.pae_jobs.invalid` warning (a `pae-obs` event when
/// collection is on, plus a stderr line) instead of failing silently.
/// A valid but oversized value is clamped to [`max_jobs`] — spawning
/// threads is bounded by what the machine can run, not by the
/// environment — with a one-shot `runtime.pae_jobs.clamped` warning.
pub fn jobs() -> usize {
    if let Some(n) = JOBS_OVERRIDE.with(Cell::get) {
        return n;
    }
    let fallback = || {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    };
    match std::env::var("PAE_JOBS") {
        Err(_) => fallback(),
        Ok(raw) => match raw.trim().parse::<i64>() {
            Ok(n) if n > 0 => {
                let ceiling = max_jobs();
                if n as u64 > ceiling as u64 {
                    warn_clamped_pae_jobs(&raw, ceiling);
                    ceiling
                } else {
                    n as usize
                }
            }
            _ => {
                let jobs = fallback();
                warn_invalid_pae_jobs(&raw, jobs);
                jobs
            }
        },
    }
}

/// Ceiling for the `PAE_JOBS`-requested pool width: 4× available
/// parallelism (at least 4). Oversubscription beyond that only adds
/// scheduler churn and risks exhausting thread limits.
pub fn max_jobs() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
        .saturating_mul(4)
}

/// One-shot (per process) diagnostic for an oversized `PAE_JOBS`.
fn warn_clamped_pae_jobs(raw: &str, ceiling: usize) {
    static WARNED: AtomicBool = AtomicBool::new(false);
    if WARNED.swap(true, Ordering::Relaxed) {
        return;
    }
    pae_obs::warn(
        "runtime.pae_jobs.clamped",
        vec![
            ("raw".into(), raw.into()),
            ("ceiling".into(), ceiling.into()),
        ],
    );
    eprintln!(
        "warning: PAE_JOBS={raw:?} exceeds 4x available parallelism; \
         clamping the worker pool to {ceiling}"
    );
}

/// One-shot (per process) diagnostic for an unusable `PAE_JOBS` value.
fn warn_invalid_pae_jobs(raw: &str, fallback: usize) {
    static WARNED: AtomicBool = AtomicBool::new(false);
    if WARNED.swap(true, Ordering::Relaxed) {
        return;
    }
    pae_obs::warn(
        "runtime.pae_jobs.invalid",
        vec![
            ("raw".into(), raw.into()),
            ("fallback".into(), fallback.into()),
        ],
    );
    eprintln!(
        "warning: PAE_JOBS={raw:?} is not a positive integer; \
         using available parallelism ({fallback})"
    );
}

/// Runs `f` with [`jobs`] pinned to `n` on this thread (and on any
/// pool workers spawned inside). Restores the previous value on exit,
/// panic included. Intended for tests that compare thread counts
/// without racing on the process environment.
pub fn with_jobs<R>(n: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            let prev = self.0;
            JOBS_OVERRIDE.with(|c| c.set(prev));
        }
    }
    let _guard = Restore(JOBS_OVERRIDE.with(|c| c.replace(Some(n.max(1)))));
    f()
}

/// Maps `f` over `items` on the worker pool, returning results in item
/// order.
///
/// Scheduling is a work-stealing index queue: each worker repeatedly
/// claims the next unclaimed index, so a slow item delays only itself
/// — there is no barrier between chunks and no head-of-line blocking.
/// The output vector is assembled by index, making the result
/// independent of completion order and thread count.
pub fn parallel_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let width = jobs().min(items.len());
    if width <= 1 {
        // Serial fast path still reports utilization: a 1-core run
        // (or PAE_JOBS=1) would otherwise produce a trace with no
        // pool counters at all. Steals stay at zero — nothing moved
        // to an extra thread.
        let busy_from = pae_obs::enabled().then(Instant::now);
        let out: Vec<R> = items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
        if let Some(from) = busy_from {
            pae_obs::counter_add(
                "runtime.worker.busy_ns",
                &[],
                from.elapsed().as_nanos() as u64,
            );
            pae_obs::counter_add("runtime.queue.claimed", &[], items.len() as u64);
        }
        return out;
    }
    let inherited = jobs();
    // Telemetry-only capture: the spawner's span becomes the workers'
    // parent so cross-thread traces stay linked. Never affects results.
    let parent_span = pae_obs::current_span();
    let obs_on = pae_obs::enabled();
    let next = AtomicUsize::new(0);
    let per_worker: Vec<Vec<(usize, R)>> = crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = (0..width)
            .map(|worker| {
                let f = &f;
                let next = &next;
                scope.spawn(move |_| {
                    JOBS_OVERRIDE.with(|c| c.set(Some(inherited)));
                    pae_obs::with_parent(parent_span, || {
                        let busy_from = obs_on.then(Instant::now);
                        let mut claimed = 0u64;
                        let mut local = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= items.len() {
                                break;
                            }
                            claimed += 1;
                            local.push((i, f(i, &items[i])));
                        }
                        if let Some(from) = busy_from {
                            pae_obs::counter_add(
                                "runtime.worker.busy_ns",
                                &[],
                                from.elapsed().as_nanos() as u64,
                            );
                            pae_obs::counter_add("runtime.queue.claimed", &[], claimed);
                            if worker > 0 {
                                // "Steals": items taken off the shared
                                // queue by a worker other than the
                                // first, i.e. work that actually moved
                                // to an extra thread.
                                pae_obs::counter_add("runtime.queue.steals", &[], claimed);
                            }
                        }
                        local
                    })
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("pool worker panicked"))
            .collect()
    })
    .expect("worker pool scope");

    let mut slots: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
    for local in per_worker {
        for (i, r) in local {
            debug_assert!(slots[i].is_none(), "item {i} mapped twice");
            slots[i] = Some(r);
        }
    }
    slots
        .into_iter()
        .map(|s| s.expect("every index claimed exactly once"))
        .collect()
}

/// Splits `len` items into at most `max_chunks` balanced contiguous
/// ranges. The partition depends only on `len` and `max_chunks` —
/// never on the thread count — which is what makes chunked reductions
/// deterministic across `PAE_JOBS` values.
pub fn chunk_ranges(len: usize, max_chunks: usize) -> Vec<std::ops::Range<usize>> {
    if len == 0 {
        return Vec::new();
    }
    let n = max_chunks.max(1).min(len);
    let base = len / n;
    let rem = len % n;
    let mut out = Vec::with_capacity(n);
    let mut start = 0;
    for i in 0..n {
        let size = base + usize::from(i < rem);
        out.push(start..start + size);
        start += size;
    }
    out
}

/// Maps `map` over a **fixed partition** of `items` (see
/// [`chunk_ranges`]) and returns the per-chunk results in chunk order.
///
/// The caller folds the chunk results sequentially; because the
/// partition and the fold order are both fixed, a floating-point
/// reduction built on this is byte-identical at any thread count.
pub fn parallel_chunk_map<T, A, F>(items: &[T], max_chunks: usize, map: F) -> Vec<A>
where
    T: Sync,
    A: Send,
    F: Fn(&[T]) -> A + Sync,
{
    let ranges = chunk_ranges(items.len(), max_chunks);
    parallel_map(&ranges, |_, range| map(&items[range.clone()]))
}

/// Slot-indexed scratch storage that outlives individual pool
/// invocations.
///
/// Pool workers are *ephemeral* — [`parallel_map`] spawns scoped
/// threads per call — so `thread_local!` buffers die with them. A
/// `Scratch` instead keys reusable state by **work index** (typically
/// the chunk index of a [`parallel_chunk_map`]-style reduction): slot
/// `i` is claimed by whichever worker processes piece `i`, which is
/// always exactly one worker per call. Buffers therefore persist
/// across every invocation made through the owning value (e.g. all
/// optimizer iterations of a training run) instead of being
/// reallocated per call.
///
/// Ownership contract: the pool owns the allocation; the *user* of a
/// slot owns its contents and must re-initialize whatever it reads —
/// a slot retains the bytes the previous call left behind.
///
/// Each slot is an independent `Mutex`, so distinct work indices never
/// contend; the lock only serializes hypothetical same-index reuse.
pub struct Scratch<T> {
    slots: Vec<Mutex<Option<T>>>,
}

impl<T> Scratch<T> {
    /// Creates a pool of `n` empty slots. Slots are lazily populated
    /// by [`Scratch::with`] on first use.
    pub fn new(n: usize) -> Self {
        Self {
            slots: (0..n).map(|_| Mutex::new(None)).collect(),
        }
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the pool has zero slots.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Runs `f` with exclusive access to slot `slot`, creating its
    /// value via `init` on first use. The value is retained (with
    /// whatever contents `f` left in it) for the next call on the
    /// same slot.
    pub fn with<R>(&self, slot: usize, init: impl FnOnce() -> T, f: impl FnOnce(&mut T) -> R) -> R {
        let mut guard = self.slots[slot].lock().unwrap_or_else(|e| e.into_inner());
        f(guard.get_or_insert_with(init))
    }
}

impl<T> std::fmt::Debug for Scratch<T> {
    fn fmt(&self, fm: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        fm.debug_struct("Scratch")
            .field("slots", &self.slots.len())
            .finish()
    }
}

/// Runs two closures concurrently (second on a pool thread when the
/// pool width allows), returning both results.
pub fn join<RA, RB, FA, FB>(fa: FA, fb: FB) -> (RA, RB)
where
    RA: Send,
    RB: Send,
    FA: FnOnce() -> RA + Send,
    FB: FnOnce() -> RB + Send,
{
    if jobs() <= 1 {
        return (fa(), fb());
    }
    let inherited = jobs();
    let parent_span = pae_obs::current_span();
    crossbeam::thread::scope(|scope| {
        let handle = scope.spawn(move |_| {
            JOBS_OVERRIDE.with(|c| c.set(Some(inherited)));
            pae_obs::with_parent(parent_span, fb)
        });
        let a = fa();
        let b = handle.join().expect("join worker panicked");
        (a, b)
    })
    .expect("join scope")
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes tests that mutate `PAE_JOBS` with tests that read
    /// [`jobs`] unpinned (env access races otherwise).
    fn env_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn parallel_map_preserves_item_order() {
        let items: Vec<usize> = (0..100).collect();
        let out = with_jobs(4, || parallel_map(&items, |i, &x| i * 1000 + x * 2));
        let expected: Vec<usize> = (0..100).map(|i| i * 1000 + i * 2).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn parallel_map_matches_serial_at_any_width() {
        let items: Vec<u64> = (0..57).map(|i| i * 7 + 3).collect();
        let serial = with_jobs(1, || parallel_map(&items, |_, &x| x.pow(2)));
        for width in [2, 3, 8, 16] {
            let parallel = with_jobs(width, || parallel_map(&items, |_, &x| x.pow(2)));
            assert_eq!(serial, parallel, "width {width}");
        }
    }

    #[test]
    fn chunk_ranges_partition_exactly() {
        for len in [0usize, 1, 2, 31, 32, 33, 100] {
            for n in [1usize, 2, 7, 32, 200] {
                let ranges = chunk_ranges(len, n);
                let total: usize = ranges.iter().map(|r| r.len()).sum();
                assert_eq!(total, len, "len {len} chunks {n}");
                let mut pos = 0;
                for r in &ranges {
                    assert_eq!(r.start, pos);
                    assert!(!r.is_empty(), "empty chunk for len {len} n {n}");
                    pos = r.end;
                }
                // Balance: sizes differ by at most one.
                if let (Some(min), Some(max)) = (
                    ranges.iter().map(|r| r.len()).min(),
                    ranges.iter().map(|r| r.len()).max(),
                ) {
                    assert!(max - min <= 1);
                }
            }
        }
    }

    #[test]
    fn chunked_float_reduction_is_identical_across_widths() {
        // Adversarial magnitudes: naive reassociation would change the
        // sum, so equality here demonstrates the fixed fold order.
        let xs: Vec<f64> = (0..10_000)
            .map(|i| ((i * 2654435761u64 as usize) % 1000) as f64 * 1e-3 + 1e9 * ((i % 7) as f64))
            .collect();
        let reduce = || {
            parallel_chunk_map(&xs, 32, |chunk| chunk.iter().sum::<f64>())
                .into_iter()
                .fold(0.0f64, |acc, p| acc + p)
        };
        let one = with_jobs(1, reduce);
        for width in [2, 4, 13] {
            let many = with_jobs(width, reduce);
            assert_eq!(one.to_bits(), many.to_bits(), "width {width}");
        }
    }

    #[test]
    fn scratch_slots_persist_across_pool_invocations() {
        let inits = AtomicUsize::new(0);
        let scratch: Scratch<Vec<u64>> = Scratch::new(4);
        let chunks: Vec<usize> = (0..4).collect();
        for round in 0..3u64 {
            let sums = with_jobs(4, || {
                parallel_map(&chunks, |_, &c| {
                    scratch.with(
                        c,
                        || {
                            inits.fetch_add(1, Ordering::Relaxed);
                            vec![0; 8]
                        },
                        |buf| {
                            buf[0] += round + c as u64;
                            buf[0]
                        },
                    )
                })
            });
            // Contents accumulate across rounds: slot c has seen
            // rounds 0..=round, each adding (round + c).
            for (c, &s) in sums.iter().enumerate() {
                let expect: u64 = (0..=round).map(|r| r + c as u64).sum();
                assert_eq!(s, expect, "slot {c} round {round}");
            }
        }
        assert_eq!(
            inits.load(Ordering::Relaxed),
            4,
            "each slot initialized exactly once across all rounds"
        );
    }

    #[test]
    fn join_returns_both_results() {
        let (a, b) = with_jobs(4, || join(|| 6 * 7, || "ok".to_string()));
        assert_eq!(a, 42);
        assert_eq!(b, "ok");
    }

    #[test]
    fn with_jobs_restores_previous_bound() {
        let _env = env_lock();
        let outer = jobs();
        with_jobs(3, || {
            assert_eq!(jobs(), 3);
            with_jobs(5, || assert_eq!(jobs(), 5));
            assert_eq!(jobs(), 3);
        });
        assert_eq!(jobs(), outer);
    }

    #[test]
    fn invalid_pae_jobs_falls_back_with_one_shot_warning() {
        let _env = env_lock();
        let prev = std::env::var("PAE_JOBS").ok();
        let expected = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        pae_obs::set_enabled(true);
        pae_obs::clear();

        // All three invalid shapes fall back to available parallelism…
        for bad in ["0", "-3", "abc"] {
            std::env::set_var("PAE_JOBS", bad);
            assert_eq!(jobs(), expected, "PAE_JOBS={bad}");
        }
        // …while valid values within the ceiling still win.
        std::env::set_var("PAE_JOBS", "2");
        assert_eq!(jobs(), 2);

        // The warning is one-shot per process: three invalid reads,
        // exactly one event.
        let warnings: Vec<_> = pae_obs::snapshot()
            .into_iter()
            .filter(|r| r.name == "runtime.pae_jobs.invalid")
            .collect();
        assert_eq!(warnings.len(), 1, "expected exactly one warning event");
        assert_eq!(
            warnings[0].field("raw"),
            Some(&pae_obs::FieldValue::Str("0".into()))
        );
        assert_eq!(
            warnings[0].field("level"),
            Some(&pae_obs::FieldValue::Str("warn".into()))
        );

        pae_obs::set_enabled(false);
        pae_obs::reset();
        match prev {
            Some(v) => std::env::set_var("PAE_JOBS", v),
            None => std::env::remove_var("PAE_JOBS"),
        }
    }

    #[test]
    fn oversized_pae_jobs_is_clamped_with_one_shot_warning() {
        let _env = env_lock();
        let prev = std::env::var("PAE_JOBS").ok();
        let ceiling = max_jobs();
        pae_obs::set_enabled(true);
        pae_obs::clear();

        // Requests far above the machine clamp to the ceiling…
        for huge in ["1000000", "999999999"] {
            std::env::set_var("PAE_JOBS", huge);
            assert_eq!(jobs(), ceiling, "PAE_JOBS={huge}");
        }
        // …and the exact ceiling passes through unclamped.
        std::env::set_var("PAE_JOBS", ceiling.to_string());
        assert_eq!(jobs(), ceiling);

        // The clamp warning is one-shot per process: two oversized
        // reads, exactly one event.
        let warnings: Vec<_> = pae_obs::snapshot()
            .into_iter()
            .filter(|r| r.name == "runtime.pae_jobs.clamped")
            .collect();
        assert_eq!(warnings.len(), 1, "expected exactly one clamp event");
        assert_eq!(
            warnings[0].field("raw"),
            Some(&pae_obs::FieldValue::Str("1000000".into()))
        );
        assert_eq!(
            warnings[0].field("ceiling"),
            Some(&pae_obs::FieldValue::U64(ceiling as u64))
        );

        pae_obs::set_enabled(false);
        pae_obs::reset();
        match prev {
            Some(v) => std::env::set_var("PAE_JOBS", v),
            None => std::env::remove_var("PAE_JOBS"),
        }
    }

    #[test]
    fn workers_report_to_the_spawning_span() {
        let _env = env_lock();
        pae_obs::set_enabled(true);
        pae_obs::reset();
        let items: Vec<usize> = (0..64).collect();
        {
            let root = pae_obs::span("fanout");
            let root_id = root.id();
            let parents = with_jobs(4, || parallel_map(&items, |_, _| pae_obs::current_span()));
            assert!(
                parents.iter().all(|&p| p == root_id),
                "every worker body sees the spawner's span as parent"
            );
        }
        let steals = pae_obs::metrics_snapshot()
            .into_iter()
            .find(|(k, _)| k.name == "runtime.queue.claimed");
        assert!(
            matches!(steals, Some((_, pae_obs::MetricValue::Counter(n))) if n == 64),
            "all claims counted"
        );
        pae_obs::set_enabled(false);
        pae_obs::reset();
    }

    #[test]
    fn workers_inherit_the_callers_bound() {
        let items = vec![(); 8];
        let seen = with_jobs(2, || parallel_map(&items, |_, _| jobs()));
        assert!(seen.iter().all(|&j| j == 2), "{seen:?}");
    }
}
