//! RNN configuration probe (not a paper experiment).
use pae_bench::cli::RunCli;
use pae_core::{config::RnnOptions, BootstrapPipeline, PipelineConfig, TaggerKind};
use pae_synth::{CategoryKind, DatasetSpec};

fn main() {
    let cli = RunCli::init("probe_rnn");
    let dataset = DatasetSpec::new(CategoryKind::VacuumCleaner, 42)
        .products(200)
        .generate();
    let corpus = pae_core::parse_corpus(&dataset);
    for (epochs, lr, hidden) in [
        (2, 0.3f32, 24),
        (10, 0.3, 24),
        (2, 0.3, 64),
        (10, 0.3, 64),
        (2, 0.5, 64),
        (10, 0.5, 64),
    ] {
        let mut cfg = PipelineConfig {
            iterations: 1,
            tagger: TaggerKind::Rnn,
            ..Default::default()
        };
        cfg.rnn = RnnOptions {
            epochs,
            learning_rate: lr,
            hidden,
            ..Default::default()
        };
        let out =
            BootstrapPipeline::new(cfg.clone().without_cleaning()).run_on_corpus(&dataset, &corpus);
        let r = out.evaluate_iteration(1, &dataset);
        r.record_obs(&format!("rnn/e{epochs}_lr{lr}_h{hidden}/it1"));
        println!(
            "epochs={epochs:2} lr={lr} hid={hidden} P={:.1} C={:.1} n={}",
            100.0 * r.precision(),
            100.0 * r.coverage(),
            r.n_triples()
        );
    }
    cli.finish();
}
