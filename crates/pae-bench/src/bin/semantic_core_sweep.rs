//! **§VIII-B (text)** — parameter exploration for semantic cleaning:
//! the size `n` of the per-attribute semantic core.
//!
//! Paper: removing the restriction on `n` entirely costs at most ~1
//! precision point (worst on Garden and Shoes) because the produced
//! values are semantically close to each other by construction of the
//! strict extraction process.

use pae_bench::{pct, prepare_all, run_parallel, TextTable};
use pae_core::PipelineConfig;
use pae_synth::CategoryKind;

fn main() {
    let cli = pae_bench::cli::RunCli::init("semantic_core_sweep");
    let prepared = prepare_all(&[
        CategoryKind::Garden,
        CategoryKind::Shoes,
        CategoryKind::VacuumCleaner,
    ]);

    let core_sizes: Vec<(String, Option<usize>)> = vec![
        ("n=3".into(), Some(3)),
        ("n=5".into(), Some(5)),
        ("n=10".into(), Some(10)),
        ("n=20".into(), Some(20)),
        ("unrestricted".into(), None),
    ];

    let mut header = vec!["core size".to_owned()];
    header.extend(prepared.iter().map(|p| p.kind.name().to_owned()));
    let mut table = TextTable::new(header);

    for (label, n) in &core_sizes {
        let mut cfg = PipelineConfig {
            iterations: 2,
            ..Default::default()
        };
        cfg.semantic.core_size = *n;
        let cells = run_parallel(&prepared, |p| {
            let outcome = p.run(cfg.clone());
            outcome.evaluate(&p.dataset).precision()
        });
        let mut row = vec![label.clone()];
        row.extend(cells.iter().map(|v| pct(*v)));
        table.row(row);
    }

    println!("Semantic-core size sweep — precision after two bootstrap cycles (CRF + cleaning)");
    println!("(paper: the restriction on n barely matters — ≤1 point even unrestricted)\n");
    print!("{}", table.render());
    cli.finish();
}
