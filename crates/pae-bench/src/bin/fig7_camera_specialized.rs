//! **Figure 7** — increase in per-attribute coverage on Digital Cameras
//! when the paper's complex attributes (A1 shutter speed, A2 effective
//! pixels, A3 weight) are tagged by one specialized model instead of
//! the global model (`+g` = global, `+s` = specialized).

use pae_bench::specialized_figure;
use pae_synth::CategoryKind;

fn main() {
    let cli = pae_bench::cli::RunCli::init("fig7_camera_specialized");
    specialized_figure(
        CategoryKind::DigitalCameras,
        &["shutter_speed", "effective_pixels", "weight"],
        "Figure 7 — Digital Cameras attribute coverage: global vs specialized model",
    );
    cli.finish();
}
