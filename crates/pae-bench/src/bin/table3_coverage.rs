//! **Table III** — coverage of the universe of products after the first
//! bootstrap iteration, for the five standard configurations.
//!
//! (`table2_precision` prints both Tables II and III from one grid run;
//! this binary exists so every paper table has its own entry point.)

use pae_bench::{pct, prepare_all, run_parallel, standard_configs, TextTable};
use pae_synth::CategoryKind;

fn main() {
    let cli = pae_bench::cli::RunCli::init("table3_coverage");
    let prepared = prepare_all(&CategoryKind::TABLE_CATEGORIES);
    let configs = standard_configs(1);

    let mut header = vec!["-".to_owned()];
    header.extend(prepared.iter().map(|p| p.kind.name().to_owned()));
    let mut table = TextTable::new(header);

    for (name, cfg) in &configs {
        let cells = run_parallel(&prepared, |p| {
            let outcome = p.run(cfg.clone());
            outcome.evaluate_iteration(1, &p.dataset).coverage()
        });
        let mut row = vec![name.to_string()];
        row.extend(cells.iter().map(|c| pct(*c)));
        table.row(row);
    }

    println!("Table III — coverage after the first bootstrap iteration");
    println!("(paper: 16.6–99.7; cleaning lowers coverage; the low-precision RNN config has the highest coverage)\n");
    print!("{}", table.render());
    cli.finish();
}
