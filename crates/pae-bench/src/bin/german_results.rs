//! **§VII-B (text)** — German-language results: mailbox, coffee
//! machines, and garden, using CRF with cleaning for five iterations.
//!
//! Paper: mailbox P 94.4 / C 73, coffee machines P 92 / C 57.3,
//! garden P 84.2 / C 87. Triple counts (§VII-C): garden 2096,
//! mailbox 2943, coffee machines 1626.

use pae_bench::{pct, prepare_all, run_parallel, TextTable};
use pae_core::PipelineConfig;
use pae_synth::CategoryKind;

fn main() {
    let cli = pae_bench::cli::RunCli::init("german_results");
    let prepared = prepare_all(&CategoryKind::GERMAN_CATEGORIES);
    let cfg = PipelineConfig {
        iterations: 5,
        ..Default::default()
    };

    let reports = run_parallel(&prepared, |p| {
        let outcome = p.run(cfg.clone());
        outcome.evaluate(&p.dataset)
    });

    let mut table = TextTable::new(vec!["Category", "precision", "coverage", "#triples"]);
    for (p, r) in prepared.iter().zip(&reports) {
        table.row(vec![
            p.kind.name().to_owned(),
            pct(r.precision()),
            pct(r.coverage()),
            r.n_triples().to_string(),
        ]);
    }

    println!("German categories after five bootstrap cycles (CRF + cleaning)");
    println!("(paper: precision 84.2–94.4, coverage 57.3–87.0; results comparable to Japanese)\n");
    print!("{}", table.render());
    cli.finish();
}
