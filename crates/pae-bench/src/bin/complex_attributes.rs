//! **§VIII-C (text)** — precision for the complex attributes: Digital
//! Cameras A1 shutter speed, A2 effective pixels, A3 weight; Vacuum
//! Cleaner B1 type, B2 type of container, B3 power supply type.
//!
//! Paper: A1 100 %, A2 90 %, A3 100 %; B1/B2 > 90 %, B3 87 % — high
//! precision but small coverage (~10 % on average).

use pae_bench::{pct, prepare_all, run_parallel, TextTable};
use pae_core::PipelineConfig;
use pae_synth::CategoryKind;

fn main() {
    let cli = pae_bench::cli::RunCli::init("complex_attributes");
    let prepared = prepare_all(&[CategoryKind::DigitalCameras, CategoryKind::VacuumCleaner]);
    let cfg = PipelineConfig {
        iterations: 1,
        ..Default::default()
    };

    let attrs_per_kind: Vec<(&str, Vec<(&str, &str)>)> = vec![
        (
            "Digital Cameras",
            vec![
                ("A1", "shutter_speed"),
                ("A2", "effective_pixels"),
                ("A3", "weight"),
            ],
        ),
        (
            "Vacuum Cleaner",
            vec![
                ("B1", "type"),
                ("B2", "container_type"),
                ("B3", "power_supply"),
            ],
        ),
    ];

    let reports = run_parallel(&prepared, |p| {
        let outcome = p.run(cfg.clone());
        outcome.evaluate(&p.dataset)
    });

    let mut table = TextTable::new(vec!["Attribute", "precision", "coverage"]);
    for ((category, attrs), report) in attrs_per_kind.iter().zip(&reports) {
        for (label, canonical) in attrs {
            table.row(vec![
                format!("{category}: {label} {canonical}"),
                pct(report.attr_precision_of(canonical)),
                pct(report.attr_coverage_of(canonical)),
            ]);
        }
    }

    println!(
        "Complex attributes — per-attribute precision and coverage (CRF + cleaning, 1 iteration)"
    );
    println!("(paper: 87–100 precision on these attributes, but coverage around 10%)\n");
    print!("{}", table.render());
    cli.finish();
}
