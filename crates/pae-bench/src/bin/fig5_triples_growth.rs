//! **Figure 5** — total number of triples per category through the
//! bootstrap iterations, using CRF with cleaning.

use pae_bench::{prepare_all, run_parallel, TextTable};
use pae_core::PipelineConfig;
use pae_synth::CategoryKind;

fn main() {
    let cli = pae_bench::cli::RunCli::init("fig5_triples_growth");
    let prepared = prepare_all(&CategoryKind::TABLE_CATEGORIES);
    let iterations = 5usize;
    let cfg = PipelineConfig {
        iterations,
        ..Default::default()
    };

    let series = run_parallel(&prepared, |p| {
        let outcome = p.run(cfg.clone());
        (0..=iterations)
            .map(|i| outcome.evaluate_iteration(i, &p.dataset).n_triples())
            .collect::<Vec<_>>()
    });

    let mut header = vec!["Category".to_owned()];
    header.extend((0..=iterations).map(|i| format!("it{i}")));
    let mut table = TextTable::new(header);
    for (p, points) in prepared.iter().zip(&series) {
        let mut row = vec![p.kind.name().to_owned()];
        row.extend(points.iter().map(|n| n.to_string()));
        table.row(row);
    }

    println!("Figure 5 — number of triples through bootstrap iterations (CRF with cleaning)");
    println!("(paper: steady increase with decreasing gains in later iterations)\n");
    print!("{}", table.render());
    cli.finish();
}
