//! **Extension (the paper's future work)** — *"improving the machine
//! learning model by combining different approaches"*: a precision-first
//! ensemble that keeps only the triples extracted by both the CRF and
//! the BiLSTM. The paper observes the two backends "often make similar
//! mistakes, but they can complement each other".

use pae_bench::{pct, prepare_all, run_parallel, TextTable};
use pae_core::{PipelineConfig, TaggerKind};
use pae_synth::CategoryKind;

fn main() {
    let cli = pae_bench::cli::RunCli::init("ensemble_extension");
    let prepared = prepare_all(&[
        CategoryKind::VacuumCleaner,
        CategoryKind::LadiesBags,
        CategoryKind::Garden,
    ]);

    let configs: Vec<(&str, TaggerKind)> = vec![
        ("CRF + cleaning", TaggerKind::Crf),
        ("RNN + cleaning", TaggerKind::Rnn),
        ("Ensemble (CRF ∩ RNN) + cleaning", TaggerKind::Ensemble),
    ];

    let mut header = vec!["-".to_owned()];
    for p in &prepared {
        header.push(format!("{} P", p.kind.name()));
        header.push(format!("{} C", p.kind.name()));
    }
    let mut table = TextTable::new(header);

    for (name, tagger) in &configs {
        let cells = run_parallel(&prepared, |p| {
            let cfg = PipelineConfig {
                iterations: 1,
                tagger: *tagger,
                ..Default::default()
            };
            let outcome = p.run(cfg);
            let r = outcome.evaluate_iteration(1, &p.dataset);
            (r.precision(), r.coverage())
        });
        let mut row = vec![name.to_string()];
        for (p, c) in cells {
            row.push(pct(p));
            row.push(pct(c));
        }
        table.row(row);
    }

    println!("Ensemble extension — intersecting CRF and RNN extractions (1 iteration)");
    println!("(expected: ensemble precision ≥ each backend; coverage ≤ each backend)\n");
    print!("{}", table.render());
    cli.finish();
}
