//! **Table I** — precision and coverage of the automatically obtained
//! seed instances, per category.
//!
//! Paper columns: `#Pairs`, `#Triples`, `Precision Pairs`,
//! `Precision Triples`, `Coverage Triples` over the eight Japanese
//! categories.

use pae_bench::{pct, prepare_all, run_parallel, TextTable};
use pae_core::PipelineConfig;
use pae_synth::CategoryKind;

fn main() {
    let cli = pae_bench::cli::RunCli::init("table1_seed");
    let prepared = prepare_all(&CategoryKind::TABLE_CATEGORIES);

    // Seed only: zero bootstrap iterations.
    let cfg = PipelineConfig {
        iterations: 0,
        ..Default::default()
    };
    let reports = run_parallel(&prepared, |p| {
        let outcome = p.run(cfg.clone());
        let seed = outcome.seed_report(&p.dataset);
        (
            outcome.seed.table.n_pairs(),
            seed.n_triples,
            seed.pair_precision(),
            seed.triple_precision(),
            seed.coverage(),
        )
    });

    let mut table = TextTable::new(vec![
        "Metric",
        "Tennis",
        "Kitchen",
        "Cosmetics",
        "Garden",
        "Shoes",
        "Ladies Bags",
        "Digital Cameras",
        "Vacuum Cleaner",
    ]);
    type SeedRow = (usize, usize, f64, f64, f64);
    let col = |f: &dyn Fn(&SeedRow) -> String| -> Vec<String> { reports.iter().map(f).collect() };
    let mut row = |name: &str, cells: Vec<String>| {
        let mut r = vec![name.to_owned()];
        r.extend(cells);
        table.row(r);
    };
    row("#Pairs", col(&|r| r.0.to_string()));
    row("#Triples", col(&|r| r.1.to_string()));
    row("Precision Pairs", col(&|r| pct(r.2)));
    row("Precision Triples", col(&|r| pct(r.3)));
    row("Coverage Triples", col(&|r| pct(r.4)));

    println!("Table I — seed precision and coverage (paper: precision pairs 92–100, triples 88.5–99.7, coverage 6.5–39.2)\n");
    print!("{}", table.render());
    cli.finish();
}
