//! **Figure 6** — increase in the number of triples after the first
//! bootstrap cycle for the three RNN configurations: 2 epochs,
//! 10 epochs, and 2 epochs with cleaning.
//!
//! "Increase" is the ratio of triples after iteration 1 to the seed's
//! triples (the paper plots relative growth).

use pae_bench::{prepare_all, run_parallel, TextTable};
use pae_core::config::RnnOptions;
use pae_core::{PipelineConfig, TaggerKind};
use pae_synth::CategoryKind;

fn main() {
    let cli = pae_bench::cli::RunCli::init("fig6_rnn_increase");
    let prepared = prepare_all(&CategoryKind::TABLE_CATEGORIES);

    let rnn = |epochs: usize| PipelineConfig {
        iterations: 1,
        tagger: TaggerKind::Rnn,
        rnn: RnnOptions {
            epochs,
            ..Default::default()
        },
        ..Default::default()
    };
    let configs: Vec<(&str, PipelineConfig)> = vec![
        ("RNN 2 epochs", rnn(2).without_cleaning()),
        ("RNN 10 epochs", rnn(10).without_cleaning()),
        ("RNN 2 epochs + cleaning", rnn(2)),
    ];

    let mut header = vec!["-".to_owned()];
    header.extend(prepared.iter().map(|p| p.kind.name().to_owned()));
    let mut table = TextTable::new(header);

    for (name, cfg) in &configs {
        let cells = run_parallel(&prepared, |p| {
            let outcome = p.run(cfg.clone());
            let seed_n = outcome.evaluate_iteration(0, &p.dataset).n_triples().max(1);
            let it1_n = outcome.evaluate_iteration(1, &p.dataset).n_triples();
            it1_n as f64 / seed_n as f64
        });
        let mut row = vec![name.to_string()];
        row.extend(cells.iter().map(|v| format!("{v:.2}x")));
        table.row(row);
    }

    println!("Figure 6 — triple-count growth after the first bootstrap cycle (RNN configs)");
    println!("(paper: the low-precision configuration grows the most; cleaning grows the least)\n");
    print!("{}", table.render());
    cli.finish();
}
