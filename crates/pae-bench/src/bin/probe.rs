//! Quick probe of pipeline behaviour (not a paper experiment).
use pae_bench::cli::RunCli;
use pae_core::{BootstrapPipeline, PipelineConfig, TaggerKind};
use pae_synth::{CategoryKind, DatasetSpec};

fn main() {
    // Strips --trace-out/--ledger/--scale and honors PAE_TRACE;
    // positional args keep working on the filtered vector.
    let cli = RunCli::init("probe");
    let n: usize = cli.args.get(1).and_then(|s| s.parse().ok()).unwrap_or(200);
    for kind in [
        CategoryKind::VacuumCleaner,
        CategoryKind::Garden,
        CategoryKind::LadiesBags,
    ] {
        let dataset = DatasetSpec::new(kind, 42).products(n).generate();
        let corpus = pae_core::parse_corpus(&dataset);
        for (name, cfg) in [
            (
                "CRF+clean",
                PipelineConfig {
                    iterations: 2,
                    ..Default::default()
                },
            ),
            (
                "CRF-noclean",
                PipelineConfig {
                    iterations: 2,
                    ..Default::default()
                }
                .without_cleaning(),
            ),
            (
                "RNN2+clean",
                PipelineConfig {
                    iterations: 1,
                    tagger: TaggerKind::Rnn,
                    ..Default::default()
                },
            ),
        ] {
            let t0 = std::time::Instant::now();
            let out = BootstrapPipeline::new(cfg).run_on_corpus(&dataset, &corpus);
            let seed = out.seed_report(&dataset);
            print!(
                "{:16} {:12} seedP={:.1} seedCov={:.1}",
                kind.name(),
                name,
                100.0 * seed.triple_precision(),
                100.0 * seed.coverage()
            );
            for i in 0..=out.snapshots.len() {
                let r = out.evaluate_iteration(i, &dataset);
                r.record_obs(&format!("{}/{}/it{i}", kind.name(), name));
                print!(
                    " | it{i}: P={:.1} C={:.1} n={}",
                    100.0 * r.precision(),
                    100.0 * r.coverage(),
                    r.n_triples()
                );
            }
            println!("  [{:.1}s]", t0.elapsed().as_secs_f32());
            for line in pae_bench::stage_timing_report(&out).lines() {
                println!("    {line}");
            }
        }
    }
    cli.finish();
}
