//! **Figure 4** — average number of triples per product obtained by the
//! two ML approaches (CRF and RNN) after the first bootstrap iteration,
//! including cleaning.

use pae_bench::{prepare_all, run_parallel, TextTable};
use pae_core::config::RnnOptions;
use pae_core::{PipelineConfig, TaggerKind};
use pae_synth::CategoryKind;

fn main() {
    let cli = pae_bench::cli::RunCli::init("fig4_triples_per_product");
    let prepared = prepare_all(&CategoryKind::TABLE_CATEGORIES);

    let crf = PipelineConfig {
        iterations: 1,
        ..Default::default()
    };
    let rnn = PipelineConfig {
        tagger: TaggerKind::Rnn,
        rnn: RnnOptions::default(),
        ..crf.clone()
    };

    let mut header = vec!["-".to_owned()];
    header.extend(prepared.iter().map(|p| p.kind.name().to_owned()));
    let mut table = TextTable::new(header);

    for (name, cfg) in [("CRF + cleaning", crf), ("RNN + cleaning", rnn)] {
        let cells = run_parallel(&prepared, |p| {
            let outcome = p.run(cfg.clone());
            outcome
                .evaluate_iteration(1, &p.dataset)
                .triples_per_product()
        });
        let mut row = vec![name.to_string()];
        row.extend(cells.iter().map(|v| format!("{v:.2}")));
        table.row(row);
    }

    println!("Figure 4 — average triples per product after the first iteration, with cleaning");
    println!(
        "(paper: CRF consistently associates more triples to products; both < 3 per product)\n"
    );
    print!("{}", table.render());
    cli.finish();
}
