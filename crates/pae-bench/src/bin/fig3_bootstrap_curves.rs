//! **Figure 3** — precision (top) and coverage (bottom) of the CRF
//! model across bootstrap iterations, without cleaning (left) and with
//! cleaning (right), one series per category.
//!
//! Output: four blocks of iteration series (0 = seed … 5), one line per
//! category.

use pae_bench::{pct, prepare_all, run_parallel, TextTable};
use pae_core::PipelineConfig;
use pae_synth::CategoryKind;

fn main() {
    let cli = pae_bench::cli::RunCli::init("fig3_bootstrap_curves");
    let prepared = prepare_all(&CategoryKind::TABLE_CATEGORIES);
    let iterations = 5usize;

    let base = PipelineConfig {
        iterations,
        ..Default::default()
    };
    let variants: Vec<(&str, PipelineConfig)> = vec![
        ("without cleaning", base.clone().without_cleaning()),
        ("with cleaning", base),
    ];

    for (label, cfg) in &variants {
        let series = run_parallel(&prepared, |p| {
            let outcome = p.run(cfg.clone());
            (0..=iterations)
                .map(|i| {
                    let r = outcome.evaluate_iteration(i, &p.dataset);
                    (r.precision(), r.coverage())
                })
                .collect::<Vec<_>>()
        });

        let mut header = vec!["Category".to_owned()];
        header.extend((0..=iterations).map(|i| format!("it{i}")));

        for (metric, pick) in [("precision", 0usize), ("coverage", 1usize)] {
            let mut table = TextTable::new(header.clone());
            for (p, points) in prepared.iter().zip(&series) {
                let mut row = vec![p.kind.name().to_owned()];
                row.extend(
                    points
                        .iter()
                        .map(|&(pr, cov)| pct(if pick == 0 { pr } else { cov })),
                );
                table.row(row);
            }
            println!("Figure 3 — CRF {metric} across bootstrap iterations, {label}");
            println!("(paper: precision decays across iterations; cleaning keeps it above ~85;");
            println!(" coverage rises steeply and is somewhat lower with cleaning)\n");
            print!("{}", table.render());
            println!();
        }
    }
    cli.finish();
}
