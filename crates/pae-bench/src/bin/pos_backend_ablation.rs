//! **Extension (DESIGN.md ablation 6)** — impact of the PoS tagger
//! backend on the pipeline: the deterministic lexicon tagger vs the
//! bigram HMM trained on lexicon-projected silver data.
//!
//! The paper treats the PoS tagger as the (swappable) language-dependent
//! component; this ablation shows the pipeline tolerates a statistical
//! tagger with imperfect tags.

use pae_bench::{dataset, pct, TextTable};
use pae_core::corpus::{parse_corpus_with, PosBackend};
use pae_core::{BootstrapPipeline, PipelineConfig};
use pae_synth::CategoryKind;

fn main() {
    let cli = pae_bench::cli::RunCli::init("pos_backend_ablation");
    let mut table = TextTable::new(vec!["Category", "PoS backend", "precision", "coverage"]);

    for kind in [CategoryKind::VacuumCleaner, CategoryKind::MailboxDe] {
        let data = dataset(kind);
        for (name, backend) in [("lexicon", PosBackend::Lexicon), ("HMM", PosBackend::Hmm)] {
            let corpus = parse_corpus_with(&data, backend);
            let cfg = PipelineConfig {
                iterations: 1,
                pos_backend: backend,
                ..Default::default()
            };
            let outcome = BootstrapPipeline::new(cfg).run_on_corpus(&data, &corpus);
            let r = outcome.evaluate_iteration(1, &data);
            table.row(vec![
                kind.name().to_owned(),
                name.to_owned(),
                pct(r.precision()),
                pct(r.coverage()),
            ]);
        }
    }

    println!(
        "PoS-backend ablation — lexicon rules vs self-trained HMM (CRF + cleaning, 1 iteration)"
    );
    println!("(expected: comparable results — the pipeline is robust to the PoS layer)\n");
    print!("{}", table.render());
    cli.finish();
}
