//! **§VIII-E (text)** — heterogeneous categories: Baby Carriers (a
//! homogeneous leaf) vs Baby Goods (its heterogeneous parent, mixing
//! carriers, clothes, and toys with overlapping value vocabularies).
//!
//! Paper: Baby Carriers 85.15 % precision; Baby Goods drops to 63.16 %.

use pae_bench::{pct, prepare_all, run_parallel, TextTable};
use pae_core::PipelineConfig;
use pae_synth::CategoryKind;

fn main() {
    let cli = pae_bench::cli::RunCli::init("heterogeneous");
    let prepared = prepare_all(&[CategoryKind::BabyCarriers, CategoryKind::BabyGoods]);
    let cfg = PipelineConfig {
        iterations: 2,
        ..Default::default()
    };

    let reports = run_parallel(&prepared, |p| {
        let outcome = p.run(cfg.clone());
        outcome.evaluate(&p.dataset)
    });

    let mut table = TextTable::new(vec!["Category", "precision", "coverage", "#triples"]);
    for (p, r) in prepared.iter().zip(&reports) {
        table.row(vec![
            p.kind.name().to_owned(),
            pct(r.precision()),
            pct(r.coverage()),
            r.n_triples().to_string(),
        ]);
    }

    println!("Heterogeneous categories (CRF + cleaning, 2 iterations)");
    println!("(paper: the homogeneous child reaches 85.2 precision; the heterogeneous parent only 63.2)\n");
    print!("{}", table.render());

    let drop = reports[0].precision() - reports[1].precision();
    println!(
        "\nPrecision drop from homogeneous to heterogeneous: {} points",
        pct(drop)
    );
    cli.finish();
}
