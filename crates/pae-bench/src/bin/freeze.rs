//! `pae-bench freeze`: train a pipeline and freeze it into a versioned
//! model bundle for `pae-serve`.
//!
//! ```text
//! freeze <out.paeb> [--kind vacuum|garden|bags] [--products N]
//!        [--iterations N] [--tagger crf|rnn|ensemble] [--schema 1|2|3]
//!        [--force]
//! ```
//!
//! `--schema 1` writes the legacy eager-deserialize format and
//! `--schema 2` the zero-copy layout without reference stats (both for
//! backward-compat fixtures); the default is the current zero-copy
//! schema with the freeze-time reference-stats section.
//!
//! Runs the bootstrap loop on the synthetic category (MASTER_SEED=42,
//! so the bundle is reproducible bit for bit), freezes the outcome
//! with [`pae_core::frozen::FrozenModel::freeze`], and writes the
//! bundle. Refuses to overwrite an existing output unless `--force`
//! (the flag is shared with the trace outputs and handled with
//! create-new semantics, so a concurrent writer cannot race the
//! existence check).

use std::path::Path;
use std::process::ExitCode;

use pae_bench::cli::RunCli;
use pae_core::frozen::FrozenModel;
use pae_core::{BootstrapPipeline, PipelineConfig, TaggerKind};
use pae_synth::{CategoryKind, DatasetSpec};

fn usage() -> ExitCode {
    eprintln!(
        "usage: freeze <out.paeb> [--kind vacuum|garden|bags] [--products N] \
         [--iterations N] [--tagger crf|rnn|ensemble] [--schema 1|2|3] [--force]"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    // `--force` is consumed by the trace session; sniff it first so
    // the bundle write shares the one overwrite policy.
    let force = std::env::args().any(|a| a == "--force");
    let cli = RunCli::init("freeze");

    let mut out: Option<String> = None;
    let mut kind = CategoryKind::VacuumCleaner;
    let mut products = 120usize;
    let mut iterations = 1usize;
    let mut tagger = TaggerKind::Crf;
    let mut schema = pae_core::BUNDLE_SCHEMA_VERSION;
    let mut it = cli.args.iter().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--kind" => match it.next().map(String::as_str) {
                Some("vacuum") => kind = CategoryKind::VacuumCleaner,
                Some("garden") => kind = CategoryKind::Garden,
                Some("bags") => kind = CategoryKind::LadiesBags,
                _ => return usage(),
            },
            "--products" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => products = n,
                None => return usage(),
            },
            "--iterations" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => iterations = n,
                None => return usage(),
            },
            "--tagger" => match it.next().map(String::as_str) {
                Some("crf") => tagger = TaggerKind::Crf,
                Some("rnn") => tagger = TaggerKind::Rnn,
                Some("ensemble") => tagger = TaggerKind::Ensemble,
                _ => return usage(),
            },
            "--schema" => match it.next().map(String::as_str) {
                Some("1") => schema = pae_core::BUNDLE_SCHEMA_V1,
                Some("2") => schema = pae_core::BUNDLE_SCHEMA_V2,
                Some("3") => schema = pae_core::BUNDLE_SCHEMA_VERSION,
                _ => return usage(),
            },
            _ if out.is_none() && !arg.starts_with('-') => out = Some(arg.clone()),
            _ => return usage(),
        }
    }
    let Some(out) = out else {
        return usage();
    };

    let config = PipelineConfig {
        iterations,
        tagger,
        ..Default::default()
    };
    let t0 = std::time::Instant::now();
    let dataset = DatasetSpec::new(kind, 42).products(products).generate();
    let corpus = pae_core::parse_corpus(&dataset);
    let outcome = BootstrapPipeline::new(config.clone()).run_on_corpus(&dataset, &corpus);
    println!(
        "trained {} ({} products, {} iterations, {:?}) in {:.1}s",
        kind.name(),
        products,
        iterations,
        tagger,
        t0.elapsed().as_secs_f32()
    );

    let model = match FrozenModel::freeze(&dataset, &corpus, &outcome, &config) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("freeze: {e}");
            return ExitCode::from(1);
        }
    };
    let path = Path::new(&out);
    if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("freeze: create {}: {e}", dir.display());
            return ExitCode::from(1);
        }
    }
    let bytes = if schema == pae_core::BUNDLE_SCHEMA_V1 {
        pae_core::bundle::encode_v1(&model)
    } else if schema == pae_core::BUNDLE_SCHEMA_V2 {
        pae_core::bundle::encode_v2(&model)
    } else {
        pae_core::bundle::encode(&model)
    };
    match pae_core::bundle::write_bundle_bytes(&bytes, path, force) {
        Ok(hash) => {
            let size = std::fs::metadata(path).map(|m| m.len()).unwrap_or(0);
            println!(
                "wrote {} ({} bytes, schema v{schema}, hash {hash:016x}, {} attrs)",
                path.display(),
                size,
                model.attrs.len()
            );
        }
        Err(e) => {
            eprintln!("freeze: {e}");
            return ExitCode::from(1);
        }
    }
    cli.finish();
    ExitCode::SUCCESS
}
