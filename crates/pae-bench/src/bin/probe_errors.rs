//! Error-analysis probe: dump incorrect triples for one category.
use pae_bench::cli::RunCli;
use pae_core::{BootstrapPipeline, PipelineConfig};
use pae_synth::truth::Judgement;
use pae_synth::{CategoryKind, DatasetSpec};

fn main() {
    let cli = RunCli::init("probe_errors");
    let args = &cli.args;
    let kind = match args.get(1).map(String::as_str) {
        Some("mailbox") => CategoryKind::MailboxDe,
        Some("coffee") => CategoryKind::CoffeeMachinesDe,
        Some("camera") => CategoryKind::DigitalCameras,
        _ => CategoryKind::GardenDe,
    };
    let n: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(150);
    let dataset = DatasetSpec::new(kind, 42).products(n).generate();
    let cfg = PipelineConfig {
        iterations: 2,
        ..Default::default()
    };
    let outcome = BootstrapPipeline::new(cfg).run(&dataset);
    let triples = outcome.final_triples();
    let mut wrong = 0;
    let mut maybe = 0;
    for t in &triples {
        match dataset.truth.judge(t.product, &t.attr, &t.value) {
            Judgement::Correct => {}
            j => {
                if wrong + maybe < 30 {
                    let canon = dataset.truth.canonical_attr(&t.attr).unwrap_or("?");
                    println!(
                        "{j:?} p{} attr={}({canon}) value={:?}",
                        t.product, t.attr, t.value
                    );
                }
                if j == Judgement::MaybeIncorrect {
                    maybe += 1
                } else {
                    wrong += 1
                }
            }
        }
    }
    println!("total={} wrong={wrong} maybe={maybe}", triples.len());
    println!("cleaning per cycle:");
    for s in &outcome.snapshots {
        println!(
            "  it{}: veto symbols={} markup={} unpopular={} too_long={} (total {}) | \
             semantic removed={} evictions={} unscored={}",
            s.iteration,
            s.veto.symbols,
            s.veto.markup,
            s.veto.unpopular,
            s.veto.long,
            s.veto.total(),
            s.semantic.removed,
            s.semantic.evictions,
            s.semantic.unscored_values,
        );
    }
    println!(
        "label space: {:?}",
        outcome
            .label_space
            .attrs()
            .iter()
            .map(|a| { format!("{}->{}", a, dataset.truth.canonical_attr(a).unwrap_or("?")) })
            .collect::<Vec<_>>()
    );
    cli.finish();
}
