//! **Figure 8** — increase in per-attribute coverage on Vacuum Cleaner
//! for B1 type, B2 type of container, B3 power supply type, comparing
//! the global model (`+g`) with a specialized model (`+s`).

use pae_bench::specialized_figure;
use pae_synth::CategoryKind;

fn main() {
    let cli = pae_bench::cli::RunCli::init("fig8_vacuum_specialized");
    specialized_figure(
        CategoryKind::VacuumCleaner,
        &["type", "container_type", "power_supply"],
        "Figure 8 — Vacuum Cleaner attribute coverage: global vs specialized model",
    );
    cli.finish();
}
