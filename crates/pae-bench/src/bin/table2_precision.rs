//! **Table II** — precision after the first bootstrap iteration for the
//! five system configurations (RNN 2 epochs, RNN 10 epochs, RNN 2
//! epochs + cleaning, CRF, CRF + cleaning) across the eight categories.
//!
//! **Table III** shares the same runs (coverage of the same grid), so
//! this binary prints both tables; `table3_coverage` re-runs the grid
//! independently for users who only want coverage.

use pae_bench::{pct, prepare_all, run_parallel, standard_configs, TextTable};
use pae_synth::CategoryKind;

fn main() {
    let cli = pae_bench::cli::RunCli::init("table2_precision");
    let prepared = prepare_all(&CategoryKind::TABLE_CATEGORIES);
    let configs = standard_configs(1);

    // reports[config][category] = (precision, coverage).
    let mut header = vec!["-".to_owned()];
    header.extend(prepared.iter().map(|p| p.kind.name().to_owned()));

    let mut precision_table = TextTable::new(header.clone());
    let mut coverage_table = TextTable::new(header);

    for (name, cfg) in &configs {
        let cells = run_parallel(&prepared, |p| {
            let outcome = p.run(cfg.clone());
            let report = outcome.evaluate_iteration(1, &p.dataset);
            (report.precision(), report.coverage())
        });
        let mut prow = vec![name.to_string()];
        prow.extend(cells.iter().map(|(p, _)| pct(*p)));
        precision_table.row(prow);
        let mut crow = vec![name.to_string()];
        crow.extend(cells.iter().map(|(_, c)| pct(*c)));
        coverage_table.row(crow);
    }

    println!("Table II — precision after the first bootstrap iteration");
    println!("(paper: CRF+cleaning 89.7–97.8; cleaning systematically improves precision;");
    println!(" the badly-configured RNN drops tens of points while its coverage rises)\n");
    print!("{}", precision_table.render());
    println!();
    println!("Table III — coverage after the first bootstrap iteration");
    println!("(paper: precision is inversely correlated with coverage across configurations)\n");
    print!("{}", coverage_table.render());
    cli.finish();
}
