//! `pae-bench serve`: open-loop load generator for the extraction
//! service.
//!
//! ```text
//! serve <bundle.paeb> [--requests N] [--rate R] [--clients N]
//!       [--server-workers N] [--batch B] [--kind vacuum|garden|bags]
//!       [--products N] [--skew] [--ledger DIR]
//! ```
//!
//! Starts an in-process [`pae_serve::Server`] over real TCP from the
//! bundle, then fires `N` `/extract` requests at a fixed arrival rate
//! of `R` req/s. The schedule is **open-loop**: request `i` is due at
//! `t0 + i/R` regardless of how earlier requests are doing, and each
//! latency is measured from its *scheduled* send time, so queueing
//! delay under overload is charged to the tail (no coordinated
//! omission). Exact p50/p99/p999 over the sorted latencies are
//! reported and merged into `BENCH_pipeline.json` as `serve/p50`,
//! `serve/p99`, `serve/p999` for `pae-report check --bench-baseline`;
//! `--ledger` additionally writes the server-side `serve.request`
//! stage summary for `pae-report check --baseline`.
//!
//! The run also exercises the server's own observability: `/metrics`
//! is scraped before and after the load (both scrapes must
//! schema-validate), the per-route counter deltas are reconciled
//! against the client-side tally, and `/statusz` windowed quantiles
//! are printed next to the client-observed ones and asserted to agree
//! within tolerance (the server-side view excludes open-loop queueing,
//! so it must never *exceed* the client view by more than the slack).
//! Server-side p50/p99 are merged as `serve/server_p50` and
//! `serve/server_p99`.
//!
//! The run also gates the server's *field quality* view: `/qualityz`
//! is read after the load and its 5m window is replayed into the
//! trace as `quality.online` / `quality.online.attr` events, so the
//! `--ledger` summary grows a `quality_online` section for
//! `pae-report check`. With the default in-distribution traffic the
//! server must report `quality: ok`; with `--skew` the page mix is
//! restricted to the quarter of the corpus with the longest truth
//! values — a deliberate value-length distribution shift — and the
//! run asserts the drift telemetry actually fires (`quality:
//! degraded`, some attribute PSI above the threshold). `--skew`
//! requires a schema-v3 bundle with embedded reference stats.

use std::path::Path;
use std::process::ExitCode;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use pae_bench::cli::RunCli;
use pae_bench::{update_bench_json, BenchRecord};
use pae_obs::export::prometheus::{parse_text, validate, Sample};
use pae_obs::json::Json;
use pae_serve::{http_request, parse_extract_response, Server, ServerConfig};
use pae_synth::{CategoryKind, DatasetSpec};

fn usage() -> ExitCode {
    eprintln!(
        "usage: serve <bundle.paeb> [--requests N] [--rate R] [--clients N] \
         [--server-workers N] [--batch B] [--kind vacuum|garden|bags] [--products N] [--skew]"
    );
    ExitCode::from(2)
}

/// Exact quantile of an ascending-sorted sample (nearest-rank).
fn quantile_ns(sorted: &[u64], q: f64) -> u64 {
    debug_assert!(!sorted.is_empty());
    let rank = (q * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Scrapes and schema-validates `/metrics`, returning the parsed
/// samples.
fn scrape_metrics(addr: std::net::SocketAddr, when: &str) -> Result<Vec<Sample>, String> {
    let (status, text) =
        http_request(addr, "GET", "/metrics", "").map_err(|e| format!("scrape {when}: {e}"))?;
    if status != 200 {
        return Err(format!("scrape {when}: /metrics returned {status}"));
    }
    validate(&text).map_err(|e| format!("scrape {when}: invalid exposition: {e}"))?;
    parse_text(&text).map_err(|e| format!("scrape {when}: {e}"))
}

fn sample_value(samples: &[Sample], name: &str, label: Option<(&str, &str)>) -> f64 {
    samples
        .iter()
        .find(|s| s.name == name && label.is_none_or(|(k, v)| s.label(k) == Some(v)))
        .map(|s| s.value)
        .unwrap_or(0.0)
}

/// One attribute's row from `/qualityz`.
struct OnlineAttrRow {
    attribute: String,
    triples: u64,
    rate: f64,
    /// `None` when the server had no reference or the window was
    /// under-sampled.
    drift: Option<f64>,
}

/// The server's field-quality verdict from `GET /qualityz` (5m
/// window: the whole run fits in it).
struct OnlineQuality {
    flag: String,
    drift_threshold: f64,
    pages: u64,
    empty_pages: u64,
    empty_rate: f64,
    oov_rate: f64,
    attrs: Vec<OnlineAttrRow>,
}

fn read_qualityz(addr: std::net::SocketAddr) -> Result<OnlineQuality, String> {
    let (status, body) =
        http_request(addr, "GET", "/qualityz", "").map_err(|e| format!("qualityz: {e}"))?;
    if status != 200 {
        return Err(format!("/qualityz returned {status}"));
    }
    let doc = Json::parse(&body).map_err(|e| format!("/qualityz not JSON: {e}"))?;
    let flag = doc
        .get("quality")
        .and_then(Json::as_str)
        .ok_or("/qualityz has no quality flag")?
        .to_owned();
    let drift_threshold = doc
        .get("thresholds")
        .and_then(|t| t.get("drift"))
        .and_then(Json::as_f64)
        .ok_or("/qualityz has no thresholds.drift")?;
    let five = doc
        .get("windows")
        .and_then(|w| w.get("5m"))
        .ok_or("/qualityz has no windows.5m")?;
    let num = |k: &str| {
        five.get(k)
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("5m window missing {k}"))
    };
    let mut attrs = Vec::new();
    if let Some(Json::Obj(m)) = five.get("attrs") {
        for (attribute, a) in m {
            attrs.push(OnlineAttrRow {
                attribute: attribute.clone(),
                triples: a.get("triples").and_then(Json::as_u64).unwrap_or(0),
                rate: a.get("rate").and_then(Json::as_f64).unwrap_or(0.0),
                drift: a.get("drift").and_then(Json::as_f64),
            });
        }
    }
    Ok(OnlineQuality {
        flag,
        drift_threshold,
        pages: num("pages")? as u64,
        empty_pages: num("empty_pages")? as u64,
        empty_rate: num("empty_rate")?,
        oov_rate: num("oov_rate")?,
        attrs,
    })
}

/// The server-side windowed quantiles for the extract route from
/// `/statusz` (widest window: the whole run fits in it).
fn statusz_extract_quantiles(addr: std::net::SocketAddr) -> Result<(u64, u64), String> {
    let (status, body) =
        http_request(addr, "GET", "/statusz", "").map_err(|e| format!("statusz: {e}"))?;
    if status != 200 {
        return Err(format!("/statusz returned {status}"));
    }
    let doc = Json::parse(&body).map_err(|e| format!("/statusz not JSON: {e}"))?;
    let route = doc
        .get("windows")
        .and_then(|w| w.get("5m"))
        .and_then(|w| w.get("routes"))
        .and_then(|r| r.get("extract"))
        .ok_or("/statusz has no windows.5m.routes.extract")?;
    let q = |name: &str| {
        route
            .get(name)
            .and_then(Json::as_f64)
            .map(|v| v as u64)
            .ok_or_else(|| format!("/statusz extract window missing {name}"))
    };
    Ok((q("p50_ns")?, q("p99_ns")?))
}

fn main() -> ExitCode {
    let cli = RunCli::init("serve");

    let mut bundle: Option<String> = None;
    let mut requests = 200usize;
    let mut rate = 100.0f64;
    let mut clients = 8usize;
    let mut server_workers = 4usize;
    let mut batch = 1usize;
    let mut kind = CategoryKind::VacuumCleaner;
    let mut products = 120usize;
    let mut skew = false;
    let mut it = cli.args.iter().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--requests" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) if n > 0 => requests = n,
                _ => return usage(),
            },
            "--rate" => match it.next().and_then(|v| v.parse().ok()) {
                Some(r) if r > 0.0 => rate = r,
                _ => return usage(),
            },
            "--clients" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) if n > 0 => clients = n,
                _ => return usage(),
            },
            "--server-workers" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) if n > 0 => server_workers = n,
                _ => return usage(),
            },
            "--batch" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) if n > 0 => batch = n,
                _ => return usage(),
            },
            "--kind" => match it.next().map(String::as_str) {
                Some("vacuum") => kind = CategoryKind::VacuumCleaner,
                Some("garden") => kind = CategoryKind::Garden,
                Some("bags") => kind = CategoryKind::LadiesBags,
                _ => return usage(),
            },
            "--products" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) if n > 0 => products = n,
                _ => return usage(),
            },
            "--skew" => skew = true,
            _ if bundle.is_none() && !arg.starts_with('-') => bundle = Some(arg.clone()),
            _ => return usage(),
        }
    }
    let Some(bundle) = bundle else {
        return usage();
    };

    let load_start = std::time::Instant::now();
    let loaded = match pae_core::LoadedBundle::open(Path::new(&bundle)) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("serve: {bundle}: {e}");
            return ExitCode::from(1);
        }
    };
    let extractor = match loaded.extractor() {
        Ok(x) => x,
        Err(e) => {
            eprintln!("serve: cannot rehydrate model: {e}");
            return ExitCode::from(1);
        }
    };
    let reference = match loaded.reference() {
        Ok(r) => r,
        Err(e) => {
            eprintln!("serve: cannot decode reference stats: {e}");
            return ExitCode::from(1);
        }
    };
    if skew && reference.is_none() {
        eprintln!(
            "serve: --skew asserts drift telemetry fires, which needs a bundle with \
             embedded reference stats (schema v3); this bundle is schema v{}",
            loaded.schema_version()
        );
        return ExitCode::from(1);
    }
    let server = match Server::start(
        extractor,
        &ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers: server_workers,
            bundle_hash: loaded.content_hash(),
            bundle_schema: loaded.schema_version(),
            bundle_load_ns: load_start.elapsed().as_nanos() as u64,
            reference,
            ..ServerConfig::default()
        },
    ) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("serve: {e}");
            return ExitCode::from(1);
        }
    };
    let addr = server.addr();

    // Pre-render request bodies: cycle the synthetic pages so the mix
    // is stable across runs. With --skew the mix is restricted to the
    // quarter of the corpus whose ground-truth values are longest
    // (deterministic sort: total value chars desc, then id) — live
    // value-length distributions shift up and the per-attribute PSI
    // against the freeze-time reference must fire.
    let dataset = DatasetSpec::new(kind, 42).products(products).generate();
    let traffic: Vec<&pae_synth::ProductPage> = if skew {
        let truth_chars = |id: u32| -> usize {
            dataset
                .truth
                .product_triples
                .get(&id)
                .map(|attrs| {
                    attrs
                        .values()
                        .flat_map(|vs| vs.iter().map(|v| v.chars().count()))
                        .sum()
                })
                .unwrap_or(0)
        };
        let mut ranked: Vec<&pae_synth::ProductPage> = dataset.pages.iter().collect();
        ranked.sort_by_key(|p| (std::cmp::Reverse(truth_chars(p.id)), p.id));
        ranked.truncate(dataset.pages.len().div_ceil(4));
        ranked
    } else {
        dataset.pages.iter().collect()
    };
    let bodies: Vec<String> = (0..requests)
        .map(|i| {
            let mut body = String::from("{\"pages\":[");
            for j in 0..batch {
                let page = traffic[(i * batch + j) % traffic.len()];
                if j > 0 {
                    body.push(',');
                }
                body.push_str(&format!("{{\"product\":{},\"html\":", page.id));
                pae_obs::json::write_str(&mut body, &page.html);
                body.push('}');
            }
            body.push_str("]}");
            body
        })
        .collect();

    println!(
        "load: {requests} requests x {batch} page(s) at {rate:.0} req/s \
         ({clients} clients -> {server_workers} workers on {addr})"
    );
    let before = match scrape_metrics(addr, "before") {
        Ok(s) => s,
        Err(e) => {
            eprintln!("serve: {e}");
            return ExitCode::from(1);
        }
    };
    let next = AtomicUsize::new(0);
    let errors = AtomicUsize::new(0);
    let t0 = Instant::now();
    let mut latencies: Vec<u64> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|_| {
                let next = &next;
                let errors = &errors;
                let bodies = &bodies;
                scope.spawn(move || {
                    let mut mine: Vec<u64> = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= bodies.len() {
                            break;
                        }
                        let due = Duration::from_secs_f64(i as f64 / rate);
                        if let Some(wait) = due.checked_sub(t0.elapsed()) {
                            std::thread::sleep(wait);
                        }
                        let scheduled = t0 + due;
                        let ok = http_request(addr, "POST", "/extract", &bodies[i])
                            .ok()
                            .filter(|(status, _)| *status == 200)
                            .and_then(|(_, body)| parse_extract_response(&body).ok())
                            .is_some();
                        if ok {
                            mine.push(scheduled.elapsed().as_nanos() as u64);
                        } else {
                            errors.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    mine
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("client panicked"))
            .collect()
    });
    let wall = t0.elapsed();

    // Scrape the server's own view while it is still up.
    let after = match scrape_metrics(addr, "after") {
        Ok(s) => s,
        Err(e) => {
            eprintln!("serve: {e}");
            return ExitCode::from(1);
        }
    };
    let server_view = statusz_extract_quantiles(addr);
    let quality_view = read_qualityz(addr);
    server.shutdown();

    let n_errors = errors.load(Ordering::Relaxed);
    if latencies.is_empty() {
        eprintln!("serve: all {requests} requests failed");
        return ExitCode::from(1);
    }
    latencies.sort_unstable();
    let min = latencies[0];
    let mean =
        (latencies.iter().map(|&v| v as u128).sum::<u128>() / latencies.len() as u128) as u64;
    let (p50, p99, p999) = (
        quantile_ns(&latencies, 0.50),
        quantile_ns(&latencies, 0.99),
        quantile_ns(&latencies, 0.999),
    );
    println!(
        "done: {} ok, {n_errors} failed in {:.2}s ({:.0} req/s achieved)",
        latencies.len(),
        wall.as_secs_f64(),
        latencies.len() as f64 / wall.as_secs_f64()
    );
    println!(
        "latency (scheduled->response): min {:.2}ms  p50 {:.2}ms  p99 {:.2}ms  p999 {:.2}ms  mean {:.2}ms",
        min as f64 / 1e6,
        p50 as f64 / 1e6,
        p99 as f64 / 1e6,
        p999 as f64 / 1e6,
        mean as f64 / 1e6
    );
    for (q, v) in [("p50", p50), ("p99", p99), ("p999", p999)] {
        pae_obs::observe("serve.load.quantile_ns", &[("q", q)], v as f64);
    }
    if n_errors > 0 {
        eprintln!("serve: {n_errors} requests failed");
        return ExitCode::from(1);
    }

    // Reconcile the server-side delta with the client-side tally: the
    // cumulative per-route extract count must have grown by exactly
    // the number of requests the clients got answers to.
    let extract_count = |samples: &[Sample]| {
        sample_value(
            samples,
            "serve_live_request_ns_count",
            Some(("route", "extract")),
        )
    };
    let delta_extract = extract_count(&after) - extract_count(&before);
    println!(
        "server view: extract requests {delta_extract:.0} (delta), \
         responses 200 {:.0} -> {:.0}",
        sample_value(&before, "serve_live_responses", Some(("status", "200"))),
        sample_value(&after, "serve_live_responses", Some(("status", "200")))
    );
    if delta_extract as u64 != latencies.len() as u64 {
        eprintln!(
            "serve: server counted {delta_extract:.0} extract requests but clients \
             completed {}",
            latencies.len()
        );
        return ExitCode::from(1);
    }

    // Server-side windowed quantiles next to the client view. The
    // server measures read+handle+write only — open-loop queueing is
    // charged to the client — so the server view may sit well below
    // the client view but must never exceed it beyond slack.
    let (server_p50, server_p99) = match server_view {
        Ok(q) => q,
        Err(e) => {
            eprintln!("serve: {e}");
            return ExitCode::from(1);
        }
    };
    println!(
        "latency (server-side, /statusz 5m window): p50 {:.2}ms  p99 {:.2}ms",
        server_p50 as f64 / 1e6,
        server_p99 as f64 / 1e6
    );
    const AGREE_FACTOR: f64 = 2.0;
    const AGREE_SLACK_NS: f64 = 50e6;
    for (label, server_q, client_q) in [("p50", server_p50, p50), ("p99", server_p99, p99)] {
        if server_q as f64 > client_q as f64 * AGREE_FACTOR + AGREE_SLACK_NS {
            eprintln!(
                "serve: server-side {label} {:.2}ms disagrees with client-side {:.2}ms \
                 (tolerance x{AGREE_FACTOR} + {:.0}ms)",
                server_q as f64 / 1e6,
                client_q as f64 / 1e6,
                AGREE_SLACK_NS / 1e6
            );
            return ExitCode::from(1);
        }
    }

    // Field quality: print the server's verdict, replay it into the
    // trace (so the ledger summary grows a quality_online section),
    // and gate it. In-distribution traffic must score healthy; --skew
    // deliberately shifts the value-length mix and must fire drift.
    let quality = match quality_view {
        Ok(q) => q,
        Err(e) => {
            eprintln!("serve: {e}");
            return ExitCode::from(1);
        }
    };
    let degraded = quality.flag == "degraded";
    println!(
        "quality: {} (5m window: {} pages, empty_rate {:.4}, oov_rate {:.4})",
        quality.flag, quality.pages, quality.empty_rate, quality.oov_rate
    );
    let max_drift = quality
        .attrs
        .iter()
        .filter_map(|a| a.drift.map(|d| (a.attribute.as_str(), d)))
        .max_by(|a, b| a.1.total_cmp(&b.1));
    match max_drift {
        Some((attribute, drift)) => println!(
            "quality: max attr drift {drift:.4} ({attribute}), threshold {:.2}",
            quality.drift_threshold
        ),
        None => println!("quality: no attribute drift scored (no reference or under-sampled)"),
    }
    pae_obs::event(
        "quality.online",
        vec![
            ("pages".into(), pae_obs::FieldValue::U64(quality.pages)),
            (
                "empty_pages".into(),
                pae_obs::FieldValue::U64(quality.empty_pages),
            ),
            (
                "empty_rate".into(),
                pae_obs::FieldValue::F64(quality.empty_rate),
            ),
            (
                "oov_rate".into(),
                pae_obs::FieldValue::F64(quality.oov_rate),
            ),
            (
                "degraded".into(),
                pae_obs::FieldValue::U64(u64::from(degraded)),
            ),
        ],
    );
    for a in &quality.attrs {
        let mut fields = vec![
            (
                "attribute".into(),
                pae_obs::FieldValue::Str(a.attribute.clone()),
            ),
            ("triples".into(), pae_obs::FieldValue::U64(a.triples)),
            ("rate".into(), pae_obs::FieldValue::F64(a.rate)),
        ];
        if let Some(d) = a.drift {
            fields.push(("drift".into(), pae_obs::FieldValue::F64(d)));
        }
        pae_obs::event("quality.online.attr", fields);
    }
    if skew {
        let fired = max_drift.is_some_and(|(_, d)| d > quality.drift_threshold);
        if !degraded || !fired {
            eprintln!(
                "serve: --skew shifted the traffic mix but drift telemetry did not fire \
                 (quality {}, max drift {:?})",
                quality.flag,
                max_drift.map(|(_, d)| d)
            );
            return ExitCode::from(1);
        }
    } else if degraded {
        eprintln!("serve: in-distribution traffic was flagged degraded");
        return ExitCode::from(1);
    }

    let samples = latencies.len() as u64;
    let records: Vec<BenchRecord> = [
        ("serve/p50", p50),
        ("serve/p99", p99),
        ("serve/p999", p999),
        ("serve/server_p50", server_p50),
        ("serve/server_p99", server_p99),
    ]
    .into_iter()
    .map(|(id, v)| BenchRecord {
        id: id.to_owned(),
        samples,
        min_ns: min,
        median_ns: v,
        mean_ns: mean,
    })
    .collect();
    match update_bench_json(&RunCli::repo_root(), &records) {
        Ok(path) => println!(
            "merged serve/p50|p99|p999 + server_p50|server_p99 into {}",
            path.display()
        ),
        Err(e) => {
            eprintln!("serve: cannot update bench ledger: {e}");
            return ExitCode::from(1);
        }
    }
    cli.finish();
    ExitCode::SUCCESS
}
