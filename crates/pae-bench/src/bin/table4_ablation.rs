//! **Table IV** — precision of ablated configurations on Vacuum Cleaner
//! and Garden, after the first and the fifth bootstrap cycle.
//!
//! Rows: `RNN`, `CRF full`, `CRF −sem` (no semantic cleaning),
//! `CRF −sem −synt` (no cleaning at all), `CRF −div` (no value
//! diversification).

use pae_bench::{pct, prepare_all, run_parallel, TextTable};
use pae_core::config::RnnOptions;
use pae_core::{PipelineConfig, TaggerKind};
use pae_synth::CategoryKind;

fn main() {
    let cli = pae_bench::cli::RunCli::init("table4_ablation");
    let prepared = prepare_all(&[CategoryKind::VacuumCleaner, CategoryKind::Garden]);

    let full = PipelineConfig {
        iterations: 5,
        ..Default::default()
    };
    let configs: Vec<(&str, PipelineConfig)> = vec![
        (
            "RNN",
            PipelineConfig {
                tagger: TaggerKind::Rnn,
                rnn: RnnOptions::default(),
                ..full.clone()
            },
        ),
        ("CRF full", full.clone()),
        ("CRF -sem", full.clone().without_semantic()),
        ("CRF -sem -synt", full.clone().without_cleaning()),
        ("CRF -div", full.clone().without_diversification()),
    ];

    // One run per (config, category); read both cycle 1 and cycle 5.
    let mut first = TextTable::new(vec!["-", "Vacuum Cleaner", "Garden"]);
    let mut fifth = TextTable::new(vec!["-", "Vacuum Cleaner", "Garden"]);

    for (name, cfg) in &configs {
        let cells = run_parallel(&prepared, |p| {
            let outcome = p.run(cfg.clone());
            let p1 = outcome.evaluate_iteration(1, &p.dataset).precision();
            let p5 = outcome.evaluate_iteration(5, &p.dataset).precision();
            (p1, p5)
        });
        first.row(vec![name.to_string(), pct(cells[0].0), pct(cells[1].0)]);
        fifth.row(vec![name.to_string(), pct(cells[0].1), pct(cells[1].1)]);
    }

    println!("Table IV (top) — precision after the first bootstrap cycle");
    println!("(paper: CRF full 93.1/90.1; removing modules costs precision, most on Garden)\n");
    print!("{}", first.render());
    println!();
    println!("Table IV (bottom) — precision after the fifth bootstrap cycle");
    println!("(paper: CRF full 86.5/86.2; -sem -synt drops to 76.9/67.7)\n");
    print!("{}", fifth.render());
    cli.finish();
}
