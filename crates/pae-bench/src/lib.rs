//! Shared experiment harness for the paper-reproduction binaries.
//!
//! Every table and figure of the paper's evaluation has one binary in
//! `src/bin/`; this library holds what they share: dataset scaling,
//! per-category runners with corpus caching, the standard system
//! configurations, cluster→canonical attribute mapping, and plain-text
//! table formatting.
//!
//! Scale is controlled by the `PAE_SCALE` environment variable:
//! `small` (quick smoke runs), default (minutes per experiment), or
//! `full` (closest to the paper's relative corpus sizes).

pub mod cli;

use std::collections::HashMap;

use pae_core::config::RnnOptions;
use pae_core::{
    parse_corpus, BootstrapOutcome, BootstrapPipeline, Corpus, PipelineConfig, TaggerKind,
};
use pae_synth::{CategoryKind, Dataset, DatasetSpec};

/// Master seed shared by all experiments (reported in EXPERIMENTS.md).
pub const MASTER_SEED: u64 = 42;

/// Product count for one category, honoring `PAE_SCALE`.
pub fn scaled_products(kind: CategoryKind) -> usize {
    let base = kind.default_products();
    match std::env::var("PAE_SCALE").as_deref() {
        Ok("small") => base / 4,
        Ok("full") => base * 2,
        _ => base,
    }
}

/// Generates a category dataset at experiment scale.
pub fn dataset(kind: CategoryKind) -> Dataset {
    DatasetSpec::new(kind, MASTER_SEED)
        .products(scaled_products(kind))
        .generate()
}

/// A generated dataset with its parsed corpus (parse once, run many
/// configurations).
pub struct Prepared {
    /// The category.
    pub kind: CategoryKind,
    /// Generated pages + truth.
    pub dataset: Dataset,
    /// Parsed corpus.
    pub corpus: Corpus,
}

/// Prepares one category.
pub fn prepare(kind: CategoryKind) -> Prepared {
    let dataset = dataset(kind);
    let corpus = parse_corpus(&dataset);
    Prepared {
        kind,
        dataset,
        corpus,
    }
}

/// Prepares several categories in parallel on the [`pae_runtime`]
/// worker pool, returning them in input order.
///
/// The pool's work-stealing queue means one slow category delays only
/// itself — unlike the old chunk-then-barrier scheme, where every
/// chunk waited for its slowest member before the next chunk started.
pub fn prepare_all(kinds: &[CategoryKind]) -> Vec<Prepared> {
    pae_runtime::parallel_map(kinds, |_, &kind| prepare(kind))
}

impl Prepared {
    /// Runs one configuration on the cached corpus.
    pub fn run(&self, config: PipelineConfig) -> BootstrapOutcome {
        BootstrapPipeline::new(config).run_on_corpus(&self.dataset, &self.corpus)
    }

    /// Maps a cluster (alias) name to its canonical attribute.
    pub fn canonical_of<'a>(&'a self, cluster: &'a str) -> &'a str {
        self.dataset
            .truth
            .canonical_attr(cluster)
            .unwrap_or(cluster)
    }

    /// Cluster names in `outcome`'s label space whose canonical
    /// attribute is `canonical`.
    pub fn clusters_for(&self, outcome: &BootstrapOutcome, canonical: &str) -> Vec<String> {
        outcome
            .label_space
            .attrs()
            .iter()
            .filter(|c| self.canonical_of(c) == canonical)
            .cloned()
            .collect()
    }
}

/// The five system configurations of the paper's Tables II–III.
pub fn standard_configs(iterations: usize) -> Vec<(&'static str, PipelineConfig)> {
    let base = PipelineConfig {
        iterations,
        ..Default::default()
    };
    let rnn = |epochs: usize| PipelineConfig {
        tagger: TaggerKind::Rnn,
        rnn: RnnOptions {
            epochs,
            ..Default::default()
        },
        ..base.clone()
    };
    vec![
        ("RNN 2 epochs", rnn(2).without_cleaning()),
        ("RNN 10 epochs", rnn(10).without_cleaning()),
        ("RNN 2 epochs + cleaning", rnn(2)),
        ("CRF", base.clone().without_cleaning()),
        ("CRF + cleaning", base),
    ]
}

/// Number of concurrent category jobs: [`pae_runtime::jobs`], i.e. the
/// `PAE_JOBS` environment variable when set, else the machine's
/// available parallelism.
pub fn jobs() -> usize {
    pae_runtime::jobs()
}

/// Runs one closure per prepared category on the worker pool,
/// `jobs()` wide, preserving input order. Work-stealing: a slow
/// category never blocks the categories queued behind it.
pub fn run_parallel<T, F>(prepared: &[Prepared], f: F) -> Vec<T>
where
    T: Send,
    F: Fn(&Prepared) -> T + Sync,
{
    pae_runtime::parallel_map(prepared, |_, p| f(p))
}

/// Plain-text table writer with fixed-width columns.
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        TextTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header length).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let n = self.header.len();
        let mut widths = vec![0usize; n];
        for row in std::iter::once(&self.header).chain(&self.rows) {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let push_row = |cells: &[String], out: &mut String| {
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                out.push_str(cell);
                for _ in cell.chars().count()..widths[i] {
                    out.push(' ');
                }
            }
            // Trim trailing spaces.
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        push_row(&self.header, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * (n - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            push_row(row, &mut out);
        }
        out
    }
}

/// Shared driver for the specialized-model figures (7 and 8): compares
/// per-attribute coverage and precision between the global model and a
/// model specialized to `canonical_attrs`.
pub fn specialized_figure(kind: CategoryKind, canonical_attrs: &[&str], title: &str) {
    use pae_core::evaluate_triples;
    use pae_core::specialized::run_specialized;

    let p = prepare(kind);
    let cfg = PipelineConfig {
        iterations: 1,
        ..Default::default()
    };
    let outcome = p.run(cfg.clone());
    let global = outcome.evaluate(&p.dataset);

    let clusters: Vec<String> = canonical_attrs
        .iter()
        .flat_map(|a| p.clusters_for(&outcome, a))
        .collect();
    let subset: Vec<&str> = clusters.iter().map(String::as_str).collect();
    if subset.is_empty() {
        println!(
            "{title}\n(no clusters for the requested attributes were discovered at this scale)"
        );
        return;
    }
    let run = run_specialized(&p.corpus, &outcome, &subset, &cfg);
    let special = evaluate_triples(&run.triples, &p.dataset.truth);

    let mut table = TextTable::new(vec!["Attribute", "coverage", "precision"]);
    for (i, attr) in canonical_attrs.iter().enumerate() {
        let label = format!("A{} {attr}", i + 1);
        table.row(vec![
            format!("{label} +g"),
            pct(global.attr_coverage_of(attr)),
            pct(global.attr_precision_of(attr)),
        ]);
        table.row(vec![
            format!("{label} +s"),
            pct(special.attr_coverage_of(attr)),
            pct(special.attr_precision_of(attr)),
        ]);
    }

    println!("{title}");
    println!("(paper: specialized models can raise attribute coverage by orders of magnitude,");
    println!(" at a precision cost for confusable attributes)\n");
    print!("{}", table.render());
}

/// Formats `x` as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}", 100.0 * x)
}

/// Per-stage wall-clock report for an outcome: one line for the
/// pre-loop stages, then one row per bootstrap cycle (seconds).
pub fn stage_timing_report(outcome: &BootstrapOutcome) -> String {
    let secs = |d: std::time::Duration| format!("{:.3}", d.as_secs_f64());
    // The crf.* columns break `train` down into its sub-stages
    // (feature extraction, gradient evaluations, line search); they
    // are within `train`, so `total` does not sum them again.
    let mut table = TextTable::new(vec![
        "cycle",
        "train",
        "crf.feat",
        "crf.grad",
        "crf.ls",
        "extract",
        "veto",
        "semantic",
        "corrections",
        "total",
    ]);
    for s in &outcome.snapshots {
        let t = &s.timings;
        table.row(vec![
            s.iteration.to_string(),
            secs(t.train),
            secs(t.crf.features),
            secs(t.crf.grad),
            secs(t.crf.line_search),
            secs(t.extract),
            secs(t.veto),
            secs(t.semantic),
            secs(t.corrections),
            secs(t.total()),
        ]);
    }
    format!(
        "prep: seed {}s  diversify {}s\n{}",
        secs(outcome.prep.seed),
        secs(outcome.prep.diversify),
        table.render()
    )
}

/// One benchmark's machine-readable summary, as stored in the
/// repo-root `BENCH_pipeline.json` ledger.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchRecord {
    /// Full benchmark id (`group/function`).
    pub id: String,
    /// Number of timed samples.
    pub samples: u64,
    /// Fastest sample (nanoseconds).
    pub min_ns: u64,
    /// Median sample (nanoseconds).
    pub median_ns: u64,
    /// Mean over all samples (nanoseconds).
    pub mean_ns: u64,
}

/// Merges `records` into `<repo_root>/BENCH_pipeline.json`, keyed by
/// bench id: entries already in the file with the same id are replaced
/// in place, unrelated entries are kept. This lets the `pipeline` and
/// `crf_micro` bench targets contribute to one ledger without
/// clobbering each other. The header (`git_rev`, `pae_jobs`) reflects
/// the current run; the document schema is unchanged.
pub fn update_bench_json(
    repo_root: &std::path::Path,
    records: &[BenchRecord],
) -> std::io::Result<std::path::PathBuf> {
    use pae_obs::json::Json;
    let path = repo_root.join("BENCH_pipeline.json");
    let mut merged: Vec<BenchRecord> = Vec::new();
    if let Ok(text) = std::fs::read_to_string(&path) {
        if let Ok(doc) = Json::parse(&text) {
            if let Some(Json::Arr(items)) = doc.get("results") {
                for it in items {
                    let parsed = (|| {
                        Some(BenchRecord {
                            id: it.get("id")?.as_str()?.to_owned(),
                            samples: it.get("samples")?.as_u64()?,
                            min_ns: it.get("min_ns")?.as_u64()?,
                            median_ns: it.get("median_ns")?.as_u64()?,
                            mean_ns: it.get("mean_ns")?.as_u64()?,
                        })
                    })();
                    if let Some(r) = parsed {
                        merged.push(r);
                    }
                }
            }
        }
    }
    for r in records {
        match merged.iter_mut().find(|m| m.id == r.id) {
            Some(slot) => *slot = r.clone(),
            None => merged.push(r.clone()),
        }
    }
    let mut doc = String::from("{\n  \"bench\": \"pipeline\",\n");
    doc.push_str(&format!(
        "  \"git_rev\": \"{}\",\n",
        pae_report::ledger::git_rev(repo_root)
    ));
    doc.push_str(&format!("  \"pae_jobs\": {},\n  \"results\": [\n", jobs()));
    for (i, r) in merged.iter().enumerate() {
        let comma = if i + 1 < merged.len() { "," } else { "" };
        let mut id = String::new();
        pae_obs::json::write_str(&mut id, &r.id);
        doc.push_str(&format!(
            "    {{\"id\": {id}, \"samples\": {}, \"min_ns\": {}, \"median_ns\": {}, \"mean_ns\": {}}}{comma}\n",
            r.samples, r.min_ns, r.median_ns, r.mean_ns
        ));
    }
    doc.push_str("  ]\n}\n");
    std::fs::write(&path, doc)?;
    Ok(path)
}

/// Per-attribute coverage of `canonical` in a report produced against
/// `prepared`'s truth.
pub fn canonical_coverage(
    report: &pae_core::EvalReport,
    _prepared: &Prepared,
    canonical: &str,
) -> f64 {
    report.attr_coverage_of(canonical)
}

/// Groups an outcome's per-attribute metrics by canonical attribute.
pub fn coverage_by_canonical(report: &pae_core::EvalReport) -> HashMap<String, f64> {
    let n = report.n_products.max(1) as f64;
    report
        .attr_coverage
        .iter()
        .map(|(a, &c)| (a.clone(), c as f64 / n))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_table_renders_aligned() {
        let mut t = TextTable::new(vec!["name", "value"]);
        t.row(vec!["short", "1"]);
        t.row(vec!["a longer name", "22.5"]);
        let out = t.render();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].chars().all(|c| c == '-'));
        assert!(lines[3].starts_with("a longer name"));
    }

    #[test]
    fn standard_configs_match_paper_grid() {
        let configs = standard_configs(1);
        assert_eq!(configs.len(), 5);
        assert_eq!(configs[0].0, "RNN 2 epochs");
        assert!(!configs[0].1.use_veto);
        assert!(configs[2].1.use_veto && configs[2].1.use_semantic);
        assert_eq!(configs[4].0, "CRF + cleaning");
        assert_eq!(configs[1].1.rnn.epochs, 10);
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.934), "93.4");
        assert_eq!(pct(1.0), "100.0");
    }

    /// Regression test for the old chunk-then-barrier scheduler: a
    /// slow item must delay only itself, and results must come back in
    /// input order regardless of completion order.
    #[test]
    fn slow_item_does_not_block_the_queue() {
        use std::sync::Mutex;
        use std::time::Duration;
        let completion = Mutex::new(Vec::new());
        let items: Vec<usize> = (0..6).collect();
        let out = pae_runtime::with_jobs(2, || {
            pae_runtime::parallel_map(&items, |i, &x| {
                if i == 0 {
                    std::thread::sleep(Duration::from_millis(200));
                }
                completion.lock().unwrap().push(i);
                x * 10
            })
        });
        assert_eq!(out, vec![0, 10, 20, 30, 40, 50], "input order preserved");
        let completion = completion.into_inner().unwrap();
        assert_eq!(
            *completion.last().unwrap(),
            0,
            "items behind the slow one should have finished first: {completion:?}"
        );
    }

    #[test]
    fn prepare_all_returns_categories_in_input_order() {
        let kinds = [CategoryKind::MailboxDe, CategoryKind::GardenDe];
        let prepared = pae_runtime::with_jobs(2, || prepare_all(&kinds));
        let got: Vec<CategoryKind> = prepared.iter().map(|p| p.kind).collect();
        assert_eq!(got, kinds);
        assert!(prepared.iter().all(|p| !p.corpus.products.is_empty()));
    }

    #[test]
    fn update_bench_json_merges_by_id() {
        let dir = std::env::temp_dir().join(format!("pae-bench-json-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let rec = |id: &str, median: u64| BenchRecord {
            id: id.into(),
            samples: 10,
            min_ns: median - 1,
            median_ns: median,
            mean_ns: median + 1,
        };
        // First write creates the ledger.
        update_bench_json(&dir, &[rec("a/x", 100), rec("b/y", 200)]).unwrap();
        // Second write replaces one id and adds another.
        update_bench_json(&dir, &[rec("b/y", 999), rec("c/z", 300)]).unwrap();
        let text = std::fs::read_to_string(dir.join("BENCH_pipeline.json")).unwrap();
        let doc = pae_obs::json::Json::parse(&text).unwrap();
        let items = match doc.get("results") {
            Some(pae_obs::json::Json::Arr(v)) => v,
            other => panic!("results not an array: {other:?}"),
        };
        let median_of = |id: &str| {
            items
                .iter()
                .find(|it| it.get("id").and_then(|j| j.as_str()) == Some(id))
                .and_then(|it| it.get("median_ns"))
                .and_then(|j| j.as_u64())
        };
        assert_eq!(items.len(), 3, "{text}");
        assert_eq!(median_of("a/x"), Some(100), "untouched entry kept");
        assert_eq!(median_of("b/y"), Some(999), "existing id replaced");
        assert_eq!(median_of("c/z"), Some(300), "new id appended");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stage_timing_report_has_one_row_per_cycle() {
        let dataset = DatasetSpec::new(CategoryKind::MailboxDe, 5)
            .products(40)
            .generate();
        let mut cfg = PipelineConfig {
            iterations: 2,
            ..Default::default()
        };
        cfg.crf.max_iters = 10;
        let outcome = BootstrapPipeline::new(cfg).run(&dataset);
        let report = stage_timing_report(&outcome);
        assert!(report.starts_with("prep: seed "), "{report}");
        // Header + rule + one row per snapshot.
        assert_eq!(
            report.lines().count(),
            1 + 2 + outcome.snapshots.len(),
            "{report}"
        );
        // The CRF sub-stage breakdown is surfaced and non-zero: the
        // gradient evaluations dominate CRF training.
        assert!(report.contains("crf.grad"), "{report}");
        assert!(
            outcome.snapshots[0].timings.crf.grad > std::time::Duration::ZERO,
            "crf.grad sub-stage not measured"
        );
    }
}
