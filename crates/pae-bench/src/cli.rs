//! Shared CLI plumbing for every experiment binary.
//!
//! Before this module each `probe*` binary hand-rolled its
//! `--trace-out`/`PAE_TRACE` handling and the table/figure binaries
//! had none; [`RunCli::init`] gives all of them one uniform surface:
//!
//! - `--trace-out <path>` / `PAE_TRACE` and
//!   `--provenance-out <path>` / `PAE_PROVENANCE` (plus `--force` to
//!   overwrite existing outputs) — via [`pae_obs::TraceSession`],
//!   unchanged semantics;
//! - `--scale <small|default|full>` — sets `PAE_SCALE` for this
//!   process (equivalent to exporting the variable, but visible in
//!   `--help`-style usage and per-invocation);
//! - `--ledger <dir>` — after the run, write a
//!   [`pae_report::summary::RunSummary`] (built from the live trace,
//!   stamped with git revision, config hash, `PAE_JOBS`, and scale)
//!   into `<dir>/<name>.json`. Requesting a ledger turns collection on
//!   even without a trace target.
//! - `--profile` / `PAE_PROF` — enable allocation profiling (via
//!   [`pae_obs::prof`]): span-end records gain allocation fields and
//!   the ledger entry gains a `memory` section (the `mem.summary`
//!   event is emitted before the summary is built).
//!
//! All flags are stripped from [`RunCli::args`], so positional
//! argument parsing in the binaries is unaffected.

use std::path::{Path, PathBuf};

use pae_obs::TraceSession;
use pae_report::ledger;
use pae_report::summary::{RunMeta, RunSummary};

/// Per-binary run context: filtered args plus trace/ledger state.
#[derive(Debug)]
pub struct RunCli {
    /// `std::env::args()` with every flag this module owns removed.
    pub args: Vec<String>,
    name: String,
    trace: TraceSession,
    ledger_dir: Option<PathBuf>,
    enabled_for_ledger: bool,
}

impl RunCli {
    /// Builds the run context from the process environment. Call this
    /// first thing in `main` — `--scale` must take effect before any
    /// dataset is generated. Exits with status 2 on a usage error
    /// (e.g. refusing to overwrite an existing output without
    /// `--force`).
    pub fn init(name: &str) -> RunCli {
        match Self::from_parts(
            name,
            std::env::args().collect(),
            std::env::var("PAE_TRACE").ok(),
            std::env::var("PAE_PROVENANCE").ok(),
            std::env::var("PAE_PROF").ok(),
        ) {
            Ok(cli) => cli,
            Err(msg) => {
                eprintln!("error: {msg}");
                std::process::exit(2);
            }
        }
    }

    /// Testable core of [`RunCli::init`].
    pub fn from_parts(
        name: &str,
        args: Vec<String>,
        trace_env: Option<String>,
        prov_env: Option<String>,
        prof_env: Option<String>,
    ) -> Result<RunCli, String> {
        let mut ledger_dir: Option<PathBuf> = None;
        let mut filtered = Vec::with_capacity(args.len());
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            if arg == "--ledger" {
                match it.next() {
                    Some(dir) => ledger_dir = Some(dir.into()),
                    None => eprintln!("warning: --ledger requires a directory; flag ignored"),
                }
            } else if let Some(dir) = arg.strip_prefix("--ledger=") {
                ledger_dir = Some(dir.into());
            } else if arg == "--scale" {
                match it.next() {
                    Some(s) => std::env::set_var("PAE_SCALE", s),
                    None => eprintln!("warning: --scale requires a value; flag ignored"),
                }
            } else if let Some(s) = arg.strip_prefix("--scale=") {
                std::env::set_var("PAE_SCALE", s);
            } else {
                filtered.push(arg);
            }
        }
        let (args, trace) = TraceSession::from_parts(filtered, trace_env, prov_env, prof_env)?;
        let mut enabled_for_ledger = false;
        if ledger_dir.is_some() && !trace.active() {
            pae_obs::reset();
            pae_obs::set_enabled(true);
            enabled_for_ledger = true;
        }
        Ok(RunCli {
            args,
            name: name.to_owned(),
            trace,
            ledger_dir,
            enabled_for_ledger,
        })
    }

    /// Whether trace collection is on for this run (for any reason).
    pub fn collecting(&self) -> bool {
        self.trace.active() || self.enabled_for_ledger
    }

    /// The workspace root (this crate sits at `crates/pae-bench`).
    pub fn repo_root() -> PathBuf {
        Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
    }

    /// Writes the run-summary ledger entry (when `--ledger` was given)
    /// and finishes the trace session. Call last thing in `main`.
    pub fn finish(mut self) {
        // End profiling before snapshotting the trace: the mem.summary
        // event it emits is what RunSummary::build turns into the
        // ledger's `memory` section.
        self.trace.end_profiling();
        if let Some(dir) = &self.ledger_dir {
            let trace = pae_obs::reader::Trace::from_current();
            let scale = std::env::var("PAE_SCALE").unwrap_or_else(|_| "default".into());
            let meta = RunMeta {
                name: self.name.clone(),
                git_rev: ledger::git_rev(&Self::repo_root()),
                config_hash: ledger::config_hash(&format!("{} scale={scale}", self.name)),
                pae_jobs: std::env::var("PAE_JOBS").unwrap_or_default(),
                scale,
            };
            let summary = RunSummary::build(meta, &trace);
            if summary.incomplete() {
                eprintln!(
                    "warning: {} record(s) were dropped; the ledger entry is marked incomplete",
                    summary.dropped
                );
            }
            match ledger::write_summary(dir, &summary) {
                Ok(path) => eprintln!("run summary written to {}", path.display()),
                Err(e) => eprintln!("failed to write run summary to {}: {e}", dir.display()),
            }
        }
        self.trace.finish();
        if self.enabled_for_ledger {
            pae_obs::set_enabled(false);
            pae_obs::reset();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Env mutations (`PAE_SCALE`) and the global obs switch are
    /// process-wide; serialize the tests touching them.
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// A temp path that does not exist yet (so overwrite refusal never
    /// trips accidentally).
    fn fresh_path(tag: &str) -> std::path::PathBuf {
        static N: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let n = N.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let p = std::env::temp_dir().join(format!(
            "pae-bench-cli-{tag}-{}-{n}.jsonl",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&p);
        p
    }

    #[test]
    fn flags_are_stripped_and_scale_is_exported() {
        let _l = lock();
        let before = std::env::var("PAE_SCALE").ok();
        let out = fresh_path("strip");
        let cli = RunCli::from_parts(
            "unit",
            vec![
                "probe".into(),
                "--scale".into(),
                "small".into(),
                "120".into(),
                format!("--trace-out={}", out.display()),
            ],
            None,
            None,
            None,
        )
        .expect("fresh output path is accepted");
        assert_eq!(cli.args, vec!["probe".to_string(), "120".to_string()]);
        assert_eq!(std::env::var("PAE_SCALE").as_deref(), Ok("small"));
        assert!(cli.collecting(), "--trace-out enables collection");
        pae_obs::set_enabled(false);
        pae_obs::reset();
        match before {
            Some(v) => std::env::set_var("PAE_SCALE", v),
            None => std::env::remove_var("PAE_SCALE"),
        }
    }

    #[test]
    fn existing_trace_out_is_refused_without_force() {
        let _l = lock();
        let out = fresh_path("refuse-trace");
        std::fs::write(&out, "precious baseline\n").unwrap();
        let err = RunCli::from_parts(
            "unit",
            vec!["probe".into(), format!("--trace-out={}", out.display())],
            None,
            None,
            None,
        )
        .expect_err("existing file must be refused");
        assert!(err.contains("refusing to overwrite"), "{err}");
        assert!(
            err.contains("--force"),
            "error must mention the override: {err}"
        );
        assert_eq!(
            std::fs::read_to_string(&out).unwrap(),
            "precious baseline\n",
            "the refused file is untouched"
        );
        let cli = RunCli::from_parts(
            "unit",
            vec![
                "probe".into(),
                format!("--trace-out={}", out.display()),
                "--force".into(),
            ],
            None,
            None,
            None,
        )
        .expect("--force overrides the refusal");
        assert!(cli.collecting());
        pae_obs::set_enabled(false);
        pae_obs::reset();
        let _ = std::fs::remove_file(&out);
    }

    #[test]
    fn existing_provenance_out_is_refused_without_force() {
        let _l = lock();
        let out = fresh_path("refuse-prov");
        std::fs::write(&out, "ledger\n").unwrap();
        let err = RunCli::from_parts(
            "unit",
            vec![
                "probe".into(),
                format!("--provenance-out={}", out.display()),
            ],
            None,
            None,
            None,
        )
        .expect_err("existing provenance file must be refused");
        assert!(err.contains("refusing to overwrite"), "{err}");
        let cli = RunCli::from_parts(
            "unit",
            vec![
                "probe".into(),
                format!("--provenance-out={}", out.display()),
                "--force".into(),
            ],
            None,
            None,
            None,
        )
        .expect("--force overrides the refusal");
        assert!(cli.collecting(), "--provenance-out enables collection");
        assert!(pae_obs::provenance_enabled());
        pae_obs::set_provenance_enabled(false);
        pae_obs::set_enabled(false);
        pae_obs::reset();
        let _ = std::fs::remove_file(&out);
    }

    #[test]
    fn ledger_flag_enables_collection_and_writes_summary() {
        let _l = lock();
        let dir = std::env::temp_dir().join(format!("pae-cli-ledger-{}", std::process::id()));
        let cli = RunCli::from_parts(
            "unit-ledger",
            vec!["probe".into(), format!("--ledger={}", dir.display())],
            None,
            None,
            None,
        )
        .expect("ledger-only run context");
        assert!(cli.collecting(), "--ledger must turn collection on");
        assert_eq!(cli.args, vec!["probe".to_string()]);
        pae_obs::event("unit.cli", vec![]);
        cli.finish();
        assert!(!pae_obs::enabled(), "finish turns collection back off");

        let path = dir.join("unit-ledger.json");
        let doc = std::fs::read_to_string(&path).expect("ledger entry written");
        let summary = RunSummary::parse(&doc).expect("ledger entry parses");
        assert_eq!(summary.meta.name, "unit-ledger");
        assert!(!summary.meta.git_rev.is_empty());
        assert_eq!(summary.meta.config_hash.len(), 16);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn no_flags_means_no_collection() {
        let _l = lock();
        let cli = RunCli::from_parts("unit", vec!["probe".into()], None, None, None)
            .expect("flagless run context");
        assert!(!cli.collecting());
        assert_eq!(cli.args, vec!["probe".to_string()]);
        cli.finish();
    }
}
