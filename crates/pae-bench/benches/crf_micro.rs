//! Criterion microbenchmarks for the CRF training hot paths: the
//! sparse-gradient objective ([`pae_crf::TrainEngine::nll_and_grad`]),
//! scratch-reusing marginals ([`pae_crf::marginals_into`]), and
//! string-free feature extraction.
//!
//! Like the `pipeline` bench, a custom `main` merges full-mode results
//! into the repo-root `BENCH_pipeline.json`; in CI the target is
//! smoke-run (no `--bench` flag → every body runs once).

use criterion::{black_box, criterion_group, Criterion};

use pae_crf::data::FeatId;
use pae_crf::{
    marginals_into, CrfModel, ExtractScratch, FeatureExtractor, FeatureIndex, Instance,
    MargScratch, TrainEngine,
};

const N_LABELS: usize = 9;
const N_FEATURES: usize = 4000;

/// Deterministic xorshift; the benches must not depend on `rand`
/// seeding details or thread scheduling.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

/// Synthetic instances shaped like the pipeline's training sets:
/// short sentences, ~13 active features per position.
fn synth_instances(n_seqs: usize, seed: u64) -> Vec<Instance> {
    let mut rng = Rng(seed | 1);
    (0..n_seqs)
        .map(|_| {
            let len = 4 + rng.below(10);
            let features = (0..len)
                .map(|_| {
                    (0..13)
                        .map(|_| rng.below(N_FEATURES) as FeatId)
                        .collect::<Vec<_>>()
                })
                .collect::<Vec<_>>();
            let labels = (0..len).map(|_| rng.below(N_LABELS)).collect();
            Instance { features, labels }
        })
        .collect()
}

/// Small deterministic parameter vector (zeros would short-circuit
/// nothing, but realistic magnitudes keep exp/ln behaviour honest).
fn synth_params(n: usize) -> Vec<f64> {
    let mut rng = Rng(0x9e37_79b9);
    (0..n)
        .map(|_| ((rng.below(2001) as f64) - 1000.0) / 5000.0)
        .collect()
}

fn bench_nll_and_grad(c: &mut Criterion) {
    let instances = synth_instances(120, 7);
    let engine = TrainEngine::new(&instances, N_FEATURES, N_LABELS);
    let params = synth_params(engine.n_params());
    let mut grad = vec![0.0; engine.n_params()];

    let mut group = c.benchmark_group("crf_micro");
    group.sample_size(20);
    group.bench_function("nll_and_grad_120_seqs", |b| {
        b.iter(|| engine.nll_and_grad(black_box(&params), &mut grad))
    });
    group.finish();
}

fn bench_marginals(c: &mut Criterion) {
    let instances = synth_instances(1, 21);
    let features = &instances[0].features;
    let mut model = CrfModel::new(N_FEATURES, N_LABELS);
    let params = synth_params(model.view().params.len());
    model.params.copy_from_slice(&params);
    let mut scratch = MargScratch::default();

    let mut group = c.benchmark_group("crf_micro");
    group.sample_size(20);
    group.bench_function("marginals_one_seq", |b| {
        b.iter(|| {
            marginals_into(model.view(), black_box(features.as_slice()), &mut scratch);
            scratch.log_z
        })
    });
    group.finish();
}

fn bench_feature_extraction(c: &mut Criterion) {
    // Realistic short product sentences (the extractor only sees &str
    // slices, so synthetic vocab is fine).
    let vocab: Vec<String> = (0..300).map(|i| format!("word{i}")).collect();
    let pos = ["NN", "JJ", "CD", "SYM", "UNIT"];
    let mut rng = Rng(99);
    let sentences: Vec<(Vec<&str>, Vec<&str>)> = (0..200)
        .map(|_| {
            let len = 4 + rng.below(10);
            let words: Vec<&str> = (0..len)
                .map(|_| vocab[rng.below(vocab.len())].as_str())
                .collect();
            let tags: Vec<&str> = (0..len).map(|_| pos[rng.below(pos.len())]).collect();
            (words, tags)
        })
        .collect();
    let extractor = FeatureExtractor::default();

    let mut group = c.benchmark_group("crf_micro");
    group.sample_size(20);
    group.bench_function("extract_200_sentences", |b| {
        let mut scratch = ExtractScratch::default();
        let mut out = Vec::new();
        b.iter(|| {
            let mut index = FeatureIndex::new();
            for (i, (words, tags)) in sentences.iter().enumerate() {
                extractor.encode_train_into(words, tags, i, &mut index, &mut scratch, &mut out);
                black_box(out.len());
            }
            index.len()
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_nll_and_grad,
    bench_marginals,
    bench_feature_extraction
);

/// Merge full-mode results into the shared `BENCH_pipeline.json`
/// ledger; smoke mode (no `--bench`) leaves the tree untouched.
fn main() {
    benches();
    let results = criterion::take_results();
    // Quick (smoke) samples are not measurements — never persist them.
    if !std::env::args().any(|a| a == "--bench") || results.iter().any(|r| r.quick) {
        return;
    }
    let records: Vec<pae_bench::BenchRecord> = results
        .iter()
        .map(|r| pae_bench::BenchRecord {
            id: r.id.clone(),
            samples: r.samples as u64,
            min_ns: r.min_ns,
            median_ns: r.median_ns,
            mean_ns: r.mean_ns,
        })
        .collect();
    let root = std::path::Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."));
    match pae_bench::update_bench_json(root, &records) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("failed to write BENCH_pipeline.json: {e}"),
    }
}
