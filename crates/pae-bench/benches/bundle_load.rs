//! Criterion microbenchmark for bundle cold-start: schema-v1 eager
//! deserialization (parse every section into owned structures, then
//! rebuild the extractor's automata) vs the schema-v2 zero-copy path
//! (validate offsets + hashes, borrow the lexicon/blocklist arenas
//! straight out of the loaded bytes).
//!
//! Both variants run against the committed smoke bundles under
//! `benches/data/` — the same frozen model written in both schemas by
//! `pae-bench freeze --schema 1|2` (MASTER_SEED=42, so the fixtures
//! are reproducible bit for bit). Bytes are pre-read outside the timed
//! region: the bench isolates decode+assemble, not disk I/O.
//!
//! Like `crf_micro`, a custom `main` merges full-mode results into
//! `BENCH_pipeline.json`; smoke mode (no `--bench`) persists nothing.

use std::path::Path;
use std::sync::Arc;

use criterion::{black_box, criterion_group, Criterion};

use pae_core::LoadedBundle;

fn data_dir() -> &'static Path {
    Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/benches/data"))
}

fn read_fixture(name: &str) -> Vec<u8> {
    let path = data_dir().join(name);
    std::fs::read(&path).unwrap_or_else(|e| {
        panic!(
            "{}: {e}\n(regenerate with: cargo run --release -p pae-bench --bin freeze -- \
             {} --products 60 --schema <1|2> --force)",
            path.display(),
            path.display()
        )
    })
}

fn bench_bundle_load(c: &mut Criterion) {
    let v1 = read_fixture("smoke_v1.paeb");
    let v2: Arc<[u8]> = read_fixture("smoke_v2.paeb").into();

    // Both fixtures must hold the same model — the comparison is
    // meaningless otherwise.
    let eager = pae_core::bundle::decode(&v1).expect("v1 fixture decodes");
    let loaded = LoadedBundle::from_shared(v2.clone()).expect("v2 fixture loads");
    assert_eq!(loaded.schema_version(), pae_core::BUNDLE_SCHEMA_V2);
    assert_eq!(eager, loaded.model().expect("v2 rehydrates"));

    let mut group = c.benchmark_group("bundle_load");
    group.sample_size(20);
    // Cold start, legacy path: parse all sections into owned structs,
    // then FrozenModel::extractor() recompiles the lexicon automaton
    // and re-interns the feature names.
    group.bench_function("eager_v1", |b| {
        b.iter(|| {
            let model = pae_core::bundle::decode(black_box(&v1)).expect("decode v1");
            let extractor = model.extractor().expect("rehydrate");
            extractor.attrs().len()
        })
    });
    // Cold start, zero-copy path: one hash pass over the payload plus
    // offset validation; the extractor borrows the arenas in place.
    group.bench_function("zero_copy_v2", |b| {
        b.iter(|| {
            let loaded = LoadedBundle::from_shared(black_box(v2.clone())).expect("load v2");
            let extractor = loaded.extractor().expect("assemble");
            extractor.attrs().len()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_bundle_load);

/// Merge full-mode results into the shared `BENCH_pipeline.json`
/// ledger; smoke mode (no `--bench`) leaves the tree untouched.
fn main() {
    benches();
    let results = criterion::take_results();
    // Quick (smoke) samples are not measurements — never persist them.
    if !std::env::args().any(|a| a == "--bench") || results.iter().any(|r| r.quick) {
        return;
    }
    let records: Vec<pae_bench::BenchRecord> = results
        .iter()
        .map(|r| pae_bench::BenchRecord {
            id: r.id.clone(),
            samples: r.samples as u64,
            min_ns: r.min_ns,
            median_ns: r.median_ns,
            mean_ns: r.mean_ns,
        })
        .collect();
    let root = std::path::Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."));
    match pae_bench::update_bench_json(root, &records) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("failed to write BENCH_pipeline.json: {e}"),
    }
}
