//! Criterion microbenchmarks for the lexicon/tokenizer hot paths,
//! pitting the double-array trie against the pre-compaction HashMap
//! probing it replaced.
//!
//! Two groups feed the repo-root `BENCH_pipeline.json` ledger:
//!
//! * `tokenizer_micro` — greedy longest-match scanning over
//!   agglutinative text: the old per-prefix-length HashMap probe loop
//!   (reimplemented here as the reference) vs the single automaton
//!   descent of [`pae_text::Lexicon::longest_match_at`], plus the full
//!   [`pae_text::LatticeTokenizer`] on the same corpus.
//! * `lexicon_micro` — point lookups (`tag_of`) through both
//!   representations and the thaw-then-compile cost of rebuilding the
//!   automaton from scratch.
//!
//! Like `crf_micro`, a custom `main` merges full-mode results into
//! `BENCH_pipeline.json`; smoke mode (no `--bench`) persists nothing.

use std::collections::HashMap;

use criterion::{black_box, criterion_group, Criterion};

use pae_synth::{CategoryKind, DatasetSpec};
use pae_text::{LatticeTokenizer, Lexicon, PosTag, Tokenizer};

/// Deterministic xorshift; the benches must not depend on `rand`
/// seeding details or thread scheduling.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

/// The synthesizer's real segmentation dictionary: the same lexicon
/// the pipeline tokenizes with, not a toy word list.
fn dataset_lexicon() -> Lexicon {
    DatasetSpec::new(CategoryKind::VacuumCleaner, 42)
        .products(80)
        .generate()
        .lexicon
}

/// Unsegmented text shaped like the corpus: runs of dictionary words
/// glued together, with digit/symbol spans and occasional unknown
/// alpha runs mixed in (the cases the tokenizer's scan loop handles).
fn synth_texts(lexicon: &Lexicon, n_texts: usize, words_per_text: usize) -> Vec<String> {
    let mut entries: Vec<String> = lexicon.iter().map(|(w, _)| w).collect();
    entries.sort_unstable();
    let mut rng = Rng(0x5eed_1e81);
    (0..n_texts)
        .map(|_| {
            let mut text = String::new();
            for k in 0..words_per_text {
                match k % 9 {
                    3 => text.push_str(&format!("{}", 1 + rng.below(4000))),
                    5 => text.push(':'),
                    7 => text.push_str("zq"), // unknown alpha run
                    _ => text.push_str(&entries[rng.below(entries.len())]),
                }
            }
            text
        })
        .collect()
}

/// The pre-compaction reference: longest match by probing the entry
/// map once per candidate prefix length, longest first. This is the
/// exact loop `LatticeTokenizer::longest_match` ran before the trie.
fn hashmap_longest_match(
    map: &HashMap<String, PosTag>,
    max_chars: usize,
    chars: &[(usize, char)],
    text: &str,
    i: usize,
) -> Option<usize> {
    let limit = max_chars.min(chars.len() - i);
    let start = chars[i].0;
    for len in (1..=limit).rev() {
        let end = if i + len < chars.len() {
            chars[i + len].0
        } else {
            text.len()
        };
        if map.contains_key(&text[start..end]) {
            return Some(len);
        }
    }
    None
}

/// Sums match lengths over a whole-corpus scan: every char position of
/// every text asks "longest entry starting here?" — the tokenizer's
/// inner question, isolated from lattice bookkeeping.
fn bench_longest_match(c: &mut Criterion) {
    let lexicon = dataset_lexicon();
    let texts = synth_texts(&lexicon, 48, 40);
    let char_maps: Vec<Vec<(usize, char)>> =
        texts.iter().map(|t| t.char_indices().collect()).collect();
    let map: HashMap<String, PosTag> = lexicon.iter().collect();
    let max_chars = lexicon.max_chars();
    // Frozen repr: matching goes straight to the automaton (compiled
    // once here, outside the timed region, as the serving path does).
    let frozen = Lexicon::from_fst(lexicon.compiled().clone());

    let mut group = c.benchmark_group("tokenizer_micro");
    group.sample_size(20);
    group.bench_function("longest_match_hashmap", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for (text, chars) in texts.iter().zip(&char_maps) {
                for i in 0..chars.len() {
                    if let Some(len) =
                        hashmap_longest_match(&map, max_chars, chars, black_box(text), i)
                    {
                        total += len;
                    }
                }
            }
            total
        })
    });
    group.bench_function("longest_match_fst", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for (text, chars) in texts.iter().zip(&char_maps) {
                for &(byte_pos, _) in chars.iter() {
                    if let Some((len, _tag)) = frozen.longest_match_at(black_box(text), byte_pos)
                    {
                        total += len;
                    }
                }
            }
            total
        })
    });
    group.bench_function("lattice_tokenize", |b| {
        let tokenizer = LatticeTokenizer::new(frozen.clone());
        b.iter(|| {
            let mut tokens = 0usize;
            for text in &texts {
                tokens += tokenizer.tokenize(black_box(text)).len();
            }
            tokens
        })
    });
    group.finish();
}

/// Point lookups and automaton rebuild cost for the two lexicon
/// representations.
fn bench_lexicon(c: &mut Criterion) {
    let building = dataset_lexicon();
    let frozen = Lexicon::from_fst(building.compiled().clone());
    let entries: Vec<(String, PosTag)> = {
        let mut v: Vec<(String, PosTag)> = building.iter().collect();
        v.sort_unstable();
        v
    };
    // Probe set: real entries interleaved with misses (prefix-extended
    // words that walk deep into the trie before failing).
    let mut rng = Rng(0xc0ffee);
    let probes: Vec<String> = (0..512)
        .map(|k| {
            let w = &entries[rng.below(entries.len())].0;
            if k % 3 == 0 {
                format!("{w}zz")
            } else {
                w.clone()
            }
        })
        .collect();

    let mut group = c.benchmark_group("lexicon_micro");
    group.sample_size(20);
    group.bench_function("tag_of_hashmap", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for p in &probes {
                hits += usize::from(building.tag_of(black_box(p)).is_some());
            }
            hits
        })
    });
    group.bench_function("tag_of_fst", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for p in &probes {
                hits += usize::from(frozen.tag_of(black_box(p)).is_some());
            }
            hits
        })
    });
    group.bench_function("compile_from_entries", |b| {
        b.iter(|| {
            let lex = Lexicon::from_entries(
                entries.iter().map(|(w, t)| (w.clone(), *t)),
            );
            lex.compiled().n_keys()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_longest_match, bench_lexicon);

/// Merge full-mode results into the shared `BENCH_pipeline.json`
/// ledger; smoke mode (no `--bench`) leaves the tree untouched.
fn main() {
    benches();
    let results = criterion::take_results();
    // Quick (smoke) samples are not measurements — never persist them.
    if !std::env::args().any(|a| a == "--bench") || results.iter().any(|r| r.quick) {
        return;
    }
    let records: Vec<pae_bench::BenchRecord> = results
        .iter()
        .map(|r| pae_bench::BenchRecord {
            id: r.id.clone(),
            samples: r.samples as u64,
            min_ns: r.min_ns,
            median_ns: r.median_ns,
            mean_ns: r.mean_ns,
        })
        .collect();
    let root = std::path::Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."));
    match pae_bench::update_bench_json(root, &records) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("failed to write BENCH_pipeline.json: {e}"),
    }
}
