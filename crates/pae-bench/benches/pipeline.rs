//! Criterion benchmarks for the pipeline stages: seed construction,
//! diversification, cleaning, and one full bootstrap cycle.

use criterion::{criterion_group, Criterion};

use pae_core::cleaning::{apply_veto, semantic_clean};
use pae_core::config::SemanticOptions;
use pae_core::seed::{build_seed, AggregationConfig, ValueCleanConfig};
use pae_core::{parse_corpus, BootstrapPipeline, PipelineConfig, Triple};
use pae_synth::{CategoryKind, DatasetSpec};

fn bench_seed(c: &mut Criterion) {
    let dataset = DatasetSpec::new(CategoryKind::LadiesBags, 7)
        .products(80)
        .generate();
    let corpus = parse_corpus(&dataset);
    let mut group = c.benchmark_group("seed");
    group.sample_size(20);
    group.bench_function("build_seed_80_products", |b| {
        b.iter(|| {
            build_seed(
                &corpus,
                &dataset.query_log,
                &AggregationConfig::default(),
                &ValueCleanConfig::default(),
            )
            .table
            .n_pairs()
        })
    });
    group.finish();
}

fn bench_cleaning(c: &mut Criterion) {
    let dataset = DatasetSpec::new(CategoryKind::VacuumCleaner, 7)
        .products(80)
        .generate();
    let corpus = parse_corpus(&dataset);
    let sentences = corpus.word_sentences();

    // A realistic candidate pool: one triple per product per attribute.
    let triples: Vec<Triple> = corpus
        .table_pairs
        .iter()
        .map(|p| Triple::new(p.product, p.attr.clone(), p.value.clone()))
        .collect();

    let mut group = c.benchmark_group("cleaning");
    group.sample_size(10);
    group.bench_function("veto", |b| {
        b.iter(|| apply_veto(triples.clone(), 0.8, 30).0.len())
    });
    group.bench_function("semantic_with_w2v_retrain", |b| {
        b.iter(|| {
            semantic_clean(triples.clone(), &sentences, &SemanticOptions::default(), 7)
                .0
                .len()
        })
    });
    group.finish();
}

fn bench_bootstrap(c: &mut Criterion) {
    let dataset = DatasetSpec::new(CategoryKind::VacuumCleaner, 7)
        .products(60)
        .generate();
    let corpus = parse_corpus(&dataset);
    let mut cfg = PipelineConfig {
        iterations: 1,
        ..Default::default()
    };
    cfg.crf.max_iters = 30;

    let mut group = c.benchmark_group("bootstrap");
    group.sample_size(10);
    group.bench_function("one_crf_cycle_60_products", |b| {
        b.iter(|| {
            BootstrapPipeline::new(cfg.clone())
                .run_on_corpus(&dataset, &corpus)
                .final_triples()
                .len()
        })
    });
    group.finish();

    // Per-stage wall clock of one cycle, complementing the aggregate
    // number above (PAE_JOBS-sensitive: the train/extract stages run
    // on the worker pool).
    let outcome = BootstrapPipeline::new(cfg).run_on_corpus(&dataset, &corpus);
    println!(
        "bootstrap/one_crf_cycle_60_products stage breakdown (PAE_JOBS={}):\n{}",
        pae_bench::jobs(),
        pae_bench::stage_timing_report(&outcome)
    );
}

criterion_group!(benches, bench_seed, bench_cleaning, bench_bootstrap);

/// Custom `main` (instead of `criterion_main!`): after the text report,
/// merge the machine-readable results into `BENCH_pipeline.json` at the
/// repo root so perf runs can be archived and diffed (entries from
/// other bench targets, e.g. `crf_micro`, are preserved). Only in full
/// `--bench` mode — the `cargo test` smoke pass must not dirty the
/// tree.
fn main() {
    benches();
    let results = criterion::take_results();
    // Quick (smoke) samples are not measurements — never persist them.
    if !std::env::args().any(|a| a == "--bench") || results.iter().any(|r| r.quick) {
        return;
    }
    let records: Vec<pae_bench::BenchRecord> = results
        .iter()
        .map(|r| pae_bench::BenchRecord {
            id: r.id.clone(),
            samples: r.samples as u64,
            min_ns: r.min_ns,
            median_ns: r.median_ns,
            mean_ns: r.mean_ns,
        })
        .collect();
    let root = std::path::Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."));
    match pae_bench::update_bench_json(root, &records) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("failed to write BENCH_pipeline.json: {e}"),
    }
}
