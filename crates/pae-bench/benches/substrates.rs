//! Criterion microbenchmarks for the substrates: HTML parsing,
//! tokenization, PoS tagging, CRF training/decoding, word2vec, and the
//! BiLSTM forward pass.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use pae_core::parse_corpus;
use pae_crf::{train, FeatureExtractor, FeatureIndex, Instance, TrainConfig};
use pae_embed::{W2vConfig, W2vModel};
use pae_neural::{BiLstmTagger, TaggerConfig};
use pae_synth::{CategoryKind, DatasetSpec};
use pae_text::{LexiconPosTagger, PosTagger};

fn bench_html(c: &mut Criterion) {
    let dataset = DatasetSpec::new(CategoryKind::VacuumCleaner, 7)
        .products(50)
        .generate();
    let total_bytes: usize = dataset.pages.iter().map(|p| p.html.len()).sum();
    let mut group = c.benchmark_group("html");
    group.throughput(Throughput::Bytes(total_bytes as u64));
    group.bench_function("parse_50_pages", |b| {
        b.iter(|| {
            let mut nodes = 0usize;
            for page in &dataset.pages {
                nodes += pae_html::parse(&page.html).len();
            }
            nodes
        })
    });
    group.bench_function("extract_tables_50_pages", |b| {
        let forests: Vec<_> = dataset
            .pages
            .iter()
            .map(|p| pae_html::parse(&p.html))
            .collect();
        b.iter(|| {
            forests
                .iter()
                .map(|f| pae_html::extract_tables(f).len())
                .sum::<usize>()
        })
    });
    group.finish();
}

fn bench_text(c: &mut Criterion) {
    let dataset = DatasetSpec::new(CategoryKind::VacuumCleaner, 7)
        .products(50)
        .generate();
    let texts: Vec<String> = dataset
        .pages
        .iter()
        .map(|p| {
            let forest = pae_html::parse(&p.html);
            pae_html::extract_text(&forest, &pae_html::TextOptions::default())
        })
        .collect();
    let tokenizer = dataset.tokenizer();
    let tagger = LexiconPosTagger::new(dataset.lexicon.clone());
    let total_bytes: usize = texts.iter().map(String::len).sum();

    let mut group = c.benchmark_group("text");
    group.throughput(Throughput::Bytes(total_bytes as u64));
    group.bench_function("lattice_tokenize_50_pages", |b| {
        b.iter(|| {
            texts
                .iter()
                .map(|t| tokenizer.tokenize(t).len())
                .sum::<usize>()
        })
    });
    group.bench_function("pos_tag_50_pages", |b| {
        let tokenized: Vec<_> = texts.iter().map(|t| tokenizer.tokenize(t)).collect();
        b.iter(|| {
            tokenized
                .iter()
                .map(|toks| tagger.tag(toks).len())
                .sum::<usize>()
        })
    });
    group.finish();
}

/// Small synthetic CRF task shared by train/decode benches.
fn crf_instances() -> (Vec<Instance>, usize) {
    let extractor = FeatureExtractor::default();
    let mut index = FeatureIndex::new();
    let mut instances = Vec::new();
    for i in 0..120 {
        let w1 = format!("w{}", i % 17);
        let words = ["attr", ":", w1.as_str(), "unit", "rest"];
        let pos = ["NN", "SYM", "CD", "UNIT", "NN"];
        let feats = extractor.encode_train(&words, &pos, i % 5, &mut index);
        instances.push(Instance {
            features: feats,
            labels: vec![0, 0, 1, 2, 0],
        });
    }
    (instances, index.len())
}

fn bench_crf(c: &mut Criterion) {
    let (instances, n_features) = crf_instances();
    let mut group = c.benchmark_group("crf");
    group.sample_size(10);
    group.bench_function("train_120_sentences", |b| {
        b.iter(|| {
            train(
                &instances,
                n_features,
                3,
                &TrainConfig {
                    max_iters: 25,
                    ..Default::default()
                },
            )
            .params
            .len()
        })
    });
    let model = train(&instances, n_features, 3, &TrainConfig::default());
    group.bench_function("viterbi_120_sentences", |b| {
        b.iter(|| {
            instances
                .iter()
                .map(|i| model.viterbi(&i.features).len())
                .sum::<usize>()
        })
    });
    group.finish();
}

fn bench_embed(c: &mut Criterion) {
    let mk = |s: &str| s.split(' ').map(str::to_owned).collect::<Vec<_>>();
    let sentences: Vec<Vec<String>> = (0..400)
        .map(|i| {
            mk(&format!(
                "word{} ctx{} word{} tail{}",
                i % 23,
                i % 7,
                (i + 3) % 23,
                i % 5
            ))
        })
        .collect();
    let mut group = c.benchmark_group("word2vec");
    group.sample_size(10);
    group.bench_function("sgns_400_sentences", |b| {
        b.iter(|| {
            W2vModel::train(
                &sentences,
                &W2vConfig {
                    dim: 24,
                    epochs: 2,
                    min_count: 1,
                    ..Default::default()
                },
            )
            .map(|m| m.dim())
        })
    });
    group.finish();
}

fn bench_neural(c: &mut Criterion) {
    let mk = |s: &str, l: &[usize]| {
        (
            s.split(' ').map(str::to_owned).collect::<Vec<_>>(),
            l.to_vec(),
        )
    };
    let data: Vec<(Vec<String>, Vec<usize>)> = (0..60)
        .map(|i| mk(&format!("attr : v{} unit", i % 9), &[0, 0, 1, 0]))
        .collect();
    let mut group = c.benchmark_group("bilstm");
    group.sample_size(10);
    group.bench_function("train_60_sentences_2_epochs", |b| {
        b.iter(|| {
            BiLstmTagger::train(
                &data,
                2,
                &TaggerConfig {
                    epochs: 2,
                    ..Default::default()
                },
            )
            .param_count()
        })
    });
    let model = BiLstmTagger::train(&data, 2, &TaggerConfig::default());
    group.bench_function("predict_60_sentences", |b| {
        b.iter(|| {
            data.iter()
                .map(|(words, _)| model.predict(words).len())
                .sum::<usize>()
        })
    });
    group.finish();
}

fn bench_corpus(c: &mut Criterion) {
    let dataset = DatasetSpec::new(CategoryKind::LadiesBags, 7)
        .products(60)
        .generate();
    let mut group = c.benchmark_group("corpus");
    group.sample_size(10);
    group.bench_function("parse_corpus_60_products", |b| {
        b.iter(|| parse_corpus(&dataset).n_sentences())
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_html,
    bench_text,
    bench_crf,
    bench_embed,
    bench_neural,
    bench_corpus
);
criterion_main!(benches);
