//! End-to-end serving tests: a real `TcpListener` on an ephemeral
//! port, a frozen model trained on the synthetic corpus, and clients
//! comparing served responses against direct in-process extraction.

use std::sync::OnceLock;

use pae_core::frozen::{FrozenExtractor, FrozenModel};
use pae_core::{BootstrapPipeline, PipelineConfig, TaggerKind, Triple};
use pae_serve::{http_request, parse_extract_response, Server, ServerConfig};
use pae_synth::{CategoryKind, DatasetSpec};

struct Fixture {
    model: FrozenModel,
    pages: Vec<(u32, String)>,
}

fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let dataset = DatasetSpec::new(CategoryKind::VacuumCleaner, 42)
            .products(60)
            .generate();
        let corpus = pae_core::parse_corpus(&dataset);
        let mut cfg = PipelineConfig {
            iterations: 1,
            tagger: TaggerKind::Crf,
            ..Default::default()
        };
        cfg.crf.max_iters = 40;
        let outcome = BootstrapPipeline::new(cfg.clone()).run_on_corpus(&dataset, &corpus);
        let model = FrozenModel::freeze(&dataset, &corpus, &outcome, &cfg).expect("freeze");
        let pages = dataset
            .pages
            .iter()
            .take(24)
            .map(|p| (p.id, p.html.clone()))
            .collect();
        Fixture { model, pages }
    })
}

fn extractor() -> FrozenExtractor {
    fixture().model.extractor().expect("rehydrate")
}

fn start_server() -> Server {
    let config = ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers: 4,
        bundle_hash: 0,
        trace_sample: 0,
        slow_ms: 0,
        ..ServerConfig::default()
    };
    Server::start(extractor(), &config).expect("start server")
}

fn page_request_body(product: u32, html: &str) -> String {
    let mut body = format!("{{\"product\":{product},\"html\":");
    pae_obs::json::write_str(&mut body, html);
    body.push('}');
    body
}

fn batch_request_body(pages: &[(u32, String)]) -> String {
    let mut body = String::from("{\"pages\":[");
    for (i, (product, html)) in pages.iter().enumerate() {
        if i > 0 {
            body.push(',');
        }
        body.push_str(&format!("{{\"product\":{product},\"html\":"));
        pae_obs::json::write_str(&mut body, html);
        body.push('}');
    }
    body.push_str("]}");
    body
}

#[test]
fn healthz_reports_model_shape() {
    let server = start_server();
    let (status, body) = http_request(server.addr(), "GET", "/healthz", "").expect("healthz");
    assert_eq!(status, 200);
    let doc = pae_obs::json::Json::parse(&body).expect("json");
    assert_eq!(
        doc.get("status").and_then(pae_obs::json::Json::as_str),
        Some("ok")
    );
    assert_eq!(
        doc.get("attrs").and_then(pae_obs::json::Json::as_u64),
        Some(fixture().model.attrs.len() as u64)
    );
    // Bundle identity for skew detection: hash (0 here — no bundle
    // file behind the test fixture) and PAEB schema version.
    assert_eq!(
        doc.get("bundle_hash").and_then(pae_obs::json::Json::as_str),
        Some("0000000000000000")
    );
    assert_eq!(
        doc.get("schema_version")
            .and_then(pae_obs::json::Json::as_u64),
        Some(pae_core::BUNDLE_SCHEMA_VERSION as u64)
    );
    server.shutdown();
}

#[test]
fn served_extraction_matches_direct_extraction_at_any_job_count() {
    let fx = fixture();
    let direct = extractor();
    // The in-loop reference, computed at two compute-pool widths: the
    // frozen pipeline must be thread-count invariant AND the served
    // answer must match it byte for byte.
    let at_one: Vec<Triple> = pae_runtime::with_jobs(1, || direct.extract_pages(&fx.pages));
    let at_four: Vec<Triple> = pae_runtime::with_jobs(4, || direct.extract_pages(&fx.pages));
    assert_eq!(at_one, at_four, "extraction depends on PAE_JOBS");

    let server = start_server();
    // Batch request covers all pages at once.
    let (status, body) = http_request(
        server.addr(),
        "POST",
        "/extract",
        &batch_request_body(&fx.pages),
    )
    .expect("batch extract");
    assert_eq!(status, 200, "{body}");
    let served = parse_extract_response(&body).expect("parse");
    assert_eq!(served, at_one);

    // Single-page requests agree page by page.
    for (product, html) in fx.pages.iter().take(4) {
        let (status, body) = http_request(
            server.addr(),
            "POST",
            "/extract",
            &page_request_body(*product, html),
        )
        .expect("single extract");
        assert_eq!(status, 200, "{body}");
        let served = parse_extract_response(&body).expect("parse");
        assert_eq!(served, direct.extract_page(*product, html));
    }
    server.shutdown();
}

#[test]
fn concurrent_clients_get_identical_answers() {
    let fx = fixture();
    let direct = extractor();
    let expected: Vec<Vec<Triple>> = fx
        .pages
        .iter()
        .map(|(product, html)| direct.extract_page(*product, html))
        .collect();

    let server = start_server();
    let addr = server.addr();
    let results: Vec<Result<(), String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..8)
            .map(|client| {
                let expected = &expected;
                let pages = &fx.pages;
                scope.spawn(move || {
                    for round in 0..3 {
                        let i = (client * 5 + round * 7) % pages.len();
                        let (product, html) = &pages[i];
                        let (status, body) = http_request(
                            addr,
                            "POST",
                            "/extract",
                            &page_request_body(*product, html),
                        )?;
                        if status != 200 {
                            return Err(format!("client {client}: status {status}: {body}"));
                        }
                        let served = parse_extract_response(&body)?;
                        if served != expected[i] {
                            return Err(format!("client {client}: page {i} diverged"));
                        }
                    }
                    Ok(())
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client panicked"))
            .collect()
    });
    for r in results {
        r.expect("concurrent client");
    }
    server.shutdown();
}

#[test]
fn malformed_requests_get_typed_errors() {
    let server = start_server();
    let addr = server.addr();
    let cases = [
        ("POST", "/extract", "not json", 400),
        ("POST", "/extract", "{}", 400),
        ("POST", "/extract", "{\"pages\":[{\"product\":1}]}", 400),
        ("GET", "/nope", "", 404),
        ("DELETE", "/extract", "", 405),
    ];
    for (method, path, body, want) in cases {
        let (status, body) = http_request(addr, method, path, body).expect("request");
        assert_eq!(status, want, "{method} {path}: {body}");
        assert!(
            pae_obs::json::Json::parse(&body)
                .expect("error body is JSON")
                .get("error")
                .is_some(),
            "{method} {path}: no error field in {body}"
        );
    }
    server.shutdown();
}
