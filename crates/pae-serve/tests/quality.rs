//! End-to-end field-quality monitoring tests: `/qualityz`, the
//! `/statusz` quality flag, `serve.quality.*` metric families, drift
//! scoring against freeze-time reference stats, and the `x-pae-request`
//! response header.

use std::sync::OnceLock;

use pae_core::frozen::{FrozenExtractor, FrozenModel};
use pae_core::{BootstrapPipeline, PipelineConfig, TaggerKind};
use pae_obs::export::prometheus::{parse_text, validate, Sample};
use pae_obs::json::Json;
use pae_serve::{http_request, http_request_with_headers, Server, ServerConfig};
use pae_synth::{CategoryKind, DatasetSpec};

struct Fixture {
    model: FrozenModel,
    pages: Vec<(u32, String)>,
}

fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let dataset = DatasetSpec::new(CategoryKind::VacuumCleaner, 42)
            .products(60)
            .generate();
        let corpus = pae_core::parse_corpus(&dataset);
        let mut cfg = PipelineConfig {
            iterations: 1,
            tagger: TaggerKind::Crf,
            ..Default::default()
        };
        cfg.crf.max_iters = 40;
        let outcome = BootstrapPipeline::new(cfg.clone()).run_on_corpus(&dataset, &corpus);
        let model = FrozenModel::freeze(&dataset, &corpus, &outcome, &cfg).expect("freeze");
        let pages = dataset
            .pages
            .iter()
            .take(24)
            .map(|p| (p.id, p.html.clone()))
            .collect();
        Fixture { model, pages }
    })
}

fn extractor() -> FrozenExtractor {
    fixture().model.extractor().expect("rehydrate")
}

fn start_server(config: ServerConfig) -> Server {
    Server::start(extractor(), &config).expect("start server")
}

fn with_reference() -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers: 2,
        reference: fixture().model.reference.clone(),
        ..ServerConfig::default()
    }
}

fn without_reference() -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers: 2,
        reference: None,
        ..ServerConfig::default()
    }
}

fn batch_request_body(pages: &[(u32, String)]) -> String {
    let mut body = String::from("{\"pages\":[");
    for (i, (product, html)) in pages.iter().enumerate() {
        if i > 0 {
            body.push(',');
        }
        body.push_str(&format!("{{\"product\":{product},\"html\":"));
        pae_obs::json::write_str(&mut body, html);
        body.push('}');
    }
    body.push_str("]}");
    body
}

fn sample_value(samples: &[Sample], name: &str, label: Option<(&str, &str)>) -> Option<f64> {
    samples
        .iter()
        .find(|s| s.name == name && label.is_none_or(|(k, v)| s.label(k) == Some(v)))
        .map(|s| s.value)
}

/// Traffic drawn from the training corpus must score as stable: drift
/// well under the threshold, `quality: ok` everywhere it is surfaced.
#[test]
fn in_distribution_traffic_stays_ok() {
    let fx = fixture();
    let server = start_server(with_reference());
    let addr = server.addr();
    let (status, _) =
        http_request(addr, "POST", "/extract", &batch_request_body(&fx.pages)).expect("extract");
    assert_eq!(status, 200);

    let (status, body) = http_request(addr, "GET", "/qualityz", "").expect("qualityz");
    assert_eq!(status, 200);
    let doc = Json::parse(&body).expect("qualityz JSON");
    assert_eq!(
        doc.get("reference").and_then(|r| r.get("present")).cloned(),
        Some(Json::Bool(true))
    );
    assert_eq!(doc.get("quality").and_then(Json::as_str), Some("ok"));
    let attrs = doc
        .get("windows")
        .and_then(|w| w.get("5m"))
        .and_then(|w| w.get("attrs"))
        .expect("5m attrs");
    let Json::Obj(attrs) = attrs else {
        panic!("attrs is not an object");
    };
    // The busiest attribute has enough live triples to be scored, and
    // in-distribution traffic must sit far below the 0.25 threshold.
    let scored: Vec<f64> = attrs
        .values()
        .filter_map(|a| a.get("drift").and_then(Json::as_f64))
        .collect();
    assert!(
        !scored.is_empty(),
        "24 training pages produced no scoreable attribute: {body}"
    );
    for d in &scored {
        assert!(*d < 0.25, "in-distribution drift {d} >= threshold: {body}");
    }

    // The same verdict rides on /statusz.
    let (_, body) = http_request(addr, "GET", "/statusz", "").expect("statusz");
    let doc = Json::parse(&body).expect("statusz JSON");
    assert_eq!(doc.get("quality").and_then(Json::as_str), Some("ok"));

    // And /metrics carries scored drift gauges under the threshold.
    let (_, text) = http_request(addr, "GET", "/metrics", "").expect("metrics");
    validate(&text).expect("metrics exposition validates");
    let samples = parse_text(&text).expect("metrics parse");
    assert_eq!(
        sample_value(&samples, "serve_quality_degraded", None),
        Some(0.0)
    );
    assert!(
        sample_value(&samples, "serve_quality_pages", None).is_some_and(|v| v >= 24.0),
        "quality page counter missing"
    );
    assert!(
        samples.iter().any(|s| s.name == "serve_quality_drift"),
        "scored server must expose serve_quality_drift"
    );
    server.shutdown();
}

/// Pages the model extracts nothing from push the windowed
/// empty-extraction rate over the threshold and flag the server
/// degraded — no reference stats required.
#[test]
fn empty_extractions_flag_degraded() {
    let junk: Vec<(u32, String)> = (0..12)
        .map(|i| {
            (
                i,
                "<html><title>zqx vbnr wkjp</title><body><p>mzzt qqf plxr</p></body></html>"
                    .to_owned(),
            )
        })
        .collect();
    let config = ServerConfig {
        empty_rate_threshold: 0.5,
        ..without_reference()
    };
    let server = start_server(config);
    let addr = server.addr();
    let (status, body) =
        http_request(addr, "POST", "/extract", &batch_request_body(&junk)).expect("extract");
    assert_eq!(status, 200);
    let doc = Json::parse(&body).expect("extract JSON");
    let Some(Json::Arr(triples)) = doc.get("triples") else {
        panic!("no triples array");
    };
    assert!(
        triples.is_empty(),
        "junk pages unexpectedly extracted triples"
    );

    let (_, body) = http_request(addr, "GET", "/qualityz", "").expect("qualityz");
    let doc = Json::parse(&body).expect("qualityz JSON");
    assert_eq!(doc.get("quality").and_then(Json::as_str), Some("degraded"));
    let five = doc.get("windows").and_then(|w| w.get("5m")).expect("5m");
    assert_eq!(five.get("empty_rate").and_then(Json::as_f64), Some(1.0));

    let (_, body) = http_request(addr, "GET", "/statusz", "").expect("statusz");
    let doc = Json::parse(&body).expect("statusz JSON");
    assert_eq!(doc.get("quality").and_then(Json::as_str), Some("degraded"));

    let (_, text) = http_request(addr, "GET", "/metrics", "").expect("metrics");
    let samples = parse_text(&text).expect("metrics parse");
    assert_eq!(
        sample_value(&samples, "serve_quality_degraded", None),
        Some(1.0)
    );
    server.shutdown();
}

/// A server without reference stats (schema v1/v2 bundle) still tracks
/// live rates but reports drift as null / absent — never zero.
#[test]
fn no_reference_mode_has_absent_drift() {
    let fx = fixture();
    let server = start_server(without_reference());
    let addr = server.addr();
    let (status, _) =
        http_request(addr, "POST", "/extract", &batch_request_body(&fx.pages)).expect("extract");
    assert_eq!(status, 200);

    let (_, body) = http_request(addr, "GET", "/qualityz", "").expect("qualityz");
    let doc = Json::parse(&body).expect("qualityz JSON");
    assert_eq!(
        doc.get("reference").and_then(|r| r.get("present")).cloned(),
        Some(Json::Bool(false))
    );
    let attrs = doc
        .get("windows")
        .and_then(|w| w.get("5m"))
        .and_then(|w| w.get("attrs"))
        .expect("attrs");
    let Json::Obj(attrs) = attrs else {
        panic!("attrs is not an object");
    };
    assert!(!attrs.is_empty());
    for (name, a) in attrs {
        assert_eq!(
            a.get("drift"),
            Some(&Json::Null),
            "attr {name} scored drift without a reference"
        );
    }

    let (_, text) = http_request(addr, "GET", "/metrics", "").expect("metrics");
    let samples = parse_text(&text).expect("metrics parse");
    assert!(
        !samples.iter().any(|s| s.name == "serve_quality_drift"),
        "no-reference server must omit drift gauges, not report 0"
    );
    assert!(
        samples.iter().any(|s| s.name == "serve_quality_attr_rate"),
        "live rates still exported without a reference"
    );
    server.shutdown();
}

/// Every response carries the monotonic request id; sequential requests
/// over one connection-per-request client see strictly increasing ids,
/// and the id is echoed on telemetry routes too.
#[test]
fn request_ids_are_echoed_and_monotonic() {
    let server = start_server(without_reference());
    let addr = server.addr();
    let mut last: Option<u64> = None;
    for path in ["/healthz", "/statusz", "/qualityz", "/healthz"] {
        let (status, headers, _) =
            http_request_with_headers(addr, "GET", path, "").expect("request");
        assert_eq!(status, 200);
        let seq: u64 = headers
            .iter()
            .find(|(name, _)| name == "x-pae-request")
            .map(|(_, value)| value.parse().expect("x-pae-request is a number"))
            .unwrap_or_else(|| panic!("{path} response missing x-pae-request"));
        if let Some(prev) = last {
            assert!(seq > prev, "request ids not monotonic: {prev} then {seq}");
        }
        last = Some(seq);
    }
    server.shutdown();
}

/// `/qualityz` is GET-only and routed like the other telemetry
/// endpoints.
#[test]
fn qualityz_rejects_bad_methods() {
    let server = start_server(without_reference());
    let (status, _) = http_request(server.addr(), "POST", "/qualityz", "").expect("bad method");
    assert_eq!(status, 405);
    server.shutdown();
}
