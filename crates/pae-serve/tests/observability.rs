//! Live-observability tests: `/metrics` + `/statusz` under concurrent
//! load, slow-request capture, deterministic sampling, and proof that
//! none of it perturbs extraction output.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

use pae_core::frozen::{FrozenExtractor, FrozenModel};
use pae_core::{BootstrapPipeline, PipelineConfig, TaggerKind, Triple};
use pae_obs::export::prometheus::{parse_text, validate, Sample};
use pae_obs::json::Json;
use pae_serve::{http_request, Server, ServerConfig};
use pae_synth::{CategoryKind, DatasetSpec};

struct Fixture {
    model: FrozenModel,
    pages: Vec<(u32, String)>,
}

fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let dataset = DatasetSpec::new(CategoryKind::VacuumCleaner, 42)
            .products(60)
            .generate();
        let corpus = pae_core::parse_corpus(&dataset);
        let mut cfg = PipelineConfig {
            iterations: 1,
            tagger: TaggerKind::Crf,
            ..Default::default()
        };
        cfg.crf.max_iters = 40;
        let outcome = BootstrapPipeline::new(cfg.clone()).run_on_corpus(&dataset, &corpus);
        let model = FrozenModel::freeze(&dataset, &corpus, &outcome, &cfg).expect("freeze");
        let pages = dataset
            .pages
            .iter()
            .take(24)
            .map(|p| (p.id, p.html.clone()))
            .collect();
        Fixture { model, pages }
    })
}

fn extractor() -> FrozenExtractor {
    fixture().model.extractor().expect("rehydrate")
}

fn start_server(bundle_hash: u64, trace_sample: u64, slow_ms: u64) -> Server {
    let config = ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers: 4,
        bundle_hash,
        trace_sample,
        slow_ms,
        ..ServerConfig::default()
    };
    Server::start(extractor(), &config).expect("start server")
}

fn page_request_body(product: u32, html: &str) -> String {
    let mut body = format!("{{\"product\":{product},\"html\":");
    pae_obs::json::write_str(&mut body, html);
    body.push('}');
    body
}

fn batch_request_body(pages: &[(u32, String)]) -> String {
    let mut body = String::from("{\"pages\":[");
    for (i, (product, html)) in pages.iter().enumerate() {
        if i > 0 {
            body.push(',');
        }
        body.push_str(&format!("{{\"product\":{product},\"html\":"));
        pae_obs::json::write_str(&mut body, html);
        body.push('}');
    }
    body.push_str("]}");
    body
}

fn sample_value(samples: &[Sample], name: &str, label: Option<(&str, &str)>) -> Option<f64> {
    samples
        .iter()
        .find(|s| s.name == name && label.is_none_or(|(k, v)| s.label(k) == Some(v)))
        .map(|s| s.value)
}

/// 8 clients hammer `/extract` while a scraper concurrently polls
/// `/metrics` and `/statusz`. Every scrape must parse and
/// schema-validate, the live request counter must be monotonic, and
/// nothing may poison a lock (a poisoned telemetry mutex would panic
/// the next scrape).
#[test]
fn metrics_and_statusz_stay_consistent_under_concurrent_load() {
    let fx = fixture();
    let server = start_server(0, 0, 0);
    let addr = server.addr();
    let done = AtomicBool::new(false);

    let client_errors: Vec<String> = std::thread::scope(|scope| {
        let clients: Vec<_> = (0..8)
            .map(|client: usize| {
                let pages = &fx.pages;
                scope.spawn(move || -> Result<u64, String> {
                    let mut ok = 0u64;
                    for round in 0..6 {
                        let i = (client * 5 + round * 7) % pages.len();
                        let (product, html) = &pages[i];
                        let (status, body) = http_request(
                            addr,
                            "POST",
                            "/extract",
                            &page_request_body(*product, html),
                        )?;
                        if status != 200 {
                            return Err(format!("client {client}: status {status}: {body}"));
                        }
                        ok += 1;
                    }
                    Ok(ok)
                })
            })
            .collect();

        let scraper = scope.spawn(|| -> Result<(), String> {
            let mut last_requests = 0.0f64;
            let mut scrapes = 0u32;
            while !done.load(Ordering::Relaxed) || scrapes < 3 {
                let (status, text) = http_request(addr, "GET", "/metrics", "")?;
                if status != 200 {
                    return Err(format!("/metrics status {status}"));
                }
                validate(&text).map_err(|e| format!("/metrics schema: {e}"))?;
                let samples = parse_text(&text).map_err(|e| format!("/metrics parse: {e}"))?;
                let requests = sample_value(&samples, "serve_live_requests", None)
                    .ok_or("serve_live_requests missing")?;
                if requests < last_requests {
                    return Err(format!(
                        "serve_live_requests went backwards: {last_requests} -> {requests}"
                    ));
                }
                last_requests = requests;

                let (status, body) = http_request(addr, "GET", "/statusz", "")?;
                if status != 200 {
                    return Err(format!("/statusz status {status}"));
                }
                let doc = Json::parse(&body).map_err(|e| format!("/statusz not JSON: {e}"))?;
                for key in ["bundle", "uptime_seconds", "requests", "pool", "windows"] {
                    if doc.get(key).is_none() {
                        return Err(format!("/statusz missing {key:?}"));
                    }
                }
                scrapes += 1;
            }
            Ok(())
        });

        let mut errors = Vec::new();
        let mut total_ok = 0u64;
        for c in clients {
            match c.join().expect("client panicked") {
                Ok(n) => total_ok += n,
                Err(e) => errors.push(e),
            }
        }
        done.store(true, Ordering::Relaxed);
        if let Err(e) = scraper.join().expect("scraper panicked") {
            errors.push(e);
        }

        // After the load drains, the server-side view must account for
        // every client-observed success.
        let (_, text) = http_request(addr, "GET", "/metrics", "").expect("final scrape");
        let samples = parse_text(&text).expect("final scrape parses");
        let ok_count = sample_value(&samples, "serve_live_responses", Some(("status", "200")))
            .expect("serve_live_responses{status=200} present");
        if (ok_count as u64) < total_ok {
            errors.push(format!(
                "server saw {ok_count} OKs but clients got {total_ok}"
            ));
        }
        errors
    });

    assert!(client_errors.is_empty(), "{client_errors:?}");
    server.shutdown();
}

/// Byte-identical `/extract` responses with all telemetry features on
/// (sample every request, 0-threshold slow capture is the closest we
/// can get — 1ms catches real extraction) versus everything off, and
/// both must equal direct in-process extraction at PAE_JOBS=1 and 4.
#[test]
fn sampling_and_slow_capture_never_change_extraction_bytes() {
    let fx = fixture();
    let direct = extractor();
    let at_one: Vec<Triple> = pae_runtime::with_jobs(1, || direct.extract_pages(&fx.pages));
    let at_four: Vec<Triple> = pae_runtime::with_jobs(4, || direct.extract_pages(&fx.pages));
    assert_eq!(at_one, at_four, "extraction depends on PAE_JOBS");

    let plain = start_server(0, 0, 0);
    let instrumented = start_server(0, 1, 1); // sample 1-in-1, capture >1ms

    let batch = batch_request_body(&fx.pages);
    let (s1, b1) = http_request(plain.addr(), "POST", "/extract", &batch).expect("plain");
    let (s2, b2) = http_request(instrumented.addr(), "POST", "/extract", &batch).expect("instr");
    assert_eq!((s1, s2), (200, 200));
    assert_eq!(b1, b2, "telemetry changed /extract bytes");
    assert_eq!(
        pae_serve::parse_extract_response(&b1).expect("parse"),
        at_one,
        "served batch diverges from direct extraction"
    );

    for (product, html) in fx.pages.iter().take(6) {
        let body = page_request_body(*product, html);
        let (s1, b1) = http_request(plain.addr(), "POST", "/extract", &body).expect("plain");
        let (s2, b2) = http_request(instrumented.addr(), "POST", "/extract", &body).expect("instr");
        assert_eq!((s1, s2), (200, 200));
        assert_eq!(b1, b2, "telemetry changed single-page bytes");
    }

    // The instrumented server captured the slow batch request.
    let (status, body) =
        http_request(instrumented.addr(), "GET", "/statusz?slow=1", "").expect("statusz");
    assert_eq!(status, 200);
    let doc = Json::parse(&body).expect("statusz JSON");
    let slow = doc.get("slow").expect("slow section");
    assert!(
        slow.get("seen").and_then(Json::as_u64).unwrap_or(0) >= 1,
        "24-page batch did not trip the 1ms slow threshold: {body}"
    );
    let Some(Json::Arr(captured)) = slow.get("requests") else {
        panic!("?slow=1 did not dump the ring: {body}");
    };
    let capture = captured.first().expect("at least one capture");
    for key in [
        "seq",
        "route",
        "status",
        "total_ns",
        "read_ns",
        "handle_ns",
        "write_ns",
        "body_bytes",
        "body_digest",
        "at_s",
    ] {
        assert!(capture.get(key).is_some(), "slow capture missing {key:?}");
    }

    plain.shutdown();
    instrumented.shutdown();
}

/// Sampling is 1-in-N on the request counter: with N=1 and obs
/// collection enabled, every request emits a `serve.request.sample`
/// event carrying the per-stage timings.
#[test]
fn deterministic_sampling_emits_trace_events() {
    let fx = fixture();
    pae_obs::set_enabled(true);
    let server = start_server(0, 1, 0);
    for (product, html) in fx.pages.iter().take(3) {
        let (status, _) = http_request(
            server.addr(),
            "POST",
            "/extract",
            &page_request_body(*product, html),
        )
        .expect("extract");
        assert_eq!(status, 200);
    }
    server.shutdown(); // join workers so all records are flushed
    let samples: Vec<_> = pae_obs::snapshot()
        .into_iter()
        .filter(|r| r.name == "serve.request.sample")
        .collect();
    pae_obs::set_enabled(false);
    assert!(
        samples.len() >= 3,
        "expected >=3 sampled events, got {}",
        samples.len()
    );
    for record in &samples {
        for key in [
            "seq",
            "route",
            "total_ns",
            "read_ns",
            "handle_ns",
            "body_digest",
        ] {
            assert!(record.field(key).is_some(), "sample event missing {key:?}");
        }
    }
}

/// `/healthz` and `/statusz` both report the bundle identity a replica
/// fleet needs for skew detection, and `/metrics` carries the process
/// gauges.
#[test]
fn bundle_identity_and_process_gauges_are_exposed() {
    let server = start_server(0xfeed_beef_dead_cafe, 0, 0);
    let addr = server.addr();

    let (status, body) = http_request(addr, "GET", "/healthz", "").expect("healthz");
    assert_eq!(status, 200);
    let doc = Json::parse(&body).expect("healthz JSON");
    assert_eq!(
        doc.get("bundle_hash").and_then(Json::as_str),
        Some("feedbeefdeadcafe")
    );
    assert_eq!(
        doc.get("schema_version").and_then(Json::as_u64),
        Some(pae_core::BUNDLE_SCHEMA_VERSION as u64)
    );

    let (status, body) = http_request(addr, "GET", "/statusz", "").expect("statusz");
    assert_eq!(status, 200);
    let doc = Json::parse(&body).expect("statusz JSON");
    let bundle = doc.get("bundle").expect("bundle section");
    assert_eq!(
        bundle.get("content_hash").and_then(Json::as_str),
        Some("feedbeefdeadcafe")
    );
    assert_eq!(
        bundle.get("schema_version").and_then(Json::as_u64),
        Some(pae_core::BUNDLE_SCHEMA_VERSION as u64)
    );
    // No bundle file behind the test fixture, so load time is 0.
    assert_eq!(bundle.get("load_ns").and_then(Json::as_u64), Some(0));

    let (status, text) = http_request(addr, "GET", "/metrics", "").expect("metrics");
    assert_eq!(status, 200);
    validate(&text).expect("metrics exposition validates");
    let samples = parse_text(&text).expect("metrics parse");
    assert!(sample_value(&samples, "process_uptime_seconds", None).is_some());
    #[cfg(target_os = "linux")]
    assert!(
        sample_value(&samples, "process_rss_bytes", None).is_some_and(|v| v > 0.0),
        "RSS gauge missing on linux"
    );
    assert_eq!(
        sample_value(&samples, "serve_live_workers", None),
        Some(4.0)
    );

    // Telemetry routes are themselves routed: a bad method is a 405.
    let (status, _) = http_request(addr, "POST", "/metrics", "").expect("bad method");
    assert_eq!(status, 405);
    server.shutdown();
}
