//! `pae-serve <bundle.paeb> [--addr HOST:PORT] [--workers N]
//! [--slow-ms MS] [--trace-sample N] [--drift-threshold X]
//! [--empty-rate-threshold X] [--profile]`
//!
//! Loads a frozen model bundle once, then serves `/extract`,
//! `/healthz`, `/metrics`, and `/statusz` until the process is killed.
//! The bound address is printed on stdout as `listening on <addr>` so
//! callers binding port 0 can discover the port.
//!
//! `--slow-ms MS` captures requests slower than MS into the bounded
//! ring dumped by `/statusz?slow=1` (0 = off). `--trace-sample N`
//! samples 1-in-N requests into the obs trace (also settable via
//! `PAE_SERVE_TRACE_SAMPLE`; the flag wins).
//!
//! Schema-v3 bundles carry freeze-time reference stats; the server
//! scores live traffic against them and flags `/statusz` degraded when
//! any attribute's drift exceeds `--drift-threshold` (PSI, default
//! 0.25) or the windowed empty-extraction rate exceeds
//! `--empty-rate-threshold` (default 0.5). Older bundles serve in
//! no-reference mode (live `/qualityz` rates only, no drift scores).
//!
//! `--profile` (or
//! `PAE_PROF=1`) turns on the counting allocator so `/metrics` exposes
//! `prof.*` families and `/statusz` reports live allocator counters.

use std::process::ExitCode;

use pae_serve::{Server, ServerConfig};

fn usage() -> ExitCode {
    eprintln!(
        "usage: pae-serve <bundle.paeb> [--addr HOST:PORT] [--workers N] \
         [--slow-ms MS] [--trace-sample N] [--drift-threshold X] \
         [--empty-rate-threshold X] [--profile]"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut bundle_path: Option<String> = None;
    let mut config = ServerConfig::default();
    let mut profile = !matches!(
        std::env::var("PAE_PROF").ok().as_deref(),
        None | Some("") | Some("0")
    );
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--profile" => profile = true,
            "--addr" => match it.next() {
                Some(a) => config.addr = a,
                None => return usage(),
            },
            "--workers" => match it.next().and_then(|w| w.parse().ok()) {
                Some(w) => config.workers = w,
                None => return usage(),
            },
            "--slow-ms" => match it.next().and_then(|w| w.parse().ok()) {
                Some(ms) => config.slow_ms = ms,
                None => return usage(),
            },
            "--trace-sample" => match it.next().and_then(|w| w.parse().ok()) {
                Some(n) => config.trace_sample = n,
                None => return usage(),
            },
            "--drift-threshold" => match it.next().and_then(|w| w.parse().ok()) {
                Some(x) => config.drift_threshold = x,
                None => return usage(),
            },
            "--empty-rate-threshold" => match it.next().and_then(|w| w.parse().ok()) {
                Some(x) => config.empty_rate_threshold = x,
                None => return usage(),
            },
            "--help" | "-h" => return usage(),
            _ if bundle_path.is_none() && !arg.starts_with('-') => bundle_path = Some(arg),
            _ => return usage(),
        }
    }
    let Some(bundle_path) = bundle_path else {
        return usage();
    };
    if profile {
        pae_obs::set_prof_enabled(true);
        eprintln!("pae-serve: allocation profiling on (prof.* metric families live)");
    }

    // Load = validate + assemble: on schema-v2 bundles the extractor
    // borrows the loaded bytes (zero-copy), so this is the cold-start
    // wall time /statusz reports as bundle.load_ns.
    let load_start = std::time::Instant::now();
    let loaded = match pae_core::LoadedBundle::open(std::path::Path::new(&bundle_path)) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("pae-serve: {bundle_path}: {e}");
            return ExitCode::from(1);
        }
    };
    let extractor = match loaded.extractor() {
        Ok(x) => x,
        Err(e) => {
            eprintln!("pae-serve: cannot rehydrate model: {e}");
            return ExitCode::from(1);
        }
    };
    let load_ns = load_start.elapsed().as_nanos() as u64;
    let hash = loaded.content_hash();
    config.bundle_hash = hash;
    config.bundle_schema = loaded.schema_version();
    config.bundle_load_ns = load_ns;
    config.reference = match loaded.reference() {
        Ok(r) => r,
        Err(e) => {
            eprintln!("pae-serve: cannot decode reference stats ({e}); serving without");
            None
        }
    };
    match &config.reference {
        Some(r) => eprintln!(
            "pae-serve: reference stats over {} pages ({} attrs, {} backends) — drift scoring on",
            r.pages,
            r.attrs.len(),
            r.backends.len()
        ),
        None => eprintln!(
            "pae-serve: no reference stats in bundle (schema v{}) — serving in no-reference mode",
            loaded.schema_version()
        ),
    }
    eprintln!(
        "pae-serve: loaded bundle {hash:016x} (schema v{}, {} attrs, {:.3} ms)",
        loaded.schema_version(),
        extractor.attrs().len(),
        load_ns as f64 / 1e6
    );
    let server = match Server::start(extractor, &config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("pae-serve: {e}");
            return ExitCode::from(1);
        }
    };
    println!("listening on {}", server.addr());
    server.join();
    ExitCode::SUCCESS
}
