#![warn(missing_docs)]

//! HTTP extraction service over frozen model bundles.
//!
//! The serving half of the freeze-then-serve split: [`Server::start`]
//! takes a rehydrated [`FrozenExtractor`] (usually from
//! [`pae_core::read_bundle`]), binds a std `TcpListener`, and answers
//! extraction requests from a bounded worker pool. The extractor —
//! tokenizer lattice, PoS lexicon, label space, tagger parameters,
//! frozen cleaning state — is built **once** and shared warm across
//! all workers behind an `Arc`; no per-request model work happens
//! beyond running the page pipeline itself.
//!
//! ## Protocol
//!
//! Plain HTTP/1.1, one request per connection:
//!
//! * `GET /healthz` → `200` with `{"status":"ok","attrs":N}`.
//! * `POST /extract` with a JSON body. Either a single page
//!   `{"product":7,"html":"<html>…"}` or a batch
//!   `{"pages":[{"product":1,"html":"…"},…]}`. Batches run through
//!   [`pae_runtime::parallel_map`], so one request fans out across the
//!   `PAE_JOBS`-bounded compute pool while the connection pool stays
//!   small. Response: `{"pages":N,"triples":[{"product":…,"attr":"…",
//!   "value":"…"},…]}` with triples in deterministic (page-order,
//!   sorted-within-page) order — byte-identical at any worker count.
//!
//! Malformed requests get typed 4xx JSON errors; the server never
//! panics on client input.
//!
//! ## Telemetry
//!
//! Every request records a `serve.request` span, a per-route
//! `serve.request_ns` histogram sample, and `serve.responses` counters
//! labelled by status code, all through [`pae_obs`] so the existing
//! exporters (JSONL ledger, `pae-report check`) see serving the same
//! way they see training. On top of that, the server keeps its own
//! always-on live telemetry (independent of the obs trace switch) and
//! exposes it over two read-only endpoints:
//!
//! * `GET /metrics` → Prometheus text: the obs registry merged with
//!   `serve.live.*` (windowed p50/p90/p99 per route over 1m/5m,
//!   response-code counters, in-flight and pool gauges, cumulative
//!   per-route latency histograms) and `process.*` gauges (RSS,
//!   threads, uptime).
//! * `GET /statusz` → JSON: bundle content hash + schema version,
//!   uptime, per-route in-flight, windowed quantiles, response-code
//!   counters, pool utilization, the extraction-quality verdict
//!   (`"quality":"ok"|"degraded"`), and with `?slow=1` the bounded
//!   ring of captured slow requests (`--slow-ms` threshold; per-stage
//!   timings and a body digest, never the body itself).
//! * `GET /qualityz` → JSON: the field-quality monitor's view — live
//!   windowed per-attribute triple rates, empty-extraction and OOV
//!   rates, value heavy hitters, and drift scores against the bundle's
//!   freeze-time reference stats (schema v3; `serve.quality.*` on
//!   `/metrics` mirrors it).
//!
//! Requests can also be *sampled* into the obs trace deterministically
//! (1-in-N by request counter, `PAE_SERVE_TRACE_SAMPLE` — no RNG). All
//! of this records strictly after the response bytes are written, so
//! telemetry provably never changes `/extract` output.

use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use pae_core::frozen::FrozenExtractor;
use pae_core::quality::ReferenceStats;
use pae_core::Triple;
use pae_obs::json::{self, Json};

mod quality;
mod telemetry;

use quality::{PageSample, QualityMonitor};
use telemetry::{RequestTiming, Telemetry};

/// Upper bound on request head (request line + headers).
const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Upper bound on a request body; product pages are small, batches of
/// a few thousand pages still fit comfortably.
const MAX_BODY_BYTES: usize = 64 * 1024 * 1024;

/// How a [`Server`] binds and sizes itself.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:8391`. Port 0 picks an ephemeral
    /// port (the bound address is reported by [`Server::addr`]).
    pub addr: String,
    /// Connection worker threads. Batch extraction additionally uses
    /// the `PAE_JOBS` compute pool *inside* a request, so this only
    /// needs to cover concurrent connections, not cores.
    pub workers: usize,
    /// Content hash of the bundle being served, reported on
    /// `/healthz` and `/statusz` so replica fleets can detect bundle
    /// skew. 0 when the model did not come from a bundle (e.g. frozen
    /// in-process by tests). Use [`pae_core::read_bundle_with_hash`]
    /// to obtain it.
    pub bundle_hash: u64,
    /// `PAEB` schema version of the bundle being served, reported on
    /// `/statusz`. Defaults to the current writer schema.
    pub bundle_schema: u32,
    /// Wall-clock nanoseconds the binary spent loading the bundle
    /// (validate + build extractor), reported on `/statusz` and as the
    /// `serve.bundle.load_ns` gauge. 0 when not loaded from a bundle.
    pub bundle_load_ns: u64,
    /// Sample 1-in-N requests into the obs trace as
    /// `serve.request.sample` events; 0 disables. Deterministic
    /// (request-counter based, no RNG). Defaults from
    /// `PAE_SERVE_TRACE_SAMPLE`.
    pub trace_sample: u64,
    /// Capture requests slower than this many milliseconds into the
    /// bounded slow-request ring (`/statusz?slow=1`); 0 disables.
    pub slow_ms: u64,
    /// Freeze-time reference stats from the bundle's quality section
    /// (schema v3; [`pae_core::LoadedBundle::reference`]). `None` runs
    /// the quality monitor in *no-reference* mode: live field telemetry
    /// only, no drift scores.
    pub reference: Option<ReferenceStats>,
    /// Drift score above which an attribute (PSI over value lengths) or
    /// backend (Jensen–Shannon over confidences) flags the server
    /// `degraded`. The default is the conventional PSI "drifted" line.
    pub drift_threshold: f64,
    /// Fraction of pages with zero extracted triples (5m window) above
    /// which the server flags `degraded`.
    pub empty_rate_threshold: f64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:8391".to_owned(),
            workers: pae_runtime::jobs().clamp(2, 8),
            bundle_hash: 0,
            bundle_schema: pae_core::BUNDLE_SCHEMA_VERSION,
            bundle_load_ns: 0,
            trace_sample: trace_sample_from_env(),
            slow_ms: 0,
            reference: None,
            drift_threshold: 0.25,
            empty_rate_threshold: 0.5,
        }
    }
}

/// Parses `PAE_SERVE_TRACE_SAMPLE` (1-in-N sampling; absent, empty, or
/// unparsable → 0 = off).
pub fn trace_sample_from_env() -> u64 {
    std::env::var("PAE_SERVE_TRACE_SAMPLE")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(0)
}

/// A running extraction server. Dropping it without calling
/// [`Server::shutdown`] leaves the threads running for the process
/// lifetime (what the CLI binary wants); tests call `shutdown`.
pub struct Server {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds and starts serving `extractor`. Returns once the listener
    /// is accepting, so a follow-up connect cannot race the bind.
    pub fn start(extractor: FrozenExtractor, config: &ServerConfig) -> Result<Server, String> {
        let listener =
            TcpListener::bind(&config.addr).map_err(|e| format!("bind {}: {e}", config.addr))?;
        let addr = listener
            .local_addr()
            .map_err(|e| format!("local_addr: {e}"))?;
        let stop = Arc::new(AtomicBool::new(false));
        let shared = Arc::new(extractor);
        let (tx, rx) = mpsc::channel::<TcpStream>();
        let rx = Arc::new(Mutex::new(rx));

        let n_workers = config.workers.max(1);
        let telemetry = Arc::new(Telemetry::new(
            config.bundle_hash,
            config.bundle_schema,
            config.bundle_load_ns,
            config.trace_sample,
            config.slow_ms,
            n_workers,
        ));
        let monitor = Arc::new(QualityMonitor::new(
            shared.attrs().to_vec(),
            shared.backend_names(),
            config.reference.clone(),
            config.drift_threshold,
            config.empty_rate_threshold,
        ));
        let mut workers = Vec::with_capacity(n_workers);
        for i in 0..n_workers {
            let rx = Arc::clone(&rx);
            let extractor = Arc::clone(&shared);
            let telemetry = Arc::clone(&telemetry);
            let monitor = Arc::clone(&monitor);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("pae-serve-{i}"))
                    .spawn(move || loop {
                        let stream = match rx.lock().expect("worker queue poisoned").recv() {
                            Ok(s) => s,
                            Err(_) => break, // acceptor gone: shutdown
                        };
                        let _busy = telemetry.worker_busy();
                        handle_connection(stream, &extractor, &telemetry, &monitor);
                    })
                    .map_err(|e| format!("spawn worker: {e}"))?,
            );
        }

        let stop_accept = Arc::clone(&stop);
        let acceptor = std::thread::Builder::new()
            .name("pae-serve-accept".to_owned())
            .spawn(move || {
                for conn in listener.incoming() {
                    if stop_accept.load(Ordering::SeqCst) {
                        break;
                    }
                    match conn {
                        // Worker pool gone means shutdown raced us.
                        Ok(stream) => {
                            if tx.send(stream).is_err() {
                                break;
                            }
                        }
                        Err(_) => continue,
                    }
                }
                // Dropping `tx` here releases the workers.
            })
            .map_err(|e| format!("spawn acceptor: {e}"))?;

        pae_obs::gauge_set("serve.workers", &[], n_workers as f64);
        Ok(Server {
            addr,
            stop,
            acceptor: Some(acceptor),
            workers,
        })
    }

    /// The address the listener actually bound (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, drains the worker pool, and joins all threads.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }

    /// Blocks the calling thread until the acceptor exits (i.e.
    /// forever, absent a shutdown). The CLI binary's main loop.
    pub fn join(mut self) {
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
    }
}

// ---------------------------------------------------------------------
// Request handling.

struct Response {
    status: u16,
    content_type: &'static str,
    body: String,
}

impl Response {
    fn ok(body: String) -> Response {
        Response {
            status: 200,
            content_type: "application/json",
            body,
        }
    }

    /// A `200` carrying Prometheus exposition text instead of JSON.
    fn ok_text(body: String) -> Response {
        Response {
            status: 200,
            content_type: "text/plain; version=0.0.4",
            body,
        }
    }

    fn error(status: u16, message: &str) -> Response {
        let mut body = String::from("{\"error\":");
        json::write_str(&mut body, message);
        body.push('}');
        Response {
            status,
            content_type: "application/json",
            body,
        }
    }
}

fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        _ => "Internal Server Error",
    }
}

fn handle_connection(
    mut stream: TcpStream,
    extractor: &FrozenExtractor,
    telemetry: &Telemetry,
    monitor: &QualityMonitor,
) {
    let started = Instant::now();
    let _guard = pae_obs::span("serve.request");
    let mut timing = RequestTiming::default();
    let (route, response, samples) = match read_request(&mut stream) {
        Ok((method, path, body)) => {
            timing.read_ns = started.elapsed().as_nanos() as u64;
            timing.body_bytes = body.len() as u64;
            timing.body_digest = pae_core::bundle::fnv1a(&body);
            let route = route_name(&method, &path);
            let handle_start = Instant::now();
            let (response, samples) = {
                let _in_flight = telemetry.enter(route);
                dispatch(route, &method, &path, &body, extractor, telemetry, monitor)
            };
            timing.handle_ns = handle_start.elapsed().as_nanos() as u64;
            (route, response, samples)
        }
        Err(resp) => {
            timing.read_ns = started.elapsed().as_nanos() as u64;
            ("malformed", resp, None)
        }
    };
    let status_label = match response.status {
        200 => "200",
        400 => "400",
        404 => "404",
        405 => "405",
        413 => "413",
        _ => "5xx",
    };
    pae_obs::counter_add("serve.responses", &[("status", status_label)], 1);
    pae_obs::observe(
        "serve.request_ns",
        &[("route", route)],
        started.elapsed().as_nanos() as f64,
    );
    // The monotonic request id, echoed to the client and stamped on the
    // slow ring and sampled trace events for cross-correlation.
    let seq = telemetry.next_seq();
    let head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\n\
         x-pae-request: {seq}\r\nConnection: close\r\n\r\n",
        response.status,
        status_text(response.status),
        response.content_type,
        response.body.len()
    );
    let write_start = Instant::now();
    let _ = stream
        .write_all(head.as_bytes())
        .and_then(|()| stream.write_all(response.body.as_bytes()))
        .and_then(|()| stream.flush());
    timing.write_ns = write_start.elapsed().as_nanos() as u64;
    // All live telemetry records after the response is on the wire:
    // sampling, slow-capture, and quality monitoring cannot influence
    // what was sent.
    telemetry.record(route, response.status, status_label, &timing, seq);
    if let Some(samples) = samples {
        monitor.record(telemetry.now_s(), &samples);
    }
}

/// Reads one HTTP/1.1 request: `(method, path, body)`. Protocol
/// violations come back as ready-made error responses.
fn read_request(stream: &mut TcpStream) -> Result<(String, String, Vec<u8>), Response> {
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 4096];
    let head_end = loop {
        if let Some(i) = find_head_end(&buf) {
            break i;
        }
        if buf.len() > MAX_HEAD_BYTES {
            return Err(Response::error(400, "request head too large"));
        }
        let n = stream
            .read(&mut chunk)
            .map_err(|e| Response::error(400, &format!("read: {e}")))?;
        if n == 0 {
            return Err(Response::error(400, "connection closed mid-request"));
        }
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| Response::error(400, "request head is not UTF-8"))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or_default();
    let mut parts = request_line.split(' ');
    let method = parts.next().unwrap_or_default().to_owned();
    let path = parts.next().unwrap_or_default().to_owned();
    if method.is_empty() || path.is_empty() {
        return Err(Response::error(400, "malformed request line"));
    }
    let mut content_length = 0usize;
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| Response::error(400, "invalid Content-Length"))?;
            }
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err(Response::error(413, "request body too large"));
    }
    let mut body = buf[head_end + 4..].to_vec();
    while body.len() < content_length {
        let n = stream
            .read(&mut chunk)
            .map_err(|e| Response::error(400, &format!("read body: {e}")))?;
        if n == 0 {
            return Err(Response::error(400, "connection closed mid-body"));
        }
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(content_length);
    Ok((method, path, body))
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Maps a request to its route label (query string ignored). The
/// label is decided before dispatch so in-flight gauges can bracket
/// the handler.
fn route_name(method: &str, path: &str) -> &'static str {
    let base = path.split('?').next().unwrap_or(path);
    match (method, base) {
        ("GET", "/healthz") => "healthz",
        ("POST", "/extract") => "extract",
        ("GET", "/metrics") => "metrics",
        ("GET", "/statusz") => "statusz",
        ("GET", "/qualityz") => "qualityz",
        (_, "/healthz" | "/extract" | "/metrics" | "/statusz" | "/qualityz") => "bad_method",
        _ => "not_found",
    }
}

fn dispatch(
    route: &'static str,
    method: &str,
    path: &str,
    body: &[u8],
    extractor: &FrozenExtractor,
    telemetry: &Telemetry,
    monitor: &QualityMonitor,
) -> (Response, Option<Vec<PageSample>>) {
    let response = match route {
        "healthz" => healthz(extractor, telemetry),
        "extract" => return extract(body, extractor),
        "metrics" => {
            let mut metrics = telemetry.metrics_extra();
            metrics.extend(monitor.metrics(telemetry.now_s()));
            Response::ok_text(pae_obs::export::prometheus::render_live(metrics))
        }
        "statusz" => {
            let query = path.split_once('?').map(|(_, q)| q).unwrap_or("");
            let include_slow = query.split('&').any(|kv| kv == "slow=1" || kv == "slow");
            Response::ok(
                telemetry.statusz_json(include_slow, Some(monitor.flag(telemetry.now_s()))),
            )
        }
        "qualityz" => Response::ok(monitor.qualityz_json(telemetry.now_s())),
        "bad_method" => Response::error(405, &format!("method {method} not allowed")),
        _ => Response::error(404, &format!("no route {path}")),
    };
    (response, None)
}

fn healthz(extractor: &FrozenExtractor, telemetry: &Telemetry) -> Response {
    Response::ok(format!(
        "{{\"status\":\"ok\",\"attrs\":{},\"bundle_hash\":\"{:016x}\",\"schema_version\":{}}}",
        extractor.attrs().len(),
        telemetry.bundle_hash,
        telemetry.schema_version
    ))
}

fn extract(body: &[u8], extractor: &FrozenExtractor) -> (Response, Option<Vec<PageSample>>) {
    let text = match std::str::from_utf8(body) {
        Ok(t) => t,
        Err(_) => return (Response::error(400, "body is not UTF-8"), None),
    };
    let doc = match Json::parse(text) {
        Ok(d) => d,
        Err(e) => {
            return (
                Response::error(400, &format!("invalid JSON body: {e}")),
                None,
            )
        }
    };
    let pages = match parse_pages(&doc) {
        Ok(p) => p,
        Err(e) => return (Response::error(400, &e), None),
    };
    let n_pages = pages.len();
    // The observed path returns byte-identical triples plus a per-page
    // read-only overlay (tokens, OOV, backend confidences) that the
    // quality monitor folds in *after* the response is written.
    let per_page: Vec<PageSample> = if let [(product, html)] = pages.as_slice() {
        vec![extractor.extract_page_observed(*product, html)]
    } else {
        extractor.extract_pages_observed(&pages)
    };
    let n_triples: usize = per_page.iter().map(|(t, _)| t.len()).sum();
    pae_obs::counter_add("serve.pages", &[], n_pages as u64);
    pae_obs::counter_add("serve.triples", &[], n_triples as u64);
    let body = render_triples(n_pages, per_page.iter().flat_map(|(t, _)| t));
    (Response::ok(body), Some(per_page))
}

/// Accepts `{"product":N,"html":"…"}` or `{"pages":[{…},…]}`.
fn parse_pages(doc: &Json) -> Result<Vec<(u32, String)>, String> {
    if let Some(Json::Arr(items)) = doc.get("pages") {
        let mut pages = Vec::with_capacity(items.len());
        for (i, item) in items.iter().enumerate() {
            pages.push(parse_page(item).map_err(|e| format!("pages[{i}]: {e}"))?);
        }
        return Ok(pages);
    }
    if doc.get("html").is_some() {
        return Ok(vec![parse_page(doc)?]);
    }
    Err("body must have \"html\" or \"pages\"".to_owned())
}

fn parse_page(item: &Json) -> Result<(u32, String), String> {
    let html = item
        .get("html")
        .and_then(Json::as_str)
        .ok_or("missing string field \"html\"")?;
    let product = match item.get("product") {
        None => 0,
        Some(p) => {
            let raw = p
                .as_u64()
                .ok_or("\"product\" must be a non-negative integer")?;
            u32::try_from(raw).map_err(|_| "\"product\" exceeds u32".to_owned())?
        }
    };
    Ok((product, html.to_owned()))
}

fn render_triples<'a>(pages: usize, triples: impl IntoIterator<Item = &'a Triple>) -> String {
    let mut out = format!("{{\"pages\":{pages},\"triples\":[");
    for (i, t) in triples.into_iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("{{\"product\":{},\"attr\":", t.product));
        json::write_str(&mut out, &t.attr);
        out.push_str(",\"value\":");
        json::write_str(&mut out, &t.value);
        out.push('}');
    }
    out.push_str("]}");
    out
}

// ---------------------------------------------------------------------
// Minimal blocking client, shared by the load generator and tests.

/// One blocking HTTP/1.1 request against `addr`; returns
/// `(status, body)`.
pub fn http_request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: &str,
) -> Result<(u16, String), String> {
    let (status, _, body) = http_request_with_headers(addr, method, path, body)?;
    Ok((status, body))
}

/// Response headers as lower-cased `(name, value)` pairs.
pub type Headers = Vec<(String, String)>;

/// Like [`http_request`], but also returns the response [`Headers`] —
/// e.g. to read the `x-pae-request` id the server stamps on every
/// response.
pub fn http_request_with_headers(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: &str,
) -> Result<(u16, Headers, String), String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream
        .write_all(head.as_bytes())
        .and_then(|()| stream.write_all(body.as_bytes()))
        .map_err(|e| format!("send: {e}"))?;
    let mut raw = Vec::new();
    stream
        .read_to_end(&mut raw)
        .map_err(|e| format!("recv: {e}"))?;
    let text = String::from_utf8(raw).map_err(|_| "response is not UTF-8".to_owned())?;
    let (head, payload) = text
        .split_once("\r\n\r\n")
        .ok_or("response has no header/body separator")?;
    let mut lines = head.split("\r\n");
    let status_line = lines.next().unwrap_or_default();
    let status = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| format!("malformed status line: {status_line:?}"))?;
    let headers = lines
        .filter_map(|line| line.split_once(':'))
        .map(|(name, value)| (name.trim().to_ascii_lowercase(), value.trim().to_owned()))
        .collect();
    Ok((status, headers, payload.to_owned()))
}

/// Parses an `/extract` response body back into triples.
pub fn parse_extract_response(body: &str) -> Result<Vec<Triple>, String> {
    let doc = Json::parse(body)?;
    let Some(Json::Arr(items)) = doc.get("triples") else {
        return Err("response has no \"triples\" array".to_owned());
    };
    let mut triples = Vec::with_capacity(items.len());
    for item in items {
        triples.push(Triple {
            product: item
                .get("product")
                .and_then(Json::as_u64)
                .ok_or("triple missing product")? as u32,
            attr: item
                .get("attr")
                .and_then(Json::as_str)
                .ok_or("triple missing attr")?
                .to_owned(),
            value: item
                .get("value")
                .and_then(Json::as_str)
                .ok_or("triple missing value")?
                .to_owned(),
        });
    }
    Ok(triples)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_and_parse_round_trip() {
        let triples = vec![
            Triple {
                product: 3,
                attr: "weight".to_owned(),
                value: "2.5 kg".to_owned(),
            },
            Triple {
                product: 4,
                attr: "color \"x\"".to_owned(),
                value: "noir\nmat".to_owned(),
            },
        ];
        let body = render_triples(2, &triples);
        let back = parse_extract_response(&body).expect("parse");
        assert_eq!(back, triples);
        let doc = Json::parse(&body).expect("valid JSON");
        assert_eq!(doc.get("pages").and_then(Json::as_u64), Some(2));
    }

    #[test]
    fn page_parsing_validates_shapes() {
        let single = Json::parse("{\"product\":7,\"html\":\"<html></html>\"}").unwrap();
        assert_eq!(
            parse_pages(&single).unwrap(),
            vec![(7, "<html></html>".to_owned())]
        );
        // Product defaults to 0 when omitted.
        let bare = Json::parse("{\"html\":\"x\"}").unwrap();
        assert_eq!(parse_pages(&bare).unwrap(), vec![(0, "x".to_owned())]);
        let batch = Json::parse(
            "{\"pages\":[{\"product\":1,\"html\":\"a\"},{\"product\":2,\"html\":\"b\"}]}",
        )
        .unwrap();
        assert_eq!(parse_pages(&batch).unwrap().len(), 2);
        for bad in [
            "{}",
            "{\"pages\":[{\"product\":1}]}",
            "{\"product\":-1,\"html\":\"x\"}",
            "{\"product\":4294967296,\"html\":\"x\"}",
        ] {
            let doc = Json::parse(bad).unwrap();
            assert!(parse_pages(&doc).is_err(), "accepted {bad}");
        }
    }
}
