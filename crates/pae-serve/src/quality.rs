//! Online extraction-quality monitoring: live windowed field telemetry
//! scored against the bundle's freeze-time [`ReferenceStats`].
//!
//! A server that answers every request with `200 OK` can still be
//! quietly broken *for the catalog it is actually seeing*: a shifted
//! traffic mix produces empty extractions, unseen values, or collapsed
//! confidences long before any latency or error-rate SLO moves. The
//! [`QualityMonitor`] watches what `/extract` responses *contain* —
//! per-attribute triple rates, empty-extraction rate, token OOV rate,
//! per-backend confidence histograms, live value heavy hitters — over
//! the same 1m/5m windows as the latency telemetry, and scores each
//! attribute's live value-length distribution against the freeze-time
//! reference with PSI (and each backend's confidence distribution with
//! Jensen–Shannon divergence).
//!
//! Like [`crate::telemetry::Telemetry`], everything here records
//! strictly **after** the response bytes are on the wire, from data the
//! instrumented extraction path produced as a read-only overlay
//! ([`pae_core::frozen::FrozenExtractor::extract_page_observed`]
//! returns byte-identical triples) — monitoring provably cannot change
//! `/extract` output. Bundles without a reference section (schema v1/v2)
//! run in *no-reference* mode: live rates are still tracked, but drift
//! scores are absent (`null` in `/qualityz`, families omitted from
//! `/metrics`) — absent, never zero, so dashboards cannot mistake
//! "nothing to compare against" for "no drift".

use std::sync::Mutex;

use pae_core::quality::{
    confidence_bucket, value_len_bucket, ReferenceStats, CONF_BUCKETS, LEN_BUCKETS, TOP_VALUES,
};
use pae_core::{PageObservation, Triple};
use pae_obs::sketch::{js_divergence, psi, SpaceSaving};
use pae_obs::{MetricKey, MetricValue};

use crate::telemetry::{EPOCH_S, N_SLOTS, WINDOWS};

/// One page's worth of response content plus side observations, carried
/// from the extract handler to the post-response recording step.
pub(crate) type PageSample = (Vec<Triple>, PageObservation);

/// Heavy-hitter capacity per attribute per ring slot.
const SLOT_HITTERS: usize = 2 * TOP_VALUES;
/// Heavy-hitter capacity of a merged window view.
const WINDOW_HITTERS: usize = 4 * TOP_VALUES;
/// Minimum pages in a window before the empty-extraction rate may flag
/// the server degraded (one empty page out of two is noise).
const MIN_PAGES: u64 = 10;
/// Minimum live triples for an attribute before its drift is scored.
const MIN_TRIPLES: u64 = 10;
/// Minimum decoded candidates before a backend's confidence divergence
/// is scored.
const MIN_CANDIDATES: u64 = 10;

/// Per-epoch accumulation: the quality analogue of a windowed-histogram
/// slot, owning fixed-bucket counts and bounded sketches only (no
/// floats, no unbounded maps).
#[derive(Clone)]
struct QSlot {
    pages: u64,
    empty: u64,
    tokens: u64,
    oov: u64,
    attr_triples: Vec<u64>,
    attr_len: Vec<Vec<u64>>,
    backend_conf: Vec<Vec<u64>>,
    hitters: Vec<SpaceSaving>,
}

impl QSlot {
    fn blank(n_attrs: usize, n_backends: usize, hitter_capacity: usize) -> QSlot {
        QSlot {
            pages: 0,
            empty: 0,
            tokens: 0,
            oov: 0,
            attr_triples: vec![0; n_attrs],
            attr_len: vec![vec![0; LEN_BUCKETS]; n_attrs],
            backend_conf: vec![vec![0; CONF_BUCKETS]; n_backends],
            hitters: vec![SpaceSaving::new(hitter_capacity.max(1)); n_attrs],
        }
    }

    fn merge(&mut self, other: &QSlot) {
        self.pages += other.pages;
        self.empty += other.empty;
        self.tokens += other.tokens;
        self.oov += other.oov;
        for (a, b) in self.attr_triples.iter_mut().zip(&other.attr_triples) {
            *a += b;
        }
        for (a, b) in self.attr_len.iter_mut().zip(&other.attr_len) {
            for (x, y) in a.iter_mut().zip(b) {
                *x += y;
            }
        }
        for (a, b) in self.backend_conf.iter_mut().zip(&other.backend_conf) {
            for (x, y) in a.iter_mut().zip(b) {
                *x += y;
            }
        }
        for (a, b) in self.hitters.iter_mut().zip(&other.hitters) {
            for (value, count, _) in b.iter() {
                a.observe_n(value, count);
            }
        }
    }
}

/// Epoch ring of [`QSlot`]s, same owner-epoch discipline as the
/// `pae_obs` windowed structures: a slot is reset when a new epoch
/// claims it, and a window read merges the slots whose owner falls in
/// the window. `u64::MAX` marks a never-written slot.
struct QualityRing {
    epoch_s: u64,
    latest: u64,
    n_attrs: usize,
    n_backends: usize,
    slots: Vec<(u64, QSlot)>,
}

impl QualityRing {
    fn new(epoch_s: u64, n_slots: usize, n_attrs: usize, n_backends: usize) -> QualityRing {
        assert!(epoch_s > 0 && n_slots > 0);
        QualityRing {
            epoch_s,
            latest: 0,
            n_attrs,
            n_backends,
            slots: vec![(u64::MAX, QSlot::blank(n_attrs, n_backends, SLOT_HITTERS)); n_slots],
        }
    }

    fn span_s(&self) -> u64 {
        self.epoch_s * self.slots.len() as u64
    }

    fn slot_mut(&mut self, now_s: u64) -> &mut QSlot {
        let epoch = (now_s / self.epoch_s).max(self.latest);
        self.latest = epoch;
        let i = (epoch % self.slots.len() as u64) as usize;
        let (owner, slot) = &mut self.slots[i];
        if *owner != epoch {
            *owner = epoch;
            *slot = QSlot::blank(self.n_attrs, self.n_backends, SLOT_HITTERS);
        }
        slot
    }

    fn window(&self, now_s: u64, width_s: u64) -> QSlot {
        let epochs = width_s.clamp(1, self.span_s()).div_ceil(self.epoch_s);
        let current = (now_s / self.epoch_s).max(self.latest);
        let oldest = current.saturating_sub(epochs - 1);
        let mut acc = QSlot::blank(self.n_attrs, self.n_backends, WINDOW_HITTERS);
        for (owner, slot) in &self.slots {
            if *owner != u64::MAX && *owner >= oldest && *owner <= current {
                acc.merge(slot);
            }
        }
        acc
    }
}

struct QInner {
    pages_total: u64,
    empty_total: u64,
    tokens_total: u64,
    oov_total: u64,
    triples_total: Vec<u64>,
    ring: QualityRing,
}

/// One attribute's live window view, with its drift score when a
/// reference exists and the window holds enough samples.
pub(crate) struct AttrSnapshot {
    pub name: String,
    pub triples: u64,
    /// Triples per page over the window.
    pub rate: f64,
    /// Freeze-time triples per page, when a reference exists.
    pub reference_rate: Option<f64>,
    /// PSI between the reference and live value-length distributions.
    /// `None` in no-reference mode or below [`MIN_TRIPLES`] live
    /// samples — absent, not zero.
    pub drift: Option<f64>,
    pub top_values: Vec<(String, u64)>,
}

/// One backend's live window view.
pub(crate) struct BackendSnapshot {
    pub name: &'static str,
    /// Decoded candidates observed in the window (pre-cleaning).
    pub candidates: u64,
    /// Jensen–Shannon divergence between reference and live confidence
    /// histograms; `None` in no-reference mode or under-sampled.
    pub confidence_js: Option<f64>,
}

/// Everything `/qualityz`, `/metrics`, and the degraded flag need about
/// one window, computed under a single lock acquisition.
pub(crate) struct WindowSnapshot {
    pub pages: u64,
    pub empty: u64,
    pub tokens: u64,
    pub oov: u64,
    pub attrs: Vec<AttrSnapshot>,
    pub backends: Vec<BackendSnapshot>,
}

impl WindowSnapshot {
    pub fn empty_rate(&self) -> f64 {
        if self.pages == 0 {
            0.0
        } else {
            self.empty as f64 / self.pages as f64
        }
    }

    pub fn oov_rate(&self) -> f64 {
        if self.tokens == 0 {
            0.0
        } else {
            self.oov as f64 / self.tokens as f64
        }
    }
}

/// Shared extraction-quality monitor. One per [`crate::Server`], next
/// to the [`crate::telemetry::Telemetry`].
pub(crate) struct QualityMonitor {
    attrs: Vec<String>,
    backends: Vec<&'static str>,
    reference: Option<ReferenceStats>,
    drift_threshold: f64,
    empty_rate_threshold: f64,
    inner: Mutex<QInner>,
}

impl QualityMonitor {
    pub(crate) fn new(
        attrs: Vec<String>,
        backends: Vec<&'static str>,
        reference: Option<ReferenceStats>,
        drift_threshold: f64,
        empty_rate_threshold: f64,
    ) -> QualityMonitor {
        let n_attrs = attrs.len();
        let n_backends = backends.len();
        QualityMonitor {
            attrs,
            backends,
            reference,
            drift_threshold,
            empty_rate_threshold,
            inner: Mutex::new(QInner {
                pages_total: 0,
                empty_total: 0,
                tokens_total: 0,
                oov_total: 0,
                triples_total: vec![0; n_attrs],
                ring: QualityRing::new(EPOCH_S, N_SLOTS, n_attrs, n_backends),
            }),
        }
    }

    /// Folds one `/extract` request's page samples. Called strictly
    /// after the response bytes were written. Deliberately does *not*
    /// write to the global obs registry: `serve.quality.*` is served
    /// per-server via [`QualityMonitor::metrics`] so two servers in one
    /// process (tests, benches) can never contaminate each other's
    /// scrape; ledger runs read `/qualityz` instead.
    pub(crate) fn record(&self, now_s: u64, samples: &[PageSample]) {
        if samples.is_empty() {
            return;
        }
        let mut inner = self.inner.lock().expect("quality lock poisoned");
        let mut req_triples = vec![0u64; self.attrs.len()];
        let mut req_empty = 0u64;
        let (mut req_tokens, mut req_oov) = (0u64, 0u64);
        let slot = inner.ring.slot_mut(now_s);
        for (triples, obs) in samples {
            slot.pages += 1;
            if triples.is_empty() {
                slot.empty += 1;
                req_empty += 1;
            }
            slot.tokens += obs.tokens;
            slot.oov += obs.oov_tokens;
            req_tokens += obs.tokens;
            req_oov += obs.oov_tokens;
            for (bi, confs) in obs.confidences.iter().enumerate() {
                let Some(bucket) = slot.backend_conf.get_mut(bi) else {
                    break;
                };
                for &c in confs {
                    bucket[confidence_bucket(c)] += 1;
                }
            }
            for t in triples {
                let Ok(i) = self.attrs.binary_search(&t.attr) else {
                    continue;
                };
                slot.attr_triples[i] += 1;
                slot.attr_len[i][value_len_bucket(t.value.chars().count())] += 1;
                slot.hitters[i].observe(&t.value);
                req_triples[i] += 1;
            }
        }
        inner.pages_total += samples.len() as u64;
        inner.empty_total += req_empty;
        inner.tokens_total += req_tokens;
        inner.oov_total += req_oov;
        for (total, n) in inner.triples_total.iter_mut().zip(&req_triples) {
            *total += n;
        }
    }

    /// The merged, scored view of one window.
    pub(crate) fn snapshot(&self, now_s: u64, width_s: u64) -> WindowSnapshot {
        let merged = {
            let inner = self.inner.lock().expect("quality lock poisoned");
            inner.ring.window(now_s, width_s)
        };
        let attrs = self
            .attrs
            .iter()
            .enumerate()
            .map(|(i, name)| {
                let triples = merged.attr_triples[i];
                let reference = self
                    .reference
                    .as_ref()
                    .and_then(|r| r.attr(name).map(|a| (a, r.pages)));
                let drift = reference.as_ref().and_then(|(a, _)| {
                    (triples >= MIN_TRIPLES).then(|| psi(&a.value_len, &merged.attr_len[i]))
                });
                let mut top_values: Vec<(String, u64)> = merged.hitters[i]
                    .top()
                    .into_iter()
                    .map(|h| (h.value, h.count))
                    .collect();
                top_values.truncate(TOP_VALUES);
                AttrSnapshot {
                    name: name.clone(),
                    triples,
                    rate: if merged.pages == 0 {
                        0.0
                    } else {
                        triples as f64 / merged.pages as f64
                    },
                    reference_rate: reference.map(|(a, pages)| a.rate(pages)),
                    drift,
                    top_values,
                }
            })
            .collect();
        let backends = self
            .backends
            .iter()
            .enumerate()
            .map(|(i, name)| {
                let live = &merged.backend_conf[i];
                let candidates: u64 = live.iter().sum();
                let confidence_js = self
                    .reference
                    .as_ref()
                    .and_then(|r| r.backends.iter().find(|b| b.backend == *name))
                    .filter(|b| b.confidence.iter().sum::<u64>() > 0)
                    .and_then(|b| {
                        (candidates >= MIN_CANDIDATES).then(|| js_divergence(&b.confidence, live))
                    });
                BackendSnapshot {
                    name,
                    candidates,
                    confidence_js,
                }
            })
            .collect();
        WindowSnapshot {
            pages: merged.pages,
            empty: merged.empty,
            tokens: merged.tokens,
            oov: merged.oov,
            attrs,
            backends,
        }
    }

    /// Whether a window's scored view breaches the configured
    /// thresholds: any attribute's drift or backend's confidence
    /// divergence above `--drift-threshold`, or the empty-extraction
    /// rate above `--empty-rate-threshold` (with at least
    /// [`MIN_PAGES`] pages of evidence).
    pub(crate) fn degraded(&self, snap: &WindowSnapshot) -> bool {
        if snap.pages >= MIN_PAGES && snap.empty_rate() > self.empty_rate_threshold {
            return true;
        }
        snap.attrs
            .iter()
            .filter_map(|a| a.drift)
            .chain(snap.backends.iter().filter_map(|b| b.confidence_js))
            .any(|score| score > self.drift_threshold)
    }

    /// The `quality` flag surfaced on `/statusz`, judged over the 5m
    /// window.
    pub(crate) fn flag(&self, now_s: u64) -> &'static str {
        if self.degraded(&self.snapshot(now_s, 300)) {
            "degraded"
        } else {
            "ok"
        }
    }

    /// The `GET /qualityz` JSON document.
    pub(crate) fn qualityz_json(&self, now_s: u64) -> String {
        use std::fmt::Write as _;
        let opt = |v: Option<f64>| v.map_or("null".to_owned(), |x| format!("{x:.6}"));
        let mut out = String::with_capacity(1024);
        match &self.reference {
            Some(r) => {
                let _ = write!(
                    out,
                    "{{\"reference\":{{\"present\":true,\"pages\":{},\"total_triples\":{},\
                     \"empty_rate\":{:.6},\"oov_rate\":{:.6}}}",
                    r.pages,
                    r.total_triples,
                    r.empty_rate(),
                    r.oov_rate()
                );
            }
            None => out.push_str("{\"reference\":{\"present\":false}"),
        }
        let _ = write!(
            out,
            ",\"thresholds\":{{\"drift\":{:.6},\"empty_rate\":{:.6}}},\"quality\":\"{}\"",
            self.drift_threshold,
            self.empty_rate_threshold,
            self.flag(now_s)
        );
        out.push_str(",\"windows\":{");
        for (wi, (window, width)) in WINDOWS.iter().enumerate() {
            let snap = self.snapshot(now_s, *width);
            let _ = write!(
                out,
                "{}\"{window}\":{{\"pages\":{},\"empty_pages\":{},\"empty_rate\":{:.6},\
                 \"tokens\":{},\"oov_tokens\":{},\"oov_rate\":{:.6},\"attrs\":{{",
                if wi > 0 { "," } else { "" },
                snap.pages,
                snap.empty,
                snap.empty_rate(),
                snap.tokens,
                snap.oov,
                snap.oov_rate()
            );
            for (i, a) in snap.attrs.iter().enumerate() {
                let _ = write!(out, "{}", if i > 0 { "," } else { "" });
                pae_obs::json::write_str(&mut out, &a.name);
                let _ = write!(
                    out,
                    ":{{\"triples\":{},\"rate\":{:.6},\"reference_rate\":{},\"drift\":{},\
                     \"top_values\":[",
                    a.triples,
                    a.rate,
                    opt(a.reference_rate),
                    opt(a.drift)
                );
                for (vi, (value, count)) in a.top_values.iter().enumerate() {
                    let _ = write!(out, "{}[", if vi > 0 { "," } else { "" });
                    pae_obs::json::write_str(&mut out, value);
                    let _ = write!(out, ",{count}]");
                }
                out.push_str("]}");
            }
            out.push_str("},\"backends\":{");
            for (i, b) in snap.backends.iter().enumerate() {
                let _ = write!(
                    out,
                    "{}\"{}\":{{\"candidates\":{},\"confidence_js\":{}}}",
                    if i > 0 { "," } else { "" },
                    b.name,
                    b.candidates,
                    opt(b.confidence_js)
                );
            }
            out.push_str("}}");
        }
        out.push_str("}}");
        out
    }

    /// The `serve.quality.*` families merged into `/metrics` next to
    /// the telemetry's `serve.live.*`. Drift families appear only when
    /// scored — a no-reference server omits them entirely.
    pub(crate) fn metrics(&self, now_s: u64) -> Vec<(MetricKey, MetricValue)> {
        let key = |name: &str, labels: &[(&str, &str)]| MetricKey {
            name: name.to_owned(),
            labels: labels
                .iter()
                .map(|(k, v)| ((*k).to_owned(), (*v).to_owned()))
                .collect(),
        };
        let mut out = Vec::new();
        {
            let inner = self.inner.lock().expect("quality lock poisoned");
            out.push((
                key("serve.quality.pages", &[]),
                MetricValue::Counter(inner.pages_total),
            ));
            out.push((
                key("serve.quality.empty_pages", &[]),
                MetricValue::Counter(inner.empty_total),
            ));
            out.push((
                key("serve.quality.tokens", &[]),
                MetricValue::Counter(inner.tokens_total),
            ));
            out.push((
                key("serve.quality.oov_tokens", &[]),
                MetricValue::Counter(inner.oov_total),
            ));
            for (attr, n) in self.attrs.iter().zip(&inner.triples_total) {
                out.push((
                    key("serve.quality.triples", &[("attr", attr)]),
                    MetricValue::Counter(*n),
                ));
            }
        }
        for (window, width) in WINDOWS {
            let snap = self.snapshot(now_s, width);
            out.push((
                key("serve.quality.empty_rate", &[("window", window)]),
                MetricValue::Gauge(snap.empty_rate()),
            ));
            out.push((
                key("serve.quality.oov_rate", &[("window", window)]),
                MetricValue::Gauge(snap.oov_rate()),
            ));
            for a in &snap.attrs {
                out.push((
                    key(
                        "serve.quality.attr_rate",
                        &[("attr", &a.name), ("window", window)],
                    ),
                    MetricValue::Gauge(a.rate),
                ));
            }
            if window == "5m" {
                for a in &snap.attrs {
                    if let Some(d) = a.drift {
                        out.push((
                            key("serve.quality.drift", &[("attr", &a.name)]),
                            MetricValue::Gauge(d),
                        ));
                    }
                }
                for b in &snap.backends {
                    if let Some(j) = b.confidence_js {
                        out.push((
                            key("serve.quality.confidence_js", &[("backend", b.name)]),
                            MetricValue::Gauge(j),
                        ));
                    }
                }
                out.push((
                    key("serve.quality.degraded", &[]),
                    MetricValue::Gauge(if self.degraded(&snap) { 1.0 } else { 0.0 }),
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pae_core::quality::{AttrReference, BackendReference};
    use pae_obs::json::Json;

    fn reference() -> ReferenceStats {
        // 100 pages, 2-char "red" era values for color: value_len mass
        // entirely in bucket 1 (2-3 chars).
        let mut value_len = vec![0u64; LEN_BUCKETS];
        value_len[1] = 100;
        let mut confidence = vec![0u64; CONF_BUCKETS];
        confidence[18] = 100;
        ReferenceStats {
            pages: 100,
            empty_pages: 5,
            total_triples: 100,
            tokens: 1000,
            oov_tokens: 10,
            backends: vec![BackendReference {
                backend: "crf".to_owned(),
                confidence,
            }],
            attrs: vec![AttrReference {
                attribute: "color".to_owned(),
                triples: 100,
                top_values: vec![("red".to_owned(), 60), ("blue".to_owned(), 40)],
                value_len,
            }],
        }
    }

    fn monitor(reference: Option<ReferenceStats>) -> QualityMonitor {
        QualityMonitor::new(vec!["color".to_owned()], vec!["crf"], reference, 0.25, 0.5)
    }

    fn page(value: &str, conf: f64) -> PageSample {
        (
            vec![Triple::new(1, "color".to_owned(), value.to_owned())],
            PageObservation {
                tokens: 10,
                oov_tokens: 1,
                confidences: vec![vec![conf]],
            },
        )
    }

    #[test]
    fn matching_traffic_stays_ok() {
        let m = monitor(Some(reference()));
        // 20 pages of 2-3 char values at confidence ~0.9: matches the
        // reference distribution exactly.
        let samples: Vec<PageSample> = (0..20).map(|_| page("red", 0.91)).collect();
        m.record(0, &samples);
        let snap = m.snapshot(0, 300);
        assert_eq!(snap.pages, 20);
        let drift = snap.attrs[0].drift.expect("enough samples to score");
        assert!(drift < 0.01, "identical distribution drifted: {drift}");
        let js = snap.backends[0].confidence_js.expect("scored");
        assert!(js < 0.01, "identical confidences diverged: {js}");
        assert!(!m.degraded(&snap));
        assert_eq!(m.flag(0), "ok");
    }

    #[test]
    fn shifted_value_lengths_fire_drift() {
        let m = monitor(Some(reference()));
        let samples: Vec<PageSample> = (0..20)
            .map(|_| page("an extremely long never-seen value", 0.91))
            .collect();
        m.record(0, &samples);
        let snap = m.snapshot(0, 300);
        let drift = snap.attrs[0].drift.expect("scored");
        assert!(
            drift > 0.25,
            "shifted lengths must breach PSI 0.25: {drift}"
        );
        assert!(m.degraded(&snap));
        assert_eq!(m.flag(0), "degraded");
    }

    #[test]
    fn empty_extractions_fire_without_reference() {
        let m = monitor(None);
        let samples: Vec<PageSample> = (0..20)
            .map(|_| {
                (
                    Vec::new(),
                    PageObservation {
                        tokens: 10,
                        oov_tokens: 1,
                        confidences: vec![vec![]],
                    },
                )
            })
            .collect();
        m.record(0, &samples);
        let snap = m.snapshot(0, 300);
        assert_eq!(snap.empty_rate(), 1.0);
        assert!(snap.attrs[0].drift.is_none(), "no reference, no drift");
        assert!(m.degraded(&snap), "empty rate needs no reference");
    }

    #[test]
    fn under_sampled_windows_do_not_score() {
        let m = monitor(Some(reference()));
        m.record(0, &[page("an extremely long never-seen value", 0.91)]);
        let snap = m.snapshot(0, 300);
        assert!(
            snap.attrs[0].drift.is_none(),
            "1 triple is below the evidence floor"
        );
        assert!(!m.degraded(&snap));
    }

    #[test]
    fn windows_age_out() {
        let m = monitor(Some(reference()));
        m.record(0, &[page("red", 0.9)]);
        assert_eq!(m.snapshot(0, 60).pages, 1);
        // 10 minutes later both windows have rolled past the sample.
        assert_eq!(m.snapshot(600, 300).pages, 0);
        assert_eq!(m.snapshot(600, 60).pages, 0);
    }

    #[test]
    fn qualityz_is_valid_json_with_null_scores_when_unscored() {
        let m = monitor(None);
        m.record(0, &[page("red", 0.9)]);
        let doc = Json::parse(&m.qualityz_json(0)).expect("qualityz is JSON");
        assert_eq!(
            doc.get("reference").and_then(|r| r.get("present")).cloned(),
            Some(Json::Bool(false))
        );
        assert_eq!(doc.get("quality").and_then(Json::as_str), Some("ok"));
        let color = doc
            .get("windows")
            .and_then(|w| w.get("5m"))
            .and_then(|w| w.get("attrs"))
            .and_then(|a| a.get("color"))
            .expect("color attr present");
        assert_eq!(color.get("triples").and_then(Json::as_u64), Some(1));
        assert_eq!(color.get("drift"), Some(&Json::Null));
        assert_eq!(color.get("reference_rate"), Some(&Json::Null));
        let top = color.get("top_values").expect("top values");
        let Json::Arr(top) = top else {
            panic!("top_values not an array");
        };
        assert_eq!(top.len(), 1);
    }

    #[test]
    fn metrics_omit_drift_families_without_reference() {
        let with = monitor(Some(reference()));
        let without = monitor(None);
        let samples: Vec<PageSample> = (0..20).map(|_| page("red", 0.9)).collect();
        with.record(0, &samples);
        without.record(0, &samples);
        let has =
            |m: &QualityMonitor, family: &str| m.metrics(0).iter().any(|(k, _)| k.name == family);
        assert!(has(&with, "serve.quality.drift"));
        assert!(has(&with, "serve.quality.confidence_js"));
        assert!(
            !has(&without, "serve.quality.drift"),
            "no-reference mode must omit drift, not report 0"
        );
        assert!(!has(&without, "serve.quality.confidence_js"));
        // Live families are present either way.
        assert!(has(&without, "serve.quality.pages"));
        assert!(has(&without, "serve.quality.attr_rate"));
        assert!(has(&without, "serve.quality.degraded"));
    }

    #[test]
    fn live_heavy_hitters_rank_by_count() {
        let m = monitor(None);
        let mut samples: Vec<PageSample> = Vec::new();
        for _ in 0..3 {
            samples.push(page("blue", 0.9));
        }
        for _ in 0..5 {
            samples.push(page("red", 0.9));
        }
        m.record(0, &samples);
        let snap = m.snapshot(0, 300);
        let top = &snap.attrs[0].top_values;
        assert_eq!(top[0], ("red".to_owned(), 5));
        assert_eq!(top[1], ("blue".to_owned(), 3));
    }
}
