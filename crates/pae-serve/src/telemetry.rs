//! Always-on serving telemetry: windowed latency, response counters,
//! in-flight gauges, pool utilization, deterministic request sampling,
//! and the bounded slow-request ring.
//!
//! This state is deliberately independent of the [`pae_obs`] global
//! switch: the obs registry no-ops unless a trace session enabled
//! collection, but a standalone `pae-serve` process must still answer
//! `/metrics` and `/statusz` with real numbers. The server therefore
//! keeps its own counters here (exported under the `serve.live.*`
//! prefix so they can never collide with the obs-registry
//! `serve.request_ns` / `serve.responses` families when a ledger run
//! renders both into one exposition) and *additionally* feeds the
//! global registry as before, keeping ledgers and `pae-report check`
//! unchanged.
//!
//! The windowed structures use the server's own monotonic clock
//! (`Instant` since startup) as the injected epoch source — nothing
//! here reads wall time, and none of it touches the extraction path:
//! recording happens after the response bytes are already formed, so
//! sampling and slow-capture provably cannot change `/extract` output.

use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use pae_obs::{FieldValue, Histogram, MetricKey, MetricValue, WindowedCounter, WindowedHistogram};

/// Windowed rings: 5-second epochs × 60 slots = 300 s span, enough to
/// answer both the 1m and 5m windows exposed on `/metrics`/`/statusz`.
/// Shared with the quality monitor so latency and field-quality windows
/// line up.
pub(crate) const EPOCH_S: u64 = 5;
pub(crate) const N_SLOTS: usize = 60;
/// The windows rendered as quantile gauges, label → width.
pub(crate) const WINDOWS: [(&str, u64); 2] = [("1m", 60), ("5m", 300)];
/// Quantiles rendered per route and window.
const QUANTILES: [(&str, f64); 3] = [("p50", 0.5), ("p90", 0.9), ("p99", 0.99)];
/// Capacity of the slow-request ring (oldest dropped first).
const SLOW_RING: usize = 32;

/// Per-request timings measured by the connection handler.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct RequestTiming {
    /// Nanoseconds spent reading + parsing the request off the socket.
    pub read_ns: u64,
    /// Nanoseconds spent routing and producing the response body.
    pub handle_ns: u64,
    /// Nanoseconds spent writing the response back.
    pub write_ns: u64,
    /// Request body size in bytes.
    pub body_bytes: u64,
    /// FNV-1a digest of the request body (forensics without storing
    /// the body itself).
    pub body_digest: u64,
}

impl RequestTiming {
    fn total_ns(&self) -> u64 {
        self.read_ns + self.handle_ns + self.write_ns
    }
}

/// One captured slow request.
#[derive(Debug, Clone)]
struct SlowCapture {
    seq: u64,
    route: &'static str,
    status: u16,
    timing: RequestTiming,
    at_s: u64,
}

#[derive(Default)]
struct RouteStats {
    cumulative: Histogram,
    windowed: Option<WindowedHistogram>,
    count: u64,
}

struct Inner {
    in_flight: BTreeMap<&'static str, u64>,
    responses: BTreeMap<&'static str, u64>,
    routes: BTreeMap<&'static str, RouteStats>,
    requests_w: WindowedCounter,
    slow: VecDeque<SlowCapture>,
    slow_seen: u64,
}

/// Shared serving telemetry. One per [`crate::Server`], behind an
/// `Arc` next to the extractor.
pub(crate) struct Telemetry {
    start: Instant,
    /// Content hash of the loaded bundle (0 when served from a
    /// non-bundle source, e.g. tests freezing in-process).
    pub bundle_hash: u64,
    /// `PAEB` schema version of the loaded bundle.
    pub schema_version: u32,
    /// Wall-clock nanoseconds spent loading the bundle at startup
    /// (0 when unknown, e.g. tests freezing in-process).
    pub bundle_load_ns: u64,
    /// Sample 1-in-N requests into the obs trace (0 = off).
    trace_sample: u64,
    /// Capture requests slower than this (0 = off).
    slow_ns: u64,
    workers: usize,
    seq: AtomicU64,
    busy: AtomicU64,
    inner: Mutex<Inner>,
}

impl Telemetry {
    pub(crate) fn new(
        bundle_hash: u64,
        schema_version: u32,
        bundle_load_ns: u64,
        trace_sample: u64,
        slow_ms: u64,
        workers: usize,
    ) -> Telemetry {
        Telemetry {
            start: Instant::now(),
            bundle_hash,
            schema_version,
            bundle_load_ns,
            trace_sample,
            slow_ns: slow_ms.saturating_mul(1_000_000),
            workers,
            seq: AtomicU64::new(0),
            busy: AtomicU64::new(0),
            inner: Mutex::new(Inner {
                in_flight: BTreeMap::new(),
                responses: BTreeMap::new(),
                routes: BTreeMap::new(),
                requests_w: WindowedCounter::new(EPOCH_S, N_SLOTS),
                slow: VecDeque::with_capacity(SLOW_RING),
                slow_seen: 0,
            }),
        }
    }

    /// Seconds since the server started — the injected clock for every
    /// windowed structure.
    pub(crate) fn now_s(&self) -> u64 {
        self.start.elapsed().as_secs()
    }

    fn uptime_seconds(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }

    /// Marks a worker busy for the duration of the returned guard.
    pub(crate) fn worker_busy(&self) -> BusyGuard<'_> {
        self.busy.fetch_add(1, Ordering::Relaxed);
        BusyGuard { t: self }
    }

    /// Marks `route` in-flight for the duration of the returned guard.
    pub(crate) fn enter(&self, route: &'static str) -> InFlightGuard<'_> {
        let mut inner = self.inner.lock().expect("telemetry lock poisoned");
        *inner.in_flight.entry(route).or_insert(0) += 1;
        InFlightGuard { t: self, route }
    }

    /// Allocates the next monotonic request id. The connection handler
    /// calls this before writing the response head so the id can be
    /// echoed back as the `x-pae-request` header, then passes it to
    /// [`Telemetry::record`] so the slow ring and sampled trace events
    /// carry the same id the client saw.
    pub(crate) fn next_seq(&self) -> u64 {
        self.seq.fetch_add(1, Ordering::Relaxed)
    }

    /// Records a finished request under its pre-allocated sequence
    /// number. Everything observable happens here, strictly after the
    /// response was written.
    pub(crate) fn record(
        &self,
        route: &'static str,
        status: u16,
        status_label: &'static str,
        timing: &RequestTiming,
        seq: u64,
    ) {
        self.record_at(self.now_s(), route, status, status_label, timing, seq);
    }

    fn record_at(
        &self,
        now_s: u64,
        route: &'static str,
        status: u16,
        status_label: &'static str,
        timing: &RequestTiming,
        seq: u64,
    ) {
        let total_ns = timing.total_ns();
        {
            let mut inner = self.inner.lock().expect("telemetry lock poisoned");
            *inner.responses.entry(status_label).or_insert(0) += 1;
            inner.requests_w.add(now_s, 1);
            let stats = inner.routes.entry(route).or_default();
            let windowed = stats
                .windowed
                .get_or_insert_with(|| WindowedHistogram::new(EPOCH_S, N_SLOTS));
            windowed.observe(now_s, total_ns as f64);
            stats.cumulative.observe(total_ns as f64);
            stats.count += 1;
            if self.slow_ns > 0 && total_ns >= self.slow_ns {
                inner.slow_seen += 1;
                if inner.slow.len() == SLOW_RING {
                    inner.slow.pop_front();
                }
                inner.slow.push_back(SlowCapture {
                    seq,
                    route,
                    status,
                    timing: *timing,
                    at_s: now_s,
                });
            }
        }
        // Deterministic 1-in-N sampling by request counter — no RNG.
        // The event goes through the obs collector, which no-ops when
        // collection is disabled; either way the response bytes were
        // already sent.
        if self.trace_sample > 0 && seq.is_multiple_of(self.trace_sample) {
            pae_obs::event(
                "serve.request.sample",
                vec![
                    ("seq".to_owned(), FieldValue::U64(seq)),
                    ("route".to_owned(), FieldValue::from(route)),
                    ("status".to_owned(), FieldValue::U64(u64::from(status))),
                    ("read_ns".to_owned(), FieldValue::U64(timing.read_ns)),
                    ("handle_ns".to_owned(), FieldValue::U64(timing.handle_ns)),
                    ("write_ns".to_owned(), FieldValue::U64(timing.write_ns)),
                    ("total_ns".to_owned(), FieldValue::U64(total_ns)),
                    ("body_bytes".to_owned(), FieldValue::U64(timing.body_bytes)),
                    (
                        "body_digest".to_owned(),
                        FieldValue::Str(format!("{:016x}", timing.body_digest)),
                    ),
                ],
            );
        }
    }

    /// The live metrics merged into `/metrics` next to the global
    /// registry: `serve.live.*` counters/gauges/histograms plus
    /// `process.*` gauges, all registry-shaped.
    pub(crate) fn metrics_extra(&self) -> Vec<(MetricKey, MetricValue)> {
        self.metrics_extra_at(self.now_s())
    }

    fn metrics_extra_at(&self, now_s: u64) -> Vec<(MetricKey, MetricValue)> {
        let key = |name: &str, labels: &[(&str, &str)]| MetricKey {
            name: name.to_owned(),
            labels: labels
                .iter()
                .map(|(k, v)| ((*k).to_owned(), (*v).to_owned()))
                .collect(),
        };
        let mut out = pae_obs::process_metrics(self.uptime_seconds());
        // Allocator families, present only when the counting allocator
        // is on (PAE_PROF=1 / --profile): zero-valued counters on an
        // unprofiled server would read as "profiled, allocated nothing".
        let prof = pae_obs::prof_stats();
        if prof.enabled {
            out.push((
                key("prof.alloc_bytes_total", &[]),
                MetricValue::Counter(prof.alloc_bytes),
            ));
            out.push((
                key("prof.alloc_count_total", &[]),
                MetricValue::Counter(prof.alloc_count),
            ));
            out.push((
                key("prof.free_bytes_total", &[]),
                MetricValue::Counter(prof.free_bytes),
            ));
            out.push((
                key("prof.live_bytes", &[]),
                MetricValue::Gauge(prof.live_bytes as f64),
            ));
            out.push((
                key("prof.peak_live_bytes", &[]),
                MetricValue::Gauge(prof.peak_live_bytes as f64),
            ));
        }
        out.push((
            key("serve.bundle.load_ns", &[]),
            MetricValue::Gauge(self.bundle_load_ns as f64),
        ));
        out.push((
            key("serve.live.workers", &[]),
            MetricValue::Gauge(self.workers as f64),
        ));
        out.push((
            key("serve.live.workers_busy", &[]),
            MetricValue::Gauge(self.busy.load(Ordering::Relaxed) as f64),
        ));
        let inner = self.inner.lock().expect("telemetry lock poisoned");
        out.push((
            key("serve.live.requests", &[]),
            MetricValue::Counter(self.seq.load(Ordering::Relaxed)),
        ));
        out.push((
            key("serve.live.slow_captured", &[]),
            MetricValue::Counter(inner.slow_seen),
        ));
        for (status, count) in &inner.responses {
            out.push((
                key("serve.live.responses", &[("status", status)]),
                MetricValue::Counter(*count),
            ));
        }
        for (route, n) in &inner.in_flight {
            out.push((
                key("serve.live.in_flight", &[("route", route)]),
                MetricValue::Gauge(*n as f64),
            ));
        }
        for (window, width) in WINDOWS {
            out.push((
                key("serve.live.request_rate", &[("window", window)]),
                MetricValue::Gauge(inner.requests_w.rate(now_s, width)),
            ));
        }
        for (route, stats) in &inner.routes {
            out.push((
                key("serve.live.request_ns", &[("route", route)]),
                MetricValue::Histogram(Box::new(stats.cumulative.clone())),
            ));
            let Some(windowed) = &stats.windowed else {
                continue;
            };
            for (window, width) in WINDOWS {
                // A window with no samples has no quantiles: emitting 0
                // would read as "p99 = 0 ns". Skip the family instead.
                let merged = windowed.window(now_s, width);
                if merged.count == 0 {
                    continue;
                }
                for (q_label, q) in QUANTILES {
                    out.push((
                        key(
                            "serve.live.latency_ns",
                            &[("q", q_label), ("route", route), ("window", window)],
                        ),
                        MetricValue::Gauge(merged.quantile(q)),
                    ));
                }
            }
        }
        out
    }

    /// The `/statusz` JSON document. `include_slow` adds the captured
    /// slow-request ring (`?slow=1`); `quality` is the extraction
    /// quality monitor's `ok`/`degraded` verdict (`None` when rendered
    /// without a monitor, e.g. in telemetry-only tests).
    pub(crate) fn statusz_json(&self, include_slow: bool, quality: Option<&str>) -> String {
        self.statusz_json_at(self.now_s(), include_slow, quality)
    }

    fn statusz_json_at(&self, now_s: u64, include_slow: bool, quality: Option<&str>) -> String {
        use std::fmt::Write as _;
        let inner = self.inner.lock().expect("telemetry lock poisoned");
        let mut out = String::with_capacity(1024);
        let _ = write!(
            out,
            "{{\"bundle\":{{\"content_hash\":\"{:016x}\",\"schema_version\":{},\"load_ns\":{}}}",
            self.bundle_hash, self.schema_version, self.bundle_load_ns
        );
        let _ = write!(
            out,
            ",\"uptime_seconds\":{:.3},\"requests\":{}",
            self.uptime_seconds(),
            self.seq.load(Ordering::Relaxed)
        );
        if let Some(q) = quality {
            let _ = write!(out, ",\"quality\":\"{q}\"");
        }
        let busy = self.busy.load(Ordering::Relaxed);
        let _ = write!(
            out,
            ",\"pool\":{{\"workers\":{},\"busy\":{busy},\"utilization\":{:.4}}}",
            self.workers,
            busy as f64 / self.workers.max(1) as f64
        );
        // Memory block: kernel-reported RSS (nullable — procfs may be
        // unavailable) plus allocator counters when profiling is on.
        let ps = pae_obs::process_stats();
        let opt = |v: Option<u64>| v.map_or("null".to_owned(), |n| n.to_string());
        let prof = pae_obs::prof_stats();
        let _ = write!(
            out,
            ",\"memory\":{{\"rss_bytes\":{},\"peak_rss_bytes\":{},\"profiling\":{}",
            opt(ps.rss_bytes),
            opt(ps.peak_rss_bytes),
            prof.enabled
        );
        if prof.enabled {
            let _ = write!(
                out,
                ",\"alloc_bytes\":{},\"alloc_count\":{},\"live_bytes\":{},\"peak_live_bytes\":{}",
                prof.alloc_bytes, prof.alloc_count, prof.live_bytes, prof.peak_live_bytes
            );
        }
        out.push('}');
        out.push_str(",\"in_flight\":{");
        for (i, (route, n)) in inner.in_flight.iter().enumerate() {
            let _ = write!(out, "{}\"{route}\":{n}", if i > 0 { "," } else { "" });
        }
        out.push_str("},\"responses\":{");
        for (i, (status, count)) in inner.responses.iter().enumerate() {
            let _ = write!(out, "{}\"{status}\":{count}", if i > 0 { "," } else { "" });
        }
        out.push_str("},\"windows\":{");
        for (wi, (window, width)) in WINDOWS.iter().enumerate() {
            let _ = write!(
                out,
                "{}\"{window}\":{{\"rate\":{:.4},\"routes\":{{",
                if wi > 0 { "," } else { "" },
                inner.requests_w.rate(now_s, *width)
            );
            let mut first = true;
            for (route, stats) in &inner.routes {
                let Some(windowed) = &stats.windowed else {
                    continue;
                };
                let _ = write!(out, "{}\"{route}\":{{", if first { "" } else { "," });
                first = false;
                // An empty window has no quantiles: render null, not a
                // fake 0 ns latency.
                let merged = windowed.window(now_s, *width);
                for (qi, (q_label, q)) in QUANTILES.iter().enumerate() {
                    let _ = write!(out, "{}\"{q_label}_ns\":", if qi > 0 { "," } else { "" });
                    if merged.count == 0 {
                        out.push_str("null");
                    } else {
                        let _ = write!(out, "{:.0}", merged.quantile(*q));
                    }
                }
                out.push('}');
            }
            out.push_str("}}");
        }
        out.push('}');
        let _ = write!(
            out,
            ",\"slow\":{{\"threshold_ns\":{},\"seen\":{},\"captured\":{}",
            self.slow_ns,
            inner.slow_seen,
            inner.slow.len()
        );
        if include_slow {
            out.push_str(",\"requests\":[");
            for (i, s) in inner.slow.iter().enumerate() {
                let _ = write!(
                    out,
                    "{}{{\"seq\":{},\"route\":\"{}\",\"status\":{},\"total_ns\":{},\
                     \"read_ns\":{},\"handle_ns\":{},\"write_ns\":{},\"body_bytes\":{},\
                     \"body_digest\":\"{:016x}\",\"at_s\":{}}}",
                    if i > 0 { "," } else { "" },
                    s.seq,
                    s.route,
                    s.status,
                    s.timing.total_ns(),
                    s.timing.read_ns,
                    s.timing.handle_ns,
                    s.timing.write_ns,
                    s.timing.body_bytes,
                    s.timing.body_digest,
                    s.at_s
                );
            }
            out.push(']');
        }
        out.push_str("}}");
        out
    }
}

/// Decrements the busy-worker gauge on drop.
pub(crate) struct BusyGuard<'a> {
    t: &'a Telemetry,
}

impl Drop for BusyGuard<'_> {
    fn drop(&mut self) {
        self.t.busy.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Decrements the per-route in-flight gauge on drop.
pub(crate) struct InFlightGuard<'a> {
    t: &'a Telemetry,
    route: &'static str,
}

impl Drop for InFlightGuard<'_> {
    fn drop(&mut self) {
        let mut inner = self.t.inner.lock().expect("telemetry lock poisoned");
        if let Some(n) = inner.in_flight.get_mut(self.route) {
            *n = n.saturating_sub(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pae_obs::json::Json;

    fn timing(total_ms: u64) -> RequestTiming {
        RequestTiming {
            read_ns: 1_000,
            handle_ns: total_ms * 1_000_000,
            write_ns: 2_000,
            body_bytes: 64,
            body_digest: 0xdead_beef,
        }
    }

    #[test]
    fn records_accumulate_and_render() {
        let t = Telemetry::new(0xabc, 1, 0, 0, 0, 4);
        for _ in 0..5 {
            t.record("extract", 200, "200", &timing(1), t.next_seq());
        }
        t.record("not_found", 404, "404", &timing(0), t.next_seq());
        let metrics = t.metrics_extra();
        let get = |name: &str, labels: &[(&str, &str)]| {
            metrics
                .iter()
                .find(|(k, _)| {
                    k.name == name
                        && k.labels
                            == labels
                                .iter()
                                .map(|(a, b)| ((*a).to_owned(), (*b).to_owned()))
                                .collect::<Vec<_>>()
                })
                .map(|(_, v)| v.clone())
        };
        assert_eq!(
            get("serve.live.requests", &[]),
            Some(MetricValue::Counter(6))
        );
        assert_eq!(
            get("serve.bundle.load_ns", &[]),
            Some(MetricValue::Gauge(0.0))
        );
        assert_eq!(
            get("serve.live.responses", &[("status", "200")]),
            Some(MetricValue::Counter(5))
        );
        let Some(MetricValue::Histogram(h)) = get("serve.live.request_ns", &[("route", "extract")])
        else {
            panic!("per-route histogram missing");
        };
        assert_eq!(h.count, 5);
        assert!(get(
            "serve.live.latency_ns",
            &[("q", "p99"), ("route", "extract"), ("window", "1m")]
        )
        .is_some());
    }

    #[test]
    fn statusz_is_valid_json_with_expected_fields() {
        let t = Telemetry::new(0x1234, 2, 77, 0, 10, 4);
        t.record("extract", 200, "200", &timing(50), t.next_seq()); // 50ms > 10ms: slow
        t.record("extract", 200, "200", &timing(0), t.next_seq());
        let doc = Json::parse(&t.statusz_json(true, None)).expect("statusz is JSON");
        assert_eq!(
            doc.get("bundle")
                .and_then(|b| b.get("content_hash"))
                .and_then(Json::as_str),
            Some("0000000000001234")
        );
        assert_eq!(
            doc.get("bundle")
                .and_then(|b| b.get("schema_version"))
                .and_then(Json::as_u64),
            Some(2)
        );
        assert_eq!(
            doc.get("bundle")
                .and_then(|b| b.get("load_ns"))
                .and_then(Json::as_u64),
            Some(77)
        );
        assert_eq!(doc.get("requests").and_then(Json::as_u64), Some(2));
        let slow = doc.get("slow").expect("slow section");
        assert_eq!(slow.get("seen").and_then(Json::as_u64), Some(1));
        let Some(Json::Arr(captured)) = slow.get("requests") else {
            panic!("slow.requests missing with ?slow=1");
        };
        assert_eq!(captured.len(), 1);
        assert_eq!(
            captured[0].get("route").and_then(Json::as_str),
            Some("extract")
        );
        // Without include_slow the ring is summarized but not dumped.
        let brief = Json::parse(&t.statusz_json(false, None)).expect("JSON");
        assert!(brief.get("slow").unwrap().get("requests").is_none());
    }

    #[test]
    fn slow_ring_is_bounded_drop_oldest() {
        let t = Telemetry::new(0, 1, 0, 0, 1, 2);
        for _ in 0..(SLOW_RING + 10) {
            t.record("extract", 200, "200", &timing(5), t.next_seq());
        }
        let doc = Json::parse(&t.statusz_json(true, None)).expect("JSON");
        let slow = doc.get("slow").unwrap();
        assert_eq!(
            slow.get("seen").and_then(Json::as_u64),
            Some((SLOW_RING + 10) as u64)
        );
        let Some(Json::Arr(captured)) = slow.get("requests") else {
            panic!("missing requests");
        };
        assert_eq!(captured.len(), SLOW_RING);
        // Oldest dropped: first kept seq is 10.
        assert_eq!(captured[0].get("seq").and_then(Json::as_u64), Some(10));
    }

    #[test]
    fn statusz_memory_block_reflects_profiling_state() {
        let t = Telemetry::new(0, 1, 0, 0, 0, 2);
        // Unprofiled: RSS fields present (real or null), allocator
        // counters absent.
        let doc = Json::parse(&t.statusz_json(false, None)).expect("JSON");
        let mem = doc.get("memory").expect("memory block");
        assert_eq!(mem.get("profiling"), Some(&Json::Bool(false)));
        assert!(mem.get("rss_bytes").is_some());
        assert!(mem.get("alloc_bytes").is_none());
        let metrics = t.metrics_extra();
        assert!(
            !metrics.iter().any(|(k, _)| k.name.starts_with("prof.")),
            "prof families must be absent while unprofiled"
        );

        // Profiled: counters appear in both /statusz and /metrics.
        pae_obs::set_prof_enabled(true);
        let doc = Json::parse(&t.statusz_json(false, None)).expect("JSON");
        let metrics = t.metrics_extra();
        pae_obs::set_prof_enabled(false);
        let mem = doc.get("memory").expect("memory block");
        assert_eq!(mem.get("profiling"), Some(&Json::Bool(true)));
        assert!(mem.get("alloc_bytes").and_then(Json::as_u64).is_some());
        assert!(mem.get("peak_live_bytes").and_then(Json::as_u64).is_some());
        for family in [
            "prof.alloc_bytes_total",
            "prof.live_bytes",
            "prof.peak_live_bytes",
        ] {
            assert!(
                metrics.iter().any(|(k, _)| k.name == family),
                "{family} missing from profiled /metrics"
            );
        }
    }

    #[test]
    fn empty_windows_render_null_not_zero() {
        let t = Telemetry::new(0, 1, 0, 0, 0, 2);
        // Record far in the past: by "now" (t=0 .. a few ms) both the
        // 1m and 5m windows... actually the reverse: record at a large
        // now_s, then render at an epoch far past it, so every windowed
        // slot has aged out while the cumulative histogram still holds
        // the sample.
        t.record_at(0, "extract", 200, "200", &timing(1), t.next_seq());
        let doc = Json::parse(&t.statusz_json_at(10_000, false, None)).expect("JSON");
        let route = doc
            .get("windows")
            .and_then(|w| w.get("1m"))
            .and_then(|w| w.get("routes"))
            .and_then(|r| r.get("extract"))
            .expect("route block still listed");
        assert_eq!(
            route.get("p50_ns"),
            Some(&Json::Null),
            "empty window → null"
        );
        assert_eq!(route.get("p99_ns"), Some(&Json::Null));
        let metrics = t.metrics_extra_at(10_000);
        assert!(
            !metrics
                .iter()
                .any(|(k, _)| k.name == "serve.live.latency_ns"),
            "empty windows must omit the latency family, not emit 0"
        );
        // Cumulative per-route histogram is unaffected by window aging.
        assert!(metrics
            .iter()
            .any(|(k, _)| k.name == "serve.live.request_ns"));

        // With a fresh sample in-window the quantiles come back.
        t.record_at(10_000, "extract", 200, "200", &timing(1), t.next_seq());
        let doc = Json::parse(&t.statusz_json_at(10_000, false, None)).expect("JSON");
        let p50 = doc
            .get("windows")
            .and_then(|w| w.get("1m"))
            .and_then(|w| w.get("routes"))
            .and_then(|r| r.get("extract"))
            .and_then(|r| r.get("p50_ns"))
            .and_then(Json::as_f64)
            .expect("non-empty window renders a number");
        assert!(p50 > 0.0);
        assert!(t
            .metrics_extra_at(10_000)
            .iter()
            .any(|(k, _)| k.name == "serve.live.latency_ns"));
    }

    #[test]
    fn statusz_carries_the_quality_flag_when_given() {
        let t = Telemetry::new(0, 1, 0, 0, 0, 2);
        let doc = Json::parse(&t.statusz_json(false, Some("degraded"))).expect("JSON");
        assert_eq!(doc.get("quality").and_then(Json::as_str), Some("degraded"));
        let doc = Json::parse(&t.statusz_json(false, None)).expect("JSON");
        assert!(doc.get("quality").is_none());
    }

    #[test]
    fn in_flight_and_busy_guards_balance() {
        let t = Telemetry::new(0, 1, 0, 0, 0, 4);
        {
            let _b = t.worker_busy();
            let _g = t.enter("extract");
            let doc = Json::parse(&t.statusz_json(false, None)).expect("JSON");
            assert_eq!(
                doc.get("in_flight")
                    .unwrap()
                    .get("extract")
                    .and_then(Json::as_u64),
                Some(1)
            );
            assert_eq!(
                doc.get("pool").unwrap().get("busy").and_then(Json::as_u64),
                Some(1)
            );
        }
        let doc = Json::parse(&t.statusz_json(false, None)).expect("JSON");
        assert_eq!(
            doc.get("in_flight")
                .unwrap()
                .get("extract")
                .and_then(Json::as_u64),
            Some(0)
        );
        assert_eq!(
            doc.get("pool").unwrap().get("busy").and_then(Json::as_u64),
            Some(0)
        );
    }
}
