//! Block-level text extraction from product pages.

use crate::dom::Node;

/// Options controlling [`extract_text`].
#[derive(Debug, Clone)]
pub struct TextOptions {
    /// Skip `<table>` subtrees (default `true`: tables feed the seed
    /// extractor, not the free-text tagger).
    pub skip_tables: bool,
}

impl Default for TextOptions {
    fn default() -> Self {
        TextOptions { skip_tables: true }
    }
}

/// Elements that force a line break before and after their content.
const BLOCK: &[&str] = &[
    "p",
    "div",
    "li",
    "ul",
    "ol",
    "h1",
    "h2",
    "h3",
    "h4",
    "h5",
    "h6",
    "tr",
    "table",
    "section",
    "article",
    "header",
    "footer",
    "dl",
    "dt",
    "dd",
    "blockquote",
    "body",
    "html",
];

/// Extracts readable text from a parsed page as newline-separated
/// blocks. `<script>`/`<style>` are always skipped; `<br>` produces a
/// line break; inline elements join with spaces.
pub fn extract_text(forest: &[Node], options: &TextOptions) -> String {
    let mut out = String::new();
    for node in forest {
        walk(node, options, &mut out);
    }
    // Collapse runs of blank lines and trim.
    let mut result = String::with_capacity(out.len());
    let mut blank = true;
    for line in out.lines() {
        let line = line.trim();
        if line.is_empty() {
            if !blank {
                // preserve single separation via newline already added
            }
            blank = true;
        } else {
            if !result.is_empty() {
                result.push('\n');
            }
            result.push_str(line);
            blank = false;
        }
    }
    result
}

fn walk(node: &Node, options: &TextOptions, out: &mut String) {
    match node {
        Node::Text(t) => {
            let trimmed = t.trim();
            if !trimmed.is_empty() {
                if !out.is_empty() && !out.ends_with(['\n', ' ']) {
                    out.push(' ');
                }
                out.push_str(trimmed);
            }
        }
        Node::Element { name, children, .. } => {
            match name.as_str() {
                // Head content (incl. <title>) is metadata, not body
                // text; callers that want the title read it explicitly.
                "script" | "style" | "head" => return,
                "table" if options.skip_tables => return,
                "br" => {
                    out.push('\n');
                    return;
                }
                _ => {}
            }
            let block = BLOCK.contains(&name.as_str());
            if block && !out.is_empty() && !out.ends_with('\n') {
                out.push('\n');
            }
            for c in children {
                walk(c, options, out);
            }
            if block && !out.ends_with('\n') {
                out.push('\n');
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dom::parse;

    fn text(html: &str) -> String {
        extract_text(&parse(html), &TextOptions::default())
    }

    #[test]
    fn blocks_become_lines() {
        assert_eq!(text("<p>one</p><p>two</p>"), "one\ntwo");
    }

    #[test]
    fn inline_elements_join() {
        assert_eq!(text("<p><b>100</b>% <i>cotton</i></p>"), "100 % cotton");
    }

    #[test]
    fn br_breaks_lines() {
        assert_eq!(text("<p>a<br>b</p>"), "a\nb");
    }

    #[test]
    fn script_and_style_skipped() {
        assert_eq!(
            text("<p>x</p><script>var a=1;</script><style>p{}</style>"),
            "x"
        );
    }

    #[test]
    fn tables_skipped_by_default() {
        let html = "<p>desc</p><table><tr><td>k</td><td>v</td></tr></table>";
        assert_eq!(text(html), "desc");
    }

    #[test]
    fn tables_included_when_requested() {
        let html = "<p>desc</p><table><tr><td>k</td><td>v</td></tr></table>";
        let out = extract_text(&parse(html), &TextOptions { skip_tables: false });
        assert!(out.contains("k v"), "got {out:?}");
    }

    #[test]
    fn nested_blocks_do_not_duplicate_breaks() {
        assert_eq!(text("<div><div><p>x</p></div></div>"), "x");
    }

    #[test]
    fn empty_page() {
        assert_eq!(text(""), "");
        assert_eq!(text("<div></div>"), "");
    }
}
