#![warn(missing_docs)]

//! Minimal HTML substrate for product-page processing.
//!
//! The pipeline consumes merchant product pages as HTML strings. This
//! crate provides everything the pre-processor needs, built from
//! scratch:
//!
//! * [`tokenizer`] — a forgiving HTML tokenizer (tags, attributes, text,
//!   comments, entities);
//! * [`dom`] — a stack-based tree builder producing a lightweight DOM;
//! * [`table`] — a table model plus *dictionary table* detection (the
//!   2-column × n-row or 2-row × n-column specification tables the seed
//!   is harvested from);
//! * [`text`] — block-level text extraction (titles + free-form
//!   descriptions) that skips `<script>`/`<style>` and, by default,
//!   table subtrees (tables feed the seed, not the tagger).
//!
//! The parser is not a spec-compliant HTML5 implementation; it is a
//! robust subset good enough for real-world-ish product pages: implied
//! end tags, void elements, attribute quoting styles, entities, and
//! malformed markup are all handled without panicking.

pub mod dom;
pub mod entity;
pub mod table;
pub mod text;
pub mod tokenizer;

pub use dom::{parse, Node};
pub use table::{extract_tables, DictTable, Table};
pub use text::{extract_text, TextOptions};
