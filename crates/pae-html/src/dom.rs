//! Stack-based tree builder producing a lightweight DOM.

use crate::tokenizer::{tokenize, HtmlToken};

/// A DOM node: element or text. Comments are dropped during tree
/// building (they are invisible to extraction; the *markup veto rule*
/// operates on tagger output, not on the DOM).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Node {
    /// An element with lower-cased name, attributes, and children.
    Element {
        /// Tag name, lower-cased.
        name: String,
        /// Attributes in document order.
        attrs: Vec<(String, String)>,
        /// Child nodes in document order.
        children: Vec<Node>,
    },
    /// A text node (entity-decoded, never empty).
    Text(String),
}

impl Node {
    /// Element name, or `None` for text nodes.
    pub fn name(&self) -> Option<&str> {
        match self {
            Node::Element { name, .. } => Some(name),
            Node::Text(_) => None,
        }
    }

    /// Children slice (empty for text nodes).
    pub fn children(&self) -> &[Node] {
        match self {
            Node::Element { children, .. } => children,
            Node::Text(_) => &[],
        }
    }

    /// First attribute value with the given (lower-case) name.
    pub fn attr(&self, key: &str) -> Option<&str> {
        match self {
            Node::Element { attrs, .. } => attrs
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v.as_str()),
            Node::Text(_) => None,
        }
    }

    /// Depth-first pre-order iterator over this subtree.
    pub fn descendants(&self) -> Descendants<'_> {
        Descendants { stack: vec![self] }
    }

    /// Concatenated text of the subtree with single-space joining.
    pub fn text_content(&self) -> String {
        let mut out = String::new();
        collect_text(self, &mut out);
        out.trim().to_owned()
    }
}

fn collect_text(node: &Node, out: &mut String) {
    match node {
        Node::Text(t) => {
            if !out.is_empty() && !out.ends_with(char::is_whitespace) {
                out.push(' ');
            }
            out.push_str(t.trim());
        }
        Node::Element { children, .. } => {
            for c in children {
                collect_text(c, out);
            }
        }
    }
}

/// Pre-order DFS iterator, see [`Node::descendants`].
pub struct Descendants<'a> {
    stack: Vec<&'a Node>,
}

impl<'a> Iterator for Descendants<'a> {
    type Item = &'a Node;
    fn next(&mut self) -> Option<&'a Node> {
        let node = self.stack.pop()?;
        if let Node::Element { children, .. } = node {
            for c in children.iter().rev() {
                self.stack.push(c);
            }
        }
        Some(node)
    }
}

/// Tags that never have content.
const VOID: &[&str] = &[
    "br", "img", "hr", "input", "meta", "link", "area", "base", "col", "embed", "source", "track",
    "wbr",
];

/// Tags whose open instance is implicitly closed by a sibling of the
/// same name (li by li, tr by tr, td/th by td/th, p by p …).
fn implies_close(open: &str, incoming: &str) -> bool {
    matches!(
        (open, incoming),
        ("li", "li")
            | ("tr", "tr")
            | ("td", "td")
            | ("td", "th")
            | ("th", "td")
            | ("th", "th")
            | ("td", "tr")
            | ("th", "tr")
            | ("p", "p")
            | ("option", "option")
            | ("dt", "dt")
            | ("dt", "dd")
            | ("dd", "dd")
            | ("dd", "dt")
    )
}

/// Parses HTML into a forest of top-level nodes.
///
/// Unmatched end tags are ignored; unclosed elements are closed at end
/// of input. The builder never panics on malformed markup.
pub fn parse(html: &str) -> Vec<Node> {
    // Each stack frame: (name, attrs, children-so-far).
    type Frame = (String, Vec<(String, String)>, Vec<Node>);
    let mut stack: Vec<Frame> = Vec::new();
    let mut roots: Vec<Node> = Vec::new();

    fn push_node(stack: &mut [Frame], roots: &mut Vec<Node>, node: Node) {
        if let Some(top) = stack.last_mut() {
            top.2.push(node);
        } else {
            roots.push(node);
        }
    }

    fn close_top(stack: &mut Vec<Frame>, roots: &mut Vec<Node>) {
        if let Some((name, attrs, children)) = stack.pop() {
            push_node(
                stack,
                roots,
                Node::Element {
                    name,
                    attrs,
                    children,
                },
            );
        }
    }

    for tok in tokenize(html) {
        match tok {
            HtmlToken::Text(t) => {
                if !t.trim().is_empty() {
                    push_node(&mut stack, &mut roots, Node::Text(t));
                }
            }
            HtmlToken::Comment(_) => {}
            HtmlToken::StartTag {
                name,
                attrs,
                self_closing,
            } => {
                while let Some((open, _, _)) = stack.last() {
                    if implies_close(open, &name) {
                        close_top(&mut stack, &mut roots);
                    } else {
                        break;
                    }
                }
                if self_closing || VOID.contains(&name.as_str()) {
                    push_node(
                        &mut stack,
                        &mut roots,
                        Node::Element {
                            name,
                            attrs,
                            children: Vec::new(),
                        },
                    );
                } else {
                    stack.push((name, attrs, Vec::new()));
                }
            }
            HtmlToken::EndTag { name } => {
                // Close up to the matching open tag, if any.
                if let Some(pos) = stack.iter().rposition(|(n, _, _)| *n == name) {
                    while stack.len() > pos {
                        close_top(&mut stack, &mut roots);
                    }
                }
                // Otherwise: stray end tag, ignored.
            }
        }
    }
    while !stack.is_empty() {
        close_top(&mut stack, &mut roots);
    }
    roots
}

/// Finds all elements with the given name anywhere in the forest.
pub fn find_all<'a>(forest: &'a [Node], name: &str) -> Vec<&'a Node> {
    let mut out = Vec::new();
    for root in forest {
        for node in root.descendants() {
            if node.name() == Some(name) {
                out.push(node);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_nested_tree() {
        let forest = parse("<div><p>a</p><p>b</p></div>");
        assert_eq!(forest.len(), 1);
        let div = &forest[0];
        assert_eq!(div.name(), Some("div"));
        assert_eq!(div.children().len(), 2);
        assert_eq!(div.children()[0].text_content(), "a");
    }

    #[test]
    fn implied_close_for_table_rows() {
        let forest = parse("<table><tr><td>a<td>b<tr><td>c</table>");
        let trs = find_all(&forest, "tr");
        assert_eq!(trs.len(), 2);
        assert_eq!(find_all(&forest, "td").len(), 3);
    }

    #[test]
    fn implied_close_for_paragraphs_and_li() {
        let forest = parse("<p>one<p>two<ul><li>x<li>y</ul>");
        assert_eq!(find_all(&forest, "p").len(), 2);
        assert_eq!(find_all(&forest, "li").len(), 2);
    }

    #[test]
    fn void_elements_do_not_nest() {
        let forest = parse("<p>a<br>b</p>");
        let p = &forest[0];
        assert_eq!(p.children().len(), 3);
        assert_eq!(p.children()[1].name(), Some("br"));
    }

    #[test]
    fn stray_end_tag_ignored() {
        let forest = parse("</div><p>x</p>");
        assert_eq!(forest.len(), 1);
        assert_eq!(forest[0].name(), Some("p"));
    }

    #[test]
    fn unclosed_elements_close_at_eof() {
        let forest = parse("<div><span>x");
        assert_eq!(forest[0].name(), Some("div"));
        assert_eq!(forest[0].children()[0].name(), Some("span"));
        assert_eq!(forest[0].text_content(), "x");
    }

    #[test]
    fn attr_lookup() {
        let forest = parse(r#"<a href="u" id="1">t</a>"#);
        assert_eq!(forest[0].attr("href"), Some("u"));
        assert_eq!(forest[0].attr("id"), Some("1"));
        assert_eq!(forest[0].attr("class"), None);
    }

    #[test]
    fn text_content_joins_with_spaces() {
        let forest = parse("<div><b>100</b><span>%</span> cotton</div>");
        assert_eq!(forest[0].text_content(), "100 % cotton");
    }

    #[test]
    fn descendants_preorder() {
        let forest = parse("<a><b></b><c><d></d></c></a>");
        let names: Vec<_> = forest[0].descendants().filter_map(|n| n.name()).collect();
        assert_eq!(names, ["a", "b", "c", "d"]);
    }

    #[test]
    fn whitespace_only_text_dropped() {
        let forest = parse("<div>\n   <p>x</p>\n</div>");
        assert_eq!(forest[0].children().len(), 1);
    }
}
