//! Table extraction and dictionary-table detection.
//!
//! The paper's seed is harvested from *tables with a dictionary
//! structure, that is, of 2 rows and n columns or of 2 columns and n
//! rows* (§V-A). This module extracts all tables from a page DOM and
//! recognizes that structure, yielding `(attribute name, value)` pairs.

use crate::dom::{find_all, Node};

/// A rendered table: rows of trimmed cell texts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    /// Rows in document order; each row holds its cell texts.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.rows.len()
    }

    /// Number of columns (maximum across rows — merchants produce
    /// ragged tables).
    pub fn n_cols(&self) -> usize {
        self.rows.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Recognizes the dictionary structure and returns the pairs.
    ///
    /// * `n×2` (n rows, 2 columns): each row is `(name, value)`;
    /// * `2×n` (2 rows, n≥3 columns): first row names, second row values.
    ///
    /// A 2×2 table is read in row form (`(name, value)` per row), the
    /// more common merchant layout. Rows with missing cells are skipped.
    pub fn as_dictionary(&self) -> Option<DictTable> {
        if self.n_rows() >= 2 && self.n_cols() == 2 {
            let pairs: Vec<(String, String)> = self
                .rows
                .iter()
                .filter(|r| r.len() == 2 && !r[0].is_empty() && !r[1].is_empty())
                .map(|r| (r[0].clone(), r[1].clone()))
                .collect();
            if pairs.len() >= 2 {
                return Some(DictTable { pairs });
            }
        }
        if self.n_rows() == 2 && self.n_cols() >= 3 {
            let (names, values) = (&self.rows[0], &self.rows[1]);
            let n = names.len().min(values.len());
            let pairs: Vec<(String, String)> = (0..n)
                .filter(|&i| !names[i].is_empty() && !values[i].is_empty())
                .map(|i| (names[i].clone(), values[i].clone()))
                .collect();
            if pairs.len() >= 2 {
                return Some(DictTable { pairs });
            }
        }
        None
    }
}

/// A table recognized as an `attribute → value` dictionary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DictTable {
    /// `(attribute name, value)` pairs in document order.
    pub pairs: Vec<(String, String)>,
}

/// Extracts every `<table>` in the forest as a [`Table`].
///
/// Nested tables are extracted independently; the outer table's cell
/// text does not include inner-table content (the inner table is its
/// own extraction target).
pub fn extract_tables(forest: &[Node]) -> Vec<Table> {
    find_all(forest, "table")
        .into_iter()
        .map(table_from_node)
        .collect()
}

fn table_from_node(table: &Node) -> Table {
    let mut rows = Vec::new();
    // Collect tr elements that belong to this table (not to a nested one).
    collect_rows(table, table, &mut rows);
    Table { rows }
}

fn collect_rows(root: &Node, node: &Node, rows: &mut Vec<Vec<String>>) {
    for child in node.children() {
        match child.name() {
            Some("tr") => {
                let mut cells = Vec::new();
                for cell in child.children() {
                    if matches!(cell.name(), Some("td") | Some("th")) {
                        cells.push(cell_text(cell));
                    }
                }
                rows.push(cells);
            }
            Some("table") if !std::ptr::eq(root, child) => {
                // Nested table: handled by its own extraction.
            }
            _ => collect_rows(root, child, rows),
        }
    }
}

/// Cell text, excluding any nested-table content.
fn cell_text(cell: &Node) -> String {
    let mut out = String::new();
    fn walk(node: &Node, out: &mut String) {
        match node {
            Node::Text(t) => {
                if !out.is_empty() && !out.ends_with(char::is_whitespace) {
                    out.push(' ');
                }
                out.push_str(t.trim());
            }
            Node::Element { name, children, .. } => {
                if name == "table" {
                    return;
                }
                for c in children {
                    walk(c, out);
                }
            }
        }
    }
    walk(cell, &mut out);
    out.trim().to_owned()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dom::parse;

    fn dict_pairs(html: &str) -> Option<Vec<(String, String)>> {
        let forest = parse(html);
        let tables = extract_tables(&forest);
        tables
            .first()
            .and_then(Table::as_dictionary)
            .map(|d| d.pairs)
    }

    #[test]
    fn n_by_2_dictionary() {
        let html = "<table>\
            <tr><th>color</th><td>red</td></tr>\
            <tr><th>weight</th><td>2.5kg</td></tr>\
            <tr><th>brand</th><td>Acme</td></tr>\
            </table>";
        let pairs = dict_pairs(html).expect("dictionary");
        assert_eq!(
            pairs,
            vec![
                ("color".to_owned(), "red".to_owned()),
                ("weight".to_owned(), "2.5kg".to_owned()),
                ("brand".to_owned(), "Acme".to_owned())
            ]
        );
    }

    #[test]
    fn two_by_n_dictionary() {
        let html = "<table>\
            <tr><td>color</td><td>weight</td><td>brand</td></tr>\
            <tr><td>red</td><td>2.5kg</td><td>Acme</td></tr>\
            </table>";
        let pairs = dict_pairs(html).expect("dictionary");
        assert_eq!(pairs.len(), 3);
        assert_eq!(pairs[1], ("weight".to_owned(), "2.5kg".to_owned()));
    }

    #[test]
    fn wide_table_is_not_dictionary() {
        let html = "<table>\
            <tr><td>a</td><td>b</td><td>c</td></tr>\
            <tr><td>1</td><td>2</td><td>3</td></tr>\
            <tr><td>4</td><td>5</td><td>6</td></tr>\
            </table>";
        assert!(dict_pairs(html).is_none());
    }

    #[test]
    fn single_row_is_not_dictionary() {
        assert!(dict_pairs("<table><tr><td>a</td><td>b</td></tr></table>").is_none());
    }

    #[test]
    fn ragged_rows_are_skipped() {
        let html = "<table>\
            <tr><td>color</td><td>red</td></tr>\
            <tr><td>lonely</td></tr>\
            <tr><td>brand</td><td>Acme</td></tr>\
            </table>";
        let pairs = dict_pairs(html).expect("dictionary");
        assert_eq!(pairs.len(), 2);
    }

    #[test]
    fn empty_cells_are_skipped() {
        let html = "<table>\
            <tr><td>color</td><td></td></tr>\
            <tr><td>brand</td><td>Acme</td></tr>\
            <tr><td>size</td><td>M</td></tr>\
            </table>";
        let pairs = dict_pairs(html).expect("dictionary");
        assert_eq!(pairs.len(), 2);
    }

    #[test]
    fn tbody_wrapped_rows() {
        let html = "<table><tbody>\
            <tr><td>a</td><td>1</td></tr>\
            <tr><td>b</td><td>2</td></tr>\
            </tbody></table>";
        assert_eq!(dict_pairs(html).expect("dict").len(), 2);
    }

    #[test]
    fn nested_tables_extracted_separately() {
        let html = "<table>\
            <tr><td>outer</td><td><table>\
                <tr><td>x</td><td>1</td></tr>\
                <tr><td>y</td><td>2</td></tr>\
            </table></td></tr>\
            <tr><td>k</td><td>v</td></tr>\
            </table>";
        let forest = parse(html);
        let tables = extract_tables(&forest);
        assert_eq!(tables.len(), 2);
        // Outer cell text excludes the nested table's content.
        assert_eq!(tables[0].rows[0][1], "");
    }

    #[test]
    fn markup_in_cells_is_flattened() {
        let html = "<table>\
            <tr><td><b>color</b></td><td><span>deep</span> red</td></tr>\
            <tr><td>b</td><td>2</td></tr>\
            </table>";
        let pairs = dict_pairs(html).expect("dict");
        assert_eq!(pairs[0], ("color".to_owned(), "deep red".to_owned()));
    }
}
