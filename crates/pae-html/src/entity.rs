//! HTML character-entity decoding.

/// Decodes the named and numeric entities that occur in product pages.
///
/// Unknown entities are passed through verbatim (including the `&`),
/// matching browser leniency.
pub fn decode_entities(input: &str) -> String {
    if !input.contains('&') {
        return input.to_owned();
    }
    let mut out = String::with_capacity(input.len());
    let bytes = input.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'&' {
            if let Some((decoded, consumed)) = decode_one(&input[i..]) {
                out.push_str(&decoded);
                i += consumed;
                continue;
            }
        }
        // Copy the (possibly multi-byte) char starting at i.
        let ch = input[i..].chars().next().expect("in-bounds char");
        out.push(ch);
        i += ch.len_utf8();
    }
    out
}

/// Attempts to decode a single entity at the start of `s` (which begins
/// with `&`). Returns the decoded text and the number of bytes consumed.
fn decode_one(s: &str) -> Option<(String, usize)> {
    let end = s[1..].find(';')? + 1; // index of ';' in s
    if end > 12 {
        return None; // too long to be a real entity
    }
    let name = &s[1..end];
    let decoded = match name {
        "amp" => "&".to_owned(),
        "lt" => "<".to_owned(),
        "gt" => ">".to_owned(),
        "quot" => "\"".to_owned(),
        "apos" => "'".to_owned(),
        "nbsp" => " ".to_owned(),
        "times" => "×".to_owned(),
        "deg" => "°".to_owned(),
        _ => {
            let code =
                if let Some(hex) = name.strip_prefix("#x").or_else(|| name.strip_prefix("#X")) {
                    u32::from_str_radix(hex, 16).ok()?
                } else if let Some(dec) = name.strip_prefix('#') {
                    dec.parse::<u32>().ok()?
                } else {
                    return None;
                };
            char::from_u32(code)?.to_string()
        }
    };
    Some((decoded, end + 1))
}

/// Escapes text for safe embedding in an HTML text node or attribute.
pub fn escape(input: &str) -> String {
    let mut out = String::with_capacity(input.len());
    for c in input.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            _ => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_entities() {
        assert_eq!(decode_entities("a &amp; b &lt;c&gt;"), "a & b <c>");
        assert_eq!(decode_entities("&quot;x&quot; &apos;y&apos;"), "\"x\" 'y'");
        assert_eq!(decode_entities("1&nbsp;kg"), "1 kg");
    }

    #[test]
    fn numeric_entities() {
        assert_eq!(decode_entities("&#65;&#66;"), "AB");
        assert_eq!(decode_entities("&#x41;"), "A");
        assert_eq!(decode_entities("&#x2603;"), "☃");
    }

    #[test]
    fn unknown_entities_pass_through() {
        assert_eq!(decode_entities("&bogus; &;"), "&bogus; &;");
        assert_eq!(decode_entities("fish & chips"), "fish & chips");
    }

    #[test]
    fn invalid_codepoint_passes_through() {
        assert_eq!(decode_entities("&#xD800;"), "&#xD800;");
    }

    #[test]
    fn escape_roundtrip() {
        let raw = "a<b & \"c\">";
        assert_eq!(decode_entities(&escape(raw)), raw);
    }

    #[test]
    fn no_ampersand_fast_path() {
        assert_eq!(decode_entities("plain text"), "plain text");
    }
}
