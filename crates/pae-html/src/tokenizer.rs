//! Forgiving HTML tokenizer.

use crate::entity::decode_entities;

/// One HTML token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HtmlToken {
    /// `<name attr="v" …>`; `self_closing` is true for `<br/>` style tags.
    StartTag {
        /// Lower-cased tag name.
        name: String,
        /// Attributes in document order, values entity-decoded.
        attrs: Vec<(String, String)>,
        /// Whether the tag ended with `/>`.
        self_closing: bool,
    },
    /// `</name>`.
    EndTag {
        /// Lower-cased tag name.
        name: String,
    },
    /// A text node, entity-decoded. Never empty.
    Text(String),
    /// `<!-- … -->` (content kept for the markup veto rule tests).
    Comment(String),
}

/// Tokenizes HTML. Malformed constructs degrade to text rather than
/// failing: a lone `<` not followed by a tag-ish character is literal.
pub fn tokenize(html: &str) -> Vec<HtmlToken> {
    let bytes = html.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    let mut text_start = 0;

    let flush_text = |out: &mut Vec<HtmlToken>, start: usize, end: usize| {
        if start < end {
            let decoded = decode_entities(&html[start..end]);
            if !decoded.is_empty() {
                out.push(HtmlToken::Text(decoded));
            }
        }
    };

    while i < bytes.len() {
        if bytes[i] != b'<' {
            i += 1;
            continue;
        }
        // Comment?
        if html[i..].starts_with("<!--") {
            flush_text(&mut out, text_start, i);
            let close = html[i + 4..].find("-->").map(|p| i + 4 + p);
            let (content_end, next) = match close {
                Some(p) => (p, p + 3),
                None => (html.len(), html.len()),
            };
            out.push(HtmlToken::Comment(html[i + 4..content_end].to_owned()));
            i = next;
            text_start = i;
            continue;
        }
        // Doctype / processing instruction: skip to '>'.
        if html[i..].starts_with("<!") || html[i..].starts_with("<?") {
            flush_text(&mut out, text_start, i);
            let close = html[i..].find('>').map(|p| i + p + 1).unwrap_or(html.len());
            i = close;
            text_start = i;
            continue;
        }
        // End tag.
        if html[i..].starts_with("</") {
            let rest = &html[i + 2..];
            if rest.starts_with(|c: char| c.is_ascii_alphabetic()) {
                flush_text(&mut out, text_start, i);
                let close = rest.find('>').map(|p| i + 2 + p);
                let (name_end, next) = match close {
                    Some(p) => (p, p + 1),
                    None => (html.len(), html.len()),
                };
                let name = html[i + 2..name_end].trim().to_ascii_lowercase();
                out.push(HtmlToken::EndTag { name });
                i = next;
                text_start = i;
                continue;
            }
        }
        // Start tag.
        if html[i + 1..].starts_with(|c: char| c.is_ascii_alphabetic()) {
            if let Some((tok, next)) = parse_start_tag(html, i) {
                flush_text(&mut out, text_start, i);
                // Raw-text elements: script/style content is opaque.
                if let HtmlToken::StartTag {
                    ref name,
                    self_closing: false,
                    ..
                } = tok
                {
                    if name == "script" || name == "style" {
                        let close_pat = format!("</{name}");
                        let content_start = next;
                        let close = html[content_start..]
                            .to_ascii_lowercase()
                            .find(&close_pat)
                            .map(|p| content_start + p);
                        let tag_name = name.clone();
                        out.push(tok);
                        let (content_end, after) = match close {
                            Some(p) => {
                                let after =
                                    html[p..].find('>').map(|q| p + q + 1).unwrap_or(html.len());
                                (p, after)
                            }
                            None => (html.len(), html.len()),
                        };
                        if content_start < content_end {
                            out.push(HtmlToken::Text(html[content_start..content_end].to_owned()));
                        }
                        out.push(HtmlToken::EndTag { name: tag_name });
                        i = after;
                        text_start = i;
                        continue;
                    }
                }
                out.push(tok);
                i = next;
                text_start = i;
                continue;
            }
        }
        // Literal '<'.
        i += 1;
    }
    flush_text(&mut out, text_start, html.len());
    out
}

/// Parses a start tag beginning at byte `start` (which is `<`).
/// Returns the token and the index just past the closing `>`.
fn parse_start_tag(html: &str, start: usize) -> Option<(HtmlToken, usize)> {
    let bytes = html.as_bytes();
    let mut i = start + 1;
    let name_start = i;
    while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'-') {
        i += 1;
    }
    let name = html[name_start..i].to_ascii_lowercase();
    if name.is_empty() {
        return None;
    }
    let mut attrs = Vec::new();
    let mut self_closing = false;
    loop {
        // Skip whitespace.
        while i < bytes.len() && bytes[i].is_ascii_whitespace() {
            i += 1;
        }
        if i >= bytes.len() {
            break;
        }
        match bytes[i] {
            b'>' => {
                i += 1;
                break;
            }
            b'/' => {
                self_closing = true;
                i += 1;
            }
            _ => {
                // Attribute name.
                let a_start = i;
                while i < bytes.len()
                    && !bytes[i].is_ascii_whitespace()
                    && !matches!(bytes[i], b'=' | b'>' | b'/')
                {
                    i += 1;
                }
                let attr_name = html[a_start..i].to_ascii_lowercase();
                while i < bytes.len() && bytes[i].is_ascii_whitespace() {
                    i += 1;
                }
                let mut value = String::new();
                if i < bytes.len() && bytes[i] == b'=' {
                    i += 1;
                    while i < bytes.len() && bytes[i].is_ascii_whitespace() {
                        i += 1;
                    }
                    if i < bytes.len() && (bytes[i] == b'"' || bytes[i] == b'\'') {
                        let quote = bytes[i];
                        i += 1;
                        let v_start = i;
                        while i < bytes.len() && bytes[i] != quote {
                            i += 1;
                        }
                        value = decode_entities(&html[v_start..i]);
                        i = (i + 1).min(bytes.len());
                    } else {
                        let v_start = i;
                        while i < bytes.len() && !bytes[i].is_ascii_whitespace() && bytes[i] != b'>'
                        {
                            i += 1;
                        }
                        value = decode_entities(&html[v_start..i]);
                    }
                }
                if !attr_name.is_empty() {
                    attrs.push((attr_name, value));
                }
            }
        }
    }
    Some((
        HtmlToken::StartTag {
            name,
            attrs,
            self_closing,
        },
        i,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn start(name: &str) -> HtmlToken {
        HtmlToken::StartTag {
            name: name.into(),
            attrs: vec![],
            self_closing: false,
        }
    }

    #[test]
    fn simple_markup() {
        let toks = tokenize("<p>hello</p>");
        assert_eq!(
            toks,
            vec![
                start("p"),
                HtmlToken::Text("hello".into()),
                HtmlToken::EndTag { name: "p".into() }
            ]
        );
    }

    #[test]
    fn attributes_quoted_and_unquoted() {
        let toks = tokenize(r#"<a href="x" class='c' data-n=5>"#);
        match &toks[0] {
            HtmlToken::StartTag { name, attrs, .. } => {
                assert_eq!(name, "a");
                assert_eq!(
                    attrs,
                    &vec![
                        ("href".to_owned(), "x".to_owned()),
                        ("class".to_owned(), "c".to_owned()),
                        ("data-n".to_owned(), "5".to_owned())
                    ]
                );
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn self_closing() {
        let toks = tokenize("<br/>");
        assert!(matches!(
            &toks[0],
            HtmlToken::StartTag {
                self_closing: true,
                ..
            }
        ));
    }

    #[test]
    fn comments_and_doctype() {
        let toks = tokenize("<!DOCTYPE html><!-- note -->x");
        assert_eq!(
            toks,
            vec![
                HtmlToken::Comment(" note ".into()),
                HtmlToken::Text("x".into())
            ]
        );
    }

    #[test]
    fn entities_in_text() {
        let toks = tokenize("<td>100% cotton &amp; linen</td>");
        assert_eq!(toks[1], HtmlToken::Text("100% cotton & linen".into()));
    }

    #[test]
    fn lone_angle_bracket_is_text() {
        let toks = tokenize("1 < 2 and 3 > 2");
        assert_eq!(toks, vec![HtmlToken::Text("1 < 2 and 3 > 2".into())]);
    }

    #[test]
    fn script_content_is_opaque() {
        let toks = tokenize("<script>if (a<b) {}</script>after");
        assert_eq!(toks[1], HtmlToken::Text("if (a<b) {}".into()));
        assert_eq!(toks[3], HtmlToken::Text("after".into()));
    }

    #[test]
    fn unterminated_tag_does_not_panic() {
        let toks = tokenize("<p class=");
        assert!(!toks.is_empty());
        let toks = tokenize("</");
        assert_eq!(toks, vec![HtmlToken::Text("</".into())]);
    }

    #[test]
    fn uppercase_tags_lowercased() {
        let toks = tokenize("<TABLE><TR></TR></TABLE>");
        assert_eq!(toks[0], start("table"));
        assert_eq!(
            toks[3],
            HtmlToken::EndTag {
                name: "table".into()
            }
        );
    }
}
