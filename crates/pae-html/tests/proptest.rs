//! Property-based tests for the HTML substrate: totality on tag soup
//! and a render→parse→extract roundtrip for dictionary tables.

use proptest::prelude::*;

use pae_html::entity::escape;
use pae_html::{extract_tables, extract_text, parse, TextOptions};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Parsing arbitrary tag soup never panics, and text extraction
    /// over the result is total.
    #[test]
    fn parse_is_total_on_tag_soup(s in "[a-z<>/&; \"=']{0,120}") {
        let forest = parse(&s);
        let _ = extract_text(&forest, &TextOptions::default());
        let _ = extract_tables(&forest);
    }

    /// A rendered dictionary table roundtrips through parse + extract,
    /// entity escaping included.
    #[test]
    fn dictionary_table_roundtrip(
        pairs in proptest::collection::vec(("[a-z<&]{1,8}", "[a-z0-9<&.][a-z0-9<&. ]{0,11}"), 2..6),
    ) {
        let mut html = String::from("<table>");
        for (k, v) in &pairs {
            html.push_str(&format!("<tr><th>{}</th><td>{}</td></tr>", escape(k), escape(v)));
        }
        html.push_str("</table>");

        let forest = parse(&html);
        let tables = extract_tables(&forest);
        prop_assert_eq!(tables.len(), 1);
        let dict = tables[0].as_dictionary().expect("dictionary shape");
        prop_assert_eq!(dict.pairs.len(), pairs.len());
        for ((k, v), (ek, ev)) in dict.pairs.iter().zip(&pairs) {
            // Cell text is whitespace-normalized during extraction.
            let norm = |s: &str| s.split_whitespace().collect::<Vec<_>>().join(" ");
            prop_assert_eq!(norm(k), norm(ek));
            prop_assert_eq!(norm(v), norm(ev));
        }
    }

    /// Text extraction of escaped content returns the original text
    /// (whitespace-normalized).
    #[test]
    fn escaped_text_roundtrip(s in "[a-z<>&\"' ]{0,60}") {
        let html = format!("<p>{}</p>", escape(&s));
        let out = extract_text(&parse(&html), &TextOptions::default());
        let norm = |x: &str| x.split_whitespace().collect::<Vec<_>>().join(" ");
        prop_assert_eq!(norm(&out), norm(&s));
    }
}
