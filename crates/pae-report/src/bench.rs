//! Gating Criterion results: compares two `BENCH_pipeline.json`
//! documents (as written by the `pae-bench` bench targets) median by
//! median, using the same perf tolerance and floor as the stage gates
//! in [`crate::diff`].
//!
//! Medians rather than means: the stand-in criterion discards one
//! warmup pass but a handful of samples still leaves the mean exposed
//! to scheduler noise; the median is the stable statistic to gate on.

use pae_obs::json::Json;

use crate::diff::{DiffReport, Thresholds, Violation};

/// One benchmark's summary from a `BENCH_pipeline.json` document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchEntry {
    /// Full benchmark id (`group/function`).
    pub id: String,
    /// Number of timed samples.
    pub samples: u64,
    /// Fastest sample (nanoseconds).
    pub min_ns: u64,
    /// Median sample (nanoseconds).
    pub median_ns: u64,
    /// Mean over all samples (nanoseconds).
    pub mean_ns: u64,
}

/// Parses a `BENCH_pipeline.json` document into its result entries.
pub fn parse_bench(doc: &str) -> Result<Vec<BenchEntry>, String> {
    let json = Json::parse(doc)?;
    let Some(Json::Arr(items)) = json.get("results") else {
        return Err("document has no \"results\" array".into());
    };
    let mut out = Vec::with_capacity(items.len());
    for (i, it) in items.iter().enumerate() {
        let field = |k: &str| -> Result<u64, String> {
            it.get(k)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("results[{i}]: missing or non-integer {k:?}"))
        };
        out.push(BenchEntry {
            id: it
                .get("id")
                .and_then(Json::as_str)
                .ok_or_else(|| format!("results[{i}]: missing \"id\""))?
                .to_owned(),
            samples: field("samples")?,
            min_ns: field("min_ns")?,
            median_ns: field("median_ns")?,
            mean_ns: field("mean_ns")?,
        });
    }
    Ok(out)
}

fn fmt_ms(ns: u64) -> String {
    format!("{:.2}ms", ns as f64 / 1e6)
}

/// Gates `current` against `baseline` by median-per-id. A benchmark
/// regresses when its median is slower than baseline by more than
/// [`Thresholds::time_tolerance`] and both medians are above
/// [`Thresholds::time_floor_ns`]. Ids present on only one side are
/// reported but never flagged (bench sets may evolve).
pub fn check_bench(baseline: &[BenchEntry], current: &[BenchEntry], t: &Thresholds) -> DiffReport {
    let mut report = DiffReport::default();
    for b in baseline {
        let Some(c) = current.iter().find(|c| c.id == b.id) else {
            report
                .lines
                .push(format!("bench {:<44} missing from current run", b.id));
            continue;
        };
        let pct = if b.median_ns == 0 {
            "n/a".into()
        } else {
            format!(
                "{:+.1}%",
                (c.median_ns as f64 - b.median_ns as f64) / b.median_ns as f64 * 100.0
            )
        };
        report.lines.push(format!(
            "bench {:<44} median {:>10} -> {:>10}  ({pct})",
            b.id,
            fmt_ms(b.median_ns),
            fmt_ms(c.median_ns),
        ));
        if b.median_ns >= t.time_floor_ns
            && c.median_ns >= t.time_floor_ns
            && c.median_ns as f64 > b.median_ns as f64 * (1.0 + t.time_tolerance)
        {
            report.violations.push(Violation {
                kind: "perf",
                what: format!(
                    "bench {}: median {} -> {} exceeds +{:.0}% tolerance",
                    b.id,
                    fmt_ms(b.median_ns),
                    fmt_ms(c.median_ns),
                    t.time_tolerance * 100.0
                ),
            });
        }
    }
    for c in current {
        if !baseline.iter().any(|b| b.id == c.id) {
            report.lines.push(format!(
                "bench {:<44} (new)      -> median {:>10}",
                c.id,
                fmt_ms(c.median_ns)
            ));
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(id: &str, median: u64) -> BenchEntry {
        BenchEntry {
            id: id.into(),
            samples: 10,
            min_ns: median.saturating_sub(5),
            median_ns: median,
            mean_ns: median + 5,
        }
    }

    #[test]
    fn parses_the_bench_document_schema() {
        let doc = r#"{
  "bench": "pipeline",
  "git_rev": "abc",
  "pae_jobs": 1,
  "results": [
    {"id": "seed/build", "samples": 20, "min_ns": 10, "median_ns": 12, "mean_ns": 13},
    {"id": "boot/cycle", "samples": 10, "min_ns": 100, "median_ns": 120, "mean_ns": 130}
  ]
}"#;
        let entries = parse_bench(doc).unwrap();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].id, "seed/build");
        assert_eq!(entries[1].median_ns, 120);
        assert!(parse_bench("{\"no\": \"results\"}").is_err());
        assert!(parse_bench("{\"results\": [{\"id\": \"x\"}]}").is_err());
    }

    #[test]
    fn regression_beyond_tolerance_is_flagged() {
        let t = Thresholds {
            time_tolerance: 0.5,
            time_floor_ns: 1_000_000,
            ..Thresholds::default()
        };
        let base = vec![entry("boot/cycle", 100_000_000)];
        // +40%: within tolerance.
        let ok = vec![entry("boot/cycle", 140_000_000)];
        assert!(check_bench(&base, &ok, &t).passed());
        // +60%: flagged.
        let slow = vec![entry("boot/cycle", 160_000_000)];
        let r = check_bench(&base, &slow, &t);
        assert!(!r.passed());
        assert_eq!(r.violations[0].kind, "perf");
        assert!(r.violations[0].what.contains("boot/cycle"));
        // Speedups never flag.
        let fast = vec![entry("boot/cycle", 50_000_000)];
        assert!(check_bench(&base, &fast, &t).passed());
    }

    #[test]
    fn sub_floor_and_one_sided_ids_never_flag() {
        let t = Thresholds::default(); // floor 10ms
        let base = vec![entry("micro/tiny", 1_000), entry("gone/id", 50_000_000)];
        let cur = vec![entry("micro/tiny", 900_000), entry("new/id", 50_000_000)];
        let r = check_bench(&base, &cur, &t);
        assert!(r.passed(), "{:?}", r.violations);
        assert!(r.lines.iter().any(|l| l.contains("missing from current")));
        assert!(r.lines.iter().any(|l| l.contains("(new)")));
    }
}
