//! Comparing two run summaries and gating on regressions.
//!
//! [`diff_summaries`] produces a human-readable delta report plus a
//! list of threshold violations; [`check`] is the CI entry point that
//! reduces a baseline/current pair to pass/fail.
//!
//! Perf and quality are gated differently on purpose:
//!
//! - **Timings** vary across machines and runs, so a stage only counts
//!   as regressed when it is slower than baseline by more than
//!   [`Thresholds::time_tolerance`] *and* both sides are above
//!   [`Thresholds::time_floor_ns`] (sub-floor stages are pure noise).
//! - **Quality** comes from a deterministic pipeline, so precision and
//!   coverage are compared with tight tolerances, and per-attribute
//!   drift may not rise more than [`Thresholds::drift_tol`] above
//!   baseline.

use crate::summary::RunSummary;

/// Noise tolerances for [`diff_summaries`] / [`check`].
#[derive(Debug, Clone, PartialEq)]
pub struct Thresholds {
    /// Allowed relative slowdown per stage (0.5 = +50%).
    pub time_tolerance: f64,
    /// Stages faster than this on either side are never flagged.
    pub time_floor_ns: u64,
    /// Allowed absolute precision drop (headline and per-attribute).
    pub precision_tol: f64,
    /// Allowed absolute coverage drop (headline and per-attribute).
    pub coverage_tol: f64,
    /// Allowed absolute rise of a per-attribute drift score.
    pub drift_tol: f64,
    /// Allowed absolute rise of the serving error rate (0.0 = any new
    /// server-side error beyond baseline fails the gate).
    pub error_rate_tol: f64,
    /// Allowed relative growth of the memory ledger (peak RSS and
    /// total allocated bytes) for profiled runs (0.25 = +25%).
    pub mem_tolerance: f64,
    /// Allowed absolute rise of the online empty-extraction rate.
    pub empty_rate_tol: f64,
    /// Allowed absolute rise of the online OOV-token rate.
    pub oov_tol: f64,
}

impl Default for Thresholds {
    fn default() -> Self {
        Thresholds {
            time_tolerance: 0.5,
            time_floor_ns: 10_000_000,
            precision_tol: 0.02,
            coverage_tol: 0.02,
            drift_tol: 0.25,
            error_rate_tol: 0.0,
            mem_tolerance: 0.25,
            empty_rate_tol: 0.10,
            oov_tol: 0.10,
        }
    }
}

/// One threshold violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// What kind of gate tripped: `perf`, `precision`, `coverage`,
    /// `drift`, `incomplete`, `slo-p99`, `slo-error-rate`,
    /// `slo-missing`, `mem-rss`, `mem-alloc`, `mem-missing`,
    /// `quality-degraded`, `quality-drift`, `quality-empty-rate`,
    /// `quality-oov`, or `quality-missing`.
    pub kind: &'static str,
    /// Human-readable description with both values.
    pub what: String,
}

/// The outcome of comparing two summaries.
#[derive(Debug, Clone, Default)]
pub struct DiffReport {
    /// All deltas, one line each, in report order (perf stages first,
    /// then evaluations, then drift).
    pub lines: Vec<String>,
    /// Gates that tripped; empty means the comparison passes.
    pub violations: Vec<Violation>,
}

impl DiffReport {
    /// True when no gate tripped.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }

    /// Renders the report for the console.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for line in &self.lines {
            out.push_str(line);
            out.push('\n');
        }
        if self.violations.is_empty() {
            out.push_str("PASS: no regressions beyond thresholds\n");
        } else {
            out.push_str(&format!("FAIL: {} violation(s)\n", self.violations.len()));
            for v in &self.violations {
                out.push_str(&format!("  [{}] {}\n", v.kind, v.what));
            }
        }
        out
    }
}

fn fmt_ms(ns: u64) -> String {
    format!("{:.2}ms", ns as f64 / 1e6)
}

fn fmt_pct(base: u64, cur: u64) -> String {
    if base == 0 {
        return "n/a".into();
    }
    let pct = (cur as f64 - base as f64) / base as f64 * 100.0;
    format!("{pct:+.1}%")
}

/// Compares `current` against `baseline`.
pub fn diff_summaries(baseline: &RunSummary, current: &RunSummary, t: &Thresholds) -> DiffReport {
    let mut report = DiffReport::default();

    if current.incomplete() {
        report.violations.push(Violation {
            kind: "incomplete",
            what: format!(
                "current trace dropped {} record(s); its summary cannot be trusted",
                current.dropped
            ),
        });
    }
    if baseline.incomplete() {
        report
            .lines
            .push("note: baseline summary is marked incomplete".into());
    }

    // Perf: stage-by-stage totals over the union of names.
    let mut names: Vec<&String> = baseline
        .stages
        .keys()
        .chain(current.stages.keys())
        .collect();
    names.sort();
    names.dedup();
    for name in names {
        match (baseline.stages.get(name), current.stages.get(name)) {
            (Some(b), Some(c)) => {
                let mut line = format!(
                    "stage {name:<20} {:>10} -> {:>10}  ({})",
                    fmt_ms(b.total_ns),
                    fmt_ms(c.total_ns),
                    fmt_pct(b.total_ns, c.total_ns)
                );
                if c.p99_ns > 0 {
                    line.push_str(&format!(
                        "  p50/p90/p99 {}/{}/{}",
                        fmt_ms(c.p50_ns),
                        fmt_ms(c.p90_ns),
                        fmt_ms(c.p99_ns)
                    ));
                }
                report.lines.push(line);
                let floor = t.time_floor_ns;
                if b.total_ns >= floor
                    && c.total_ns >= floor
                    && c.total_ns as f64 > b.total_ns as f64 * (1.0 + t.time_tolerance)
                {
                    report.violations.push(Violation {
                        kind: "perf",
                        what: format!(
                            "stage {name}: {} -> {} exceeds +{:.0}% tolerance",
                            fmt_ms(b.total_ns),
                            fmt_ms(c.total_ns),
                            t.time_tolerance * 100.0
                        ),
                    });
                }
            }
            (None, Some(c)) => report.lines.push(format!(
                "stage {name:<20} (new)      -> {:>10}",
                fmt_ms(c.total_ns)
            )),
            (Some(b), None) => report.lines.push(format!(
                "stage {name:<20} {:>10} -> (gone)",
                fmt_ms(b.total_ns)
            )),
            (None, None) => unreachable!(),
        }
    }

    // Serving SLOs: server-side extract p99 is gated like a perf stage
    // (relative tolerance over a noise floor); the error rate is gated
    // absolutely — errors are deterministic server behaviour, not
    // machine noise, so the default tolerance is zero.
    match (&baseline.serving, &current.serving) {
        (Some(b), Some(c)) => {
            report.lines.push(format!(
                "serving: requests {} -> {}  error_rate {:.4} -> {:.4}  p99 {} -> {} ({})",
                b.requests,
                c.requests,
                b.error_rate,
                c.error_rate,
                fmt_ms(b.p99_ns),
                fmt_ms(c.p99_ns),
                fmt_pct(b.p99_ns, c.p99_ns)
            ));
            if b.p99_ns >= t.time_floor_ns
                && c.p99_ns >= t.time_floor_ns
                && c.p99_ns as f64 > b.p99_ns as f64 * (1.0 + t.time_tolerance)
            {
                report.violations.push(Violation {
                    kind: "slo-p99",
                    what: format!(
                        "serving p99 {} -> {} exceeds +{:.0}% tolerance",
                        fmt_ms(b.p99_ns),
                        fmt_ms(c.p99_ns),
                        t.time_tolerance * 100.0
                    ),
                });
            }
            if c.error_rate > b.error_rate + t.error_rate_tol {
                report.violations.push(Violation {
                    kind: "slo-error-rate",
                    what: format!(
                        "serving error rate {:.4} -> {:.4} (tolerance {:.4})",
                        b.error_rate, c.error_rate, t.error_rate_tol
                    ),
                });
            }
        }
        (None, Some(c)) => report.lines.push(format!(
            "serving: (new) {} requests, error_rate {:.4}, p99 {}",
            c.requests,
            c.error_rate,
            fmt_ms(c.p99_ns)
        )),
        (Some(b), None) => {
            report.lines.push(format!(
                "serving: baseline had {} requests, current run served nothing",
                b.requests
            ));
            report.violations.push(Violation {
                kind: "slo-missing",
                what: "baseline has a serving section but the current run served no \
                       traffic — SLO gates cannot run"
                    .to_owned(),
            });
        }
        (None, None) => {}
    }

    // Online quality: field-level serving health observed at the end
    // of the load run. The degraded flag and per-attribute drift are
    // deterministic for deterministic traffic, so any new degradation
    // flags; the rate gates use absolute tolerances like error_rate.
    match (&baseline.quality_online, &current.quality_online) {
        (Some(b), Some(c)) => {
            report.lines.push(format!(
                "quality: pages {} -> {}  empty_rate {:.4} -> {:.4}  oov_rate {:.4} -> {:.4}  \
                 degraded {} -> {}",
                b.pages,
                c.pages,
                b.empty_rate,
                c.empty_rate,
                b.oov_rate,
                c.oov_rate,
                b.degraded,
                c.degraded
            ));
            if c.degraded && !b.degraded {
                report.violations.push(Violation {
                    kind: "quality-degraded",
                    what: "server judged itself degraded; baseline run was healthy".to_owned(),
                });
            }
            if c.empty_rate > b.empty_rate + t.empty_rate_tol {
                report.violations.push(Violation {
                    kind: "quality-empty-rate",
                    what: format!(
                        "online empty-extraction rate {:.4} -> {:.4} (tolerance {:.4})",
                        b.empty_rate, c.empty_rate, t.empty_rate_tol
                    ),
                });
            }
            if c.oov_rate > b.oov_rate + t.oov_tol {
                report.violations.push(Violation {
                    kind: "quality-oov",
                    what: format!(
                        "online OOV-token rate {:.4} -> {:.4} (tolerance {:.4})",
                        b.oov_rate, c.oov_rate, t.oov_tol
                    ),
                });
            }
            for ca in &c.attrs {
                let Some(cd) = ca.drift else {
                    continue;
                };
                // An unscored baseline attribute gates from zero: a
                // newly scored drift must still sit inside tolerance.
                let bd = b
                    .attrs
                    .iter()
                    .find(|a| a.attribute == ca.attribute)
                    .and_then(|a| a.drift)
                    .unwrap_or(0.0);
                report.lines.push(format!(
                    "quality drift {:<16} {:.4} -> {:.4}",
                    ca.attribute, bd, cd
                ));
                if cd > bd + t.drift_tol {
                    report.violations.push(Violation {
                        kind: "quality-drift",
                        what: format!(
                            "attr {}: online drift {:.4} -> {:.4} (tolerance {:.4})",
                            ca.attribute, bd, cd, t.drift_tol
                        ),
                    });
                }
            }
        }
        (None, Some(c)) => report.lines.push(format!(
            "quality: (new) {} pages, empty_rate {:.4}, degraded {}",
            c.pages, c.empty_rate, c.degraded
        )),
        (Some(b), None) => {
            report.lines.push(format!(
                "quality: baseline observed {} pages, current run observed nothing",
                b.pages
            ));
            report.violations.push(Violation {
                kind: "quality-missing",
                what: "baseline has a quality_online section but the current run did not \
                       observe field quality — drift gates cannot run"
                    .to_owned(),
            });
        }
        (None, None) => {}
    }

    // Memory ledger: peak RSS and total allocated bytes are gated
    // relatively, like perf — allocator totals are deterministic for a
    // deterministic pipeline, but RSS depends on the allocator's page
    // reuse, so both share one noise tolerance. A baseline with a
    // memory section demands one from the current run: a profiled
    // baseline gated against an unprofiled run would pass vacuously.
    let fmt_mib = |b: u64| format!("{:.1}MiB", b as f64 / (1024.0 * 1024.0));
    match (&baseline.memory, &current.memory) {
        (Some(b), Some(c)) => {
            report.lines.push(format!(
                "memory: peak_rss {} -> {} ({})  total_alloc {} -> {} ({})  allocs {} -> {}",
                fmt_mib(b.peak_rss_bytes),
                fmt_mib(c.peak_rss_bytes),
                fmt_pct(b.peak_rss_bytes, c.peak_rss_bytes),
                fmt_mib(b.total_alloc_bytes),
                fmt_mib(c.total_alloc_bytes),
                fmt_pct(b.total_alloc_bytes, c.total_alloc_bytes),
                b.alloc_count,
                c.alloc_count
            ));
            if c.peak_rss_bytes as f64 > b.peak_rss_bytes as f64 * (1.0 + t.mem_tolerance) {
                report.violations.push(Violation {
                    kind: "mem-rss",
                    what: format!(
                        "peak RSS {} -> {} exceeds +{:.0}% tolerance",
                        fmt_mib(b.peak_rss_bytes),
                        fmt_mib(c.peak_rss_bytes),
                        t.mem_tolerance * 100.0
                    ),
                });
            }
            if c.total_alloc_bytes as f64 > b.total_alloc_bytes as f64 * (1.0 + t.mem_tolerance) {
                report.violations.push(Violation {
                    kind: "mem-alloc",
                    what: format!(
                        "total allocated {} -> {} exceeds +{:.0}% tolerance",
                        fmt_mib(b.total_alloc_bytes),
                        fmt_mib(c.total_alloc_bytes),
                        t.mem_tolerance * 100.0
                    ),
                });
            }
        }
        (None, Some(c)) => report.lines.push(format!(
            "memory: (new) peak_rss {}, total_alloc {}, allocs {}",
            fmt_mib(c.peak_rss_bytes),
            fmt_mib(c.total_alloc_bytes),
            c.alloc_count
        )),
        (Some(b), None) => {
            report.lines.push(format!(
                "memory: baseline recorded peak_rss {}, current run was not profiled",
                fmt_mib(b.peak_rss_bytes)
            ));
            report.violations.push(Violation {
                kind: "mem-missing",
                what: "baseline has a memory section but the current run was not \
                       profiled — memory gates cannot run"
                    .to_owned(),
            });
        }
        (None, None) => {}
    }

    // Quality: evaluations matched by key (first occurrence wins when a
    // key repeats — keys are expected to be unique per run).
    for b in &baseline.evals {
        let Some(c) = current.evals.iter().find(|e| e.key == b.key) else {
            report
                .lines
                .push(format!("eval {}: missing from current run", b.key));
            continue;
        };
        report.lines.push(format!(
            "eval {:<28} precision {:.4} -> {:.4}  coverage {:.4} -> {:.4}  triples {} -> {}",
            b.key, b.precision, c.precision, b.coverage, c.coverage, b.n_triples, c.n_triples
        ));
        if c.precision < b.precision - t.precision_tol {
            report.violations.push(Violation {
                kind: "precision",
                what: format!(
                    "eval {}: precision {:.4} -> {:.4} (tolerance {:.4})",
                    b.key, b.precision, c.precision, t.precision_tol
                ),
            });
        }
        if c.coverage < b.coverage - t.coverage_tol {
            report.violations.push(Violation {
                kind: "coverage",
                what: format!(
                    "eval {}: coverage {:.4} -> {:.4} (tolerance {:.4})",
                    b.key, b.coverage, c.coverage, t.coverage_tol
                ),
            });
        }
        for ba in &b.attrs {
            let Some(ca) = c.attrs.iter().find(|a| a.attribute == ba.attribute) else {
                continue;
            };
            if ca.precision < ba.precision - t.precision_tol {
                report.violations.push(Violation {
                    kind: "precision",
                    what: format!(
                        "eval {} attr {}: precision {:.4} -> {:.4}",
                        b.key, ba.attribute, ba.precision, ca.precision
                    ),
                });
            }
            if ca.coverage < ba.coverage - t.coverage_tol {
                report.violations.push(Violation {
                    kind: "coverage",
                    what: format!(
                        "eval {} attr {}: coverage {:.4} -> {:.4}",
                        b.key, ba.attribute, ba.coverage, ca.coverage
                    ),
                });
            }
        }
    }

    // Drift: runs matched by ordinal, iterations by number, attributes
    // by name. A score may fall freely; rising beyond tolerance flags.
    for (ord, (brun, crun)) in baseline.runs.iter().zip(&current.runs).enumerate() {
        for bit in brun {
            let Some(cit) = crun.iter().find(|it| it.iteration == bit.iteration) else {
                continue;
            };
            for bd in &bit.drift {
                let Some(cd) = cit.drift.iter().find(|d| d.attribute == bd.attribute) else {
                    continue;
                };
                report.lines.push(format!(
                    "drift run{ord} it{} {:<16} {:.4} -> {:.4}",
                    bit.iteration, bd.attribute, bd.score, cd.score
                ));
                if cd.score > bd.score + t.drift_tol {
                    report.violations.push(Violation {
                        kind: "drift",
                        what: format!(
                            "run{ord} it{} attr {}: drift {:.4} -> {:.4} (tolerance {:.4})",
                            bit.iteration, bd.attribute, bd.score, cd.score, t.drift_tol
                        ),
                    });
                }
            }
        }
    }

    report
}

/// CI gate: diffs `current` against `baseline` and returns the report;
/// callers map [`DiffReport::passed`] to an exit code.
pub fn check(baseline: &RunSummary, current: &RunSummary, t: &Thresholds) -> DiffReport {
    diff_summaries(baseline, current, t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::summary::{AttrEval, DriftRow, EvalRow, IterationQuality, StagePerf};

    fn base() -> RunSummary {
        let mut s = RunSummary::default();
        s.stages.insert(
            "semantic".into(),
            StagePerf {
                calls: 1,
                total_ns: 100_000_000,
                max_ns: 100_000_000,
                p50_ns: 100_000_000,
                p90_ns: 100_000_000,
                p99_ns: 100_000_000,
            },
        );
        s.stages.insert(
            "tiny".into(),
            StagePerf {
                calls: 1,
                total_ns: 1_000,
                max_ns: 1_000,
                ..StagePerf::default()
            },
        );
        s.runs.push(vec![IterationQuality {
            iteration: 1,
            triples: 100,
            drift: vec![DriftRow {
                attribute: "color".into(),
                score: 0.1,
                n_values: 10,
                n_baseline: 8,
            }],
            ..IterationQuality::default()
        }]);
        s.evals.push(EvalRow {
            key: "bags/default".into(),
            precision: 0.9,
            coverage: 0.8,
            n_triples: 100,
            attrs: vec![AttrEval {
                attribute: "color".into(),
                precision: 0.95,
                coverage: 0.7,
            }],
        });
        s
    }

    #[test]
    fn identical_summaries_pass() {
        let s = base();
        let r = check(&s, &s, &Thresholds::default());
        assert!(r.passed(), "{:?}", r.violations);
        assert!(!r.lines.is_empty());
    }

    #[test]
    fn stage_table_shows_quantiles_when_present() {
        let s = base();
        let r = check(&s, &s, &Thresholds::default());
        let semantic = r
            .lines
            .iter()
            .find(|l| l.starts_with("stage semantic"))
            .expect("semantic stage line");
        assert!(
            semantic.contains("p50/p90/p99 100.00ms/100.00ms/100.00ms"),
            "{semantic}"
        );
        // Documents predating the quantile fields render without them.
        let tiny = r
            .lines
            .iter()
            .find(|l| l.starts_with("stage tiny"))
            .expect("tiny stage line");
        assert!(!tiny.contains("p50"), "{tiny}");
    }

    #[test]
    fn slow_stage_above_floor_is_flagged_but_tiny_one_is_not() {
        let b = base();
        let mut c = base();
        c.stages.get_mut("semantic").unwrap().total_ns = 200_000_000;
        c.stages.get_mut("tiny").unwrap().total_ns = 900_000; // 900x but sub-floor
        let r = check(&b, &c, &Thresholds::default());
        assert_eq!(r.violations.len(), 1, "{:?}", r.violations);
        assert_eq!(r.violations[0].kind, "perf");
        assert!(r.violations[0].what.contains("semantic"));
    }

    #[test]
    fn precision_and_coverage_drops_are_flagged() {
        let b = base();
        let mut c = base();
        c.evals[0].precision = 0.85;
        c.evals[0].coverage = 0.7;
        c.evals[0].attrs[0].precision = 0.8;
        let r = check(&b, &c, &Thresholds::default());
        let kinds: Vec<&str> = r.violations.iter().map(|v| v.kind).collect();
        assert_eq!(kinds, vec!["precision", "coverage", "precision"]);
        // Improvements never flag.
        let mut up = base();
        up.evals[0].precision = 0.99;
        assert!(check(&b, &up, &Thresholds::default()).passed());
    }

    #[test]
    fn drift_rise_is_flagged_and_fall_is_not() {
        let b = base();
        let mut c = base();
        c.runs[0][0].drift[0].score = 0.5;
        let r = check(&b, &c, &Thresholds::default());
        assert_eq!(r.violations.len(), 1);
        assert_eq!(r.violations[0].kind, "drift");

        let mut fell = base();
        fell.runs[0][0].drift[0].score = -0.4;
        assert!(check(&b, &fell, &Thresholds::default()).passed());
    }

    #[test]
    fn serving_slo_gates_fire_on_p99_and_error_rate() {
        use crate::summary::ServingSummary;
        let mut b = base();
        b.serving = Some(ServingSummary {
            requests: 150,
            errors: 0,
            error_rate: 0.0,
            p50_ns: 20_000_000,
            p99_ns: 100_000_000,
        });
        // Within tolerance: passes.
        let mut c = b.clone();
        c.serving.as_mut().unwrap().p99_ns = 120_000_000;
        assert!(check(&b, &c, &Thresholds::default()).passed());

        // p99 blowout: slo-p99.
        c.serving.as_mut().unwrap().p99_ns = 200_000_000;
        let r = check(&b, &c, &Thresholds::default());
        assert_eq!(r.violations.len(), 1, "{:?}", r.violations);
        assert_eq!(r.violations[0].kind, "slo-p99");

        // Any new error with the default zero tolerance: slo-error-rate.
        let mut c = b.clone();
        c.serving.as_mut().unwrap().errors = 1;
        c.serving.as_mut().unwrap().error_rate = 1.0 / 150.0;
        let r = check(&b, &c, &Thresholds::default());
        assert_eq!(r.violations[0].kind, "slo-error-rate");
        let loose = Thresholds {
            error_rate_tol: 0.05,
            ..Thresholds::default()
        };
        assert!(check(&b, &c, &loose).passed());

        // Sub-floor p99s are never flagged (noise).
        let mut tiny = b.clone();
        tiny.serving.as_mut().unwrap().p99_ns = 1_000;
        let mut tiny_cur = b.clone();
        tiny_cur.serving.as_mut().unwrap().p99_ns = 900_000;
        assert!(check(&tiny, &tiny_cur, &Thresholds::default()).passed());

        // Baseline serving but current not: gates cannot run -> fail.
        let r = check(&b, &base(), &Thresholds::default());
        assert_eq!(r.violations[0].kind, "slo-missing");
        // Reverse direction (new serving section) is informational only.
        assert!(check(&base(), &b, &Thresholds::default()).passed());
    }

    #[test]
    fn memory_gates_fire_on_rss_and_alloc_regressions() {
        use crate::summary::MemorySummary;
        let mut b = base();
        b.memory = Some(MemorySummary {
            peak_rss_bytes: 100 << 20,
            total_alloc_bytes: 1_000_000_000,
            alloc_count: 5_000_000,
            peak_live_bytes: 80 << 20,
        });
        // Within tolerance: passes.
        let mut c = b.clone();
        c.memory.as_mut().unwrap().peak_rss_bytes = 110 << 20;
        assert!(check(&b, &c, &Thresholds::default()).passed());

        // Injected +50% peak-RSS regression at 10% tolerance: mem-rss.
        let mut c = b.clone();
        c.memory.as_mut().unwrap().peak_rss_bytes = 150 << 20;
        let tight = Thresholds {
            mem_tolerance: 0.1,
            ..Thresholds::default()
        };
        let r = check(&b, &c, &tight);
        assert_eq!(r.violations.len(), 1, "{:?}", r.violations);
        assert_eq!(r.violations[0].kind, "mem-rss");
        // The same regression passes at a looser tolerance.
        let loose = Thresholds {
            mem_tolerance: 0.6,
            ..Thresholds::default()
        };
        assert!(check(&b, &c, &loose).passed());

        // Allocation blowout: mem-alloc.
        let mut c = b.clone();
        c.memory.as_mut().unwrap().total_alloc_bytes = 2_000_000_000;
        let r = check(&b, &c, &Thresholds::default());
        assert_eq!(r.violations.len(), 1, "{:?}", r.violations);
        assert_eq!(r.violations[0].kind, "mem-alloc");

        // Memory falling never flags.
        let mut c = b.clone();
        c.memory.as_mut().unwrap().peak_rss_bytes = 50 << 20;
        c.memory.as_mut().unwrap().total_alloc_bytes = 500_000_000;
        assert!(check(&b, &c, &Thresholds::default()).passed());

        // Profiled baseline vs unprofiled current: gates cannot run.
        let r = check(&b, &base(), &Thresholds::default());
        assert_eq!(r.violations[0].kind, "mem-missing");
        // Reverse direction (newly profiled run) is informational only.
        let r = check(&base(), &b, &Thresholds::default());
        assert!(r.passed(), "{:?}", r.violations);
        assert!(r.lines.iter().any(|l| l.starts_with("memory: (new)")));
    }

    #[test]
    fn quality_online_gates_fire_on_degradation_and_drift() {
        use crate::summary::{OnlineAttr, QualityOnlineSummary};
        let mut b = base();
        b.quality_online = Some(QualityOnlineSummary {
            pages: 150,
            empty_pages: 0,
            empty_rate: 0.0,
            oov_rate: 0.05,
            degraded: false,
            attrs: vec![OnlineAttr {
                attribute: "color".into(),
                triples: 140,
                rate: 0.93,
                drift: Some(0.03),
            }],
        });
        // Identical: passes.
        assert!(check(&b, &b, &Thresholds::default()).passed());

        // Degraded flag flips: quality-degraded.
        let mut c = b.clone();
        c.quality_online.as_mut().unwrap().degraded = true;
        let r = check(&b, &c, &Thresholds::default());
        assert_eq!(r.violations.len(), 1, "{:?}", r.violations);
        assert_eq!(r.violations[0].kind, "quality-degraded");

        // Drift rises past tolerance: quality-drift.
        let mut c = b.clone();
        c.quality_online.as_mut().unwrap().attrs[0].drift = Some(0.5);
        let r = check(&b, &c, &Thresholds::default());
        assert_eq!(r.violations.len(), 1, "{:?}", r.violations);
        assert_eq!(r.violations[0].kind, "quality-drift");
        // A newly scored attribute gates from zero.
        let mut unscored = b.clone();
        unscored.quality_online.as_mut().unwrap().attrs[0].drift = None;
        let r = check(&unscored, &c, &Thresholds::default());
        assert_eq!(r.violations[0].kind, "quality-drift");
        // Drift falling (or losing its score) never flags.
        assert!(check(&c, &unscored, &Thresholds::default()).passed());

        // Empty-rate and OOV rises past the absolute tolerances.
        let mut c = b.clone();
        c.quality_online.as_mut().unwrap().empty_rate = 0.2;
        c.quality_online.as_mut().unwrap().oov_rate = 0.3;
        let r = check(&b, &c, &Thresholds::default());
        let kinds: Vec<&str> = r.violations.iter().map(|v| v.kind).collect();
        assert_eq!(kinds, vec!["quality-empty-rate", "quality-oov"]);
        let loose = Thresholds {
            empty_rate_tol: 0.5,
            oov_tol: 0.5,
            ..Thresholds::default()
        };
        assert!(check(&b, &c, &loose).passed());

        // Observed baseline vs unobserved current: gates cannot run.
        let r = check(&b, &base(), &Thresholds::default());
        assert_eq!(r.violations[0].kind, "quality-missing");
        // Reverse direction (newly observed run) is informational only.
        let r = check(&base(), &b, &Thresholds::default());
        assert!(r.passed(), "{:?}", r.violations);
        assert!(r.lines.iter().any(|l| l.starts_with("quality: (new)")));
    }

    #[test]
    fn incomplete_current_always_fails() {
        let b = base();
        let mut c = base();
        c.dropped = 17;
        let r = check(&b, &c, &Thresholds::default());
        assert_eq!(r.violations[0].kind, "incomplete");
    }

    #[test]
    fn custom_thresholds_relax_gates() {
        let b = base();
        let mut c = base();
        c.evals[0].precision = 0.85;
        let loose = Thresholds {
            precision_tol: 0.1,
            ..Thresholds::default()
        };
        assert!(check(&b, &c, &loose).passed());
        assert!(!check(&b, &c, &Thresholds::default()).passed());
    }
}
