//! `pae-report` — run ledger, regression gates, and drift analytics
//! over `pae-obs` traces.
//!
//! Three layers:
//!
//! 1. [`summary`] — turns a parsed [`pae_obs::reader::Trace`] into a
//!    self-contained [`summary::RunSummary`]: run metadata (git rev,
//!    config hash, job count, scale), per-stage wall-clock aggregates,
//!    and the per-iteration quality series (triples, candidates, veto
//!    drops, semantic evictions, per-attribute drift) plus every
//!    recorded evaluation. The quality section is byte-deterministic
//!    for a deterministic pipeline run; timings live in a separate
//!    `perf` section that diffs tolerate noise on.
//! 2. [`diff`] — compares two summaries: per-stage time deltas with a
//!    noise threshold, per-eval and per-attribute quality deltas, and
//!    drift regressions. [`diff::check`] reduces the comparison to
//!    pass/fail against explicit tolerances for CI gating.
//! 3. [`ledger`] — helpers for writing summaries into
//!    `results/ledger/` with stable file names, plus git-revision and
//!    config-hash probes used to stamp [`summary::RunMeta`].
//! 4. [`bench`] — parses the `BENCH_pipeline.json` documents written by
//!    the `pae-bench` Criterion targets and gates median-per-benchmark
//!    against the perf tolerance (`check --bench-baseline`).
//! 5. [`lineage`] — regroups a trace's `provenance` records into one
//!    [`lineage::TripleLineage`] trail per `(attr, value)` pair, with
//!    model confidences and the final disposition; powers the
//!    `explain` / `explain-diff` subcommands.
//! 6. [`flamegraph`] — collapses a trace's span tree into folded
//!    stacks weighted by self time or self allocated bytes, for
//!    rendering with any standard flamegraph tool.
//!
//! The `pae-report` binary exposes all of it as `summarize`, `diff`,
//! `check`, `explain`, `explain-diff`, and `flamegraph` subcommands
//! (exit codes: 0 pass, 1 regression / nothing found, 2 usage or I/O
//! error).

#![warn(missing_docs)]

pub mod bench;
pub mod diff;
pub mod flamegraph;
pub mod ledger;
pub mod lineage;
pub mod summary;

pub use diff::{check, diff_summaries, DiffReport, Thresholds, Violation};
pub use flamegraph::{folded_stacks, Weight};
pub use lineage::{fate_flips, FateFlip, LineageLedger, TripleLineage};
pub use summary::{RunMeta, RunSummary};
