//! The per-triple lineage ledger: provenance records regrouped by
//! `(attr, value)` pair into one decision trail each.
//!
//! [`LineageLedger::build`] walks a trace's `provenance` records in
//! collection order and folds them into one [`TripleLineage`] per pair:
//! origin, the running maximum model confidence, every stage event in
//! order, and the final disposition. The ledger is keyed on a `BTreeMap`
//! and its JSON export excludes `seq`/`t_ns`/`thread`, so two runs that
//! made the same decisions serialize byte-identically regardless of
//! timing or worker count.
//!
//! `pae-report explain` renders trails from this ledger;
//! `pae-report explain-diff` compares the dispositions of two ledgers
//! and reports every pair whose fate flipped.

use std::collections::BTreeMap;

use pae_obs::json::{write_f64, write_str};
use pae_obs::reader::Trace;
use pae_obs::FieldValue;

/// One stage decision in a pair's trail, in collection order.
#[derive(Debug, Clone, PartialEq)]
pub struct LineageEvent {
    /// Which stage spoke: `origin`, `extract`, `ensemble`, `veto`,
    /// `semantic`, or `correction`.
    pub stage: &'static str,
    /// Bootstrap iteration the decision happened in.
    pub iteration: u64,
    /// Human-readable rendering of the decision.
    pub detail: String,
}

/// The reconstructed lineage of one `(attr, value)` pair.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TripleLineage {
    /// Attribute name.
    pub attr: String,
    /// Value string.
    pub value: String,
    /// Where the pair first appeared: `seed`, `diversify`, `tagger`,
    /// or `correction` (empty when the trace never recorded an origin).
    pub origin: String,
    /// Best CRF posterior decode confidence seen for the pair.
    pub conf_crf: Option<f64>,
    /// Best RNN softmax decode confidence seen for the pair.
    pub conf_rnn: Option<f64>,
    /// Final fate: `kept`, `dropped`, or `rewritten` (empty when the
    /// trace carries no disposition, e.g. it was cut mid-run).
    pub fate: String,
    /// The stage that decided a drop/rewrite (empty for `kept`).
    pub stage: String,
    /// Iteration of the deciding stage.
    pub fate_iteration: u64,
    /// For `rewritten`: the value the human folded this pair into.
    pub rewritten_to: Option<String>,
    /// Every stage decision, in collection order.
    pub events: Vec<LineageEvent>,
}

impl TripleLineage {
    /// The pair's headline confidence: the better of the two backends,
    /// 0 when no model ever scored it (seed/diversified vocabulary).
    pub fn confidence(&self) -> f64 {
        match (self.conf_crf, self.conf_rnn) {
            (Some(a), Some(b)) => a.max(b),
            (Some(a), None) => a,
            (None, Some(b)) => b,
            (None, None) => 0.0,
        }
    }
}

/// All lineages of one run, keyed by `(attr, value)`.
#[derive(Debug, Clone, Default)]
pub struct LineageLedger {
    /// One trail per pair the run ever considered.
    pub entries: BTreeMap<(String, String), TripleLineage>,
}

fn f_str<'a>(fields: &'a [(String, FieldValue)], key: &str) -> Option<&'a str> {
    fields.iter().find(|(k, _)| k == key).and_then(|(_, v)| {
        if let FieldValue::Str(s) = v {
            Some(s.as_str())
        } else {
            None
        }
    })
}

fn f_u64(fields: &[(String, FieldValue)], key: &str) -> Option<u64> {
    fields
        .iter()
        .find(|(k, _)| k == key)
        .and_then(|(_, v)| match v {
            FieldValue::U64(n) => Some(*n),
            FieldValue::I64(n) if *n >= 0 => Some(*n as u64),
            _ => None,
        })
}

fn f_f64(fields: &[(String, FieldValue)], key: &str) -> Option<f64> {
    fields
        .iter()
        .find(|(k, _)| k == key)
        .and_then(|(_, v)| match v {
            FieldValue::F64(f) => Some(*f),
            FieldValue::U64(n) => Some(*n as f64),
            FieldValue::I64(n) => Some(*n as f64),
            _ => None,
        })
}

fn f_bool(fields: &[(String, FieldValue)], key: &str) -> Option<bool> {
    fields.iter().find(|(k, _)| k == key).and_then(|(_, v)| {
        if let FieldValue::Bool(b) = v {
            Some(*b)
        } else {
            None
        }
    })
}

fn conf_suffix(crf: Option<f64>, rnn: Option<f64>) -> String {
    match (crf, rnn) {
        (Some(c), Some(r)) => format!(", conf crf {c:.3} rnn {r:.3}"),
        (Some(c), None) => format!(", conf crf {c:.3}"),
        (None, Some(r)) => format!(", conf rnn {r:.3}"),
        (None, None) => String::new(),
    }
}

impl LineageLedger {
    /// Regroups a trace's provenance records into per-pair trails.
    pub fn build(trace: &Trace) -> LineageLedger {
        let mut ledger = LineageLedger::default();
        for r in trace.provenance_records() {
            let (Some(attr), Some(value)) = (f_str(&r.fields, "attr"), f_str(&r.fields, "value"))
            else {
                continue;
            };
            let entry = ledger
                .entries
                .entry((attr.to_string(), value.to_string()))
                .or_insert_with(|| TripleLineage {
                    attr: attr.to_string(),
                    value: value.to_string(),
                    ..TripleLineage::default()
                });
            let iteration = f_u64(&r.fields, "iteration").unwrap_or(0);
            let crf = f_f64(&r.fields, "conf_crf");
            let rnn = f_f64(&r.fields, "conf_rnn");
            if let Some(c) = crf {
                entry.conf_crf = Some(entry.conf_crf.map_or(c, |m| m.max(c)));
            }
            if let Some(c) = rnn {
                entry.conf_rnn = Some(entry.conf_rnn.map_or(c, |m| m.max(c)));
            }
            match r.name.as_str() {
                "prov.origin" => {
                    let origin = f_str(&r.fields, "origin").unwrap_or("unknown");
                    if entry.origin.is_empty() {
                        entry.origin = origin.to_string();
                    }
                    let mut detail = format!("origin: {origin}");
                    if let Some(backend) = f_str(&r.fields, "backend") {
                        detail.push_str(&format!(" via {backend}"));
                    }
                    if let Some(n) = f_u64(&r.fields, "products") {
                        if n > 0 {
                            detail.push_str(&format!(", {n} product(s)"));
                            if let Some(ids) = f_str(&r.fields, "product_ids") {
                                detail.push_str(&format!(" [{ids}]"));
                            }
                        }
                    }
                    detail.push_str(&conf_suffix(crf, rnn));
                    entry.events.push(LineageEvent {
                        stage: "origin",
                        iteration,
                        detail,
                    });
                }
                "prov.extract" => {
                    let backend = f_str(&r.fields, "backend").unwrap_or("?");
                    let n = f_u64(&r.fields, "products").unwrap_or(0);
                    let detail = format!(
                        "re-extracted via {backend}, {n} product(s){}",
                        conf_suffix(crf, rnn)
                    );
                    entry.events.push(LineageEvent {
                        stage: "extract",
                        iteration,
                        detail,
                    });
                }
                "prov.ensemble" => {
                    let backend = f_str(&r.fields, "backend").unwrap_or("?");
                    let conf = f_f64(&r.fields, "conf").unwrap_or(0.0);
                    match backend {
                        "rnn" => {
                            entry.conf_rnn = Some(entry.conf_rnn.map_or(conf, |m| m.max(conf)))
                        }
                        _ => entry.conf_crf = Some(entry.conf_crf.map_or(conf, |m| m.max(conf))),
                    }
                    entry.events.push(LineageEvent {
                        stage: "ensemble",
                        iteration,
                        detail: format!(
                            "ensemble drop: only {backend} produced it (conf {conf:.3})"
                        ),
                    });
                }
                "prov.veto" => {
                    let rule = f_str(&r.fields, "rule").unwrap_or("?");
                    let dropped = f_bool(&r.fields, "dropped").unwrap_or(false);
                    let measure = f_f64(&r.fields, "measure").unwrap_or(0.0);
                    let verdict = if dropped { "DROPPED" } else { "near-miss" };
                    entry.events.push(LineageEvent {
                        stage: "veto",
                        iteration,
                        detail: format!("veto {rule}: {verdict} (measure {measure:.2})"),
                    });
                }
                "prov.semantic" => {
                    let kept = f_bool(&r.fields, "kept").unwrap_or(true);
                    let in_core = f_bool(&r.fields, "in_core").unwrap_or(false);
                    let threshold = f_f64(&r.fields, "threshold").unwrap_or(0.0);
                    let verdict = if kept { "kept" } else { "DROPPED" };
                    let mut detail = match f_f64(&r.fields, "similarity") {
                        Some(sim) => format!(
                            "semantic: similarity {sim:.3} vs threshold {threshold:.2}, {verdict}"
                        ),
                        None => format!("semantic: unscored, {verdict}"),
                    };
                    if in_core {
                        detail.push_str(" (core member)");
                    }
                    entry.events.push(LineageEvent {
                        stage: "semantic",
                        iteration,
                        detail,
                    });
                }
                "prov.correction" => {
                    let detail = match f_str(&r.fields, "action") {
                        Some("rewrite") => format!(
                            "correction: rewritten to \"{}\"",
                            f_str(&r.fields, "new_value").unwrap_or("?")
                        ),
                        _ => "correction: vetoed by human".to_string(),
                    };
                    entry.events.push(LineageEvent {
                        stage: "correction",
                        iteration,
                        detail,
                    });
                }
                "prov.disposition" => {
                    entry.fate = f_str(&r.fields, "fate").unwrap_or("").to_string();
                    entry.stage = f_str(&r.fields, "stage").unwrap_or("").to_string();
                    entry.fate_iteration = iteration;
                    entry.rewritten_to = f_str(&r.fields, "rewritten_to").map(str::to_string);
                }
                _ => {}
            }
        }
        ledger
    }

    /// Attribute names with their pair counts, sorted by name — the
    /// discovery listing `explain` prints when no `--attribute` given.
    pub fn attributes(&self) -> Vec<(String, usize)> {
        let mut counts: BTreeMap<&str, usize> = BTreeMap::new();
        for (attr, _) in self.entries.keys() {
            *counts.entry(attr).or_default() += 1;
        }
        counts
            .into_iter()
            .map(|(a, n)| (a.to_string(), n))
            .collect()
    }

    /// Entries matching the query, best confidence first (ties broken
    /// by the `(attr, value)` key so the order is total).
    pub fn select(
        &self,
        attribute: Option<&str>,
        value: Option<&str>,
        product: Option<&str>,
    ) -> Vec<&TripleLineage> {
        let mut hits: Vec<&TripleLineage> = self
            .entries
            .values()
            .filter(|e| attribute.is_none_or(|a| e.attr == a))
            .filter(|e| value.is_none_or(|v| e.value == v))
            .filter(|e| {
                product.is_none_or(|p| {
                    e.events.iter().any(|ev| {
                        ev.detail.contains(&format!("[{p}]"))
                            || ev.detail.contains(&format!("[{p},"))
                            || ev.detail.contains(&format!(",{p},"))
                            || ev.detail.contains(&format!(",{p}]"))
                    })
                })
            })
            .collect();
        hits.sort_by(|a, b| {
            b.confidence()
                .total_cmp(&a.confidence())
                .then_with(|| (&a.attr, &a.value).cmp(&(&b.attr, &b.value)))
        });
        hits
    }

    /// Renders one entry's trail for the console.
    pub fn render_trail(e: &TripleLineage) -> String {
        let mut out = String::new();
        let fate = if e.fate.is_empty() { "?" } else { &e.fate };
        out.push_str(&format!(
            "{}={}  [{}]  confidence {:.3}",
            e.attr,
            e.value,
            fate,
            e.confidence()
        ));
        if let (Some(c), Some(r)) = (e.conf_crf, e.conf_rnn) {
            out.push_str(&format!(" (crf {c:.3}, rnn {r:.3})"));
        }
        out.push('\n');
        for ev in &e.events {
            out.push_str(&format!("  it{}  {}\n", ev.iteration, ev.detail));
        }
        match e.fate.as_str() {
            "kept" => out.push_str("  disposition: kept in the final triples\n"),
            "rewritten" => out.push_str(&format!(
                "  disposition: rewritten to \"{}\" at it{} ({})\n",
                e.rewritten_to.as_deref().unwrap_or("?"),
                e.fate_iteration,
                e.stage
            )),
            "dropped" => out.push_str(&format!(
                "  disposition: dropped at it{} by {}\n",
                e.fate_iteration, e.stage
            )),
            _ => out.push_str("  disposition: unknown (trace carries no disposition record)\n"),
        }
        out
    }

    /// Deterministic JSON export of the whole ledger (no `seq`, `t_ns`,
    /// or `thread` — only decisions).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n  \"type\": \"lineage_ledger\",\n  \"entries\": [");
        for (i, e) in self.entries.values().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str("    { \"attr\": ");
            write_str(&mut out, &e.attr);
            out.push_str(", \"value\": ");
            write_str(&mut out, &e.value);
            out.push_str(", \"origin\": ");
            write_str(&mut out, &e.origin);
            out.push_str(", \"fate\": ");
            write_str(&mut out, &e.fate);
            out.push_str(", \"stage\": ");
            write_str(&mut out, &e.stage);
            out.push_str(&format!(", \"iteration\": {}", e.fate_iteration));
            out.push_str(", \"confidence\": ");
            write_f64(&mut out, e.confidence());
            if let Some(c) = e.conf_crf {
                out.push_str(", \"conf_crf\": ");
                write_f64(&mut out, c);
            }
            if let Some(c) = e.conf_rnn {
                out.push_str(", \"conf_rnn\": ");
                write_f64(&mut out, c);
            }
            if let Some(to) = &e.rewritten_to {
                out.push_str(", \"rewritten_to\": ");
                write_str(&mut out, to);
            }
            out.push_str(", \"events\": [");
            for (j, ev) in e.events.iter().enumerate() {
                out.push_str(if j == 0 { "" } else { ", " });
                out.push_str("{ \"stage\": ");
                write_str(&mut out, ev.stage);
                out.push_str(&format!(", \"iteration\": {}", ev.iteration));
                out.push_str(", \"detail\": ");
                write_str(&mut out, &ev.detail);
                out.push_str(" }");
            }
            out.push_str("] }");
        }
        out.push_str("\n  ]\n}\n");
        out
    }
}

/// One pair whose disposition changed between two runs.
#[derive(Debug, Clone, PartialEq)]
pub struct FateFlip {
    /// Attribute name.
    pub attr: String,
    /// Value string.
    pub value: String,
    /// Baseline fate (`absent` when the pair is new).
    pub from: String,
    /// Current fate (`absent` when the pair vanished).
    pub to: String,
    /// The stage that caused the current fate (`baseline:<stage>` when
    /// the pair vanished entirely, so the cause lives in the baseline).
    pub cause: String,
    /// Iteration of the causing stage.
    pub iteration: u64,
}

/// Pairs whose fate differs between `baseline` and `current`, in key
/// order. A pair missing from one side diffs against `"absent"`.
pub fn fate_flips(baseline: &LineageLedger, current: &LineageLedger) -> Vec<FateFlip> {
    let mut keys: Vec<&(String, String)> = baseline
        .entries
        .keys()
        .chain(current.entries.keys())
        .collect();
    keys.sort();
    keys.dedup();
    let mut flips = Vec::new();
    for key in keys {
        let b = baseline.entries.get(key);
        let c = current.entries.get(key);
        let from = b.map_or("absent", |e| {
            if e.fate.is_empty() {
                "?"
            } else {
                e.fate.as_str()
            }
        });
        let to = c.map_or("absent", |e| {
            if e.fate.is_empty() {
                "?"
            } else {
                e.fate.as_str()
            }
        });
        if from == to {
            continue;
        }
        // The cause is whatever stage produced the *current* fate; for
        // a vanished pair the only explanation lives in the baseline.
        let (cause, iteration) = match c {
            Some(e) => {
                let stage = if e.fate == "kept" {
                    "final".to_string()
                } else if e.stage.is_empty() {
                    "?".to_string()
                } else {
                    e.stage.clone()
                };
                (stage, e.fate_iteration)
            }
            None => match b {
                Some(e) if !e.stage.is_empty() => {
                    (format!("baseline:{}", e.stage), e.fate_iteration)
                }
                _ => ("absent".to_string(), 0),
            },
        };
        flips.push(FateFlip {
            attr: key.0.clone(),
            value: key.1.clone(),
            from: from.to_string(),
            to: to.to_string(),
            cause,
            iteration,
        });
    }
    flips
}

#[cfg(test)]
mod tests {
    use super::*;
    use pae_obs::{RecordKind, TraceRecord};

    fn prov(seq: u64, name: &str, fields: Vec<(&str, FieldValue)>) -> TraceRecord {
        TraceRecord {
            seq,
            t_ns: seq * 10,
            thread: 0,
            kind: RecordKind::Provenance,
            span: 0,
            parent: 0,
            name: name.into(),
            fields: fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        }
    }

    fn trace_of(records: Vec<TraceRecord>) -> Trace {
        let mut t = Trace::default();
        t.meta.records = records.len() as u64;
        t.records = records;
        t
    }

    fn sample_trace() -> Trace {
        trace_of(vec![
            prov(
                0,
                "prov.origin",
                vec![
                    ("attr", "color".into()),
                    ("value", "red".into()),
                    ("origin", "seed".into()),
                    ("iteration", 0usize.into()),
                    ("products", 2usize.into()),
                    ("product_ids", "3,7".into()),
                ],
            ),
            prov(
                1,
                "prov.origin",
                vec![
                    ("attr", "color".into()),
                    ("value", "reddish".into()),
                    ("origin", "tagger".into()),
                    ("iteration", 1usize.into()),
                    ("backend", "crf".into()),
                    ("products", 1usize.into()),
                    ("product_ids", "9".into()),
                    ("conf_crf", 0.61f64.into()),
                ],
            ),
            prov(
                2,
                "prov.veto",
                vec![
                    ("attr", "color".into()),
                    ("value", "reddish".into()),
                    ("iteration", 1usize.into()),
                    ("rule", "long".into()),
                    ("dropped", false.into()),
                    ("measure", 0.4f64.into()),
                ],
            ),
            prov(
                3,
                "prov.semantic",
                vec![
                    ("attr", "color".into()),
                    ("value", "reddish".into()),
                    ("iteration", 1usize.into()),
                    ("in_core", false.into()),
                    ("kept", false.into()),
                    ("threshold", 0.55f64.into()),
                    ("similarity", 0.21f64.into()),
                ],
            ),
            prov(
                4,
                "prov.disposition",
                vec![
                    ("attr", "color".into()),
                    ("value", "red".into()),
                    ("fate", "kept".into()),
                    ("stage", "".into()),
                    ("iteration", 0usize.into()),
                ],
            ),
            prov(
                5,
                "prov.disposition",
                vec![
                    ("attr", "color".into()),
                    ("value", "reddish".into()),
                    ("fate", "dropped".into()),
                    ("stage", "semantic".into()),
                    ("iteration", 1usize.into()),
                ],
            ),
        ])
    }

    #[test]
    fn ledger_reconstructs_trails_and_dispositions() {
        let ledger = LineageLedger::build(&sample_trace());
        assert_eq!(ledger.entries.len(), 2);
        let red = &ledger.entries[&("color".to_string(), "red".to_string())];
        assert_eq!(red.origin, "seed");
        assert_eq!(red.fate, "kept");
        assert_eq!(red.confidence(), 0.0);
        let reddish = &ledger.entries[&("color".to_string(), "reddish".to_string())];
        assert_eq!(reddish.origin, "tagger");
        assert_eq!(reddish.fate, "dropped");
        assert_eq!(reddish.stage, "semantic");
        assert_eq!(reddish.fate_iteration, 1);
        assert_eq!(reddish.confidence(), 0.61);
        let stages: Vec<&str> = reddish.events.iter().map(|e| e.stage).collect();
        assert_eq!(stages, vec!["origin", "veto", "semantic"]);
        let trail = LineageLedger::render_trail(reddish);
        assert!(trail.contains("veto long: near-miss"), "{trail}");
        assert!(trail.contains("similarity 0.210"), "{trail}");
        assert!(trail.contains("dropped at it1 by semantic"), "{trail}");
    }

    #[test]
    fn selection_sorts_by_confidence_and_filters_by_product() {
        let ledger = LineageLedger::build(&sample_trace());
        let all = ledger.select(Some("color"), None, None);
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].value, "reddish", "higher confidence first");
        let by_value = ledger.select(Some("color"), Some("red"), None);
        assert_eq!(by_value.len(), 1);
        let by_product = ledger.select(None, None, Some("9"));
        assert_eq!(by_product.len(), 1);
        assert_eq!(by_product[0].value, "reddish");
        assert!(ledger.select(Some("material"), None, None).is_empty());
        assert_eq!(ledger.attributes(), vec![("color".to_string(), 2)]);
    }

    #[test]
    fn ledger_json_is_deterministic_and_excludes_timing() {
        let a = LineageLedger::build(&sample_trace());
        let mut shuffled = sample_trace();
        for r in &mut shuffled.records {
            r.t_ns += 1_000_000; // timing must not leak into the export
            r.thread = 5;
        }
        let b = LineageLedger::build(&shuffled);
        assert_eq!(a.to_json(), b.to_json());
        assert!(!a.to_json().contains("t_ns"));
        assert!(a.to_json().contains("\"fate\": \"dropped\""));
    }

    #[test]
    fn fate_flips_detects_disposition_changes() {
        let baseline = LineageLedger::build(&sample_trace());
        let mut regressed = sample_trace();
        // Flip red's fate to dropped-by-veto in the current run.
        for r in &mut regressed.records {
            if r.name == "prov.disposition"
                && r.field("value") == Some(&FieldValue::Str("red".into()))
            {
                r.fields = vec![
                    ("attr".to_string(), "color".into()),
                    ("value".to_string(), "red".into()),
                    ("fate".to_string(), "dropped".into()),
                    ("stage".to_string(), "veto:symbols".into()),
                    ("iteration".to_string(), 2usize.into()),
                ];
            }
        }
        let current = LineageLedger::build(&regressed);
        let flips = fate_flips(&baseline, &current);
        assert_eq!(flips.len(), 1);
        assert_eq!(flips[0].from, "kept");
        assert_eq!(flips[0].to, "dropped");
        assert_eq!(flips[0].cause, "veto:symbols");
        assert_eq!(flips[0].iteration, 2);
        assert!(fate_flips(&baseline, &baseline).is_empty());
    }
}
