//! `pae-report` CLI: summarize traces, diff summaries, gate CI.
//!
//! ```text
//! pae-report summarize <trace.jsonl|summary.json> [--name N] [--out FILE] [--quality-only]
//! pae-report diff  <baseline> <current> [threshold flags]
//! pae-report check <current> --baseline <FILE> [threshold flags]
//! pae-report check <current BENCH_pipeline.json> --bench-baseline <FILE> [threshold flags]
//! pae-report explain <trace.jsonl> [--attribute A] [--value V] [--product P] [--json]
//! pae-report explain-diff <current trace.jsonl> --baseline <trace.jsonl>
//! pae-report flamegraph <trace.jsonl> [--weight time|bytes] [--out FILE]
//!
//! threshold flags:
//!   --time-tolerance F    allowed relative slowdown per stage (default 0.5)
//!   --time-floor-ms F     ignore stages faster than this (default 10)
//!   --precision-tol F     allowed precision drop (default 0.02)
//!   --coverage-tol F      allowed coverage drop (default 0.02)
//!   --drift-tol F         allowed drift-score rise (default 0.25)
//!   --error-rate-tol F    allowed serving error-rate rise (default 0)
//!   --mem-tolerance F     allowed relative memory growth (default 0.25)
//!   --empty-rate-tol F    allowed online empty-extraction-rate rise (default 0.1)
//!   --oov-tol F           allowed online OOV-token-rate rise (default 0.1)
//! ```
//!
//! Inputs may be raw JSONL traces or already-built summary JSON; the
//! format is auto-detected (`explain`/`explain-diff` need raw traces
//! recorded with provenance on). Exit codes: 0 pass, 1 regression
//! beyond thresholds or nothing found, 2 usage or I/O error.

use std::path::Path;
use std::process::ExitCode;

use pae_obs::reader::Trace;
use pae_report::bench;
use pae_report::diff::{check, diff_summaries, Thresholds};
use pae_report::ledger;
use pae_report::lineage::{fate_flips, LineageLedger};
use pae_report::summary::{RunMeta, RunSummary};

const USAGE: &str = "usage:
  pae-report summarize <trace.jsonl|summary.json> [--name N] [--out FILE] [--quality-only]
  pae-report diff  <baseline> <current> [threshold flags]
  pae-report check <current> --baseline <FILE> [threshold flags]
  pae-report check <current BENCH_pipeline.json> --bench-baseline <FILE> [threshold flags]
  pae-report explain <trace.jsonl> [--attribute A] [--value V] [--product P] [--json]
  pae-report explain-diff <current trace.jsonl> --baseline <trace.jsonl>
  pae-report flamegraph <trace.jsonl> [--weight time|bytes] [--out FILE]
threshold flags: --time-tolerance F  --time-floor-ms F  --precision-tol F
                 --coverage-tol F    --drift-tol F       --error-rate-tol F
                 --mem-tolerance F   --empty-rate-tol F  --oov-tol F";

fn fail(msg: &str) -> ExitCode {
    eprintln!("pae-report: {msg}");
    eprintln!("{USAGE}");
    ExitCode::from(2)
}

/// Loads a summary from either a summary JSON document or a raw JSONL
/// trace (detected by content, not extension).
fn load_summary(path: &str, name_hint: Option<&str>) -> Result<RunSummary, String> {
    let doc = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    match RunSummary::parse(&doc) {
        Ok(s) => Ok(s),
        Err(summary_err) => {
            let trace = Trace::parse(&doc).map_err(|trace_err| {
                format!("{path} is neither a RunSummary ({summary_err}) nor a trace ({trace_err})")
            })?;
            let name = name_hint
                .map(str::to_owned)
                .or_else(|| {
                    Path::new(path)
                        .file_stem()
                        .map(|s| s.to_string_lossy().into_owned())
                })
                .unwrap_or_else(|| "run".into());
            Ok(RunSummary::build(
                RunMeta {
                    name,
                    git_rev: ledger::git_rev(Path::new(".")),
                    config_hash: "unknown".into(),
                    pae_jobs: std::env::var("PAE_JOBS").unwrap_or_default(),
                    scale: std::env::var("PAE_SCALE").unwrap_or_else(|_| "default".into()),
                },
                &trace,
            ))
        }
    }
}

/// Parses threshold flags out of `args`, leaving everything else.
fn take_thresholds(args: &mut Vec<String>) -> Result<Thresholds, String> {
    let mut t = Thresholds::default();
    let mut rest = Vec::with_capacity(args.len());
    let mut it = std::mem::take(args).into_iter();
    while let Some(arg) = it.next() {
        let mut grab = |target: &mut f64| -> Result<(), String> {
            let v = it.next().ok_or_else(|| format!("{arg} requires a value"))?;
            *target = v
                .parse::<f64>()
                .map_err(|_| format!("{arg}: not a number: {v}"))?;
            Ok(())
        };
        match arg.as_str() {
            "--time-tolerance" => grab(&mut t.time_tolerance)?,
            "--precision-tol" => grab(&mut t.precision_tol)?,
            "--coverage-tol" => grab(&mut t.coverage_tol)?,
            "--drift-tol" => grab(&mut t.drift_tol)?,
            "--error-rate-tol" => grab(&mut t.error_rate_tol)?,
            "--mem-tolerance" => grab(&mut t.mem_tolerance)?,
            "--empty-rate-tol" => grab(&mut t.empty_rate_tol)?,
            "--oov-tol" => grab(&mut t.oov_tol)?,
            "--time-floor-ms" => {
                let mut ms = 0.0;
                grab(&mut ms)?;
                t.time_floor_ns = (ms * 1e6) as u64;
            }
            _ => rest.push(arg),
        }
    }
    *args = rest;
    Ok(t)
}

fn take_flag_value(args: &mut Vec<String>, flag: &str) -> Result<Option<String>, String> {
    if let Some(i) = args.iter().position(|a| a == flag) {
        if i + 1 >= args.len() {
            return Err(format!("{flag} requires a value"));
        }
        let v = args.remove(i + 1);
        args.remove(i);
        return Ok(Some(v));
    }
    Ok(None)
}

fn cmd_summarize(mut args: Vec<String>) -> Result<ExitCode, String> {
    let name = take_flag_value(&mut args, "--name")?;
    let out = take_flag_value(&mut args, "--out")?;
    let quality_only = if let Some(i) = args.iter().position(|a| a == "--quality-only") {
        args.remove(i);
        true
    } else {
        false
    };
    let [input] = args.as_slice() else {
        return Err("summarize takes exactly one input file".into());
    };
    let summary = load_summary(input, name.as_deref())?;
    let doc = if quality_only {
        let mut q = summary.quality_json(0);
        q.push('\n');
        q
    } else {
        summary.to_json()
    };
    match out {
        Some(path) => {
            std::fs::write(&path, &doc).map_err(|e| format!("cannot write {path}: {e}"))?;
            eprintln!("summary written to {path}");
        }
        None => print!("{doc}"),
    }
    if summary.incomplete() {
        eprintln!(
            "warning: trace dropped {} record(s); summary marked incomplete",
            summary.dropped
        );
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_diff(mut args: Vec<String>) -> Result<ExitCode, String> {
    let t = take_thresholds(&mut args)?;
    let [baseline, current] = args.as_slice() else {
        return Err("diff takes exactly two input files".into());
    };
    let b = load_summary(baseline, None)?;
    let c = load_summary(current, None)?;
    print!("{}", diff_summaries(&b, &c, &t).render());
    Ok(ExitCode::SUCCESS)
}

fn cmd_check(mut args: Vec<String>) -> Result<ExitCode, String> {
    let t = take_thresholds(&mut args)?;
    let bench_baseline = take_flag_value(&mut args, "--bench-baseline")?;
    if let Some(baseline) = bench_baseline {
        // Benchmark-ledger mode: both sides are BENCH_pipeline.json
        // documents, gated median-per-id with the perf tolerance.
        let [current] = args.as_slice() else {
            return Err("check takes exactly one current input file".into());
        };
        let read =
            |p: &str| std::fs::read_to_string(p).map_err(|e| format!("cannot read {p}: {e}"));
        let b = bench::parse_bench(&read(&baseline)?).map_err(|e| format!("{baseline}: {e}"))?;
        let c = bench::parse_bench(&read(current)?).map_err(|e| format!("{current}: {e}"))?;
        let report = bench::check_bench(&b, &c, &t);
        print!("{}", report.render());
        return Ok(if report.passed() {
            ExitCode::SUCCESS
        } else {
            ExitCode::from(1)
        });
    }
    let baseline =
        take_flag_value(&mut args, "--baseline")?.ok_or("check requires --baseline <FILE>")?;
    let [current] = args.as_slice() else {
        return Err("check takes exactly one current input file".into());
    };
    let b = load_summary(&baseline, None)?;
    let c = load_summary(current, None)?;
    let report = check(&b, &c, &t);
    print!("{}", report.render());
    Ok(if report.passed() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    })
}

/// Reads and parses a raw JSONL trace, requiring provenance records.
fn load_provenance_trace(path: &str) -> Result<Trace, String> {
    let doc = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let trace = Trace::parse(&doc).map_err(|e| format!("{path}: {e}"))?;
    if trace.provenance_records().is_empty() {
        return Err(format!(
            "{path} carries no provenance records; re-run with PAE_PROVENANCE=1 \
             or --provenance-out to record lineage"
        ));
    }
    Ok(trace)
}

fn cmd_explain(mut args: Vec<String>) -> Result<ExitCode, String> {
    let attribute = take_flag_value(&mut args, "--attribute")?;
    let value = take_flag_value(&mut args, "--value")?;
    let product = take_flag_value(&mut args, "--product")?;
    let json = if let Some(i) = args.iter().position(|a| a == "--json") {
        args.remove(i);
        true
    } else {
        false
    };
    let [input] = args.as_slice() else {
        return Err("explain takes exactly one input trace".into());
    };
    let trace = load_provenance_trace(input)?;
    let ledger = LineageLedger::build(&trace);
    if json {
        print!("{}", ledger.to_json());
        return Ok(ExitCode::SUCCESS);
    }
    if attribute.is_none() && value.is_none() && product.is_none() {
        // Discovery listing: which attributes the ledger knows about.
        println!(
            "attributes with lineage ({} pairs total):",
            ledger.entries.len()
        );
        for (attr, n) in ledger.attributes() {
            println!("  {attr:<24} {n} pair(s)");
        }
        return Ok(ExitCode::SUCCESS);
    }
    let hits = ledger.select(attribute.as_deref(), value.as_deref(), product.as_deref());
    if hits.is_empty() {
        eprintln!("no lineage matches the query");
        return Ok(ExitCode::from(1));
    }
    for (i, e) in hits.iter().enumerate() {
        if i > 0 {
            println!();
        }
        print!("{}", LineageLedger::render_trail(e));
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_explain_diff(mut args: Vec<String>) -> Result<ExitCode, String> {
    let baseline = take_flag_value(&mut args, "--baseline")?
        .ok_or("explain-diff requires --baseline <FILE>")?;
    let [current] = args.as_slice() else {
        return Err("explain-diff takes exactly one current input trace".into());
    };
    let b = LineageLedger::build(&load_provenance_trace(&baseline)?);
    let c = LineageLedger::build(&load_provenance_trace(current)?);
    let flips = fate_flips(&b, &c);
    if flips.is_empty() {
        println!("no disposition flips: {} pair(s) agree", c.entries.len());
        return Ok(ExitCode::SUCCESS);
    }
    println!("{} disposition flip(s):", flips.len());
    for f in &flips {
        println!(
            "  {}={}  {} -> {}  (cause: {} at it{})",
            f.attr, f.value, f.from, f.to, f.cause, f.iteration
        );
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_flamegraph(mut args: Vec<String>) -> Result<ExitCode, String> {
    let weight = match take_flag_value(&mut args, "--weight")? {
        Some(w) => pae_report::flamegraph::Weight::parse(&w)?,
        None => pae_report::flamegraph::Weight::TimeNs,
    };
    let out = take_flag_value(&mut args, "--out")?;
    let [input] = args.as_slice() else {
        return Err("flamegraph takes exactly one input trace".into());
    };
    let doc = std::fs::read_to_string(input).map_err(|e| format!("cannot read {input}: {e}"))?;
    let trace = Trace::parse(&doc).map_err(|e| format!("{input}: {e}"))?;
    let folded = pae_report::flamegraph::folded_stacks(&trace, weight);
    if folded.is_empty() {
        eprintln!(
            "no weighted stacks in {input} (byte weights need a trace recorded with \
             profiling on: PAE_PROF=1 or --profile)"
        );
        return Ok(ExitCode::from(1));
    }
    match out {
        Some(path) => {
            std::fs::write(&path, &folded).map_err(|e| format!("cannot write {path}: {e}"))?;
            eprintln!("folded stacks written to {path}");
        }
        None => print!("{folded}"),
    }
    Ok(ExitCode::SUCCESS)
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        return fail("missing subcommand");
    }
    let cmd = args.remove(0);
    let result = match cmd.as_str() {
        "summarize" => cmd_summarize(args),
        "diff" => cmd_diff(args),
        "check" => cmd_check(args),
        "explain" => cmd_explain(args),
        "explain-diff" => cmd_explain_diff(args),
        "flamegraph" => cmd_flamegraph(args),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            Ok(ExitCode::SUCCESS)
        }
        other => Err(format!("unknown subcommand {other:?}")),
    };
    match result {
        Ok(code) => code,
        Err(msg) => fail(&msg),
    }
}
