//! Building, rendering, and parsing `RunSummary` documents.
//!
//! A summary is one JSON object with three top-level sections:
//!
//! - `meta` — identity of the run: name, git revision, config hash,
//!   `PAE_JOBS`, scale, plus the trace's record/dropped counts (a
//!   non-zero `dropped` marks the summary `incomplete`).
//! - `perf` — per-stage wall-clock aggregates from span-end records
//!   (`calls`, `total_ns`, `max_ns` per span name). Timings are never
//!   byte-stable; diffs apply noise tolerances here.
//! - `quality` — everything derived from the pipeline's *results*:
//!   one entry per `bootstrap.run` span holding the per-iteration
//!   series (`iteration.summary` events) with per-attribute drift
//!   (`semantic.drift` events), and one entry per recorded evaluation
//!   (`eval.summary` / `eval.attr` events). For a deterministic
//!   pipeline this section is byte-identical across runs and thread
//!   counts; the determinism suite asserts exactly that via
//!   [`RunSummary::quality_json`].

use std::collections::BTreeMap;

use pae_obs::json::{write_f64, write_str, Json};
use pae_obs::reader::Trace;
use pae_obs::{FieldValue, MetricValue, RecordKind};

/// Identity of the run a summary describes.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RunMeta {
    /// Short run name (usually the binary name, e.g. `probe`).
    pub name: String,
    /// Git revision of the working tree (`unknown` outside a repo).
    pub git_rev: String,
    /// Hash of the run's configuration knobs (FNV-1a over a stable
    /// description string; `unknown` when not supplied).
    pub config_hash: String,
    /// Raw `PAE_JOBS` value (empty = default worker count).
    pub pae_jobs: String,
    /// Raw `PAE_SCALE` value (`default` when unset).
    pub scale: String,
}

/// Wall-clock aggregate for one span name.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StagePerf {
    /// Completed spans of this name.
    pub calls: u64,
    /// Summed duration.
    pub total_ns: u64,
    /// Longest single span.
    pub max_ns: u64,
    /// Median duration (log₂-histogram estimate, clamped to the
    /// observed range; zero in documents predating the field).
    pub p50_ns: u64,
    /// 90th-percentile duration (same estimator).
    pub p90_ns: u64,
    /// 99th-percentile duration (same estimator).
    pub p99_ns: u64,
}

/// One `semantic.drift` row: an attribute's accepted values measured
/// against the iteration-0 baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct DriftRow {
    /// Attribute name.
    pub attribute: String,
    /// Cosine distance to the baseline centroid (0 = no drift).
    pub score: f64,
    /// Accepted values that were embeddable.
    pub n_values: u64,
    /// Baseline values that were embeddable.
    pub n_baseline: u64,
}

/// One bootstrap iteration's quality numbers.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct IterationQuality {
    /// 1-based iteration number.
    pub iteration: u64,
    /// Raw candidates the tagger produced.
    pub candidates: u64,
    /// Dataset size after cleaning.
    pub triples: u64,
    /// Veto-rule removals (all rules).
    pub veto_dropped: u64,
    /// Veto removals by the symbols rule.
    pub veto_symbols: u64,
    /// Veto removals by the markup rule.
    pub veto_markup: u64,
    /// Veto removals by the unpopularity rule.
    pub veto_unpopular: u64,
    /// Veto removals by the length rule.
    pub veto_long: u64,
    /// Semantic-cleaning removals.
    pub semantic_removed: u64,
    /// Core-shrinking evictions.
    pub semantic_evictions: u64,
    /// Per-attribute drift, sorted by attribute.
    pub drift: Vec<DriftRow>,
}

/// Per-attribute slice of one evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct AttrEval {
    /// Canonical attribute name.
    pub attribute: String,
    /// Attribute precision.
    pub precision: f64,
    /// Attribute coverage.
    pub coverage: f64,
}

/// One recorded evaluation (`EvalReport::record_obs`).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EvalRow {
    /// Caller-chosen key (e.g. `bags/default/final`).
    pub key: String,
    /// Headline precision.
    pub precision: f64,
    /// Headline product coverage.
    pub coverage: f64,
    /// Triples evaluated.
    pub n_triples: u64,
    /// Per-attribute breakdown, in emission order.
    pub attrs: Vec<AttrEval>,
}

/// Server-side serving SLOs, derived from the final registry state of
/// a serving run (`serve.responses` status counters and the
/// `serve.request_ns{route="extract"}` latency histogram). Absent for
/// runs that never served traffic.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ServingSummary {
    /// Total responses across all status codes.
    pub requests: u64,
    /// Non-200 responses.
    pub errors: u64,
    /// `errors / requests` (0 when no requests).
    pub error_rate: f64,
    /// Median extract-route latency (log₂-histogram estimate).
    pub p50_ns: u64,
    /// 99th-percentile extract-route latency (same estimator).
    pub p99_ns: u64,
}

/// One attribute's online extraction-quality row.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct OnlineAttr {
    /// Attribute name.
    pub attribute: String,
    /// Triples extracted for this attribute over the observed window.
    pub triples: u64,
    /// Triples per served page.
    pub rate: f64,
    /// PSI of the live value-length distribution against the bundle's
    /// freeze-time reference; `None` when the server ran in
    /// no-reference mode or the window was under-sampled (absent, not
    /// zero — "nothing to compare against" must not read as "no
    /// drift").
    pub drift: Option<f64>,
}

/// Online extraction-quality telemetry from a serving run, derived
/// from the `quality.online` / `quality.online.attr` events a load
/// generator emits after reading the server's `/qualityz` endpoint.
/// Absent for runs that never served traffic (and for baselines
/// predating the field).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QualityOnlineSummary {
    /// Pages served in the observed window.
    pub pages: u64,
    /// Pages that produced zero triples.
    pub empty_pages: u64,
    /// `empty_pages / pages` (0 when no pages).
    pub empty_rate: f64,
    /// Out-of-vocabulary token rate over the window.
    pub oov_rate: f64,
    /// Whether the server judged itself degraded (`/statusz` quality
    /// flag at observation time).
    pub degraded: bool,
    /// Per-attribute rows, sorted by attribute.
    pub attrs: Vec<OnlineAttr>,
}

/// Run-level memory ledger, derived from the `mem.summary` event a
/// profiled run ([`pae_obs::ProfSession`]) emits when profiling ends.
/// Absent for unprofiled runs (and for baselines predating the field).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MemorySummary {
    /// Peak resident set size in bytes: the max of the sampler's
    /// observations and the kernel's `VmHWM` high-water mark.
    pub peak_rss_bytes: u64,
    /// Bytes handed out by the allocator while profiling was on.
    pub total_alloc_bytes: u64,
    /// Allocation calls while profiling was on.
    pub alloc_count: u64,
    /// High-water mark of live (allocated − freed) heap bytes.
    pub peak_live_bytes: u64,
}

/// A self-contained description of one probe/bench run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunSummary {
    /// Run identity.
    pub meta: RunMeta,
    /// Record lines the trace declared.
    pub records: u64,
    /// Records the collector dropped; non-zero means `incomplete`.
    pub dropped: u64,
    /// Per-span-name wall-clock aggregates, sorted by name.
    pub stages: BTreeMap<String, StagePerf>,
    /// Server-side SLOs when the run served traffic.
    pub serving: Option<ServingSummary>,
    /// Online extraction-quality telemetry when the run observed it.
    pub quality_online: Option<QualityOnlineSummary>,
    /// Run-level memory ledger when the run was profiled.
    pub memory: Option<MemorySummary>,
    /// Per-`bootstrap.run` iteration series, in span order.
    pub runs: Vec<Vec<IterationQuality>>,
    /// Recorded evaluations, in emission order.
    pub evals: Vec<EvalRow>,
}

/// Current `schema_version` written by [`RunSummary::to_json`].
pub const SCHEMA_VERSION: u64 = 1;

fn field_u64(fields: &[(String, FieldValue)], key: &str) -> Option<u64> {
    fields
        .iter()
        .find(|(k, _)| k == key)
        .and_then(|(_, v)| match v {
            FieldValue::U64(n) => Some(*n),
            FieldValue::I64(n) if *n >= 0 => Some(*n as u64),
            _ => None,
        })
}

fn field_f64(fields: &[(String, FieldValue)], key: &str) -> Option<f64> {
    fields
        .iter()
        .find(|(k, _)| k == key)
        .and_then(|(_, v)| match v {
            FieldValue::F64(f) => Some(*f),
            FieldValue::U64(n) => Some(*n as f64),
            FieldValue::I64(n) => Some(*n as f64),
            _ => None,
        })
}

fn field_str<'a>(fields: &'a [(String, FieldValue)], key: &str) -> Option<&'a str> {
    fields
        .iter()
        .find(|(k, _)| k == key)
        .and_then(|(_, v)| match v {
            FieldValue::Str(s) => Some(s.as_str()),
            _ => None,
        })
}

impl RunSummary {
    /// Whether the underlying trace was truncated.
    pub fn incomplete(&self) -> bool {
        self.dropped > 0
    }

    /// Builds a summary from a parsed trace.
    ///
    /// Events are attributed to their enclosing `bootstrap.run` span by
    /// walking the span-parent chain, so a trace holding several
    /// sequential pipeline runs (the experiment harness evaluates many
    /// configurations per process) yields one quality series each.
    pub fn build(meta: RunMeta, trace: &Trace) -> RunSummary {
        let mut summary = RunSummary {
            meta,
            records: trace.meta.records,
            dropped: trace.meta.dropped,
            ..RunSummary::default()
        };

        // Perf: aggregate span-end durations by span name. Quantiles
        // come from a per-stage log₂ histogram over the durations —
        // the same estimator the live metrics registry uses.
        let mut histograms: BTreeMap<String, pae_obs::Histogram> = BTreeMap::new();
        for r in &trace.records {
            if r.kind != RecordKind::SpanEnd {
                continue;
            }
            let dur = field_u64(&r.fields, "dur_ns").unwrap_or(0);
            let stage = summary.stages.entry(r.name.clone()).or_default();
            stage.calls += 1;
            stage.total_ns += dur;
            stage.max_ns = stage.max_ns.max(dur);
            histograms
                .entry(r.name.clone())
                .or_default()
                .observe(dur as f64);
        }
        for (name, hist) in &histograms {
            if let Some(stage) = summary.stages.get_mut(name) {
                stage.p50_ns = hist.quantile(0.5) as u64;
                stage.p90_ns = hist.quantile(0.9) as u64;
                stage.p99_ns = hist.quantile(0.99) as u64;
            }
        }

        // Serving SLOs from the final registry state: response-status
        // counters and the extract-route latency histogram.
        let mut requests = 0u64;
        let mut errors = 0u64;
        let mut served = false;
        let mut extract_hist: Option<&pae_obs::Histogram> = None;
        for (key, value) in &trace.metrics {
            match (key.name.as_str(), value) {
                ("serve.responses", MetricValue::Counter(n)) => {
                    served = true;
                    requests += n;
                    let ok = key.labels.iter().any(|(k, v)| k == "status" && v == "200");
                    if !ok {
                        errors += n;
                    }
                }
                ("serve.request_ns", MetricValue::Histogram(h))
                    if key
                        .labels
                        .iter()
                        .any(|(k, v)| k == "route" && v == "extract") =>
                {
                    extract_hist = Some(h)
                }
                _ => {}
            }
        }
        if served {
            summary.serving = Some(ServingSummary {
                requests,
                errors,
                error_rate: if requests > 0 {
                    errors as f64 / requests as f64
                } else {
                    0.0
                },
                p50_ns: extract_hist.map_or(0, |h| h.quantile(0.5) as u64),
                p99_ns: extract_hist.map_or(0, |h| h.quantile(0.99) as u64),
            });
        }

        // Memory ledger from the `mem.summary` event a profiled run
        // emits when profiling ends. Last one wins: a process that
        // profiles several phases reports its final (cumulative)
        // counters last.
        for r in trace.records.iter().rev() {
            if r.kind == RecordKind::Event && r.name == "mem.summary" {
                summary.memory = Some(MemorySummary {
                    peak_rss_bytes: field_u64(&r.fields, "peak_rss_bytes").unwrap_or(0),
                    total_alloc_bytes: field_u64(&r.fields, "total_alloc_bytes").unwrap_or(0),
                    alloc_count: field_u64(&r.fields, "alloc_count").unwrap_or(0),
                    peak_live_bytes: field_u64(&r.fields, "peak_live_bytes").unwrap_or(0),
                });
                break;
            }
        }

        // Online quality from `quality.online` (+ `.attr`) events: the
        // load generator reads the server's /qualityz once at the end
        // of the run and replays it into the trace. A later headline
        // event replaces an earlier one (last observation wins, like
        // `mem.summary`); attr rows attach to the live section.
        for r in &trace.records {
            if r.kind != RecordKind::Event {
                continue;
            }
            match r.name.as_str() {
                "quality.online" => {
                    summary.quality_online = Some(QualityOnlineSummary {
                        pages: field_u64(&r.fields, "pages").unwrap_or(0),
                        empty_pages: field_u64(&r.fields, "empty_pages").unwrap_or(0),
                        empty_rate: field_f64(&r.fields, "empty_rate").unwrap_or(0.0),
                        oov_rate: field_f64(&r.fields, "oov_rate").unwrap_or(0.0),
                        degraded: field_u64(&r.fields, "degraded").unwrap_or(0) != 0,
                        attrs: Vec::new(),
                    });
                }
                "quality.online.attr" => {
                    if let Some(q) = &mut summary.quality_online {
                        q.attrs.push(OnlineAttr {
                            attribute: field_str(&r.fields, "attribute").unwrap_or("").to_owned(),
                            triples: field_u64(&r.fields, "triples").unwrap_or(0),
                            rate: field_f64(&r.fields, "rate").unwrap_or(0.0),
                            drift: field_f64(&r.fields, "drift"),
                        });
                    }
                }
                _ => {}
            }
        }
        if let Some(q) = &mut summary.quality_online {
            q.attrs.sort_by(|a, b| a.attribute.cmp(&b.attribute));
        }

        // Span-tree bookkeeping: parent chain + the ordinal of each
        // `bootstrap.run` span.
        let mut parent_of: BTreeMap<u64, u64> = BTreeMap::new();
        let mut run_ordinal: BTreeMap<u64, usize> = BTreeMap::new();
        for r in &trace.records {
            if r.kind != RecordKind::SpanStart {
                continue;
            }
            parent_of.insert(r.span, r.parent);
            if r.name == "bootstrap.run" {
                let next = run_ordinal.len();
                run_ordinal.insert(r.span, next);
                summary.runs.push(Vec::new());
            }
        }
        let enclosing_run = |mut span: u64| -> Option<usize> {
            loop {
                if let Some(ord) = run_ordinal.get(&span) {
                    return Some(*ord);
                }
                match parent_of.get(&span) {
                    Some(&p) if p != span => span = p,
                    _ => return None,
                }
            }
        };

        // Quality: iteration series + drift, grouped per run; evals
        // keyed globally (they may be recorded outside any run span).
        for r in &trace.records {
            if r.kind != RecordKind::Event {
                continue;
            }
            match r.name.as_str() {
                "iteration.summary" => {
                    let Some(ord) = enclosing_run(r.span) else {
                        continue;
                    };
                    summary.runs[ord].push(IterationQuality {
                        iteration: field_u64(&r.fields, "iteration").unwrap_or(0),
                        candidates: field_u64(&r.fields, "candidates").unwrap_or(0),
                        triples: field_u64(&r.fields, "triples").unwrap_or(0),
                        veto_dropped: field_u64(&r.fields, "veto_dropped").unwrap_or(0),
                        veto_symbols: field_u64(&r.fields, "veto_symbols").unwrap_or(0),
                        veto_markup: field_u64(&r.fields, "veto_markup").unwrap_or(0),
                        veto_unpopular: field_u64(&r.fields, "veto_unpopular").unwrap_or(0),
                        veto_long: field_u64(&r.fields, "veto_long").unwrap_or(0),
                        semantic_removed: field_u64(&r.fields, "semantic_removed").unwrap_or(0),
                        semantic_evictions: field_u64(&r.fields, "semantic_evictions").unwrap_or(0),
                        drift: Vec::new(),
                    });
                }
                "semantic.drift" => {
                    let Some(ord) = enclosing_run(r.span) else {
                        continue;
                    };
                    let iteration = field_u64(&r.fields, "iteration").unwrap_or(0);
                    let row = DriftRow {
                        attribute: field_str(&r.fields, "attribute").unwrap_or("").to_owned(),
                        score: field_f64(&r.fields, "score").unwrap_or(f64::NAN),
                        n_values: field_u64(&r.fields, "n_values").unwrap_or(0),
                        n_baseline: field_u64(&r.fields, "n_baseline").unwrap_or(0),
                    };
                    if let Some(it) = summary.runs[ord]
                        .iter_mut()
                        .rev()
                        .find(|it| it.iteration == iteration)
                    {
                        it.drift.push(row);
                    }
                }
                "eval.summary" => {
                    summary.evals.push(EvalRow {
                        key: field_str(&r.fields, "key").unwrap_or("").to_owned(),
                        precision: field_f64(&r.fields, "precision").unwrap_or(f64::NAN),
                        coverage: field_f64(&r.fields, "coverage").unwrap_or(f64::NAN),
                        n_triples: field_u64(&r.fields, "n_triples").unwrap_or(0),
                        attrs: Vec::new(),
                    });
                }
                "eval.attr" => {
                    let key = field_str(&r.fields, "key").unwrap_or("");
                    let row = AttrEval {
                        attribute: field_str(&r.fields, "attribute").unwrap_or("").to_owned(),
                        precision: field_f64(&r.fields, "precision").unwrap_or(f64::NAN),
                        coverage: field_f64(&r.fields, "coverage").unwrap_or(f64::NAN),
                    };
                    if let Some(e) = summary.evals.iter_mut().rev().find(|e| e.key == key) {
                        e.attrs.push(row);
                    }
                }
                _ => {}
            }
        }

        // Drift events arrive in iteration order, but the sort key is
        // the attribute name — make that explicit.
        for run in &mut summary.runs {
            for it in run {
                it.drift.sort_by(|a, b| a.attribute.cmp(&b.attribute));
            }
        }
        summary
    }

    /// Renders the quality section alone (canonical form, 2-space
    /// indent at `indent` levels). Contains no timings: for a
    /// deterministic pipeline this string is byte-identical across
    /// re-runs and thread counts.
    pub fn quality_json(&self, indent: usize) -> String {
        let mut out = String::new();
        let pad = |n: usize| "  ".repeat(n);
        out.push_str("{\n");
        out.push_str(&format!("{}\"runs\": [", pad(indent + 1)));
        for (i, run) in self.runs.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str(&format!("{}{{\n", pad(indent + 2)));
            out.push_str(&format!("{}\"iterations\": [", pad(indent + 3)));
            for (j, it) in run.iter().enumerate() {
                out.push_str(if j == 0 { "\n" } else { ",\n" });
                out.push_str(&format!("{}{{\n", pad(indent + 4)));
                let p = pad(indent + 5);
                out.push_str(&format!("{p}\"iteration\": {},\n", it.iteration));
                out.push_str(&format!("{p}\"candidates\": {},\n", it.candidates));
                out.push_str(&format!("{p}\"triples\": {},\n", it.triples));
                out.push_str(&format!("{p}\"veto_dropped\": {},\n", it.veto_dropped));
                out.push_str(&format!(
                    "{p}\"veto_by_rule\": {{ \"symbols\": {}, \"markup\": {}, \"unpopular\": {}, \"long\": {} }},\n",
                    it.veto_symbols, it.veto_markup, it.veto_unpopular, it.veto_long
                ));
                out.push_str(&format!(
                    "{p}\"semantic_removed\": {},\n",
                    it.semantic_removed
                ));
                out.push_str(&format!(
                    "{p}\"semantic_evictions\": {},\n",
                    it.semantic_evictions
                ));
                out.push_str(&format!("{p}\"drift\": ["));
                for (k, d) in it.drift.iter().enumerate() {
                    out.push_str(if k == 0 { "\n" } else { ",\n" });
                    out.push_str(&format!("{}{{ \"attribute\": ", pad(indent + 6)));
                    write_str(&mut out, &d.attribute);
                    out.push_str(", \"score\": ");
                    write_f64(&mut out, d.score);
                    out.push_str(&format!(
                        ", \"n_values\": {}, \"n_baseline\": {} }}",
                        d.n_values, d.n_baseline
                    ));
                }
                if !it.drift.is_empty() {
                    out.push_str(&format!("\n{p}"));
                }
                out.push_str("]\n");
                out.push_str(&format!("{}}}", pad(indent + 4)));
            }
            if !run.is_empty() {
                out.push_str(&format!("\n{}", pad(indent + 3)));
            }
            out.push_str("]\n");
            out.push_str(&format!("{}}}", pad(indent + 2)));
        }
        if !self.runs.is_empty() {
            out.push_str(&format!("\n{}", pad(indent + 1)));
        }
        out.push_str("],\n");
        out.push_str(&format!("{}\"evals\": [", pad(indent + 1)));
        for (i, e) in self.evals.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str(&format!("{}{{\n", pad(indent + 2)));
            let p = pad(indent + 3);
            out.push_str(&format!("{p}\"key\": "));
            write_str(&mut out, &e.key);
            out.push_str(",\n");
            out.push_str(&format!("{p}\"precision\": "));
            write_f64(&mut out, e.precision);
            out.push_str(",\n");
            out.push_str(&format!("{p}\"coverage\": "));
            write_f64(&mut out, e.coverage);
            out.push_str(",\n");
            out.push_str(&format!("{p}\"n_triples\": {},\n", e.n_triples));
            out.push_str(&format!("{p}\"attrs\": ["));
            for (k, a) in e.attrs.iter().enumerate() {
                out.push_str(if k == 0 { "\n" } else { ",\n" });
                out.push_str(&format!("{}{{ \"attribute\": ", pad(indent + 4)));
                write_str(&mut out, &a.attribute);
                out.push_str(", \"precision\": ");
                write_f64(&mut out, a.precision);
                out.push_str(", \"coverage\": ");
                write_f64(&mut out, a.coverage);
                out.push_str(" }");
            }
            if !e.attrs.is_empty() {
                out.push_str(&format!("\n{p}"));
            }
            out.push_str("]\n");
            out.push_str(&format!("{}}}", pad(indent + 2)));
        }
        if !self.evals.is_empty() {
            out.push_str(&format!("\n{}", pad(indent + 1)));
        }
        out.push_str("]\n");
        out.push_str(&format!("{}}}", pad(indent)));
        out
    }

    /// Renders the full summary document.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"schema_version\": {SCHEMA_VERSION},\n"));
        out.push_str("  \"meta\": {\n");
        let kv = |out: &mut String, key: &str, val: &str, comma: bool| {
            out.push_str(&format!("    \"{key}\": "));
            write_str(out, val);
            out.push_str(if comma { ",\n" } else { "\n" });
        };
        kv(&mut out, "name", &self.meta.name, true);
        kv(&mut out, "git_rev", &self.meta.git_rev, true);
        kv(&mut out, "config_hash", &self.meta.config_hash, true);
        kv(&mut out, "pae_jobs", &self.meta.pae_jobs, true);
        kv(&mut out, "scale", &self.meta.scale, true);
        out.push_str(&format!("    \"records\": {},\n", self.records));
        out.push_str(&format!("    \"dropped\": {},\n", self.dropped));
        out.push_str(&format!("    \"incomplete\": {}\n", self.incomplete()));
        out.push_str("  },\n");
        out.push_str("  \"perf\": {\n    \"stages\": {");
        for (i, (name, s)) in self.stages.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str("      ");
            write_str(&mut out, name);
            out.push_str(&format!(
                ": {{ \"calls\": {}, \"total_ns\": {}, \"max_ns\": {}, \"p50_ns\": {}, \"p90_ns\": {}, \"p99_ns\": {} }}",
                s.calls, s.total_ns, s.max_ns, s.p50_ns, s.p90_ns, s.p99_ns
            ));
        }
        if !self.stages.is_empty() {
            out.push_str("\n    ");
        }
        out.push_str("}\n  },\n");
        if let Some(s) = &self.serving {
            out.push_str(&format!(
                "  \"serving\": {{ \"requests\": {}, \"errors\": {}, \"error_rate\": ",
                s.requests, s.errors
            ));
            write_f64(&mut out, s.error_rate);
            out.push_str(&format!(
                ", \"p50_ns\": {}, \"p99_ns\": {} }},\n",
                s.p50_ns, s.p99_ns
            ));
        }
        if let Some(q) = &self.quality_online {
            out.push_str(&format!(
                "  \"quality_online\": {{\n    \"pages\": {}, \"empty_pages\": {}, \"empty_rate\": ",
                q.pages, q.empty_pages
            ));
            write_f64(&mut out, q.empty_rate);
            out.push_str(", \"oov_rate\": ");
            write_f64(&mut out, q.oov_rate);
            out.push_str(&format!(
                ", \"degraded\": {},\n    \"attrs\": [",
                q.degraded
            ));
            for (i, a) in q.attrs.iter().enumerate() {
                out.push_str(if i == 0 { "\n" } else { ",\n" });
                out.push_str("      { \"attribute\": ");
                write_str(&mut out, &a.attribute);
                out.push_str(&format!(", \"triples\": {}, \"rate\": ", a.triples));
                write_f64(&mut out, a.rate);
                out.push_str(", \"drift\": ");
                match a.drift {
                    Some(d) => write_f64(&mut out, d),
                    None => out.push_str("null"),
                }
                out.push_str(" }");
            }
            if !q.attrs.is_empty() {
                out.push_str("\n    ");
            }
            out.push_str("]\n  },\n");
        }
        if let Some(m) = &self.memory {
            out.push_str(&format!(
                "  \"memory\": {{ \"peak_rss_bytes\": {}, \"total_alloc_bytes\": {}, \
                 \"alloc_count\": {}, \"peak_live_bytes\": {} }},\n",
                m.peak_rss_bytes, m.total_alloc_bytes, m.alloc_count, m.peak_live_bytes
            ));
        }
        out.push_str("  \"quality\": ");
        out.push_str(&self.quality_json(1));
        out.push_str("\n}\n");
        out
    }

    /// Parses a document produced by [`RunSummary::to_json`].
    ///
    /// Numeric fields are **required and type-checked**: a missing or
    /// non-numeric `records`, stage counter, iteration count, or eval
    /// statistic is a parse error, not a silent zero — a truncated or
    /// hand-mangled baseline used to gate every perf/quality check
    /// against zeros and always "pass". Only the stage quantiles
    /// (`p50_ns`/`p90_ns`/`p99_ns`) may be absent, for compatibility
    /// with pre-quantile documents; float fields accept `null` because
    /// that is how [`write_f64`] renders NaN.
    pub fn parse(doc: &str) -> Result<RunSummary, String> {
        fn req_u64(obj: &Json, ctx: &str, k: &str) -> Result<u64, String> {
            match obj.get(k) {
                None => Err(format!("{ctx}: missing required field {k:?}")),
                Some(j) => j
                    .as_u64()
                    .ok_or_else(|| format!("{ctx}: field {k:?} is not a non-negative integer")),
            }
        }
        fn opt_u64(obj: &Json, ctx: &str, k: &str) -> Result<u64, String> {
            match obj.get(k) {
                None => Ok(0),
                Some(j) => j
                    .as_u64()
                    .ok_or_else(|| format!("{ctx}: field {k:?} is not a non-negative integer")),
            }
        }
        fn req_f64(obj: &Json, ctx: &str, k: &str) -> Result<f64, String> {
            match obj.get(k) {
                None => Err(format!("{ctx}: missing required field {k:?}")),
                Some(Json::Null) => Ok(f64::NAN),
                Some(j) => j
                    .as_f64()
                    .ok_or_else(|| format!("{ctx}: field {k:?} is not a number")),
            }
        }
        fn req_str(obj: &Json, ctx: &str, k: &str) -> Result<String, String> {
            match obj.get(k) {
                None => Err(format!("{ctx}: missing required field {k:?}")),
                Some(j) => j
                    .as_str()
                    .map(str::to_owned)
                    .ok_or_else(|| format!("{ctx}: field {k:?} is not a string")),
            }
        }
        let v = Json::parse(doc)?;
        let version = v
            .get("schema_version")
            .and_then(Json::as_u64)
            .ok_or("missing schema_version: not a RunSummary document")?;
        if version != SCHEMA_VERSION {
            return Err(format!("unsupported schema_version {version}"));
        }
        let meta = v.get("meta").ok_or("missing meta")?;
        let ms = |k: &str| {
            meta.get(k)
                .and_then(Json::as_str)
                .map(str::to_owned)
                .ok_or_else(|| format!("meta missing \"{k}\""))
        };
        let mut summary = RunSummary {
            meta: RunMeta {
                name: ms("name")?,
                git_rev: ms("git_rev")?,
                config_hash: ms("config_hash")?,
                pae_jobs: ms("pae_jobs")?,
                scale: ms("scale")?,
            },
            records: req_u64(meta, "meta", "records")?,
            dropped: req_u64(meta, "meta", "dropped")?,
            ..RunSummary::default()
        };
        if let Some(Json::Obj(stages)) = v.get("perf").and_then(|p| p.get("stages")) {
            for (name, s) in stages {
                let ctx = format!("stage {name:?}");
                summary.stages.insert(
                    name.clone(),
                    StagePerf {
                        calls: req_u64(s, &ctx, "calls")?,
                        total_ns: req_u64(s, &ctx, "total_ns")?,
                        max_ns: req_u64(s, &ctx, "max_ns")?,
                        // Absent in pre-quantile documents → 0, but a
                        // present value must still be numeric.
                        p50_ns: opt_u64(s, &ctx, "p50_ns")?,
                        p90_ns: opt_u64(s, &ctx, "p90_ns")?,
                        p99_ns: opt_u64(s, &ctx, "p99_ns")?,
                    },
                );
            }
        }
        // Optional: only serving runs carry it (and older baselines
        // predate it), but a present section is fully type-checked.
        if let Some(s) = v.get("serving") {
            summary.serving = Some(ServingSummary {
                requests: req_u64(s, "serving", "requests")?,
                errors: req_u64(s, "serving", "errors")?,
                error_rate: req_f64(s, "serving", "error_rate")?,
                p50_ns: req_u64(s, "serving", "p50_ns")?,
                p99_ns: req_u64(s, "serving", "p99_ns")?,
            });
        }
        // Optional: only observed serving runs carry it, but a present
        // section is fully type-checked. An attribute's `drift` is
        // tri-state: a number when scored, `null`/absent when the
        // server had no reference to score against.
        if let Some(q) = v.get("quality_online") {
            let degraded = match q.get("degraded") {
                Some(Json::Bool(b)) => *b,
                Some(_) => return Err("quality_online: field \"degraded\" is not a bool".into()),
                None => return Err("quality_online: missing required field \"degraded\"".into()),
            };
            let mut section = QualityOnlineSummary {
                pages: req_u64(q, "quality_online", "pages")?,
                empty_pages: req_u64(q, "quality_online", "empty_pages")?,
                empty_rate: req_f64(q, "quality_online", "empty_rate")?,
                oov_rate: req_f64(q, "quality_online", "oov_rate")?,
                degraded,
                attrs: Vec::new(),
            };
            if let Some(Json::Arr(attrs)) = q.get("attrs") {
                for a in attrs {
                    let attribute = req_str(a, "quality_online attr", "attribute")?;
                    let ctx = format!("quality_online attr {attribute:?}");
                    let drift = match a.get("drift") {
                        None | Some(Json::Null) => None,
                        Some(j) => Some(
                            j.as_f64()
                                .ok_or_else(|| format!("{ctx}: field \"drift\" is not a number"))?,
                        ),
                    };
                    section.attrs.push(OnlineAttr {
                        triples: req_u64(a, &ctx, "triples")?,
                        rate: req_f64(a, &ctx, "rate")?,
                        drift,
                        attribute,
                    });
                }
            }
            summary.quality_online = Some(section);
        }
        // Optional: only profiled runs carry it, but a present section
        // is fully type-checked (a mangled value must not gate as 0).
        if let Some(m) = v.get("memory") {
            summary.memory = Some(MemorySummary {
                peak_rss_bytes: req_u64(m, "memory", "peak_rss_bytes")?,
                total_alloc_bytes: req_u64(m, "memory", "total_alloc_bytes")?,
                alloc_count: req_u64(m, "memory", "alloc_count")?,
                peak_live_bytes: req_u64(m, "memory", "peak_live_bytes")?,
            });
        }
        let quality = v.get("quality").ok_or("missing quality")?;
        if let Some(Json::Arr(runs)) = quality.get("runs") {
            for (ri, run) in runs.iter().enumerate() {
                let mut iterations = Vec::new();
                if let Some(Json::Arr(its)) = run.get("iterations") {
                    for it in its {
                        let ctx = format!("runs[{ri}] iteration");
                        let rules = it
                            .get("veto_by_rule")
                            .ok_or_else(|| format!("{ctx}: missing \"veto_by_rule\""))?;
                        let rctx = format!("{ctx} veto_by_rule");
                        let mut iq = IterationQuality {
                            iteration: req_u64(it, &ctx, "iteration")?,
                            candidates: req_u64(it, &ctx, "candidates")?,
                            triples: req_u64(it, &ctx, "triples")?,
                            veto_dropped: req_u64(it, &ctx, "veto_dropped")?,
                            veto_symbols: req_u64(rules, &rctx, "symbols")?,
                            veto_markup: req_u64(rules, &rctx, "markup")?,
                            veto_unpopular: req_u64(rules, &rctx, "unpopular")?,
                            veto_long: req_u64(rules, &rctx, "long")?,
                            semantic_removed: req_u64(it, &ctx, "semantic_removed")?,
                            semantic_evictions: req_u64(it, &ctx, "semantic_evictions")?,
                            drift: Vec::new(),
                        };
                        if let Some(Json::Arr(drift)) = it.get("drift") {
                            for d in drift {
                                let attribute = req_str(d, &ctx, "attribute")?;
                                let dctx = format!("{ctx} drift {attribute:?}");
                                iq.drift.push(DriftRow {
                                    score: req_f64(d, &dctx, "score")?,
                                    n_values: req_u64(d, &dctx, "n_values")?,
                                    n_baseline: req_u64(d, &dctx, "n_baseline")?,
                                    attribute,
                                });
                            }
                        }
                        iterations.push(iq);
                    }
                }
                summary.runs.push(iterations);
            }
        }
        if let Some(Json::Arr(evals)) = quality.get("evals") {
            for e in evals {
                let key = req_str(e, "eval", "key")?;
                let ctx = format!("eval {key:?}");
                let mut row = EvalRow {
                    precision: req_f64(e, &ctx, "precision")?,
                    coverage: req_f64(e, &ctx, "coverage")?,
                    n_triples: req_u64(e, &ctx, "n_triples")?,
                    key,
                    attrs: Vec::new(),
                };
                if let Some(Json::Arr(attrs)) = e.get("attrs") {
                    for a in attrs {
                        let attribute = req_str(a, &ctx, "attribute")?;
                        let actx = format!("{ctx} attr {attribute:?}");
                        row.attrs.push(AttrEval {
                            precision: req_f64(a, &actx, "precision")?,
                            coverage: req_f64(a, &actx, "coverage")?,
                            attribute,
                        });
                    }
                }
                summary.evals.push(row);
            }
        }
        Ok(summary)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RunSummary {
        let mut s = RunSummary {
            meta: RunMeta {
                name: "probe".into(),
                git_rev: "abc123".into(),
                config_hash: "deadbeef".into(),
                pae_jobs: "4".into(),
                scale: "smoke".into(),
            },
            records: 9,
            dropped: 0,
            ..RunSummary::default()
        };
        s.stages.insert(
            "seed".into(),
            StagePerf {
                calls: 1,
                total_ns: 1_000_000,
                max_ns: 1_000_000,
                p50_ns: 1_000_000,
                p90_ns: 1_000_000,
                p99_ns: 1_000_000,
            },
        );
        s.runs.push(vec![IterationQuality {
            iteration: 1,
            candidates: 120,
            triples: 100,
            veto_dropped: 10,
            veto_symbols: 4,
            veto_markup: 3,
            veto_unpopular: 2,
            veto_long: 1,
            semantic_removed: 5,
            semantic_evictions: 2,
            drift: vec![DriftRow {
                attribute: "color".into(),
                score: 0.125,
                n_values: 10,
                n_baseline: 8,
            }],
        }]);
        s.evals.push(EvalRow {
            key: "bags/default/final".into(),
            precision: 0.9,
            coverage: 0.75,
            n_triples: 100,
            attrs: vec![AttrEval {
                attribute: "color".into(),
                precision: 0.95,
                coverage: 0.7,
            }],
        });
        s
    }

    #[test]
    fn json_round_trip_is_lossless_and_stable() {
        let s = sample();
        let doc = s.to_json();
        let parsed = RunSummary::parse(&doc).expect("parses");
        assert_eq!(parsed, s);
        assert_eq!(parsed.to_json(), doc, "second render is byte-identical");
    }

    #[test]
    fn empty_summary_renders_and_parses() {
        let s = RunSummary::default();
        let parsed = RunSummary::parse(&s.to_json()).expect("parses");
        assert_eq!(parsed, s);
        assert!(!parsed.incomplete());
    }

    #[test]
    fn non_summary_documents_are_rejected() {
        assert!(RunSummary::parse("{}").is_err());
        assert!(RunSummary::parse("{\"type\":\"meta\"}").is_err());
        assert!(RunSummary::parse("not json").is_err());
    }

    #[test]
    fn build_computes_stage_quantiles_from_span_durations() {
        // Ten spans of ~1µs and one of ~1s: p50/p90 stay in the small
        // bucket, p99 reaches for the outlier (clamped to max).
        let mut doc =
            String::from("{\"type\":\"meta\",\"version\":1,\"records\":22,\"dropped\":0}\n");
        for i in 0..11u64 {
            let dur = if i == 10 { 1_000_000_000u64 } else { 1_024 };
            doc.push_str(&format!(
                "{{\"type\":\"span_start\",\"seq\":{},\"t_ns\":0,\"span\":{},\"parent\":0,\"thread\":0,\"name\":\"veto\",\"fields\":{{}}}}\n",
                2 * i,
                i + 1,
            ));
            doc.push_str(&format!(
                "{{\"type\":\"span_end\",\"seq\":{},\"t_ns\":0,\"span\":{},\"parent\":0,\"thread\":0,\"name\":\"veto\",\"fields\":{{\"dur_ns\":{}}}}}\n",
                2 * i + 1,
                i + 1,
                dur,
            ));
        }
        let trace = Trace::parse(&doc).expect("parses");
        let s = RunSummary::build(RunMeta::default(), &trace);
        let veto = &s.stages["veto"];
        assert_eq!(veto.calls, 11);
        assert_eq!(veto.max_ns, 1_000_000_000);
        assert!(
            veto.p50_ns >= 1_024 && veto.p50_ns < 1_000_000,
            "p50 {}",
            veto.p50_ns
        );
        assert!(veto.p90_ns < 1_000_000, "p90 {}", veto.p90_ns);
        assert_eq!(veto.p99_ns, 1_000_000_000, "p99 {}", veto.p99_ns);
    }

    #[test]
    fn serving_section_round_trips_and_stays_optional() {
        let mut s = sample();
        assert!(
            RunSummary::parse(&s.to_json())
                .expect("parses")
                .serving
                .is_none(),
            "non-serving summary must not grow a serving section"
        );
        s.serving = Some(ServingSummary {
            requests: 150,
            errors: 3,
            error_rate: 0.02,
            p50_ns: 2_000_000,
            p99_ns: 9_000_000,
        });
        let doc = s.to_json();
        let parsed = RunSummary::parse(&doc).expect("parses");
        assert_eq!(parsed, s);
        assert_eq!(parsed.to_json(), doc);
        // A mangled serving section is a parse error, not a silent zero.
        let mangled = doc.replace("\"requests\": 150", "\"requests\": \"many\"");
        assert!(RunSummary::parse(&mangled).is_err());
    }

    #[test]
    fn build_derives_serving_slos_from_registry_metrics() {
        let doc = "{\"type\":\"meta\",\"version\":1,\"records\":0,\"dropped\":0}\n\
            {\"type\":\"metric_snapshot\",\"name\":\"serve.responses\",\"labels\":{\"status\":\"200\"},\"kind\":\"counter\",\"value\":98}\n\
            {\"type\":\"metric_snapshot\",\"name\":\"serve.responses\",\"labels\":{\"status\":\"400\"},\"kind\":\"counter\",\"value\":2}\n";
        let trace = Trace::parse(doc).expect("parses");
        let s = RunSummary::build(RunMeta::default(), &trace);
        let serving = s.serving.expect("serving section derived");
        assert_eq!(serving.requests, 100);
        assert_eq!(serving.errors, 2);
        assert!((serving.error_rate - 0.02).abs() < 1e-12);

        // No serve metrics at all -> no serving section.
        let quiet = "{\"type\":\"meta\",\"version\":1,\"records\":0,\"dropped\":0}\n";
        let trace = Trace::parse(quiet).expect("parses");
        assert!(RunSummary::build(RunMeta::default(), &trace)
            .serving
            .is_none());
    }

    #[test]
    fn memory_section_round_trips_and_stays_optional() {
        let mut s = sample();
        assert!(
            RunSummary::parse(&s.to_json())
                .expect("parses")
                .memory
                .is_none(),
            "unprofiled summary must not grow a memory section"
        );
        s.memory = Some(MemorySummary {
            peak_rss_bytes: 120 << 20,
            total_alloc_bytes: 3_000_000_000,
            alloc_count: 42_000_000,
            peak_live_bytes: 90 << 20,
        });
        let doc = s.to_json();
        let parsed = RunSummary::parse(&doc).expect("parses");
        assert_eq!(parsed, s);
        assert_eq!(parsed.to_json(), doc);
        // A mangled memory section is a parse error, not a silent zero.
        let mangled = doc.replace("\"alloc_count\": 42000000", "\"alloc_count\": \"lots\"");
        assert!(RunSummary::parse(&mangled).is_err());
    }

    #[test]
    fn build_derives_memory_section_from_mem_summary_event() {
        let doc = "{\"type\":\"meta\",\"version\":1,\"records\":2,\"dropped\":0}\n\
            {\"type\":\"event\",\"seq\":0,\"t_ns\":0,\"span\":0,\"parent\":0,\"thread\":0,\"name\":\"mem.summary\",\"fields\":{\"peak_rss_bytes\":100,\"total_alloc_bytes\":10,\"alloc_count\":1,\"peak_live_bytes\":5}}\n\
            {\"type\":\"event\",\"seq\":1,\"t_ns\":0,\"span\":0,\"parent\":0,\"thread\":0,\"name\":\"mem.summary\",\"fields\":{\"peak_rss_bytes\":200,\"total_alloc_bytes\":20,\"alloc_count\":2,\"peak_live_bytes\":7}}\n";
        let trace = Trace::parse(doc).expect("parses");
        let s = RunSummary::build(RunMeta::default(), &trace);
        let mem = s.memory.expect("memory section derived");
        assert_eq!(
            mem,
            MemorySummary {
                peak_rss_bytes: 200,
                total_alloc_bytes: 20,
                alloc_count: 2,
                peak_live_bytes: 7,
            },
            "the last mem.summary event wins"
        );

        // No mem.summary event -> no memory section.
        let quiet = "{\"type\":\"meta\",\"version\":1,\"records\":0,\"dropped\":0}\n";
        let trace = Trace::parse(quiet).expect("parses");
        assert!(RunSummary::build(RunMeta::default(), &trace)
            .memory
            .is_none());
    }

    #[test]
    fn quality_online_section_round_trips_and_stays_optional() {
        let mut s = sample();
        assert!(
            RunSummary::parse(&s.to_json())
                .expect("parses")
                .quality_online
                .is_none(),
            "non-serving summary must not grow a quality_online section"
        );
        s.quality_online = Some(QualityOnlineSummary {
            pages: 150,
            empty_pages: 3,
            empty_rate: 0.02,
            oov_rate: 0.05,
            degraded: false,
            attrs: vec![
                OnlineAttr {
                    attribute: "color".into(),
                    triples: 140,
                    rate: 0.933333,
                    drift: Some(0.04),
                },
                OnlineAttr {
                    attribute: "weight".into(),
                    triples: 2,
                    rate: 0.013333,
                    drift: None,
                },
            ],
        });
        let doc = s.to_json();
        assert!(
            doc.contains("\"drift\": null"),
            "unscored drift must render as null, not 0: {doc}"
        );
        let parsed = RunSummary::parse(&doc).expect("parses");
        assert_eq!(parsed, s);
        assert_eq!(parsed.to_json(), doc, "second render is byte-identical");
        // A mangled section is a parse error, not a silent zero.
        let mangled = doc.replace("\"pages\": 150", "\"pages\": \"many\"");
        assert!(RunSummary::parse(&mangled).is_err());
        let mangled = doc.replace("\"degraded\": false", "\"degraded\": 0.5");
        assert!(RunSummary::parse(&mangled).is_err());
    }

    #[test]
    fn build_derives_quality_online_from_events() {
        let doc = "{\"type\":\"meta\",\"version\":1,\"records\":4,\"dropped\":0}\n\
            {\"type\":\"event\",\"seq\":0,\"t_ns\":0,\"span\":0,\"parent\":0,\"thread\":0,\"name\":\"quality.online\",\"fields\":{\"pages\":100,\"empty_pages\":50,\"empty_rate\":0.5,\"oov_rate\":0.2,\"degraded\":1}}\n\
            {\"type\":\"event\",\"seq\":1,\"t_ns\":0,\"span\":0,\"parent\":0,\"thread\":0,\"name\":\"quality.online\",\"fields\":{\"pages\":150,\"empty_pages\":3,\"empty_rate\":0.02,\"oov_rate\":0.05,\"degraded\":0}}\n\
            {\"type\":\"event\",\"seq\":2,\"t_ns\":0,\"span\":0,\"parent\":0,\"thread\":0,\"name\":\"quality.online.attr\",\"fields\":{\"attribute\":\"weight\",\"triples\":2,\"rate\":0.013}}\n\
            {\"type\":\"event\",\"seq\":3,\"t_ns\":0,\"span\":0,\"parent\":0,\"thread\":0,\"name\":\"quality.online.attr\",\"fields\":{\"attribute\":\"color\",\"triples\":140,\"rate\":0.93,\"drift\":0.04}}\n";
        let trace = Trace::parse(doc).expect("parses");
        let s = RunSummary::build(RunMeta::default(), &trace);
        let q = s.quality_online.expect("quality_online derived");
        assert_eq!(q.pages, 150, "the last quality.online event wins");
        assert!(!q.degraded);
        assert_eq!(q.attrs.len(), 2);
        assert_eq!(q.attrs[0].attribute, "color", "attrs sorted by name");
        assert_eq!(q.attrs[0].drift, Some(0.04));
        assert_eq!(q.attrs[1].drift, None, "unscored attr stays None");

        // No quality events -> no section.
        let quiet = "{\"type\":\"meta\",\"version\":1,\"records\":0,\"dropped\":0}\n";
        let trace = Trace::parse(quiet).expect("parses");
        assert!(RunSummary::build(RunMeta::default(), &trace)
            .quality_online
            .is_none());
    }

    #[test]
    fn quality_json_excludes_timings() {
        let q = sample().quality_json(0);
        assert!(!q.contains("_ns"), "timings leaked into quality: {q}");
        assert!(q.contains("\"drift\""));
        assert!(q.contains("\"evals\""));
    }
}
