//! The run ledger: writing summaries to `results/ledger/` and stamping
//! [`RunMeta`](crate::summary::RunMeta) with environment facts.

use std::path::{Path, PathBuf};

use crate::summary::RunSummary;

/// The git revision of `repo_root` (short form), or `unknown` when git
/// is unavailable or the directory is not a repository.
pub fn git_rev(repo_root: &Path) -> String {
    let out = std::process::Command::new("git")
        .arg("-C")
        .arg(repo_root)
        .args(["rev-parse", "--short=12", "HEAD"])
        .output();
    match out {
        Ok(o) if o.status.success() => String::from_utf8_lossy(&o.stdout).trim().to_owned(),
        _ => "unknown".into(),
    }
}

/// FNV-1a over `bytes` — stable across platforms, used for config
/// fingerprints.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        hash ^= *b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Fingerprint of a stable, human-readable config description (the
/// caller formats the knobs that matter; the hash makes two runs with
/// different configs incomparable at a glance).
pub fn config_hash(description: &str) -> String {
    format!("{:016x}", fnv1a(description.as_bytes()))
}

/// File-system-safe version of a run name (`tableII/bags` →
/// `tableII_bags`).
pub fn sanitize_name(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '_' || c == '.' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// Writes `summary` to `<dir>/<sanitized name>.json`, creating the
/// directory if needed, and returns the path.
pub fn write_summary(dir: &Path, summary: &RunSummary) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let name = sanitize_name(&summary.meta.name);
    let name = if name.is_empty() { "run".into() } else { name };
    let path = dir.join(format!("{name}.json"));
    std::fs::write(&path, summary.to_json())?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::summary::RunMeta;

    #[test]
    fn fnv_is_stable_and_sensitive() {
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv1a(b"a"), fnv1a(b"b"));
        assert_eq!(config_hash("x"), config_hash("x"));
        assert_ne!(config_hash("iterations=3"), config_hash("iterations=4"));
    }

    #[test]
    fn names_are_sanitized() {
        assert_eq!(sanitize_name("tableII/bags it#1"), "tableII_bags_it_1");
        assert_eq!(sanitize_name("probe-smoke_1.0"), "probe-smoke_1.0");
    }

    #[test]
    fn write_summary_round_trips_through_disk() {
        let dir =
            std::env::temp_dir().join(format!("pae-report-ledger-test-{}", std::process::id()));
        let summary = RunSummary {
            meta: RunMeta {
                name: "unit/ledger".into(),
                git_rev: "abc".into(),
                config_hash: "0".into(),
                pae_jobs: String::new(),
                scale: "default".into(),
            },
            ..RunSummary::default()
        };
        let path = write_summary(&dir, &summary).expect("write");
        assert!(path.ends_with("unit_ledger.json"));
        let doc = std::fs::read_to_string(&path).expect("read back");
        assert_eq!(RunSummary::parse(&doc).expect("parse"), summary);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn git_rev_handles_non_repos() {
        // /tmp is (normally) not a git repository; either way the call
        // must not panic and must return a non-empty token.
        let rev = git_rev(std::env::temp_dir().as_path());
        assert!(!rev.is_empty());
    }
}
