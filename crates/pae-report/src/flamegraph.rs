//! Folded-stack (flamegraph) export from a trace's span tree.
//!
//! [`folded_stacks`] renders the standard `stack;frames;joined N`
//! collapsed format consumed by `flamegraph.pl`, speedscope, and
//! inferno: one line per unique span path, weighted either by
//! *self time* (wall clock minus time attributed to children) or by
//! *self allocated bytes* (for profiled traces whose span-end records
//! carry `alloc_bytes`). Self weights come from
//! [`pae_obs::reader::Trace::span_infos`], so concurrent children that
//! overlap their parent saturate to zero rather than going negative.
//!
//! Output is deterministic: paths are aggregated in a `BTreeMap` and
//! emitted in lexicographic order, zero-weight paths are skipped, and
//! frame names have the format's two separator characters (`;` and
//! space) replaced with `_`.

use std::collections::BTreeMap;

use pae_obs::reader::Trace;

/// What a folded stack line's count measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Weight {
    /// Self wall-clock nanoseconds per span.
    TimeNs,
    /// Self allocated bytes per span (requires a profiled trace).
    AllocBytes,
}

impl Weight {
    /// Parses a `--weight` argument (`time` or `bytes`).
    pub fn parse(s: &str) -> Result<Weight, String> {
        match s {
            "time" => Ok(Weight::TimeNs),
            "bytes" => Ok(Weight::AllocBytes),
            other => Err(format!(
                "unknown weight {other:?} (expected \"time\" or \"bytes\")"
            )),
        }
    }
}

/// Makes a span name safe to use as a folded-stack frame.
fn frame(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c == ';' || c.is_whitespace() {
                '_'
            } else {
                c
            }
        })
        .collect()
}

/// Collapses a trace's span tree into folded stacks.
///
/// Returns one `path;to;span weight\n` line per span path whose self
/// weight is non-zero, lexicographically sorted. Identical paths (the
/// same span name called repeatedly under the same ancestry) are
/// summed. Spans whose parent chain is broken (truncated traces) root
/// their path at the deepest reachable ancestor.
pub fn folded_stacks(trace: &Trace, weight: Weight) -> String {
    let infos = trace.span_infos();
    let mut by_span: BTreeMap<u64, usize> = BTreeMap::new();
    for (i, info) in infos.iter().enumerate() {
        by_span.insert(info.span, i);
    }

    let mut folded: BTreeMap<String, u64> = BTreeMap::new();
    for info in &infos {
        let w = match weight {
            Weight::TimeNs => info.self_ns,
            Weight::AllocBytes => info.self_alloc_bytes,
        };
        if w == 0 {
            continue;
        }
        // Walk the parent chain to the root, bounded by the span count
        // so a malformed trace with a parent cycle cannot hang us.
        let mut frames = vec![frame(&info.name)];
        let mut cur = info.parent;
        for _ in 0..infos.len() {
            let Some(&i) = by_span.get(&cur) else { break };
            frames.push(frame(&infos[i].name));
            cur = infos[i].parent;
            if cur == 0 {
                break;
            }
        }
        frames.reverse();
        *folded.entry(frames.join(";")).or_insert(0) += w;
    }

    let mut out = String::new();
    for (path, w) in &folded {
        out.push_str(path);
        out.push(' ');
        out.push_str(&w.to_string());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span_line(kind: &str, seq: u64, span: u64, parent: u64, name: &str, fields: &str) -> String {
        format!(
            "{{\"type\":\"{kind}\",\"seq\":{seq},\"t_ns\":0,\"span\":{span},\"parent\":{parent},\"thread\":0,\"name\":\"{name}\",\"fields\":{{{fields}}}}}\n"
        )
    }

    /// root(100ns, 1000B) > child(30, 600) > leaf(10, 100), plus
    /// child2(25, 150) under root — the same tree the reader tests use.
    fn sample_trace() -> Trace {
        let mut doc =
            String::from("{\"type\":\"meta\",\"version\":1,\"records\":8,\"dropped\":0}\n");
        doc.push_str(&span_line("span_start", 0, 1, 0, "root", ""));
        doc.push_str(&span_line("span_start", 1, 2, 1, "child", ""));
        doc.push_str(&span_line("span_start", 2, 3, 2, "leaf", ""));
        doc.push_str(&span_line(
            "span_end",
            3,
            3,
            2,
            "leaf",
            "\"dur_ns\":10,\"alloc_bytes\":100,\"alloc_count\":1,\"peak_live_bytes\":100",
        ));
        doc.push_str(&span_line(
            "span_end",
            4,
            2,
            1,
            "child",
            "\"dur_ns\":30,\"alloc_bytes\":600,\"alloc_count\":6,\"peak_live_bytes\":600",
        ));
        doc.push_str(&span_line("span_start", 5, 4, 1, "child2", ""));
        doc.push_str(&span_line(
            "span_end",
            6,
            4,
            1,
            "child2",
            "\"dur_ns\":25,\"alloc_bytes\":150,\"alloc_count\":2,\"peak_live_bytes\":150",
        ));
        doc.push_str(&span_line(
            "span_end",
            7,
            1,
            0,
            "root",
            "\"dur_ns\":100,\"alloc_bytes\":1000,\"alloc_count\":10,\"peak_live_bytes\":1000",
        ));
        Trace::parse(&doc).expect("trace parses")
    }

    #[test]
    fn time_weighted_stacks_use_self_time() {
        let out = folded_stacks(&sample_trace(), Weight::TimeNs);
        // Lexicographic path order: '2' sorts before ';'.
        assert_eq!(
            out,
            "root 45\nroot;child 20\nroot;child2 25\nroot;child;leaf 10\n"
        );
    }

    #[test]
    fn byte_weighted_stacks_use_self_alloc_bytes() {
        let out = folded_stacks(&sample_trace(), Weight::AllocBytes);
        assert_eq!(
            out,
            "root 250\nroot;child 500\nroot;child2 150\nroot;child;leaf 100\n"
        );
    }

    #[test]
    fn zero_weight_paths_are_skipped_and_repeats_are_summed() {
        // Two sibling spans with the same name sum into one line; a
        // span with zero self weight (all time in its child) vanishes.
        let mut doc =
            String::from("{\"type\":\"meta\",\"version\":1,\"records\":6,\"dropped\":0}\n");
        doc.push_str(&span_line("span_start", 0, 1, 0, "root", ""));
        doc.push_str(&span_line("span_start", 1, 2, 1, "work", ""));
        doc.push_str(&span_line("span_end", 2, 2, 1, "work", "\"dur_ns\":40"));
        doc.push_str(&span_line("span_start", 3, 3, 1, "work", ""));
        doc.push_str(&span_line("span_end", 4, 3, 1, "work", "\"dur_ns\":60"));
        // root's entire 100ns is inside its children -> self 0.
        doc.push_str(&span_line("span_end", 5, 1, 0, "root", "\"dur_ns\":100"));
        let trace = Trace::parse(&doc).expect("parses");
        let out = folded_stacks(&trace, Weight::TimeNs);
        assert_eq!(out, "root;work 100\n");
        // An unprofiled trace has no byte weights at all.
        assert_eq!(folded_stacks(&trace, Weight::AllocBytes), "");
    }

    #[test]
    fn separator_characters_in_names_are_sanitized() {
        let mut doc =
            String::from("{\"type\":\"meta\",\"version\":1,\"records\":2,\"dropped\":0}\n");
        doc.push_str(&span_line("span_start", 0, 1, 0, "odd name;x", ""));
        doc.push_str(&span_line(
            "span_end",
            1,
            1,
            0,
            "odd name;x",
            "\"dur_ns\":5",
        ));
        let trace = Trace::parse(&doc).expect("parses");
        assert_eq!(folded_stacks(&trace, Weight::TimeNs), "odd_name_x 5\n");
    }

    #[test]
    fn weight_parses_both_modes_and_rejects_garbage() {
        assert_eq!(Weight::parse("time"), Ok(Weight::TimeNs));
        assert_eq!(Weight::parse("bytes"), Ok(Weight::AllocBytes));
        assert!(Weight::parse("calories").is_err());
    }
}
