//! Golden tests over the checked-in fixture traces: `clean.jsonl` /
//! `regressed.jsonl` (the latter injects a perf, a precision, a
//! coverage, and a drift regression) for summarize/diff/check, and
//! `provenance_clean.jsonl` / `provenance_regressed.jsonl` (the latter
//! flips `color=red` from kept to semantically dropped) for
//! explain/explain-diff — plus exit-code tests driving the actual
//! `pae-report` binary.

use std::path::Path;
use std::process::Command;

use pae_obs::reader::Trace;
use pae_report::diff::{check, Thresholds};
use pae_report::summary::{RunMeta, RunSummary};

fn fixture(name: &str) -> String {
    format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"))
}

fn summarize(name: &str) -> RunSummary {
    let trace = Trace::read(Path::new(&fixture(name))).expect("fixture parses");
    RunSummary::build(
        RunMeta {
            name: name.trim_end_matches(".jsonl").into(),
            git_rev: "fixture".into(),
            config_hash: "fixture".into(),
            pae_jobs: String::new(),
            scale: "fixture".into(),
        },
        &trace,
    )
}

#[test]
fn clean_fixture_summarizes_to_the_expected_shape() {
    let s = summarize("clean.jsonl");
    assert_eq!(s.records, 13);
    assert!(!s.incomplete());

    // Perf: all four span names aggregated.
    let stage_names: Vec<&String> = s.stages.keys().collect();
    assert_eq!(
        stage_names,
        vec!["bootstrap.run", "iteration", "seed", "semantic"]
    );
    assert_eq!(s.stages["seed"].total_ns, 2_000_000);
    assert_eq!(s.stages["semantic"].calls, 1);

    // Quality: one run, one iteration, drift sorted by attribute.
    assert_eq!(s.runs.len(), 1);
    assert_eq!(s.runs[0].len(), 1);
    let it = &s.runs[0][0];
    assert_eq!(it.iteration, 1);
    assert_eq!(it.candidates, 120);
    assert_eq!(it.triples, 100);
    assert_eq!(it.veto_dropped, 10);
    assert_eq!(
        (
            it.veto_symbols,
            it.veto_markup,
            it.veto_unpopular,
            it.veto_long
        ),
        (4, 3, 2, 1)
    );
    assert_eq!(it.semantic_removed, 5);
    assert_eq!(it.semantic_evictions, 2);
    let drift_attrs: Vec<&str> = it.drift.iter().map(|d| d.attribute.as_str()).collect();
    assert_eq!(drift_attrs, vec!["color", "weight"]);
    assert!((it.drift[0].score - 0.05).abs() < 1e-12);

    // Evals: headline + one attribute row.
    assert_eq!(s.evals.len(), 1);
    assert_eq!(s.evals[0].key, "bags/default/final");
    assert!((s.evals[0].precision - 0.9).abs() < 1e-12);
    assert_eq!(s.evals[0].attrs.len(), 1);
    assert_eq!(s.evals[0].attrs[0].attribute, "color");
}

#[test]
fn summary_json_round_trips_and_is_stable() {
    let s = summarize("clean.jsonl");
    let doc = s.to_json();
    let parsed = RunSummary::parse(&doc).expect("round trip");
    assert_eq!(parsed, s);
    assert_eq!(parsed.to_json(), doc);
    // Rebuilding from the same trace gives a byte-identical quality
    // section (this is what the determinism suite relies on).
    assert_eq!(summarize("clean.jsonl").quality_json(0), s.quality_json(0));
}

#[test]
fn clean_vs_clean_passes() {
    let s = summarize("clean.jsonl");
    let report = check(&s, &s, &Thresholds::default());
    assert!(report.passed(), "{}", report.render());
}

#[test]
fn injected_regressions_are_each_caught() {
    let clean = summarize("clean.jsonl");
    let bad = summarize("regressed.jsonl");
    let report = check(&clean, &bad, &Thresholds::default());
    let kinds: Vec<&str> = report.violations.iter().map(|v| v.kind).collect();
    // semantic +140% (seed is sub-floor, iteration +30% within
    // tolerance), headline precision 0.9→0.8, attr color coverage
    // 0.7→0.6, drift color 0.05→0.45.
    assert_eq!(
        kinds,
        vec!["perf", "precision", "coverage", "drift"],
        "{}",
        report.render()
    );
    // The reverse direction (a run getting faster/better) passes.
    let reverse = check(&bad, &clean, &Thresholds::default());
    assert!(reverse.passed(), "{}", reverse.render());
}

#[test]
fn thresholds_gate_each_dimension_independently() {
    let clean = summarize("clean.jsonl");
    let bad = summarize("regressed.jsonl");
    let loose = Thresholds {
        time_tolerance: 10.0,
        precision_tol: 0.5,
        coverage_tol: 0.5,
        drift_tol: 5.0,
        ..Thresholds::default()
    };
    assert!(check(&clean, &bad, &loose).passed());
    let only_perf = Thresholds {
        precision_tol: 0.5,
        coverage_tol: 0.5,
        drift_tol: 5.0,
        ..Thresholds::default()
    };
    let report = check(&clean, &bad, &only_perf);
    assert_eq!(report.violations.len(), 1);
    assert_eq!(report.violations[0].kind, "perf");
}

fn run_cli(args: &[&str]) -> (i32, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_pae-report"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        out.status.code().unwrap_or(-1),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn cli_check_exit_codes_honor_thresholds() {
    let clean = fixture("clean.jsonl");
    let bad = fixture("regressed.jsonl");

    let (code, stdout, _) = run_cli(&["check", &clean, "--baseline", &clean]);
    assert_eq!(code, 0, "identical inputs must pass: {stdout}");
    assert!(stdout.contains("PASS"));

    let (code, stdout, _) = run_cli(&["check", &bad, "--baseline", &clean]);
    assert_eq!(code, 1, "regression must fail: {stdout}");
    assert!(stdout.contains("FAIL"));
    assert!(stdout.contains("[perf]"));
    assert!(stdout.contains("[drift]"));

    // Loose thresholds turn the same comparison into a pass.
    let (code, _, _) = run_cli(&[
        "check",
        &bad,
        "--baseline",
        &clean,
        "--time-tolerance",
        "10",
        "--precision-tol",
        "0.5",
        "--coverage-tol",
        "0.5",
        "--drift-tol",
        "5",
    ]);
    assert_eq!(code, 0);
}

#[test]
fn cli_usage_and_io_errors_exit_2() {
    let (code, _, stderr) = run_cli(&[]);
    assert_eq!(code, 2);
    assert!(stderr.contains("usage"));

    let (code, _, _) = run_cli(&["frobnicate"]);
    assert_eq!(code, 2);

    let (code, _, stderr) = run_cli(&[
        "check",
        "/nonexistent.json",
        "--baseline",
        "/also-missing.json",
    ]);
    assert_eq!(code, 2, "{stderr}");

    let (code, _, _) = run_cli(&["check", &fixture("clean.jsonl")]);
    assert_eq!(code, 2, "check without --baseline is a usage error");
}

#[test]
fn malformed_baseline_is_rejected_not_zeroed() {
    // The fixture mangles three required numerics (`records` as a
    // string, a stage missing `total_ns`, an iteration `triples` of
    // null) and drops an eval's `coverage`. Before strict parsing each
    // of these silently became 0 and the gate compared against zeros.
    let doc = std::fs::read_to_string(fixture("malformed_baseline.json")).unwrap();
    let err = RunSummary::parse(&doc).expect_err("malformed summary must not parse");
    assert!(
        err.contains("records"),
        "first mangled field is named: {err}"
    );

    // Each corruption is caught individually once the earlier ones are
    // repaired.
    let fixed_records = doc.replace("\"records\": \"1608\"", "\"records\": 1608");
    let err = RunSummary::parse(&fixed_records).expect_err("still malformed");
    assert!(err.contains("total_ns"), "{err}");
    let fixed_stage = fixed_records.replace(
        "{ \"calls\": 9, \"max_ns\": 695955603 }",
        "{ \"calls\": 9, \"total_ns\": 1, \"max_ns\": 695955603 }",
    );
    let err = RunSummary::parse(&fixed_stage).expect_err("still malformed");
    assert!(err.contains("triples"), "{err}");
    let fixed_iter = fixed_stage.replace("\"triples\": null", "\"triples\": 61");
    let err = RunSummary::parse(&fixed_iter).expect_err("still malformed");
    assert!(err.contains("coverage"), "{err}");
    let fixed_all = fixed_iter.replace(
        "\"precision\": 0.9,",
        "\"precision\": 0.9, \"coverage\": 0.8,",
    );
    let s = RunSummary::parse(&fixed_all).expect("fully repaired document parses");
    assert_eq!(s.records, 1608);
    assert_eq!(s.runs[0][0].triples, 61);
}

#[test]
fn cli_check_and_diff_exit_2_on_malformed_baseline() {
    let clean = fixture("clean.jsonl");
    let bad = fixture("malformed_baseline.json");

    let (code, _, stderr) = run_cli(&["check", &clean, "--baseline", &bad]);
    assert_eq!(
        code, 2,
        "malformed baseline must be a usage error, not a pass"
    );
    assert!(stderr.contains("neither a RunSummary"), "{stderr}");
    assert!(stderr.contains("records"), "names the bad field: {stderr}");

    let (code, _, stderr) = run_cli(&["diff", &bad, &clean]);
    assert_eq!(code, 2, "diff with a malformed side must exit 2: {stderr}");
}

#[test]
fn cli_explain_reconstructs_a_semantically_dropped_trail() {
    let prov = fixture("provenance_clean.jsonl");

    // No query: discovery listing of attributes with pair counts.
    let (code, stdout, _) = run_cli(&["explain", &prov]);
    assert_eq!(code, 0, "{stdout}");
    assert!(stdout.contains("color"), "{stdout}");
    assert!(stdout.contains("3 pair(s)"), "{stdout}");
    assert!(stdout.contains("weight"), "{stdout}");

    // Full trail for the semantically-dropped triple.
    let (code, stdout, _) = run_cli(&["explain", &prov, "--attribute", "color"]);
    assert_eq!(code, 0, "{stdout}");
    assert!(
        stdout.contains("color=reddish  [dropped]"),
        "header with fate: {stdout}"
    );
    assert!(
        stdout.contains("origin: tagger via crf"),
        "origin event: {stdout}"
    );
    assert!(
        stdout.contains("veto long: near-miss (measure 0.40)"),
        "veto near-miss: {stdout}"
    );
    assert!(
        stdout.contains("similarity 0.210 vs threshold 0.55, DROPPED"),
        "semantic verdict: {stdout}"
    );
    assert!(
        stdout.contains("dropped at it1 by semantic"),
        "disposition: {stdout}"
    );
    // Sorted by confidence: red (0.93) before reddish (0.61).
    let red = stdout.find("color=red  ").expect("red trail present");
    let reddish = stdout.find("color=reddish").expect("reddish trail");
    assert!(red < reddish, "confidence ordering: {stdout}");

    // --value narrows to one pair; unknown queries exit 1.
    let (code, stdout, _) = run_cli(&["explain", &prov, "--attribute", "color", "--value", "red"]);
    assert_eq!(code, 0);
    assert!(stdout.contains("confidence 0.930"), "{stdout}");
    assert!(!stdout.contains("reddish"), "{stdout}");
    let (code, _, stderr) = run_cli(&["explain", &prov, "--attribute", "material"]);
    assert_eq!(code, 1, "no match must exit 1: {stderr}");

    // A trace without provenance records is a usage error.
    let (code, _, stderr) = run_cli(&["explain", &fixture("clean.jsonl")]);
    assert_eq!(code, 2, "{stderr}");
    assert!(stderr.contains("no provenance records"), "{stderr}");

    // --json emits the deterministic ledger document.
    let (code, stdout, _) = run_cli(&["explain", &prov, "--json"]);
    assert_eq!(code, 0);
    assert!(stdout.contains("\"type\": \"lineage_ledger\""), "{stdout}");
    assert!(stdout.contains("\"fate\": \"kept\""), "{stdout}");
    let (_, again, _) = run_cli(&["explain", &prov, "--json"]);
    assert_eq!(stdout, again, "ledger JSON is byte-stable");
}

#[test]
fn cli_explain_diff_lists_disposition_flips_with_cause() {
    let clean = fixture("provenance_clean.jsonl");
    let bad = fixture("provenance_regressed.jsonl");

    let (code, stdout, _) = run_cli(&["explain-diff", &bad, "--baseline", &clean]);
    assert_eq!(code, 0, "{stdout}");
    assert!(stdout.contains("1 disposition flip(s)"), "{stdout}");
    assert!(
        stdout.contains("color=red  kept -> dropped  (cause: semantic at it1)"),
        "flip with cause stage: {stdout}"
    );

    let (code, stdout, _) = run_cli(&["explain-diff", &clean, "--baseline", &clean]);
    assert_eq!(code, 0);
    assert!(stdout.contains("no disposition flips"), "{stdout}");

    let (code, _, _) = run_cli(&["explain-diff", &bad]);
    assert_eq!(code, 2, "explain-diff without --baseline is a usage error");
}

#[test]
fn cli_check_mem_tolerance_gates_injected_rss_regression() {
    // A profiled baseline and a current run whose peak RSS grew +50%:
    // the gate must fail at 10% tolerance and pass at 100%.
    let mut baseline = summarize("clean.jsonl");
    baseline.memory = Some(pae_report::summary::MemorySummary {
        peak_rss_bytes: 100 << 20,
        total_alloc_bytes: 1_000_000_000,
        alloc_count: 5_000_000,
        peak_live_bytes: 80 << 20,
    });
    let mut current = baseline.clone();
    current.memory.as_mut().unwrap().peak_rss_bytes = 150 << 20;
    let dir = std::env::temp_dir();
    let pid = std::process::id();
    let b_path = dir.join(format!("pae-report-membase-{pid}.json"));
    let c_path = dir.join(format!("pae-report-memcur-{pid}.json"));
    std::fs::write(&b_path, baseline.to_json()).unwrap();
    std::fs::write(&c_path, current.to_json()).unwrap();
    let b = b_path.to_str().unwrap();
    let c = c_path.to_str().unwrap();

    let (code, stdout, _) = run_cli(&["check", c, "--baseline", b, "--mem-tolerance", "0.1"]);
    assert_eq!(
        code, 1,
        "+50% peak RSS at 10% tolerance must fail: {stdout}"
    );
    assert!(stdout.contains("[mem-rss]"), "{stdout}");

    let (code, stdout, _) = run_cli(&["check", c, "--baseline", b, "--mem-tolerance", "1.0"]);
    assert_eq!(
        code, 0,
        "same regression passes at 100% tolerance: {stdout}"
    );

    // A profiled baseline against an unprofiled current run fails too.
    let unprofiled = summarize("clean.jsonl");
    std::fs::write(&c_path, unprofiled.to_json()).unwrap();
    let (code, stdout, _) = run_cli(&["check", c, "--baseline", b]);
    assert_eq!(code, 1, "{stdout}");
    assert!(stdout.contains("[mem-missing]"), "{stdout}");

    let _ = std::fs::remove_file(&b_path);
    let _ = std::fs::remove_file(&c_path);
}

#[test]
fn cli_flamegraph_renders_folded_stacks() {
    let clean = fixture("clean.jsonl");

    let (code, stdout, _) = run_cli(&["flamegraph", &clean]);
    assert_eq!(code, 0, "{stdout}");
    // Folded format: every line is `path;to;span weight`.
    for line in stdout.lines() {
        let (path, weight) = line.rsplit_once(' ').expect("folded line shape");
        assert!(!path.is_empty());
        weight.parse::<u64>().expect("numeric weight");
    }
    assert!(
        stdout.lines().any(|l| l.starts_with("bootstrap.run;")),
        "stacks rooted under the pipeline span: {stdout}"
    );
    let (_, again, _) = run_cli(&["flamegraph", &clean, "--weight", "time"]);
    assert_eq!(stdout, again, "folded output is byte-stable");

    // The unprofiled fixture has no byte weights: exit 1, with a hint.
    let (code, _, stderr) = run_cli(&["flamegraph", &clean, "--weight", "bytes"]);
    assert_eq!(code, 1, "{stderr}");
    assert!(stderr.contains("PAE_PROF"), "{stderr}");

    // Unknown weight is a usage error.
    let (code, _, _) = run_cli(&["flamegraph", &clean, "--weight", "calories"]);
    assert_eq!(code, 2);
}

#[test]
fn cli_summarize_emits_parseable_summary_and_diff_runs() {
    let clean = fixture("clean.jsonl");
    let (code, stdout, _) = run_cli(&["summarize", &clean, "--name", "golden"]);
    assert_eq!(code, 0);
    let parsed = RunSummary::parse(&stdout).expect("summarize output parses");
    assert_eq!(parsed.meta.name, "golden");
    assert_eq!(parsed.runs.len(), 1);

    // Summaries are accepted wherever traces are (format auto-detect):
    // write the summary out and diff it against the raw trace.
    let tmp = std::env::temp_dir().join(format!("pae-report-golden-{}.json", std::process::id()));
    std::fs::write(&tmp, &stdout).unwrap();
    let (code, out, _) = run_cli(&["diff", tmp.to_str().unwrap(), &clean]);
    assert_eq!(code, 0, "{out}");
    assert!(out.contains("PASS"), "{out}");
    let _ = std::fs::remove_file(&tmp);

    let (code, stdout, _) = run_cli(&["summarize", &clean, "--quality-only"]);
    assert_eq!(code, 0);
    assert!(stdout.trim_start().starts_with('{'));
    assert!(stdout.contains("\"evals\""));
    assert!(!stdout.contains("total_ns"));
}
