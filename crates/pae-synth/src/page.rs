//! Product records and HTML page rendering.

use rand::rngs::StdRng;
use rand::RngExt;

use pae_html::entity::escape;

use crate::merchant::MerchantStyle;
use crate::schema::CategorySchema;
use crate::values::DrawnValue;

/// The canonical facts about one product: what the ground truth records
/// and what the page renderer works from.
#[derive(Debug, Clone)]
pub struct ProductRecord {
    /// Product id.
    pub id: u32,
    /// Drawn value per attribute, indexed into `schema.attributes`.
    /// Attributes outside the product's cluster are absent.
    pub values: Vec<(usize, DrawnValue)>,
    /// Sub-type cluster for heterogeneous categories.
    pub cluster: Option<usize>,
}

/// Draws a product's canonical attribute values.
pub fn draw_product(schema: &CategorySchema, id: u32, rng: &mut StdRng) -> ProductRecord {
    let clusters: Vec<usize> = schema.attributes.iter().filter_map(|a| a.cluster).collect();
    let cluster = if clusters.is_empty() {
        None
    } else {
        let max = clusters.iter().copied().max().expect("nonempty");
        Some(rng.random_range(0..=max))
    };
    let values = schema
        .attributes
        .iter()
        .enumerate()
        .filter(|(_, a)| a.cluster.is_none() || a.cluster == cluster)
        .map(|(i, a)| (i, a.values.draw(rng)))
        .collect();
    ProductRecord {
        id,
        values,
        cluster,
    }
}

/// Renders the merchant HTML page for one product.
pub fn render_page(schema: &CategorySchema, record: &ProductRecord, rng: &mut StdRng) -> String {
    let style = MerchantStyle::draw(rng);
    let lang = schema.language;
    let term = lang.terminator();

    let pick_filler =
        |rng: &mut StdRng| schema.filler[rng.random_range(0..schema.filler.len())].clone();
    let pick_conn = |rng: &mut StdRng| {
        schema.connectives[rng.random_range(0..schema.connectives.len())].clone()
    };
    let head = schema.head_nouns[rng.random_range(0..schema.head_nouns.len())].clone();

    // Title: usually the brand-ish first value + head noun, but some
    // merchants write uninformative titles.
    let title_value = if rng.random_range(0.0..1.0) < 0.55 {
        record
            .values
            .iter()
            .map(|(_, v)| style.pick(&v.surfaces, rng).to_owned())
            .next()
            .unwrap_or_else(|| pick_filler(rng))
    } else {
        pick_filler(rng)
    };
    let title = lang.join(&[&title_value, &head]);

    let mut sentences: Vec<String> = Vec::new();

    // Explicit and implicit attribute mentions (scaled by how chatty
    // this merchant is).
    for (ai, value) in &record.values {
        let attr = &schema.attributes[*ai];
        let surface = style.pick(&value.surfaces, rng).to_owned();
        if rng.random_range(0.0..1.0) < attr.text_prob * style.verbosity {
            let alias = style.pick(&attr.aliases, rng).to_owned();
            let s = if rng.random_range(0.0..1.0) < 0.6 {
                lang.join(&[&alias, ":", &surface])
            } else {
                let conn = pick_conn(rng);
                lang.join(&[&alias, &conn, &surface])
            };
            sentences.push(s);
        }
        if rng.random_range(0.0..1.0) < attr.implicit_prob * style.verbosity {
            let ctx = if attr.context_words.is_empty() {
                pick_conn(rng)
            } else {
                attr.context_words[rng.random_range(0..attr.context_words.len())].clone()
            };
            let filler = pick_filler(rng);
            let s = match rng.random_range(0..3) {
                0 => lang.join(&[&head, &ctx, &surface]),
                1 => lang.join(&[&ctx, &surface, &filler]),
                _ => lang.join(&[&surface, &ctx, &head]),
            };
            sentences.push(s);
        }
    }

    // Filler sentences.
    for _ in 0..style.filler_sentences {
        let n = 3 + rng.random_range(0..4);
        let words: Vec<String> = (0..n).map(|_| pick_filler(rng)).collect();
        let refs: Vec<&str> = words.iter().map(String::as_str).collect();
        sentences.push(lang.join(&refs));
    }

    // Misleading explicit pattern: attribute name followed by a
    // non-value ("color: see below") — the over-generalization trap.
    if rng.random_range(0.0..1.0) < schema.misleading_prob && !record.values.is_empty() {
        let (ai, _) = &record.values[rng.random_range(0..record.values.len())];
        let attr = &schema.attributes[*ai];
        let alias = style.pick(&attr.aliases, rng).to_owned();
        let filler = pick_filler(rng);
        sentences.push(lang.join(&[&alias, ":", &filler]));
    }

    // Secondary-product mention: a semantically valid pair that does
    // NOT hold for this product (the paper's first error source).
    if rng.random_range(0.0..1.0) < schema.secondary_product_prob {
        if let Some((ai, wrong)) = draw_foreign_value(schema, record, rng) {
            let attr = &schema.attributes[ai];
            let alias = style.pick(&attr.aliases, rng).to_owned();
            let filler = pick_filler(rng);
            sentences.push(lang.join(&[&filler, &alias, ":", &wrong]));
        }
    }
    // Negated mention, same effect through a different template.
    if rng.random_range(0.0..1.0) < schema.negation_prob {
        if let Some((_, wrong)) = draw_foreign_value(schema, record, rng) {
            let neg = schema
                .connectives
                .last()
                .expect("connectives nonempty")
                .clone();
            let conn = pick_conn(rng);
            sentences.push(lang.join(&[&neg, &wrong, &conn]));
        }
    }

    shuffle_strings(&mut sentences, rng);

    // Spec table.
    let mut table_html = String::new();
    if rng.random_range(0.0..1.0) < schema.table_page_prob {
        let mut rows: Vec<(String, String)> = Vec::new();
        for (ai, value) in &record.values {
            let attr = &schema.attributes[*ai];
            if rng.random_range(0.0..1.0) < attr.table_prob {
                let alias = style.pick(&attr.aliases, rng).to_owned();
                let surface = if rng.random_range(0.0..1.0) < schema.table_value_noise {
                    // Merchant copy-paste mistake: value of some other
                    // attribute lands in this row.
                    match draw_foreign_row_value(schema, record, *ai, rng) {
                        Some(wrong) => wrong,
                        None => style.pick(&value.surfaces, rng).to_owned(),
                    }
                } else {
                    style.pick(&value.surfaces, rng).to_owned()
                };
                rows.push((alias, surface));
            }
        }
        // Junk rows exercise the seed's precision limits and the veto
        // rules downstream.
        if rng.random_range(0.0..1.0) < schema.table_noise_prob {
            let junk_kind = rng.random_range(0..3);
            let junk_value = match junk_kind {
                0 => "***".to_owned(),
                1 => {
                    // Overlong shipping-note style value (> 30 chars).
                    let words: Vec<String> = (0..9).map(|_| pick_filler(rng)).collect();
                    let refs: Vec<&str> = words.iter().map(String::as_str).collect();
                    lang.join(&refs)
                }
                _ => ";".to_owned(),
            };
            rows.push((pick_filler(rng), junk_value));
        }
        if rows.len() >= 2 {
            table_html.push_str("<table>");
            for (k, v) in &rows {
                table_html.push_str(&format!(
                    "<tr><th>{}</th><td>{}</td></tr>",
                    escape(k),
                    escape(v)
                ));
            }
            table_html.push_str("</table>");
        }
    }

    // Assemble the body with light markup noise.
    let mut body = String::new();
    body.push_str(&format!("<h1>{}</h1>", escape(&title)));
    body.push_str(&table_html);
    body.push_str("<p>");
    for (i, s) in sentences.iter().enumerate() {
        let decorated = if style.decorates && i % 5 == 4 {
            format!("*{}*", escape(s))
        } else {
            escape(s)
        };
        body.push_str(&decorated);
        body.push_str(term);
        if i % 3 == 2 {
            body.push_str("</p><p>");
        }
    }
    body.push_str("</p>");

    format!(
        "<html><head><title>{}</title></head><body>{}</body></html>",
        escape(&title),
        body
    )
}

/// A wrong value for a table row: drawn from a *different* attribute
/// of the same product (classic merchant copy-paste error).
fn draw_foreign_row_value(
    schema: &CategorySchema,
    record: &ProductRecord,
    exclude: usize,
    rng: &mut StdRng,
) -> Option<String> {
    let others: Vec<&(usize, crate::values::DrawnValue)> = record
        .values
        .iter()
        .filter(|(ai, _)| *ai != exclude)
        .collect();
    if others.is_empty() {
        return None;
    }
    let (ai, _) = others[rng.random_range(0..others.len())];
    let candidate = schema.attributes[*ai].values.draw(rng);
    Some(candidate.surfaces[0].clone())
}

/// Draws a valid `(attribute index, surface)` pair whose value differs
/// from the product's own value for that attribute. Returns `None` when
/// no categorical attribute offers an alternative.
fn draw_foreign_value(
    schema: &CategorySchema,
    record: &ProductRecord,
    rng: &mut StdRng,
) -> Option<(usize, String)> {
    for _ in 0..8 {
        let (ai, own) = &record.values[rng.random_range(0..record.values.len())];
        let attr = &schema.attributes[*ai];
        let candidate = attr.values.draw(rng);
        if candidate.canonical != own.canonical {
            return Some((*ai, candidate.surfaces[0].clone()));
        }
    }
    None
}

fn shuffle_strings(xs: &mut [String], rng: &mut StdRng) {
    for i in (1..xs.len()).rev() {
        let j = rng.random_range(0..=i);
        xs.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::categories::CategoryKind;
    use rand::SeedableRng;

    fn setup() -> (CategorySchema, StdRng) {
        let (schema, _) = CategoryKind::VacuumCleaner.build(11);
        (schema, StdRng::seed_from_u64(21))
    }

    #[test]
    fn product_draws_all_attributes_when_homogeneous() {
        let (schema, mut rng) = setup();
        let p = draw_product(&schema, 0, &mut rng);
        assert_eq!(p.values.len(), schema.attributes.len());
        assert_eq!(p.cluster, None);
    }

    #[test]
    fn heterogeneous_products_only_carry_their_cluster() {
        let (schema, _) = CategoryKind::BabyGoods.build(11);
        let mut rng = StdRng::seed_from_u64(5);
        for id in 0..20 {
            let p = draw_product(&schema, id, &mut rng);
            let c = p.cluster.expect("clustered");
            for (ai, _) in &p.values {
                assert_eq!(schema.attributes[*ai].cluster, Some(c));
            }
            assert!(p.values.len() < schema.attributes.len());
        }
    }

    #[test]
    fn page_is_parseable_html_with_title() {
        let (schema, mut rng) = setup();
        let p = draw_product(&schema, 0, &mut rng);
        let html = render_page(&schema, &p, &mut rng);
        let forest = pae_html::parse(&html);
        assert_eq!(forest.len(), 1);
        let titles = pae_html::dom::find_all(&forest, "title");
        assert_eq!(titles.len(), 1);
        assert!(!titles[0].text_content().is_empty());
    }

    #[test]
    fn some_pages_have_dictionary_tables() {
        let (schema, mut rng) = setup();
        let mut with_tables = 0;
        for id in 0..60 {
            let p = draw_product(&schema, id, &mut rng);
            let html = render_page(&schema, &p, &mut rng);
            let forest = pae_html::parse(&html);
            let tables = pae_html::extract_tables(&forest);
            if tables.iter().any(|t| t.as_dictionary().is_some()) {
                with_tables += 1;
            }
        }
        // table_page_prob is 0.35 for vacuum cleaners.
        assert!(
            (8..=35).contains(&with_tables),
            "unexpected table rate {with_tables}/60"
        );
    }

    #[test]
    fn rendering_is_deterministic() {
        let (schema, _) = setup();
        let render = || {
            let mut rng = StdRng::seed_from_u64(77);
            let p = draw_product(&schema, 3, &mut rng);
            render_page(&schema, &p, &mut rng)
        };
        assert_eq!(render(), render());
    }

    #[test]
    fn foreign_value_differs_from_own() {
        let (schema, mut rng) = setup();
        let p = draw_product(&schema, 0, &mut rng);
        for _ in 0..20 {
            if let Some((ai, surface)) = draw_foreign_value(&schema, &p, &mut rng) {
                let own = p.values.iter().find(|(i, _)| *i == ai).unwrap();
                assert!(!own.1.surfaces.contains(&surface));
            }
        }
    }
}
