//! The category inventory: builders producing one [`CategorySchema`]
//! (plus its lexicon) per category kind.
//!
//! The evaluated categories mirror the paper: eight Japanese-language
//! categories (Table I–III), extra Japanese categories mentioned in the
//! text (Watches, Rings, Wine, Furniture), the three German categories
//! (mailbox, coffee machines, garden), and the Baby Carriers / Baby
//! Goods pair for the heterogeneity study (§VIII-E).

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use pae_text::{Lexicon, PosTag};

use crate::language::{Language, WordFactory};
use crate::schema::{AttributeSpec, CategorySchema};
use crate::values::{CategoricalValue, ValueGen};

/// Every category the generator knows how to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CategoryKind {
    /// Tennis gear (JA-like).
    Tennis,
    /// Kitchenware (JA-like).
    Kitchen,
    /// Cosmetics (JA-like).
    Cosmetics,
    /// Garden equipment (JA-like) — noisy, table-poor.
    Garden,
    /// Shoes (JA-like).
    Shoes,
    /// Ladies bags (JA-like) — table-rich.
    LadiesBags,
    /// Digital cameras (JA-like) — complex numeric attributes.
    DigitalCameras,
    /// Vacuum cleaners (JA-like) — integer-biased weight.
    VacuumCleaner,
    /// Watches (JA-like, extra).
    Watches,
    /// Rings (JA-like, extra; length vs width confusion).
    Rings,
    /// Wine (JA-like, extra).
    Wine,
    /// Furniture (JA-like, extra).
    Furniture,
    /// Mailboxes (DE-like).
    MailboxDe,
    /// Coffee machines (DE-like).
    CoffeeMachinesDe,
    /// Garden (DE-like).
    GardenDe,
    /// Baby carriers — homogeneous child of Baby Goods.
    BabyCarriers,
    /// Baby goods — heterogeneous (carriers + clothes + toys).
    BabyGoods,
}

impl CategoryKind {
    /// All category kinds, evaluation order.
    pub const ALL: [CategoryKind; 17] = [
        CategoryKind::Tennis,
        CategoryKind::Kitchen,
        CategoryKind::Cosmetics,
        CategoryKind::Garden,
        CategoryKind::Shoes,
        CategoryKind::LadiesBags,
        CategoryKind::DigitalCameras,
        CategoryKind::VacuumCleaner,
        CategoryKind::Watches,
        CategoryKind::Rings,
        CategoryKind::Wine,
        CategoryKind::Furniture,
        CategoryKind::MailboxDe,
        CategoryKind::CoffeeMachinesDe,
        CategoryKind::GardenDe,
        CategoryKind::BabyCarriers,
        CategoryKind::BabyGoods,
    ];

    /// The eight categories of the paper's Tables I–III.
    pub const TABLE_CATEGORIES: [CategoryKind; 8] = [
        CategoryKind::Tennis,
        CategoryKind::Kitchen,
        CategoryKind::Cosmetics,
        CategoryKind::Garden,
        CategoryKind::Shoes,
        CategoryKind::LadiesBags,
        CategoryKind::DigitalCameras,
        CategoryKind::VacuumCleaner,
    ];

    /// The three German categories (§VII-B).
    pub const GERMAN_CATEGORIES: [CategoryKind; 3] = [
        CategoryKind::MailboxDe,
        CategoryKind::CoffeeMachinesDe,
        CategoryKind::GardenDe,
    ];

    /// Display name matching the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            CategoryKind::Tennis => "Tennis",
            CategoryKind::Kitchen => "Kitchen",
            CategoryKind::Cosmetics => "Cosmetics",
            CategoryKind::Garden => "Garden",
            CategoryKind::Shoes => "Shoes",
            CategoryKind::LadiesBags => "Ladies Bags",
            CategoryKind::DigitalCameras => "Digital Cameras",
            CategoryKind::VacuumCleaner => "Vacuum Cleaner",
            CategoryKind::Watches => "Watches",
            CategoryKind::Rings => "Rings",
            CategoryKind::Wine => "Wine",
            CategoryKind::Furniture => "Furniture",
            CategoryKind::MailboxDe => "Mailbox (DE)",
            CategoryKind::CoffeeMachinesDe => "Coffee Machines (DE)",
            CategoryKind::GardenDe => "Garden (DE)",
            CategoryKind::BabyCarriers => "Baby Carriers",
            CategoryKind::BabyGoods => "Baby Goods",
        }
    }

    /// Corpus language.
    pub fn language(&self) -> Language {
        match self {
            CategoryKind::MailboxDe | CategoryKind::CoffeeMachinesDe | CategoryKind::GardenDe => {
                Language::SpaceDelim
            }
            _ => Language::Agglut,
        }
    }

    /// Default product-page count, mirroring the paper's relative sizes
    /// (Japanese ≈ 10k items, German ≈ 2k) at a CPU-friendly scale.
    pub fn default_products(&self) -> usize {
        match self.language() {
            Language::Agglut => 600,
            Language::SpaceDelim => 150,
        }
    }

    /// Builds the schema and its lexicon, deterministically from `seed`.
    pub fn build(&self, seed: u64) -> (CategorySchema, Lexicon) {
        let mut rng = StdRng::seed_from_u64(seed ^ hash_kind(*self));
        let mut factory = WordFactory::new(self.language());
        register_units(&mut factory);
        let mut b = Builder {
            rng: &mut rng,
            f: &mut factory,
        };
        let schema = match self {
            CategoryKind::Tennis => b.tennis(),
            CategoryKind::Kitchen => b.kitchen(),
            CategoryKind::Cosmetics => b.cosmetics(),
            CategoryKind::Garden => b.garden("Garden"),
            CategoryKind::Shoes => b.shoes(),
            CategoryKind::LadiesBags => b.ladies_bags(),
            CategoryKind::DigitalCameras => b.digital_cameras(),
            CategoryKind::VacuumCleaner => b.vacuum_cleaner(),
            CategoryKind::Watches => b.watches(),
            CategoryKind::Rings => b.rings(),
            CategoryKind::Wine => b.wine(),
            CategoryKind::Furniture => b.furniture(),
            CategoryKind::MailboxDe => b.mailbox_de(),
            CategoryKind::CoffeeMachinesDe => b.coffee_machines_de(),
            CategoryKind::GardenDe => b.garden("Garden (DE)"),
            CategoryKind::BabyCarriers => b.baby_carriers(),
            CategoryKind::BabyGoods => b.baby_goods(),
        };
        (schema, factory.into_lexicon())
    }
}

fn hash_kind(kind: CategoryKind) -> u64 {
    // Stable per-kind perturbation of the user seed.
    (CategoryKind::ALL
        .iter()
        .position(|&k| k == kind)
        .expect("kind in ALL") as u64)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Overrides the quantization step of a numeric attribute.
fn set_step(attr: &mut AttributeSpec, step: i64) {
    if let ValueGen::Numeric { step: s, .. } = &mut attr.values {
        *s = step;
    }
}

/// Units shared by all categories (ASCII, language neutral).
fn register_units(f: &mut WordFactory) {
    for u in ["kg", "g", "cm", "mm", "ml", "w", "px", "s", "l", "bar"] {
        f.register(u, PosTag::Unit);
    }
}

/// Internal builder holding the RNG and word factory.
struct Builder<'a> {
    rng: &'a mut StdRng,
    f: &'a mut WordFactory,
}

impl Builder<'_> {
    /// Fresh categorical pool: `n` canonical values, each with 1–3
    /// surface variants; ~30% of values are two words long (multiword
    /// values are a paper focus).
    fn pool(&mut self, n: usize, tag: PosTag) -> Vec<CategoricalValue> {
        let lang = self.f.language();
        (0..n)
            .map(|_| {
                let n_variants = 1 + self.rng.random_range(0..3);
                let variants: Vec<String> = (0..n_variants)
                    .map(|_| {
                        if self.rng.random_range(0.0..1.0) < 0.3 {
                            let w1 = self.f.fresh(self.rng, 2, tag);
                            let w2 = self.f.fresh(self.rng, 2, tag);
                            lang.join(&[&w1, &w2])
                        } else {
                            let syllables = 2 + self.rng.random_range(0..2);
                            self.f.fresh(self.rng, syllables, tag)
                        }
                    })
                    .collect();
                CategoricalValue {
                    canonical: variants[0].clone(),
                    variants,
                }
            })
            .collect()
    }

    /// `n` fresh alias names for one attribute.
    fn aliases(&mut self, n: usize) -> Vec<String> {
        self.f.fresh_many(self.rng, n, 3, PosTag::Noun)
    }

    /// Implicit-mention context vocabulary for one attribute.
    fn context(&mut self) -> Vec<String> {
        self.f.fresh_many(self.rng, 3, 2, PosTag::Verb)
    }

    fn cat_attr(&mut self, canonical: &str, n_aliases: usize, n_values: usize) -> AttributeSpec {
        let aliases = self.aliases(n_aliases);
        let pool = self.pool(n_values, PosTag::Noun);
        let ctx = self.context();
        AttributeSpec::new(canonical, aliases, ValueGen::Categorical { pool }).with_context(ctx)
    }

    fn color_attr(&mut self) -> AttributeSpec {
        let aliases = self.aliases(2);
        let pool = self.pool(10, PosTag::Adj);
        let ctx = self.context();
        AttributeSpec::new("color", aliases, ValueGen::Categorical { pool }).with_context(ctx)
    }

    fn brand_attr(&mut self) -> AttributeSpec {
        let aliases = self.aliases(2);
        let pool = self.pool(12, PosTag::PropNoun);
        let ctx = self.context();
        AttributeSpec::new("brand", aliases, ValueGen::Categorical { pool }).with_context(ctx)
    }

    #[allow(clippy::too_many_arguments)]
    fn num_attr(
        &mut self,
        canonical: &str,
        n_aliases: usize,
        lo: i64,
        hi: i64,
        unit: &str,
        decimal_prob: f64,
        thousands: bool,
    ) -> AttributeSpec {
        let aliases = self.aliases(n_aliases);
        let ctx = self.context();
        AttributeSpec::new(
            canonical,
            aliases,
            ValueGen::Numeric {
                lo,
                hi,
                step: 1,
                unit: unit.into(),
                decimal_prob,
                thousands,
            },
        )
        .with_context(ctx)
    }

    /// Common scaffolding shared by every category.
    fn base(&mut self, name: &str, attributes: Vec<AttributeSpec>) -> CategorySchema {
        CategorySchema {
            name: name.to_owned(),
            language: self.f.language(),
            attributes,
            head_nouns: self.f.fresh_many(self.rng, 2, 3, PosTag::Noun),
            filler: self.f.fresh_many(self.rng, 24, 3, PosTag::Noun),
            connectives: self.f.fresh_many(self.rng, 6, 2, PosTag::Particle),
            table_page_prob: 0.3,
            table_noise_prob: 0.06,
            table_value_noise: 0.04,
            misleading_prob: 0.10,
            secondary_product_prob: 0.08,
            negation_prob: 0.03,
        }
    }

    fn tennis(&mut self) -> CategorySchema {
        let attrs = vec![
            self.brand_attr(),
            self.color_attr(),
            self.cat_attr("type", 2, 6),
            self.cat_attr("material", 2, 8),
            self.num_attr("gauge", 1, 1, 2, "mm", 0.6, false),
            self.num_attr("length", 1, 60, 70, "cm", 0.2, false),
        ];
        let mut s = self.base("Tennis", attrs);
        s.table_page_prob = 0.3;
        s.table_noise_prob = 0.02;
        s
    }

    fn kitchen(&mut self) -> CategorySchema {
        let attrs = vec![
            self.brand_attr(),
            self.color_attr(),
            self.cat_attr("material", 3, 9),
            self.cat_attr("origin", 2, 7),
            self.num_attr("capacity", 2, 1, 5, "l", 0.5, false),
            self.num_attr("diameter", 1, 10, 30, "cm", 0.3, false),
        ];
        let mut s = self.base("Kitchen", attrs);
        s.table_page_prob = 0.24;
        s.table_noise_prob = 0.07;
        s
    }

    fn cosmetics(&mut self) -> CategorySchema {
        let attrs = vec![
            self.brand_attr(),
            self.cat_attr("skin_type", 2, 5),
            self.cat_attr("origin", 2, 6),
            {
                let mut a = self.num_attr("volume", 2, 10, 500, "ml", 0.1, false);
                set_step(&mut a, 10);
                a
            },
            {
                let mut a = self.num_attr("spf", 1, 10, 50, "", 0.0, false);
                set_step(&mut a, 5);
                a
            },
        ];
        let mut s = self.base("Cosmetics", attrs);
        s.table_page_prob = 0.4;
        s.table_noise_prob = 0.07;
        s
    }

    /// Garden: table-poor and noisy, with the weight vs maximum
    /// shipping weight confusable from the paper's error analysis.
    fn garden(&mut self, name: &str) -> CategorySchema {
        let attrs = vec![
            self.brand_attr(),
            self.color_attr(),
            self.cat_attr("material", 2, 8),
            self.num_attr("weight", 2, 1, 40, "kg", 0.25, false),
            {
                let mut a = self.num_attr("max_shipping_weight", 1, 20, 60, "kg", 0.1, false);
                set_step(&mut a, 5);
                a
            },
            {
                let mut a = self.num_attr("width", 1, 20, 200, "cm", 0.2, false);
                set_step(&mut a, 5);
                a
            },
        ];
        let mut s = self.base(name, attrs);
        s.table_page_prob = 0.08;
        s.table_noise_prob = 0.16;
        s.table_value_noise = 0.07;
        s.misleading_prob = 0.20;
        s.secondary_product_prob = 0.15;
        s
    }

    fn shoes(&mut self) -> CategorySchema {
        let attrs = vec![
            self.brand_attr(),
            self.color_attr(),
            self.cat_attr("material", 2, 8),
            self.num_attr("size", 2, 22, 29, "cm", 0.6, false),
            self.num_attr("heel_height", 1, 1, 12, "cm", 0.4, false),
        ];
        let mut s = self.base("Shoes", attrs);
        s.table_page_prob = 0.12;
        s.table_noise_prob = 0.08;
        s
    }

    fn ladies_bags(&mut self) -> CategorySchema {
        let attrs = vec![
            self.brand_attr(),
            self.color_attr(),
            self.cat_attr("material", 3, 10),
            self.cat_attr("closure", 2, 5),
            self.num_attr("width", 1, 20, 50, "cm", 0.3, false),
            self.num_attr("depth", 1, 5, 20, "cm", 0.3, false),
        ];
        let mut s = self.base("Ladies Bags", attrs);
        s.table_page_prob = 0.42;
        s.table_noise_prob = 0.02;
        s.table_value_noise = 0.015;
        s.misleading_prob = 0.05;
        s
    }

    /// Digital cameras: the paper's complex-attribute category — pixel
    /// counts with thousands separators, total vs effective pixels,
    /// optical vs digital zoom, shutter-speed ranges.
    fn digital_cameras(&mut self) -> CategorySchema {
        let shutter = {
            let aliases = self.aliases(1);
            AttributeSpec::new(
                "shutter_speed",
                aliases,
                ValueGen::Range {
                    denominators: vec![1000, 1600, 2000, 4000, 6000, 8000],
                    slow: vec![15, 30, 60],
                    unit: "s".into(),
                },
            )
            .with_probs(0.5, 0.3, 0.05)
        };
        // The confusable pairs share units and shapes but only overlap
        // partially in range (as in reality: total >= effective pixels),
        // so name aggregation can keep them apart while the tagger can
        // still mix them up — the paper's second error source.
        let mut eff = self.num_attr("effective_pixels", 1, 1000, 6000, "px", 0.0, true);
        set_step(&mut eff, 100);
        let mut tot = self.num_attr("total_pixels", 1, 4000, 12000, "px", 0.0, true);
        set_step(&mut tot, 100);
        let mut weight = self.num_attr("weight", 2, 100, 900, "g", 0.1, false);
        set_step(&mut weight, 25);
        let mut opt = self.num_attr("optical_zoom", 1, 2, 20, "", 0.1, false);
        set_step(&mut opt, 2);
        let mut dig = self.num_attr("digital_zoom", 1, 4, 40, "", 0.1, false);
        set_step(&mut dig, 2);
        let attrs = vec![self.brand_attr(), eff, tot, opt, dig, weight, shutter];
        let mut s = self.base("Digital Cameras", attrs);
        s.table_page_prob = 0.22;
        s.table_noise_prob = 0.01;
        s.table_value_noise = 0.01;
        s.misleading_prob = 0.04;
        s
    }

    /// Vacuum cleaner: the value-diversification showcase — weights are
    /// heavily integer-biased in tables while decimals exist in text.
    fn vacuum_cleaner(&mut self) -> CategorySchema {
        let attrs = vec![
            self.brand_attr(),
            self.cat_attr("type", 2, 5),
            self.cat_attr("container_type", 2, 4),
            self.cat_attr("power_supply", 2, 4),
            self.num_attr("weight", 2, 1, 9, "kg", 0.3, false),
            {
                let mut a = self.num_attr("suction", 1, 100, 600, "w", 0.0, false);
                set_step(&mut a, 50);
                a
            },
        ];
        let mut s = self.base("Vacuum Cleaner", attrs);
        s.table_page_prob = 0.35;
        s.table_noise_prob = 0.05;
        s
    }

    fn watches(&mut self) -> CategorySchema {
        let attrs = vec![
            self.brand_attr(),
            self.color_attr(),
            self.cat_attr("band_material", 2, 7),
            self.num_attr("case_diameter", 1, 28, 46, "mm", 0.4, false),
        ];
        let mut s = self.base("Watches", attrs);
        s.table_page_prob = 0.3;
        s
    }

    /// Rings: length vs width confusable (mentioned in §VIII).
    fn rings(&mut self) -> CategorySchema {
        let attrs = vec![
            self.brand_attr(),
            self.cat_attr("material", 2, 6),
            self.num_attr("length", 1, 1, 20, "mm", 0.4, false),
            self.num_attr("width", 1, 10, 30, "mm", 0.4, false),
        ];
        let mut s = self.base("Rings", attrs);
        s.table_page_prob = 0.28;
        s
    }

    fn wine(&mut self) -> CategorySchema {
        let attrs = vec![
            self.cat_attr("winery", 2, 10),
            self.cat_attr("grape", 2, 8),
            self.cat_attr("region", 2, 8),
            {
                let mut a = self.num_attr("volume", 1, 375, 1500, "ml", 0.0, false);
                set_step(&mut a, 375);
                a
            },
            self.num_attr("vintage", 1, 1990, 2018, "", 0.0, false),
        ];
        let mut s = self.base("Wine", attrs);
        s.table_page_prob = 0.35;
        s
    }

    fn furniture(&mut self) -> CategorySchema {
        let attrs = vec![
            self.brand_attr(),
            self.color_attr(),
            self.cat_attr("material", 2, 9),
            {
                let mut a = self.num_attr("width", 1, 30, 240, "cm", 0.2, false);
                set_step(&mut a, 10);
                a
            },
            {
                let mut a = self.num_attr("height", 1, 30, 240, "cm", 0.2, false);
                set_step(&mut a, 10);
                a
            },
            {
                let mut a = self.num_attr("weight", 1, 2, 80, "kg", 0.25, false);
                set_step(&mut a, 2);
                a
            },
        ];
        let mut s = self.base("Furniture", attrs);
        s.table_page_prob = 0.2;
        s
    }

    fn mailbox_de(&mut self) -> CategorySchema {
        let attrs = vec![
            self.brand_attr(),
            self.color_attr(),
            self.cat_attr("material", 2, 7),
            self.cat_attr("lock_type", 2, 4),
            self.num_attr("height", 1, 20, 60, "cm", 0.3, false),
        ];
        let mut s = self.base("Mailbox (DE)", attrs);
        s.table_page_prob = 0.35;
        s
    }

    fn coffee_machines_de(&mut self) -> CategorySchema {
        let attrs = vec![
            self.brand_attr(),
            self.color_attr(),
            self.num_attr("pressure", 1, 9, 19, "bar", 0.1, false),
            self.num_attr("capacity", 2, 1, 3, "l", 0.7, false),
            {
                let mut a = self.num_attr("power", 1, 800, 1800, "w", 0.0, false);
                set_step(&mut a, 100);
                a
            },
        ];
        let mut s = self.base("Coffee Machines (DE)", attrs);
        s.table_page_prob = 0.3;
        s
    }

    fn baby_carriers(&mut self) -> CategorySchema {
        let attrs = vec![
            self.brand_attr(),
            self.color_attr(),
            self.cat_attr("carry_style", 2, 4),
            self.num_attr("max_load", 1, 9, 20, "kg", 0.3, false),
        ];
        let mut s = self.base("Baby Carriers", attrs);
        s.table_page_prob = 0.3;
        s
    }

    /// Baby Goods: a heterogeneous union — three sub-type clusters with
    /// overlapping value vocabularies, which is exactly what degrades
    /// precision in the paper's §VIII-E.
    fn baby_goods(&mut self) -> CategorySchema {
        // A value pool shared verbatim between two semantically
        // different attributes of different clusters.
        let shared_pool = self.pool(8, PosTag::Noun);
        let carrier_material = {
            let aliases = self.aliases(2);
            AttributeSpec::new(
                "carrier_material",
                aliases,
                ValueGen::Categorical {
                    pool: shared_pool.clone(),
                },
            )
            .in_cluster(0)
        };
        let clothes_fabric = {
            let aliases = self.aliases(2);
            AttributeSpec::new(
                "clothes_fabric",
                aliases,
                ValueGen::Categorical { pool: shared_pool },
            )
            .in_cluster(1)
        };
        let attrs = vec![
            // Cluster 0: carriers.
            self.brand_attr().in_cluster(0),
            carrier_material,
            self.num_attr("max_load", 1, 9, 20, "kg", 0.3, false)
                .in_cluster(0),
            // Cluster 1: clothes.
            self.color_attr().in_cluster(1),
            clothes_fabric,
            self.num_attr("size", 1, 50, 95, "cm", 0.1, false)
                .in_cluster(1),
            // Cluster 2: toys.
            self.cat_attr("toy_type", 2, 6).in_cluster(2),
            self.num_attr("age", 1, 0, 6, "", 0.0, false).in_cluster(2),
            self.num_attr("weight", 1, 1, 5, "kg", 0.4, false)
                .in_cluster(2),
        ];
        let mut s = self.base("Baby Goods", attrs);
        s.table_page_prob = 0.3;
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_kind_builds() {
        for kind in CategoryKind::ALL {
            let (schema, lexicon) = kind.build(7);
            assert!(!schema.attributes.is_empty(), "{kind:?}");
            assert!(!lexicon.is_empty(), "{kind:?}");
            assert_eq!(schema.language, kind.language());
            for attr in &schema.attributes {
                assert!(!attr.aliases.is_empty(), "{kind:?}/{}", attr.canonical);
            }
        }
    }

    #[test]
    fn builds_are_deterministic() {
        let (a, _) = CategoryKind::VacuumCleaner.build(42);
        let (b, _) = CategoryKind::VacuumCleaner.build(42);
        assert_eq!(a.attributes.len(), b.attributes.len());
        assert_eq!(a.attributes[0].aliases, b.attributes[0].aliases);
        assert_eq!(a.head_nouns, b.head_nouns);
    }

    #[test]
    fn different_seeds_differ() {
        let (a, _) = CategoryKind::Tennis.build(1);
        let (b, _) = CategoryKind::Tennis.build(2);
        assert_ne!(a.attributes[0].aliases, b.attributes[0].aliases);
    }

    #[test]
    fn german_categories_are_space_delimited() {
        for kind in CategoryKind::GERMAN_CATEGORIES {
            assert_eq!(kind.language(), Language::SpaceDelim);
        }
        assert_eq!(CategoryKind::Tennis.language(), Language::Agglut);
    }

    #[test]
    fn baby_goods_is_clustered_and_shares_values() {
        let (s, _) = CategoryKind::BabyGoods.build(3);
        assert!(s.attributes.iter().all(|a| a.cluster.is_some()));
        let mat = s.attribute("carrier_material").unwrap();
        let fab = s.attribute("clothes_fabric").unwrap();
        assert_eq!(
            mat.values.enumerable().unwrap(),
            fab.values.enumerable().unwrap(),
            "clusters must share a value pool to create confusion"
        );
        assert_ne!(mat.cluster, fab.cluster);
    }

    #[test]
    fn baby_carriers_is_homogeneous() {
        let (s, _) = CategoryKind::BabyCarriers.build(3);
        assert!(s.attributes.iter().all(|a| a.cluster.is_none()));
    }

    #[test]
    fn numeric_steps_quantize_values() {
        use crate::values::ValueGen;
        let (s, _) = CategoryKind::DigitalCameras.build(5);
        let eff = s.attribute("effective_pixels").unwrap();
        let ValueGen::Numeric { step, lo, hi, .. } = &eff.values else {
            panic!("effective_pixels should be numeric");
        };
        assert_eq!(*step, 100);
        assert!(*lo < *hi);
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        for _ in 0..40 {
            let v = eff.values.draw(&mut rng);
            let digits: String = v.canonical.chars().filter(|c| c.is_ascii_digit()).collect();
            let n: i64 = digits.parse().unwrap();
            assert_eq!(n % 100, 0, "{}", v.canonical);
        }
    }

    #[test]
    fn confusable_pairs_overlap_but_differ_in_range() {
        use crate::values::ValueGen;
        let (s, _) = CategoryKind::DigitalCameras.build(5);
        let get = |name: &str| {
            let ValueGen::Numeric { lo, hi, .. } = s.attribute(name).unwrap().values else {
                panic!("{name} should be numeric");
            };
            (lo, hi)
        };
        let (elo, ehi) = get("effective_pixels");
        let (tlo, thi) = get("total_pixels");
        assert!(tlo > elo && thi > ehi, "total should sit above effective");
        assert!(tlo < ehi, "ranges must overlap to stay confusable");
    }

    #[test]
    fn attributes_carry_context_words() {
        let (s, lexicon) = CategoryKind::VacuumCleaner.build(5);
        for attr in &s.attributes {
            assert!(
                !attr.context_words.is_empty(),
                "{} lacks context words",
                attr.canonical
            );
            for w in &attr.context_words {
                assert!(lexicon.contains(w), "{w} not in lexicon");
            }
        }
    }

    #[test]
    fn camera_has_confusable_pixel_attributes() {
        let (s, _) = CategoryKind::DigitalCameras.build(5);
        assert!(s.attribute("effective_pixels").is_some());
        assert!(s.attribute("total_pixels").is_some());
        assert!(s.attribute("shutter_speed").is_some());
    }

    #[test]
    fn garden_is_table_poor_vs_ladies_bags() {
        let (g, _) = CategoryKind::Garden.build(1);
        let (l, _) = CategoryKind::LadiesBags.build(1);
        assert!(g.table_page_prob < l.table_page_prob);
        assert!(g.table_noise_prob > l.table_noise_prob);
    }
}
