#![warn(missing_docs)]

//! Synthetic e-commerce corpus generator with exact ground truth.
//!
//! The paper evaluates on proprietary Rakuten product pages in Japanese
//! and German. This crate substitutes a deterministic generator that
//! reproduces the *phenomena* the paper's pipeline and error analysis
//! depend on:
//!
//! * merchant **attribute-name aliasing** (製造元 vs メーカー analogue);
//! * **value variants** (several surface forms per canonical value);
//! * HTML **dictionary spec tables** (the seed source) on a per-category
//!   fraction of pages, plus titles and free-form descriptions;
//! * **numeric shape skew** (integer-biased weights whose decimal forms
//!   are missing from the seed — the diversification module's target);
//! * **confusable attribute pairs** (total vs effective pixels, weight
//!   vs maximum shipping weight, …);
//! * **secondary-product mentions** and **negations** (the paper's
//!   first error source);
//! * markup noise, junk table rows, and junk queries;
//! * two synthetic **languages**: an unsegmented one (Japanese-like,
//!   requiring dictionary tokenization) and a space-delimited one
//!   (German-like);
//! * a **heterogeneous category** (Baby Goods ⊃ Baby Carriers) for the
//!   paper's §VIII-E study.
//!
//! Every generated dataset carries its [`truth::GroundTruth`]: the
//! exact set of correct `<product, attribute, value>` triples, which
//! substitutes the paper's 235k-triple human-annotated truth sample.

pub mod categories;
pub mod dataset;
pub mod language;
pub mod merchant;
pub mod page;
pub mod querylog;
pub mod schema;
pub mod truth;
pub mod values;

pub use categories::CategoryKind;
pub use dataset::{Dataset, DatasetSpec, ProductPage};
pub use language::Language;
pub use schema::{AttributeSpec, CategorySchema};
pub use truth::GroundTruth;
