//! Value generators: categorical pools with variants, numeric shapes,
//! and range shapes.

use rand::rngs::StdRng;
use rand::RngExt;

/// One canonical categorical value with its surface variants.
///
/// Merchants write the same entity several ways (the paper's black vs
/// schwarz, 製造元 vs メーカー); `variants[0]` is the preferred form
/// used in spec tables, the rest appear in free text.
#[derive(Debug, Clone)]
pub struct CategoricalValue {
    /// Stable canonical key (equals `variants[0]`).
    pub canonical: String,
    /// All surface forms, preferred first.
    pub variants: Vec<String>,
}

/// How an attribute's values are produced.
#[derive(Debug, Clone)]
pub enum ValueGen {
    /// Closed set of named values.
    Categorical {
        /// The value pool.
        pool: Vec<CategoricalValue>,
    },
    /// `number + unit` (weights, lengths, volumes, pixel counts).
    Numeric {
        /// Inclusive integer range for the whole part.
        lo: i64,
        /// Inclusive upper bound.
        hi: i64,
        /// Quantization step: drawn values are multiples of `step`
        /// within the range (pixel counts come in round numbers).
        step: i64,
        /// Unit token appended to the number (`kg`, `cm`, …).
        unit: String,
        /// Probability a rendered value has one decimal place.
        decimal_prob: f64,
        /// Render the whole part with a thousands separator (pixel
        /// counts: `24,000`).
        thousands: bool,
    },
    /// `low~high unit` ranges (shutter speed: `1/4000s~30s` analogue).
    Range {
        /// Denominator pool for the fast bound (`1/4000`).
        denominators: Vec<i64>,
        /// Slow-bound pool (seconds).
        slow: Vec<i64>,
        /// Unit token.
        unit: String,
    },
}

/// A concrete value drawn for one product: canonical key plus the
/// surface forms it may be rendered with.
#[derive(Debug, Clone)]
pub struct DrawnValue {
    /// Canonical key for truth bookkeeping.
    pub canonical: String,
    /// Surface forms (preferred first); every one is a correct surface
    /// for this product.
    pub surfaces: Vec<String>,
}

impl ValueGen {
    /// Draws a value for one product.
    pub fn draw(&self, rng: &mut StdRng) -> DrawnValue {
        match self {
            ValueGen::Categorical { pool } => {
                let v = &pool[rng.random_range(0..pool.len())];
                DrawnValue {
                    canonical: v.canonical.clone(),
                    surfaces: v.variants.clone(),
                }
            }
            ValueGen::Numeric {
                lo,
                hi,
                step,
                unit,
                decimal_prob,
                thousands,
            } => {
                let step = (*step).max(1);
                let n_steps = (*hi - *lo) / step;
                let whole = *lo + step * rng.random_range(0..=n_steps);
                let decimal = rng.random_range(0.0..1.0) < *decimal_prob;
                let number = if decimal {
                    let frac = rng.random_range(1..10);
                    format!("{}.{}", render_whole(whole, *thousands), frac)
                } else {
                    render_whole(whole, *thousands)
                };
                let surface = format!("{number}{unit}");
                DrawnValue {
                    canonical: surface.clone(),
                    surfaces: vec![surface],
                }
            }
            ValueGen::Range {
                denominators,
                slow,
                unit,
            } => {
                let d = denominators[rng.random_range(0..denominators.len())];
                let s = slow[rng.random_range(0..slow.len())];
                let surface = format!("1/{d}{unit}~{s}{unit}");
                DrawnValue {
                    canonical: surface.clone(),
                    surfaces: vec![surface],
                }
            }
        }
    }

    /// All canonical values this generator can emit, when enumerable
    /// (categorical pools); numeric/range generators return `None`.
    pub fn enumerable(&self) -> Option<Vec<String>> {
        match self {
            ValueGen::Categorical { pool } => {
                Some(pool.iter().map(|v| v.canonical.clone()).collect())
            }
            _ => None,
        }
    }
}

fn render_whole(whole: i64, thousands: bool) -> String {
    if !thousands {
        return whole.to_string();
    }
    let digits = whole.abs().to_string();
    let mut out = String::new();
    let offset = digits.len() % 3;
    for (i, c) in digits.chars().enumerate() {
        if i != 0 && (i + 3 - offset).is_multiple_of(3) {
            out.push(',');
        }
        out.push(c);
    }
    if whole < 0 {
        format!("-{out}")
    } else {
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn thousands_rendering() {
        assert_eq!(render_whole(5, true), "5");
        assert_eq!(render_whole(500, true), "500");
        assert_eq!(render_whole(5000, true), "5,000");
        assert_eq!(render_whole(2430000, true), "2,430,000");
        assert_eq!(render_whole(5000, false), "5000");
    }

    #[test]
    fn numeric_draws_respect_range_and_unit() {
        let g = ValueGen::Numeric {
            lo: 2,
            hi: 9,
            step: 1,
            unit: "kg".into(),
            decimal_prob: 0.0,
            thousands: false,
        };
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..50 {
            let v = g.draw(&mut rng);
            assert!(v.canonical.ends_with("kg"));
            let n: i64 = v.canonical.trim_end_matches("kg").parse().unwrap();
            assert!((2..=9).contains(&n));
        }
    }

    #[test]
    fn decimal_probability_controls_shape() {
        let g = |p: f64| ValueGen::Numeric {
            lo: 1,
            hi: 30,
            step: 1,
            unit: "kg".into(),
            decimal_prob: p,
            thousands: false,
        };
        let mut rng = StdRng::seed_from_u64(4);
        let count_decimals = |g: &ValueGen, rng: &mut StdRng| {
            (0..200)
                .filter(|_| g.draw(rng).canonical.contains('.'))
                .count()
        };
        assert_eq!(count_decimals(&g(0.0), &mut rng), 0);
        let many = count_decimals(&g(0.9), &mut rng);
        assert!(many > 120, "expected mostly decimals, got {many}");
    }

    #[test]
    fn range_shape() {
        let g = ValueGen::Range {
            denominators: vec![4000, 6000],
            slow: vec![30],
            unit: "s".into(),
        };
        let mut rng = StdRng::seed_from_u64(5);
        let v = g.draw(&mut rng);
        assert!(v.canonical.starts_with("1/"));
        assert!(v.canonical.contains("~30s"), "{}", v.canonical);
    }

    #[test]
    fn categorical_draw_carries_all_variants() {
        let g = ValueGen::Categorical {
            pool: vec![CategoricalValue {
                canonical: "aka".into(),
                variants: vec!["aka".into(), "akairo".into()],
            }],
        };
        let mut rng = StdRng::seed_from_u64(6);
        let v = g.draw(&mut rng);
        assert_eq!(v.canonical, "aka");
        assert_eq!(v.surfaces.len(), 2);
        assert_eq!(g.enumerable().unwrap(), vec!["aka".to_owned()]);
    }
}
