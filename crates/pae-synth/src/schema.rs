//! Category schemas: the attribute inventory one category's products
//! are generated from.

use crate::language::Language;
use crate::values::ValueGen;

/// One attribute of a category.
#[derive(Debug, Clone)]
pub struct AttributeSpec {
    /// Canonical attribute key used in the ground truth (English-ish
    /// mnemonic: `color`, `weight`, `effective_pixels`, …).
    pub canonical: String,
    /// Surface attribute names merchants write, preferred first
    /// (attribute-name aliasing; always non-empty).
    pub aliases: Vec<String>,
    /// Value generator.
    pub values: ValueGen,
    /// Probability the attribute appears in a product's spec table
    /// (given the page has a table at all).
    pub table_prob: f64,
    /// Probability the attribute is mentioned in the free-text
    /// description with an explicit `name: value` pattern.
    pub text_prob: f64,
    /// Probability of an *implicit* mention (value without the
    /// attribute name, e.g. "this bag comes in <color>").
    pub implicit_prob: f64,
    /// Sub-type cluster for heterogeneous categories (§VIII-E): a
    /// product only carries attributes of its own cluster. `None` means
    /// the attribute applies to every product (homogeneous categories).
    pub cluster: Option<usize>,
    /// Attribute-specific context words used in *implicit* mentions
    /// ("this bag :washes-easily: <material>") — real text reveals the
    /// attribute through its surroundings even when the name is absent.
    /// Empty = fall back to the category's generic connectives.
    pub context_words: Vec<String>,
}

impl AttributeSpec {
    /// Convenience constructor with the common probabilities.
    pub fn new(canonical: impl Into<String>, aliases: Vec<String>, values: ValueGen) -> Self {
        AttributeSpec {
            canonical: canonical.into(),
            aliases,
            values,
            table_prob: 0.8,
            text_prob: 0.45,
            implicit_prob: 0.12,
            cluster: None,
            context_words: Vec::new(),
        }
    }

    /// Assigns the attribute to a sub-type cluster (heterogeneous
    /// categories only).
    pub fn in_cluster(mut self, cluster: usize) -> Self {
        self.cluster = Some(cluster);
        self
    }

    /// Sets the implicit-mention context vocabulary.
    pub fn with_context(mut self, words: Vec<String>) -> Self {
        self.context_words = words;
        self
    }

    /// Overrides the appearance probabilities.
    pub fn with_probs(mut self, table: f64, text: f64, implicit: f64) -> Self {
        self.table_prob = table;
        self.text_prob = text;
        self.implicit_prob = implicit;
        self
    }
}

/// A complete category description: everything the page generator
/// needs to render products, and the truth builder needs to score them.
#[derive(Debug, Clone)]
pub struct CategorySchema {
    /// Human-readable category name (`Digital Cameras`).
    pub name: String,
    /// Language of the category's corpus.
    pub language: Language,
    /// Attribute inventory.
    pub attributes: Vec<AttributeSpec>,
    /// The category's head noun(s) used in titles (`camera`).
    pub head_nouns: Vec<String>,
    /// Filler vocabulary for descriptions (non-value words).
    pub filler: Vec<String>,
    /// Connective/template words: (prefix-ish, verb-ish, closer-ish).
    pub connectives: Vec<String>,
    /// Fraction of products whose page carries a dictionary spec table
    /// (drives seed coverage: Garden ≈ low, Ladies Bags ≈ high).
    pub table_page_prob: f64,
    /// Probability that a spec-table row is junk (markup fragments,
    /// shipping notes) — drives seed precision.
    pub table_noise_prob: f64,
    /// Probability that a spec-table row carries a *wrong* value
    /// (merchant copy-paste mistakes) — the seed's residual error.
    pub table_value_noise: f64,
    /// Probability of a misleading explicit pattern in the text
    /// (`alias : <non-value>`, e.g. "color: see below") — the pattern
    /// the tagger over-generalizes on and cleaning must catch.
    pub misleading_prob: f64,
    /// Probability a description mentions a *secondary* product with
    /// its own attribute values (the paper's first error source).
    pub secondary_product_prob: f64,
    /// Probability of a negated mention ("does not include …").
    pub negation_prob: f64,
}

impl CategorySchema {
    /// Looks up an attribute by canonical key.
    pub fn attribute(&self, canonical: &str) -> Option<&AttributeSpec> {
        self.attributes.iter().find(|a| a.canonical == canonical)
    }

    /// All canonical attribute keys.
    pub fn attribute_keys(&self) -> Vec<&str> {
        self.attributes
            .iter()
            .map(|a| a.canonical.as_str())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::values::{CategoricalValue, ValueGen};

    fn toy_schema() -> CategorySchema {
        CategorySchema {
            name: "Toy".into(),
            language: Language::SpaceDelim,
            attributes: vec![AttributeSpec::new(
                "color",
                vec!["farbe".into()],
                ValueGen::Categorical {
                    pool: vec![CategoricalValue {
                        canonical: "rot".into(),
                        variants: vec!["rot".into()],
                    }],
                },
            )],
            head_nouns: vec!["tasche".into()],
            filler: vec!["schoen".into()],
            connectives: vec!["ist".into()],
            table_page_prob: 0.5,
            table_noise_prob: 0.05,
            table_value_noise: 0.04,
            misleading_prob: 0.1,
            secondary_product_prob: 0.1,
            negation_prob: 0.05,
        }
    }

    #[test]
    fn attribute_lookup() {
        let s = toy_schema();
        assert!(s.attribute("color").is_some());
        assert!(s.attribute("weight").is_none());
        assert_eq!(s.attribute_keys(), vec!["color"]);
    }

    #[test]
    fn with_probs_overrides() {
        let a = toy_schema().attributes[0].clone().with_probs(0.1, 0.2, 0.3);
        assert_eq!(a.table_prob, 0.1);
        assert_eq!(a.text_prob, 0.2);
        assert_eq!(a.implicit_prob, 0.3);
    }
}
