//! Search-query-log generation.
//!
//! The pipeline's value-cleaning step keeps a seed value only when it
//! appears in user queries or is very frequent on pages. The generated
//! log therefore contains queries for the *popular* values (weighted by
//! how many products carry them) plus junk — so that rare-but-real
//! value shapes (e.g. decimal weights) are dropped by cleaning and must
//! be recovered by the diversification module, as in the paper.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::RngExt;

use crate::page::ProductRecord;
use crate::schema::CategorySchema;

/// Builds the query log from the drawn products.
pub fn build_query_log(
    schema: &CategorySchema,
    products: &[ProductRecord],
    rng: &mut StdRng,
) -> Vec<String> {
    // Count how many products carry each value surface.
    let mut freq: HashMap<&str, usize> = HashMap::new();
    for p in products {
        for (_, v) in &p.values {
            for s in &v.surfaces {
                *freq.entry(s.as_str()).or_insert(0) += 1;
            }
        }
    }

    // HashMap iteration order is seeded per instance; sort for
    // reproducibility.
    let mut entries: Vec<(&str, usize)> = freq.into_iter().collect();
    entries.sort_unstable();

    let mut queries = Vec::new();
    for (surface, count) in entries {
        if count < 2 {
            continue; // users do not search one-off values
        }
        // Roughly one query per two carrying products, capped.
        let n = (count / 2).clamp(1, 12);
        for _ in 0..n {
            if rng.random_range(0.0..1.0) < 0.25 {
                // Query with category context.
                let noun = &schema.head_nouns[rng.random_range(0..schema.head_nouns.len())];
                queries.push(schema.language.join(&[surface, noun]));
            } else {
                queries.push(surface.to_owned());
            }
        }
    }

    // Junk queries (misspellings, unrelated words).
    let n_junk = (queries.len() / 8).max(3);
    for _ in 0..n_junk {
        let w = &schema.filler[rng.random_range(0..schema.filler.len())];
        queries.push(w.clone());
    }

    shuffle(&mut queries, rng);
    queries
}

fn shuffle(xs: &mut [String], rng: &mut StdRng) {
    for i in (1..xs.len()).rev() {
        let j = rng.random_range(0..=i);
        xs.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::categories::CategoryKind;
    use crate::page::draw_product;
    use rand::SeedableRng;

    #[test]
    fn popular_values_get_queries_rare_ones_do_not() {
        let (schema, _) = CategoryKind::VacuumCleaner.build(13);
        let mut rng = StdRng::seed_from_u64(31);
        let products: Vec<ProductRecord> = (0..120)
            .map(|id| draw_product(&schema, id, &mut rng))
            .collect();
        let log = build_query_log(&schema, &products, &mut rng);
        assert!(!log.is_empty());

        // Integer weights repeat across products → queried.
        let weight_idx = schema
            .attributes
            .iter()
            .position(|a| a.canonical == "weight")
            .unwrap();
        let mut freq: HashMap<&str, usize> = HashMap::new();
        for p in &products {
            if let Some((_, v)) = p.values.iter().find(|(i, _)| *i == weight_idx) {
                *freq.entry(v.surfaces[0].as_str()).or_insert(0) += 1;
            }
        }
        let popular = freq
            .iter()
            .max_by_key(|(_, c)| **c)
            .map(|(s, _)| s.to_string())
            .unwrap();
        assert!(
            log.iter().any(|q| q.contains(&popular)),
            "popular weight {popular} missing from the query log"
        );

        // One-off (frequency 1) surfaces must not be queried alone.
        let singletons: Vec<&&str> = freq
            .iter()
            .filter(|(_, c)| **c == 1)
            .map(|(s, _)| s)
            .collect();
        for s in singletons {
            assert!(
                !log.iter().any(|q| q == *s),
                "singleton value {s} should not appear as a query"
            );
        }
    }

    #[test]
    fn query_log_is_deterministic() {
        let (schema, _) = CategoryKind::Tennis.build(13);
        let gen = || {
            let mut rng = StdRng::seed_from_u64(8);
            let products: Vec<ProductRecord> = (0..30)
                .map(|id| draw_product(&schema, id, &mut rng))
                .collect();
            build_query_log(&schema, &products, &mut rng)
        };
        assert_eq!(gen(), gen());
    }
}
