//! Ground truth and the paper's three-way triple judgement.

use std::collections::{HashMap, HashSet};

/// Verdict for one system-produced triple, following §VI-C:
///
/// * `Correct` — the triple occurs in the truth;
/// * `MaybeIncorrect` — product and attribute match a correct triple
///   but the value disagrees (counted as incorrect, per the paper);
/// * `Incorrect` — everything else.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Judgement {
    /// Triple is correct.
    Correct,
    /// Product+attribute exist with a different value.
    MaybeIncorrect,
    /// Wrong attribute or wrong value.
    Incorrect,
}

/// Exact ground truth for one generated dataset.
///
/// All value surfaces are stored *normalized* (tokenized and joined
/// with single spaces) — compare with equally normalized system output.
#[derive(Debug, Clone, Default)]
pub struct GroundTruth {
    /// Attribute alias (surface name) → canonical attribute key.
    pub attr_alias: HashMap<String, String>,
    /// Canonical attribute → set of valid normalized value surfaces
    /// (category level, for pair precision).
    pub valid_pairs: HashMap<String, HashSet<String>>,
    /// Product → canonical attribute → correct normalized surfaces.
    pub product_triples: HashMap<u32, HashMap<String, HashSet<String>>>,
    /// All product ids in the dataset (coverage denominators).
    pub product_ids: Vec<u32>,
}

impl GroundTruth {
    /// Canonical attribute for a surface alias, when known.
    pub fn canonical_attr(&self, alias: &str) -> Option<&str> {
        self.attr_alias.get(alias).map(String::as_str)
    }

    /// Is `(attr, value)` a valid association at the category level?
    /// (`attr` may be an alias or a canonical key.)
    pub fn pair_valid(&self, attr: &str, value_norm: &str) -> bool {
        let canonical = self.canonical_attr(attr).unwrap_or(attr);
        self.valid_pairs
            .get(canonical)
            .is_some_and(|vs| vs.contains(value_norm))
    }

    /// Judges one system triple per the paper's scheme.
    pub fn judge(&self, product: u32, attr: &str, value_norm: &str) -> Judgement {
        let canonical = match self.canonical_attr(attr) {
            Some(c) => c.to_owned(),
            None => {
                if self.valid_pairs.contains_key(attr) {
                    attr.to_owned()
                } else {
                    return Judgement::Incorrect;
                }
            }
        };
        let Some(attrs) = self.product_triples.get(&product) else {
            return Judgement::Incorrect;
        };
        match attrs.get(&canonical) {
            Some(values) if values.contains(value_norm) => Judgement::Correct,
            Some(_) => Judgement::MaybeIncorrect,
            None => Judgement::Incorrect,
        }
    }

    /// Number of products in the dataset.
    pub fn n_products(&self) -> usize {
        self.product_ids.len()
    }

    /// Total number of correct `<product, attribute, value-surface>`
    /// triples (counting each distinct surface once).
    pub fn n_truth_triples(&self) -> usize {
        self.product_triples
            .values()
            .flat_map(|m| m.values())
            .map(HashSet::len)
            .sum()
    }

    /// Canonical attributes present in the truth.
    pub fn attributes(&self) -> Vec<&str> {
        let mut keys: Vec<&str> = self.valid_pairs.keys().map(String::as_str).collect();
        keys.sort_unstable();
        keys
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_truth() -> GroundTruth {
        let mut t = GroundTruth::default();
        t.attr_alias.insert("iro".into(), "color".into());
        t.attr_alias.insert("karaa".into(), "color".into());
        t.valid_pairs
            .entry("color".into())
            .or_default()
            .extend(["aka".to_owned(), "ao".to_owned()]);
        let mut p0 = HashMap::new();
        p0.insert(
            "color".to_owned(),
            ["aka".to_owned(), "akairo".to_owned()]
                .into_iter()
                .collect(),
        );
        t.product_triples.insert(0, p0);
        t.product_ids = vec![0, 1];
        t
    }

    #[test]
    fn judge_correct_via_any_alias_and_variant() {
        let t = toy_truth();
        assert_eq!(t.judge(0, "iro", "aka"), Judgement::Correct);
        assert_eq!(t.judge(0, "karaa", "akairo"), Judgement::Correct);
        assert_eq!(t.judge(0, "color", "aka"), Judgement::Correct);
    }

    #[test]
    fn judge_maybe_incorrect_on_value_disagreement() {
        let t = toy_truth();
        assert_eq!(t.judge(0, "iro", "ao"), Judgement::MaybeIncorrect);
    }

    #[test]
    fn judge_incorrect_for_unknown_attr_or_product() {
        let t = toy_truth();
        assert_eq!(t.judge(0, "sonota", "aka"), Judgement::Incorrect);
        assert_eq!(t.judge(1, "iro", "aka"), Judgement::Incorrect);
        assert_eq!(t.judge(9, "iro", "aka"), Judgement::Incorrect);
    }

    #[test]
    fn pair_validity_is_category_level() {
        let t = toy_truth();
        assert!(t.pair_valid("iro", "ao"));
        assert!(!t.pair_valid("iro", "zzz"));
        assert!(!t.pair_valid("zzz", "aka"));
    }

    #[test]
    fn counts() {
        let t = toy_truth();
        assert_eq!(t.n_products(), 2);
        assert_eq!(t.n_truth_triples(), 2);
        assert_eq!(t.attributes(), vec!["color"]);
    }
}
