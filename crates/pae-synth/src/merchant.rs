//! Merchant noise model: how a seller's writing style varies.

use rand::rngs::StdRng;
use rand::RngExt;

/// Style knobs drawn per product page (each page is "written" by a
/// merchant with its own habits).
#[derive(Debug, Clone)]
pub struct MerchantStyle {
    /// Probability of using the preferred (first) alias / variant;
    /// the remainder is uniform over the alternatives.
    pub preferred_prob: f64,
    /// Number of pure-filler sentences in the description.
    pub filler_sentences: usize,
    /// Whether the merchant decorates words with `*markup*` noise.
    pub decorates: bool,
    /// How much of the attribute inventory the merchant writes about
    /// in free text (multiplies the per-attribute mention probs).
    pub verbosity: f64,
}

impl MerchantStyle {
    /// Draws a style.
    pub fn draw(rng: &mut StdRng) -> Self {
        MerchantStyle {
            preferred_prob: 0.55 + rng.random_range(0.0..0.3),
            filler_sentences: 2 + rng.random_range(0..4),
            decorates: rng.random_range(0.0..1.0) < 0.3,
            verbosity: 0.1 + rng.random_range(0.0..0.85),
        }
    }

    /// Picks one of `options` with the preferred-first skew.
    pub fn pick<'a>(&self, options: &'a [String], rng: &mut StdRng) -> &'a str {
        debug_assert!(!options.is_empty());
        if options.len() == 1 || rng.random_range(0.0..1.0) < self.preferred_prob {
            &options[0]
        } else {
            &options[1 + rng.random_range(0..options.len() - 1)]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn pick_prefers_first_option() {
        let mut rng = StdRng::seed_from_u64(2);
        let style = MerchantStyle {
            preferred_prob: 0.8,
            filler_sentences: 2,
            decorates: false,
            verbosity: 1.0,
        };
        let options = vec!["a".to_owned(), "b".to_owned(), "c".to_owned()];
        let mut first = 0;
        for _ in 0..1000 {
            if style.pick(&options, &mut rng) == "a" {
                first += 1;
            }
        }
        assert!(first > 700, "preferred picked {first}/1000");
    }

    #[test]
    fn single_option_always_picked() {
        let mut rng = StdRng::seed_from_u64(3);
        let style = MerchantStyle::draw(&mut rng);
        let options = vec!["only".to_owned()];
        assert_eq!(style.pick(&options, &mut rng), "only");
    }

    #[test]
    fn draw_is_bounded() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..100 {
            let s = MerchantStyle::draw(&mut rng);
            assert!((0.55..=0.85).contains(&s.preferred_prob));
            assert!((2..=5).contains(&s.filler_sentences));
        }
    }
}
