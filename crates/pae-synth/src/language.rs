//! Synthetic languages and word generation.

use std::collections::HashSet;

use rand::rngs::StdRng;
use rand::RngExt;

use pae_text::{LatticeTokenizer, Lexicon, PosTag, Tokenizer, WhitespaceTokenizer};

/// The two synthetic languages of the corpus.
///
/// `Agglut` models the paper's Japanese: words are concatenated with no
/// separators and segmentation needs a dictionary. `SpaceDelim` models
/// the paper's German: whitespace-separated words with compounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Language {
    /// Unsegmented (Japanese-like).
    Agglut,
    /// Space-delimited (German-like).
    SpaceDelim,
}

impl Language {
    /// Joins words into a sentence in this language's convention.
    pub fn join(&self, words: &[&str]) -> String {
        match self {
            Language::Agglut => words.concat(),
            Language::SpaceDelim => words.join(" "),
        }
    }

    /// Sentence terminator.
    pub fn terminator(&self) -> &'static str {
        match self {
            Language::Agglut => "。",
            Language::SpaceDelim => ".",
        }
    }

    /// Builds the tokenizer appropriate for this language.
    pub fn tokenizer(&self, lexicon: &Lexicon) -> Box<dyn Tokenizer> {
        match self {
            Language::Agglut => {
                // Compile the matching automaton on the shared lexicon
                // first so every tokenizer clone reuses it instead of
                // rebuilding its own.
                let _ = lexicon.compiled();
                Box::new(LatticeTokenizer::new(lexicon.clone()))
            }
            Language::SpaceDelim => Box::new(WhitespaceTokenizer::new()),
        }
    }

    fn syllables(&self) -> &'static [&'static str] {
        match self {
            Language::Agglut => &[
                "ka", "ki", "ku", "ke", "ko", "sa", "shi", "su", "se", "so", "ta", "chi", "te",
                "to", "na", "ni", "no", "ma", "mi", "mo", "ra", "ri", "ru", "re", "wa", "ya", "yo",
                "ha", "hi", "fu", "he", "ho",
            ],
            Language::SpaceDelim => &[
                "ber", "fel", "gan", "hof", "kel", "lan", "mar", "nen", "rau", "sta", "tal", "ung",
                "wei", "zer", "bach", "dorf", "gen", "heim", "licht", "stein", "mut", "vor", "ach",
                "eck",
            ],
        }
    }
}

/// Generates unique pronounceable words for one dataset.
///
/// All attribute names, values, and filler vocabulary come from one
/// factory so the dataset-wide lexicon is collision-free — essential
/// for the lattice tokenizer to segment deterministically.
#[derive(Debug)]
pub struct WordFactory {
    language: Language,
    used: HashSet<String>,
    lexicon: Lexicon,
}

impl WordFactory {
    /// A factory for `language`.
    pub fn new(language: Language) -> Self {
        WordFactory {
            language,
            used: HashSet::new(),
            lexicon: Lexicon::new(),
        }
    }

    /// The language this factory generates for.
    pub fn language(&self) -> Language {
        self.language
    }

    /// Generates a fresh unique word of `syllable_count` syllables and
    /// registers it in the lexicon under `tag`.
    pub fn fresh(&mut self, rng: &mut StdRng, syllable_count: usize, tag: PosTag) -> String {
        let syl = self.language.syllables();
        loop {
            let mut w = String::new();
            for _ in 0..syllable_count {
                w.push_str(syl[rng.random_range(0..syl.len())]);
            }
            // A prefix collision (existing word being a prefix of the new
            // word or vice versa) is fine — longest-match handles it —
            // but exact duplicates would merge two meanings.
            if self.used.insert(w.clone()) {
                self.lexicon.insert(w.clone(), tag);
                return w;
            }
        }
    }

    /// Generates `n` fresh words.
    pub fn fresh_many(
        &mut self,
        rng: &mut StdRng,
        n: usize,
        syllable_count: usize,
        tag: PosTag,
    ) -> Vec<String> {
        (0..n)
            .map(|_| self.fresh(rng, syllable_count, tag))
            .collect()
    }

    /// Registers an externally chosen word (e.g. a unit like `kg`).
    pub fn register(&mut self, word: &str, tag: PosTag) {
        self.used.insert(word.to_owned());
        self.lexicon.insert(word, tag);
    }

    /// The lexicon accumulated so far.
    pub fn lexicon(&self) -> &Lexicon {
        &self.lexicon
    }

    /// Consumes the factory, yielding the lexicon.
    pub fn into_lexicon(self) -> Lexicon {
        self.lexicon
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn join_conventions() {
        assert_eq!(Language::Agglut.join(&["a", "b", "c"]), "abc");
        assert_eq!(Language::SpaceDelim.join(&["a", "b", "c"]), "a b c");
    }

    #[test]
    fn fresh_words_are_unique_and_in_lexicon() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut f = WordFactory::new(Language::Agglut);
        let words = f.fresh_many(&mut rng, 200, 2, PosTag::Noun);
        let distinct: HashSet<_> = words.iter().collect();
        assert_eq!(distinct.len(), 200);
        for w in &words {
            assert_eq!(f.lexicon().tag_of(w), Some(PosTag::Noun));
        }
    }

    #[test]
    fn factory_is_deterministic() {
        let gen = || {
            let mut rng = StdRng::seed_from_u64(9);
            let mut f = WordFactory::new(Language::SpaceDelim);
            f.fresh_many(&mut rng, 10, 3, PosTag::Adj)
        };
        assert_eq!(gen(), gen());
    }

    #[test]
    fn register_external_units() {
        let mut f = WordFactory::new(Language::Agglut);
        f.register("kg", PosTag::Unit);
        assert_eq!(f.lexicon().tag_of("kg"), Some(PosTag::Unit));
    }

    #[test]
    fn tokenizer_roundtrip_agglut() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut f = WordFactory::new(Language::Agglut);
        let words = f.fresh_many(&mut rng, 5, 3, PosTag::Noun);
        let tok = Language::Agglut.tokenizer(f.lexicon());
        let refs: Vec<&str> = words.iter().map(String::as_str).collect();
        let sentence = Language::Agglut.join(&refs);
        let toks = tok.tokenize(&sentence);
        let got: Vec<&str> = toks.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(got, refs);
    }
}
