//! Dataset assembly: spec → pages + query log + ground truth + lexicon.

use rand::rngs::StdRng;
use rand::SeedableRng;

use pae_text::{Lexicon, Tokenizer};

use crate::categories::CategoryKind;
use crate::language::Language;
use crate::page::{draw_product, render_page, ProductRecord};
use crate::querylog::build_query_log;
use crate::schema::CategorySchema;
use crate::truth::GroundTruth;

/// One rendered product page.
#[derive(Debug, Clone)]
pub struct ProductPage {
    /// Product id (matches the ground truth).
    pub id: u32,
    /// Full HTML of the merchant page.
    pub html: String,
}

/// Builder for one category dataset.
#[derive(Debug, Clone)]
pub struct DatasetSpec {
    kind: CategoryKind,
    seed: u64,
    n_products: Option<usize>,
}

impl DatasetSpec {
    /// Spec for `kind` with the master `seed`.
    pub fn new(kind: CategoryKind, seed: u64) -> Self {
        DatasetSpec {
            kind,
            seed,
            n_products: None,
        }
    }

    /// Overrides the product count (default: [`CategoryKind::default_products`]).
    pub fn products(mut self, n: usize) -> Self {
        self.n_products = Some(n);
        self
    }

    /// Generates the dataset deterministically.
    pub fn generate(&self) -> Dataset {
        let (schema, lexicon) = self.kind.build(self.seed);
        let n = self.n_products.unwrap_or(self.kind.default_products());
        generate_from_schema(self.kind, schema, lexicon, self.seed, n)
    }
}

/// Generates a dataset from a hand-built schema (the `custom_category`
/// example shows the full flow). The schema's vocabulary must be
/// registered in `lexicon` for the unsegmented language to tokenize.
pub fn generate_from_schema(
    kind: CategoryKind,
    schema: CategorySchema,
    lexicon: Lexicon,
    seed: u64,
    n_products: usize,
) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x5851_F42D_4C95_7F2D));

    let records: Vec<ProductRecord> = (0..n_products as u32)
        .map(|id| draw_product(&schema, id, &mut rng))
        .collect();
    let pages: Vec<ProductPage> = records
        .iter()
        .map(|r| ProductPage {
            id: r.id,
            html: render_page(&schema, r, &mut rng),
        })
        .collect();
    let query_log = build_query_log(&schema, &records, &mut rng);

    let tokenizer = schema.language.tokenizer(&lexicon);
    let truth = build_truth(&schema, &records, tokenizer.as_ref());

    Dataset {
        kind,
        schema,
        pages,
        query_log,
        truth,
        lexicon,
    }
}

/// A complete generated category dataset.
#[derive(Debug)]
pub struct Dataset {
    /// Which category this is.
    pub kind: CategoryKind,
    /// The schema it was generated from.
    pub schema: CategorySchema,
    /// Rendered product pages.
    pub pages: Vec<ProductPage>,
    /// User search queries.
    pub query_log: Vec<String>,
    /// Exact ground truth (normalized surfaces).
    pub truth: GroundTruth,
    /// Segmentation/PoS lexicon covering the whole corpus vocabulary.
    pub lexicon: Lexicon,
}

impl Dataset {
    /// Corpus language.
    pub fn language(&self) -> Language {
        self.schema.language
    }

    /// Builds the tokenizer for this dataset's language.
    pub fn tokenizer(&self) -> Box<dyn Tokenizer> {
        self.language().tokenizer(&self.lexicon)
    }

    /// Normalizes a raw value string: tokenize, join with single spaces.
    ///
    /// The ground truth stores surfaces in exactly this form; every
    /// comparison in the evaluation goes through it.
    pub fn normalize(&self, raw: &str) -> String {
        normalize_with(self.tokenizer().as_ref(), raw)
    }
}

/// Normalization shared by truth construction and evaluation.
pub fn normalize_with(tokenizer: &dyn Tokenizer, raw: &str) -> String {
    let toks = tokenizer.tokenize(raw);
    let mut out = String::with_capacity(raw.len() + toks.len());
    for (i, t) in toks.iter().enumerate() {
        if i > 0 {
            out.push(' ');
        }
        out.push_str(&t.text);
    }
    out
}

fn build_truth(
    schema: &CategorySchema,
    records: &[ProductRecord],
    tokenizer: &dyn Tokenizer,
) -> GroundTruth {
    let mut truth = GroundTruth::default();
    for attr in &schema.attributes {
        for alias in &attr.aliases {
            truth
                .attr_alias
                .insert(alias.clone(), attr.canonical.clone());
        }
        truth.valid_pairs.entry(attr.canonical.clone()).or_default();
    }
    for record in records {
        truth.product_ids.push(record.id);
        let entry = truth.product_triples.entry(record.id).or_default();
        for (ai, value) in &record.values {
            let attr = &schema.attributes[*ai];
            let set = entry.entry(attr.canonical.clone()).or_default();
            for surface in &value.surfaces {
                let norm = normalize_with(tokenizer, surface);
                truth
                    .valid_pairs
                    .get_mut(&attr.canonical)
                    .expect("pre-seeded")
                    .insert(norm.clone());
                set.insert(norm);
            }
        }
    }
    truth
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::truth::Judgement;

    fn small(kind: CategoryKind) -> Dataset {
        DatasetSpec::new(kind, 42).products(40).generate()
    }

    #[test]
    fn generates_requested_product_count() {
        let d = small(CategoryKind::VacuumCleaner);
        assert_eq!(d.pages.len(), 40);
        assert_eq!(d.truth.n_products(), 40);
        assert!(!d.query_log.is_empty());
        assert!(!d.lexicon.is_empty());
    }

    #[test]
    fn generation_is_deterministic() {
        let a = small(CategoryKind::Tennis);
        let b = small(CategoryKind::Tennis);
        assert_eq!(a.pages[7].html, b.pages[7].html);
        assert_eq!(a.query_log, b.query_log);
        assert_eq!(a.truth.n_truth_triples(), b.truth.n_truth_triples());
    }

    #[test]
    fn truth_judges_drawn_values_as_correct() {
        let d = small(CategoryKind::LadiesBags);
        // Every product's truth triple must self-judge Correct.
        let mut checked = 0;
        for (&pid, attrs) in &d.truth.product_triples {
            for (attr, values) in attrs {
                for v in values {
                    assert_eq!(d.truth.judge(pid, attr, v), Judgement::Correct);
                    checked += 1;
                }
            }
        }
        assert!(checked > 100);
    }

    #[test]
    fn table_pairs_on_pages_are_in_truth() {
        // Extract dictionary tables from the rendered pages and verify
        // the (alias, value) pairs judge Correct — the seed extractor
        // depends on this consistency end to end.
        let d = small(CategoryKind::LadiesBags);
        let mut table_pairs = 0;
        let mut correct = 0;
        for page in &d.pages {
            let forest = pae_html::parse(&page.html);
            for table in pae_html::extract_tables(&forest) {
                let Some(dict) = table.as_dictionary() else {
                    continue;
                };
                for (name, value) in dict.pairs {
                    table_pairs += 1;
                    let norm = d.normalize(&value);
                    if d.truth.judge(page.id, &name, &norm) == Judgement::Correct {
                        correct += 1;
                    }
                }
            }
        }
        assert!(table_pairs > 20, "too few table pairs: {table_pairs}");
        let precision = correct as f64 / table_pairs as f64;
        assert!(
            precision > 0.9,
            "table pairs should be mostly correct: {correct}/{table_pairs}"
        );
    }

    #[test]
    fn normalization_splits_numeric_shapes_per_language() {
        let d = small(CategoryKind::VacuumCleaner);
        // Agglut: decimal digits split (footnote 3).
        assert_eq!(d.normalize("2.5kg"), "2 . 5 kg");
        let de = small(CategoryKind::MailboxDe);
        assert_eq!(de.normalize("2.5kg"), "2.5 kg");
    }

    #[test]
    fn page_text_contains_value_mentions() {
        let d = small(CategoryKind::VacuumCleaner);
        // At least some pages must mention truth values in free text
        // (otherwise the tagger has nothing to learn).
        let mut hits = 0;
        for page in &d.pages {
            let forest = pae_html::parse(&page.html);
            let text = pae_html::extract_text(&forest, &pae_html::TextOptions::default());
            let norm_text = d.normalize(&text);
            if let Some(attrs) = d.truth.product_triples.get(&page.id) {
                if attrs
                    .values()
                    .flatten()
                    .any(|v| norm_text.contains(v.as_str()))
                {
                    hits += 1;
                }
            }
        }
        assert!(hits > 20, "only {hits}/40 pages mention any value");
    }

    #[test]
    fn german_dataset_has_fewer_default_products() {
        assert!(
            CategoryKind::MailboxDe.default_products() < CategoryKind::Tennis.default_products()
        );
    }
}
